file(REMOVE_RECURSE
  "CMakeFiles/feret_repair.dir/feret_repair.cpp.o"
  "CMakeFiles/feret_repair.dir/feret_repair.cpp.o.d"
  "feret_repair"
  "feret_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feret_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
