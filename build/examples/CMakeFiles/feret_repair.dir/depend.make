# Empty dependencies file for feret_repair.
# This may be replaced when dependencies are built.
