# Empty dependencies file for utkface_audit.
# This may be replaced when dependencies are built.
