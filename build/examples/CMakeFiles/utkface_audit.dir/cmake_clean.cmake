file(REMOVE_RECURSE
  "CMakeFiles/utkface_audit.dir/utkface_audit.cpp.o"
  "CMakeFiles/utkface_audit.dir/utkface_audit.cpp.o.d"
  "utkface_audit"
  "utkface_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utkface_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
