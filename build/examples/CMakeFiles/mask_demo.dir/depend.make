# Empty dependencies file for mask_demo.
# This may be replaced when dependencies are built.
