file(REMOVE_RECURSE
  "CMakeFiles/mask_demo.dir/mask_demo.cpp.o"
  "CMakeFiles/mask_demo.dir/mask_demo.cpp.o.d"
  "mask_demo"
  "mask_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mask_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
