file(REMOVE_RECURSE
  "CMakeFiles/rejection_sampler_test.dir/rejection_sampler_test.cc.o"
  "CMakeFiles/rejection_sampler_test.dir/rejection_sampler_test.cc.o.d"
  "rejection_sampler_test"
  "rejection_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejection_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
