# Empty dependencies file for rejection_sampler_test.
# This may be replaced when dependencies are built.
