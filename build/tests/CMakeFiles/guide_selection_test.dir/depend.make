# Empty dependencies file for guide_selection_test.
# This may be replaced when dependencies are built.
