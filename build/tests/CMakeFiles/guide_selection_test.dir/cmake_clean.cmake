file(REMOVE_RECURSE
  "CMakeFiles/guide_selection_test.dir/guide_selection_test.cc.o"
  "CMakeFiles/guide_selection_test.dir/guide_selection_test.cc.o.d"
  "guide_selection_test"
  "guide_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guide_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
