# Empty dependencies file for combination_selection_test.
# This may be replaced when dependencies are built.
