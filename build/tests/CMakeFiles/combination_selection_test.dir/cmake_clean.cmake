file(REMOVE_RECURSE
  "CMakeFiles/combination_selection_test.dir/combination_selection_test.cc.o"
  "CMakeFiles/combination_selection_test.dir/combination_selection_test.cc.o.d"
  "combination_selection_test"
  "combination_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combination_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
