file(REMOVE_RECURSE
  "CMakeFiles/fm_test.dir/fm_test.cc.o"
  "CMakeFiles/fm_test.dir/fm_test.cc.o.d"
  "fm_test"
  "fm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
