file(REMOVE_RECURSE
  "CMakeFiles/chameleon_test.dir/chameleon_test.cc.o"
  "CMakeFiles/chameleon_test.dir/chameleon_test.cc.o.d"
  "chameleon_test"
  "chameleon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
