file(REMOVE_RECURSE
  "CMakeFiles/chameleon_cli.dir/chameleon_cli.cc.o"
  "CMakeFiles/chameleon_cli.dir/chameleon_cli.cc.o.d"
  "chameleon_cli"
  "chameleon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
