
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bandit/epsilon_greedy.cc" "src/CMakeFiles/chameleon.dir/bandit/epsilon_greedy.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/bandit/epsilon_greedy.cc.o.d"
  "/root/repo/src/bandit/linucb.cc" "src/CMakeFiles/chameleon.dir/bandit/linucb.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/bandit/linucb.cc.o.d"
  "/root/repo/src/core/chameleon.cc" "src/CMakeFiles/chameleon.dir/core/chameleon.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/core/chameleon.cc.o.d"
  "/root/repo/src/core/combination_selection.cc" "src/CMakeFiles/chameleon.dir/core/combination_selection.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/core/combination_selection.cc.o.d"
  "/root/repo/src/core/guide_selection.cc" "src/CMakeFiles/chameleon.dir/core/guide_selection.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/core/guide_selection.cc.o.d"
  "/root/repo/src/core/rejection_sampler.cc" "src/CMakeFiles/chameleon.dir/core/rejection_sampler.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/core/rejection_sampler.cc.o.d"
  "/root/repo/src/coverage/mup_finder.cc" "src/CMakeFiles/chameleon.dir/coverage/mup_finder.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/coverage/mup_finder.cc.o.d"
  "/root/repo/src/coverage/pattern_counter.cc" "src/CMakeFiles/chameleon.dir/coverage/pattern_counter.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/coverage/pattern_counter.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/chameleon.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/pattern.cc" "src/CMakeFiles/chameleon.dir/data/pattern.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/data/pattern.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/chameleon.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/data/schema.cc.o.d"
  "/root/repo/src/datasets/feret.cc" "src/CMakeFiles/chameleon.dir/datasets/feret.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/datasets/feret.cc.o.d"
  "/root/repo/src/datasets/synthetic_corpus.cc" "src/CMakeFiles/chameleon.dir/datasets/synthetic_corpus.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/datasets/synthetic_corpus.cc.o.d"
  "/root/repo/src/datasets/utkface.cc" "src/CMakeFiles/chameleon.dir/datasets/utkface.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/datasets/utkface.cc.o.d"
  "/root/repo/src/embedding/simulated_embedder.cc" "src/CMakeFiles/chameleon.dir/embedding/simulated_embedder.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/embedding/simulated_embedder.cc.o.d"
  "/root/repo/src/fm/corpus_io.cc" "src/CMakeFiles/chameleon.dir/fm/corpus_io.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/fm/corpus_io.cc.o.d"
  "/root/repo/src/fm/evaluator_pool.cc" "src/CMakeFiles/chameleon.dir/fm/evaluator_pool.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/fm/evaluator_pool.cc.o.d"
  "/root/repo/src/fm/foundation_model.cc" "src/CMakeFiles/chameleon.dir/fm/foundation_model.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/fm/foundation_model.cc.o.d"
  "/root/repo/src/fm/simulated_foundation_model.cc" "src/CMakeFiles/chameleon.dir/fm/simulated_foundation_model.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/fm/simulated_foundation_model.cc.o.d"
  "/root/repo/src/image/draw.cc" "src/CMakeFiles/chameleon.dir/image/draw.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/draw.cc.o.d"
  "/root/repo/src/image/face_renderer.cc" "src/CMakeFiles/chameleon.dir/image/face_renderer.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/face_renderer.cc.o.d"
  "/root/repo/src/image/filter.cc" "src/CMakeFiles/chameleon.dir/image/filter.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/filter.cc.o.d"
  "/root/repo/src/image/foreground.cc" "src/CMakeFiles/chameleon.dir/image/foreground.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/foreground.cc.o.d"
  "/root/repo/src/image/image.cc" "src/CMakeFiles/chameleon.dir/image/image.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/image.cc.o.d"
  "/root/repo/src/image/mask_generator.cc" "src/CMakeFiles/chameleon.dir/image/mask_generator.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/mask_generator.cc.o.d"
  "/root/repo/src/image/pnm_io.cc" "src/CMakeFiles/chameleon.dir/image/pnm_io.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/image/pnm_io.cc.o.d"
  "/root/repo/src/iqa/brisque.cc" "src/CMakeFiles/chameleon.dir/iqa/brisque.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/iqa/brisque.cc.o.d"
  "/root/repo/src/iqa/ggd_fit.cc" "src/CMakeFiles/chameleon.dir/iqa/ggd_fit.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/iqa/ggd_fit.cc.o.d"
  "/root/repo/src/iqa/mscn.cc" "src/CMakeFiles/chameleon.dir/iqa/mscn.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/iqa/mscn.cc.o.d"
  "/root/repo/src/iqa/nima.cc" "src/CMakeFiles/chameleon.dir/iqa/nima.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/iqa/nima.cc.o.d"
  "/root/repo/src/iqa/niqe.cc" "src/CMakeFiles/chameleon.dir/iqa/niqe.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/iqa/niqe.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/chameleon.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/chameleon.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/linalg/vector_ops.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/CMakeFiles/chameleon.dir/nn/metrics.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/nn/metrics.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/chameleon.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/CMakeFiles/chameleon.dir/nn/trainer.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/nn/trainer.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/CMakeFiles/chameleon.dir/stats/special_functions.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/stats/special_functions.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/chameleon.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/t_test.cc" "src/CMakeFiles/chameleon.dir/stats/t_test.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/stats/t_test.cc.o.d"
  "/root/repo/src/svm/kernel.cc" "src/CMakeFiles/chameleon.dir/svm/kernel.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/svm/kernel.cc.o.d"
  "/root/repo/src/svm/one_class_svm.cc" "src/CMakeFiles/chameleon.dir/svm/one_class_svm.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/svm/one_class_svm.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/chameleon.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/chameleon.dir/util/status.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/chameleon.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/chameleon.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/chameleon.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
