# Empty compiler generated dependencies file for bench_micro_iqa.
# This may be replaced when dependencies are built.
