file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_iqa.dir/bench_micro_iqa.cc.o"
  "CMakeFiles/bench_micro_iqa.dir/bench_micro_iqa.cc.o.d"
  "bench_micro_iqa"
  "bench_micro_iqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_iqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
