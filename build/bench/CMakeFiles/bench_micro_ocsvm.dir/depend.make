# Empty dependencies file for bench_micro_ocsvm.
# This may be replaced when dependencies are built.
