file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ocsvm.dir/bench_micro_ocsvm.cc.o"
  "CMakeFiles/bench_micro_ocsvm.dir/bench_micro_ocsvm.cc.o.d"
  "bench_micro_ocsvm"
  "bench_micro_ocsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ocsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
