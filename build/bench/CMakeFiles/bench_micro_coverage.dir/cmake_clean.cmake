file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_coverage.dir/bench_micro_coverage.cc.o"
  "CMakeFiles/bench_micro_coverage.dir/bench_micro_coverage.cc.o.d"
  "bench_micro_coverage"
  "bench_micro_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
