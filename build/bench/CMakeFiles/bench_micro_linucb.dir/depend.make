# Empty dependencies file for bench_micro_linucb.
# This may be replaced when dependencies are built.
