file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_linucb.dir/bench_micro_linucb.cc.o"
  "CMakeFiles/bench_micro_linucb.dir/bench_micro_linucb.cc.o.d"
  "bench_micro_linucb"
  "bench_micro_linucb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_linucb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
