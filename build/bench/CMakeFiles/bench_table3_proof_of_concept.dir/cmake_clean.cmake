file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_proof_of_concept.dir/bench_table3_proof_of_concept.cc.o"
  "CMakeFiles/bench_table3_proof_of_concept.dir/bench_table3_proof_of_concept.cc.o.d"
  "bench_table3_proof_of_concept"
  "bench_table3_proof_of_concept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_proof_of_concept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
