# Empty dependencies file for bench_table3_proof_of_concept.
# This may be replaced when dependencies are built.
