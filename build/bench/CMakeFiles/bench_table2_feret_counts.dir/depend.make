# Empty dependencies file for bench_table2_feret_counts.
# This may be replaced when dependencies are built.
