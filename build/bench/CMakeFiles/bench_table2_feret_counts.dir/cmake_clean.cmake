file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_feret_counts.dir/bench_table2_feret_counts.cc.o"
  "CMakeFiles/bench_table2_feret_counts.dir/bench_table2_feret_counts.cc.o.d"
  "bench_table2_feret_counts"
  "bench_table2_feret_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_feret_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
