file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_greedy.dir/bench_micro_greedy.cc.o"
  "CMakeFiles/bench_micro_greedy.dir/bench_micro_greedy.cc.o.d"
  "bench_micro_greedy"
  "bench_micro_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
