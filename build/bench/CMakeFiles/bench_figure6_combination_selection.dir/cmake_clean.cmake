file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_combination_selection.dir/bench_figure6_combination_selection.cc.o"
  "CMakeFiles/bench_figure6_combination_selection.dir/bench_figure6_combination_selection.cc.o.d"
  "bench_figure6_combination_selection"
  "bench_figure6_combination_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_combination_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
