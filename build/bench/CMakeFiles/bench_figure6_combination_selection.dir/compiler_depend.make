# Empty compiler generated dependencies file for bench_figure6_combination_selection.
# This may be replaced when dependencies are built.
