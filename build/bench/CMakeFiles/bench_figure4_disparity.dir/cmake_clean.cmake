file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_disparity.dir/bench_figure4_disparity.cc.o"
  "CMakeFiles/bench_figure4_disparity.dir/bench_figure4_disparity.cc.o.d"
  "bench_figure4_disparity"
  "bench_figure4_disparity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_disparity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
