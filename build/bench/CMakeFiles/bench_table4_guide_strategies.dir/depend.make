# Empty dependencies file for bench_table4_guide_strategies.
# This may be replaced when dependencies are built.
