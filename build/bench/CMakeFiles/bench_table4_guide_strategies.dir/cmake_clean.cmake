file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_guide_strategies.dir/bench_table4_guide_strategies.cc.o"
  "CMakeFiles/bench_table4_guide_strategies.dir/bench_table4_guide_strategies.cc.o.d"
  "bench_table4_guide_strategies"
  "bench_table4_guide_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_guide_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
