# Empty compiler generated dependencies file for bench_table5_iqa_jaccard.
# This may be replaced when dependencies are built.
