file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_iqa_jaccard.dir/bench_table5_iqa_jaccard.cc.o"
  "CMakeFiles/bench_table5_iqa_jaccard.dir/bench_table5_iqa_jaccard.cc.o.d"
  "bench_table5_iqa_jaccard"
  "bench_table5_iqa_jaccard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_iqa_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
