file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_image.dir/bench_micro_image.cc.o"
  "CMakeFiles/bench_micro_image.dir/bench_micro_image.cc.o.d"
  "bench_micro_image"
  "bench_micro_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
