# Empty dependencies file for bench_micro_image.
# This may be replaced when dependencies are built.
