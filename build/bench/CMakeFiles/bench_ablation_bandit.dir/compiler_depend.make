# Empty compiler generated dependencies file for bench_ablation_bandit.
# This may be replaced when dependencies are built.
