file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bandit.dir/bench_ablation_bandit.cc.o"
  "CMakeFiles/bench_ablation_bandit.dir/bench_ablation_bandit.cc.o.d"
  "bench_ablation_bandit"
  "bench_ablation_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
