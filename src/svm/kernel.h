#ifndef CHAMELEON_SVM_KERNEL_H_
#define CHAMELEON_SVM_KERNEL_H_

#include <string>
#include <vector>

namespace chameleon::svm {

/// Kernel families supported by the one-class SVM. The paper's data
/// distribution test evaluates Linear and RBF (Table 4).
enum class KernelType {
  kLinear,
  kRbf,
  kPolynomial,
  kSigmoid,
};

const char* KernelTypeName(KernelType type);

/// A kernel function k(x, y) with its hyper-parameters.
struct Kernel {
  KernelType type = KernelType::kRbf;
  /// RBF: k = exp(-gamma * |x-y|^2); poly/sigmoid scale. If <= 0, defaults
  /// to 1/dim at evaluation time.
  double gamma = -1.0;
  /// Polynomial/sigmoid offset.
  double coef0 = 0.0;
  /// Polynomial degree.
  int degree = 3;

  static Kernel Linear() { return Kernel{KernelType::kLinear, 0, 0, 0}; }
  static Kernel Rbf(double gamma = -1.0) {
    return Kernel{KernelType::kRbf, gamma, 0, 0};
  }
  static Kernel Polynomial(int degree, double gamma = -1.0,
                           double coef0 = 1.0) {
    return Kernel{KernelType::kPolynomial, gamma, coef0, degree};
  }
  static Kernel Sigmoid(double gamma = -1.0, double coef0 = 0.0) {
    return Kernel{KernelType::kSigmoid, gamma, coef0, 0};
  }

  /// k(x, y). Vectors must have equal, non-zero length.
  double Evaluate(const std::vector<double>& x,
                  const std::vector<double>& y) const;

  std::string ToString() const;
};

}  // namespace chameleon::svm

#endif  // CHAMELEON_SVM_KERNEL_H_
