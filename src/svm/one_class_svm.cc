#include "src/svm/one_class_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "src/util/thread_pool.h"

namespace chameleon::svm {
namespace {

/// Rows per ParallelFor chunk when materializing the Gram matrix. The
/// upper triangle makes early rows more expensive, so chunks stay small
/// to load-balance.
constexpr int64_t kGramGrain = 16;

/// Points per chunk for batch scoring.
constexpr int64_t kScoreGrain = 32;

/// Don't bother spinning up workers for Gram matrices this small.
constexpr size_t kMinParallelGramCells = 1u << 14;

/// Kernel matrix with optional full materialization: row access is O(1)
/// when cached, O(n * dim) otherwise.
class KernelCache {
 public:
  KernelCache(const std::vector<std::vector<double>>& points,
              const Kernel& kernel, util::ThreadPool* pool)
      : points_(points), kernel_(kernel) {
    const size_t n = points.size();
    // ~64 MB of doubles at most.
    cache_full_ = n * n <= (8u << 20);
    if (!cache_full_) return;
    matrix_.assign(n * n, 0.0);
    // Row i fills its upper-triangle segment and mirrors it into column
    // i, so every cell is written by exactly one row — chunking rows is
    // race-free and the result is identical at every worker count.
    auto fill_rows = [&](int64_t begin, int64_t end, int64_t /*chunk*/) {
      for (size_t i = static_cast<size_t>(begin);
           i < static_cast<size_t>(end); ++i) {
        for (size_t j = i; j < n; ++j) {
          const double k = kernel_.Evaluate(points_[i], points_[j]);
          matrix_[i * n + j] = k;
          matrix_[j * n + i] = k;
        }
      }
    };
    if (pool != nullptr && pool->num_threads() > 1 &&
        n * n >= kMinParallelGramCells) {
      pool->ParallelFor(static_cast<int64_t>(n), kGramGrain, fill_rows);
    } else {
      fill_rows(0, static_cast<int64_t>(n), 0);
    }
  }

  double At(size_t i, size_t j) const {
    if (cache_full_) return matrix_[i * points_.size() + j];
    return kernel_.Evaluate(points_[i], points_[j]);
  }

  /// Fills `row` with K(i, *).
  void Row(size_t i, std::vector<double>* row) const {
    const size_t n = points_.size();
    row->resize(n);
    if (cache_full_) {
      std::copy(matrix_.begin() + i * n, matrix_.begin() + (i + 1) * n,
                row->begin());
      return;
    }
    for (size_t j = 0; j < n; ++j) {
      (*row)[j] = kernel_.Evaluate(points_[i], points_[j]);
    }
  }

 private:
  const std::vector<std::vector<double>>& points_;
  Kernel kernel_;
  bool cache_full_ = false;
  std::vector<double> matrix_;
};

}  // namespace

util::Result<OneClassSvm> OneClassSvm::Train(
    const std::vector<std::vector<double>>& points,
    const OneClassSvmOptions& options) {
  const size_t n = points.size();
  if (n < 2) {
    return util::Status::InvalidArgument(
        "OneClassSvm needs at least 2 training points");
  }
  if (options.nu <= 0.0 || options.nu > 1.0) {
    return util::Status::InvalidArgument("nu must be in (0, 1]");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim || dim == 0) {
      return util::Status::InvalidArgument(
          "training points must share a non-zero dimension");
    }
  }

  // Optional per-dimension scale normalization (fitted on the training
  // set). Scale-only — see the header comment on `standardize`.
  std::vector<double> feature_mean(dim, 0.0);
  std::vector<double> feature_scale(dim, 1.0);
  std::vector<std::vector<double>> standardized;
  const std::vector<std::vector<double>>* train_points = &points;
  if (options.standardize) {
    for (const auto& p : points) {
      for (size_t k = 0; k < dim; ++k) feature_mean[k] += p[k];
    }
    for (double& v : feature_mean) v /= static_cast<double>(n);
    std::vector<double> variance(dim, 0.0);
    for (const auto& p : points) {
      for (size_t k = 0; k < dim; ++k) {
        const double d = p[k] - feature_mean[k];
        variance[k] += d * d;
      }
    }
    for (size_t k = 0; k < dim; ++k) {
      feature_scale[k] = std::sqrt(variance[k] / static_cast<double>(n));
      if (feature_scale[k] < 1e-9) feature_scale[k] = 1.0;
    }
    // The mean is only used to estimate scales; queries are not centered.
    std::fill(feature_mean.begin(), feature_mean.end(), 0.0);
    standardized.reserve(n);
    for (const auto& p : points) {
      std::vector<double> z(dim);
      for (size_t k = 0; k < dim; ++k) {
        z[k] = p[k] / feature_scale[k];
      }
      standardized.push_back(std::move(z));
    }
    train_points = &standardized;
  }

  const double upper = 1.0 / (options.nu * static_cast<double>(n));
  const int num_threads = util::ThreadPool::ResolveThreadCount(
      options.num_threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (num_threads > 1 && n * n >= kMinParallelGramCells) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
  }
  KernelCache cache(*train_points, options.kernel, pool.get());
  pool.reset();  // SMO below is inherently sequential.

  // LIBSVM initialization: the first floor(nu*n) alphas at the upper
  // bound, the next takes the remainder so that sum(alpha) = 1.
  std::vector<double> alpha(n, 0.0);
  {
    double remaining = 1.0;
    for (size_t i = 0; i < n && remaining > 0.0; ++i) {
      alpha[i] = std::min(upper, remaining);
      remaining -= alpha[i];
    }
  }

  // Gradient of 1/2 a^T Q a is g = Q a.
  std::vector<double> gradient(n, 0.0);
  {
    std::vector<double> row;
    for (size_t i = 0; i < n; ++i) {
      if (alpha[i] == 0.0) continue;
      cache.Row(i, &row);
      for (size_t t = 0; t < n; ++t) gradient[t] += alpha[i] * row[t];
    }
  }

  OneClassSvmStats stats;
  std::vector<double> row_i;
  std::vector<double> row_j;
  constexpr double kTau = 1e-12;

  for (stats.iterations = 0; stats.iterations < options.max_iterations;
       ++stats.iterations) {
    // Maximal violating pair: i can grow (alpha_i < C) with minimal
    // gradient, j can shrink (alpha_j > 0) with maximal gradient.
    int best_i = -1;
    int best_j = -1;
    double min_grow = std::numeric_limits<double>::infinity();
    double max_shrink = -std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] < upper - kTau && gradient[t] < min_grow) {
        min_grow = gradient[t];
        best_i = static_cast<int>(t);
      }
      if (alpha[t] > kTau && gradient[t] > max_shrink) {
        max_shrink = gradient[t];
        best_j = static_cast<int>(t);
      }
    }
    if (best_i < 0 || best_j < 0 || max_shrink - min_grow < options.tolerance) {
      break;  // KKT satisfied.
    }

    const size_t i = static_cast<size_t>(best_i);
    const size_t j = static_cast<size_t>(best_j);
    cache.Row(i, &row_i);
    cache.Row(j, &row_j);

    double curvature = row_i[i] + row_j[j] - 2.0 * row_i[j];
    if (curvature <= kTau) curvature = kTau;
    double delta = (gradient[j] - gradient[i]) / curvature;
    delta = std::min(delta, upper - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= kTau) {
      // Numerically stuck on this pair; the KKT gap check above will
      // terminate next time around once the tolerance is met.
      break;
    }
    alpha[i] += delta;
    alpha[j] -= delta;
    for (size_t t = 0; t < n; ++t) {
      gradient[t] += delta * (row_i[t] - row_j[t]);
    }
  }

  // rho: at optimality w.phi(x_t) = gradient_t; margin SVs sit exactly on
  // the boundary. Average over them (fallback: midpoint of bound groups).
  double rho_sum = 0.0;
  int rho_count = 0;
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > kTau && alpha[t] < upper - kTau) {
      rho_sum += gradient[t];
      ++rho_count;
    }
  }
  double rho;
  if (rho_count > 0) {
    rho = rho_sum / rho_count;
  } else {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] >= upper - kTau) lo = std::max(lo, gradient[t]);
      if (alpha[t] <= kTau) hi = std::min(hi, gradient[t]);
    }
    if (!std::isfinite(lo)) lo = hi;
    if (!std::isfinite(hi)) hi = lo;
    rho = 0.5 * (lo + hi);
  }

  OneClassSvm model;
  model.kernel_ = options.kernel;
  model.rho_ = rho;
  model.decision_threshold_ = options.decision_threshold;
  model.standardize_ = options.standardize;
  model.feature_mean_ = std::move(feature_mean);
  model.feature_scale_ = std::move(feature_scale);
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > kTau) {
      model.support_vectors_.push_back((*train_points)[t]);
      model.alphas_.push_back(alpha[t]);
      ++stats.num_support_vectors;
      if (alpha[t] < upper - kTau) ++stats.num_margin_support_vectors;
    }
  }
  stats.rho = rho;
  model.stats_ = stats;
  return model;
}

std::vector<double> OneClassSvm::Standardized(
    const std::vector<double>& x) const {
  std::vector<double> z(x.size());
  for (size_t k = 0; k < x.size(); ++k) {
    z[k] = (x[k] - feature_mean_[k]) / feature_scale_[k];
  }
  return z;
}

double OneClassSvm::DecisionValue(const std::vector<double>& x) const {
  const std::vector<double>& query = standardize_ ? Standardized(x) : x;
  double sum = 0.0;
  for (size_t s = 0; s < support_vectors_.size(); ++s) {
    sum += alphas_[s] * kernel_.Evaluate(support_vectors_[s], query);
  }
  return sum - rho_;
}

std::vector<double> OneClassSvm::DecisionValues(
    const std::vector<std::vector<double>>& points, int num_threads) const {
  std::vector<double> values(points.size(), 0.0);
  const int threads = util::ThreadPool::ResolveThreadCount(num_threads);
  auto score = [&](int64_t begin, int64_t end, int64_t /*chunk*/) {
    for (int64_t i = begin; i < end; ++i) {
      values[i] = DecisionValue(points[i]);
    }
  };
  if (threads > 1 && static_cast<int64_t>(points.size()) > kScoreGrain) {
    util::ThreadPool pool(threads);
    pool.ParallelFor(static_cast<int64_t>(points.size()), kScoreGrain, score);
  } else {
    score(0, static_cast<int64_t>(points.size()), 0);
  }
  return values;
}

bool OneClassSvm::Accepts(const std::vector<double>& x) const {
  return Accepts(DecisionValue(x));
}

}  // namespace chameleon::svm
