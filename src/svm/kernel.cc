#include "src/svm/kernel.h"

#include <cmath>

#include "src/linalg/vector_ops.h"

namespace chameleon::svm {

const char* KernelTypeName(KernelType type) {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
    case KernelType::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

double Kernel::Evaluate(const std::vector<double>& x,
                        const std::vector<double>& y) const {
  const double g = gamma > 0.0 ? gamma : 1.0 / static_cast<double>(x.size());
  switch (type) {
    case KernelType::kLinear:
      return linalg::Dot(x, y);
    case KernelType::kRbf:
      return std::exp(-g * linalg::SquaredDistance(x, y));
    case KernelType::kPolynomial:
      return std::pow(g * linalg::Dot(x, y) + coef0, degree);
    case KernelType::kSigmoid:
      return std::tanh(g * linalg::Dot(x, y) + coef0);
  }
  return 0.0;
}

std::string Kernel::ToString() const {
  std::string out = KernelTypeName(type);
  out += "(gamma=" + std::to_string(gamma);
  if (type == KernelType::kPolynomial) {
    out += ", degree=" + std::to_string(degree);
  }
  if (type == KernelType::kPolynomial || type == KernelType::kSigmoid) {
    out += ", coef0=" + std::to_string(coef0);
  }
  out += ")";
  return out;
}

}  // namespace chameleon::svm
