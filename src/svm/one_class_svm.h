#ifndef CHAMELEON_SVM_ONE_CLASS_SVM_H_
#define CHAMELEON_SVM_ONE_CLASS_SVM_H_

#include <cstdint>
#include <vector>

#include "src/svm/kernel.h"
#include "src/util/status.h"

namespace chameleon::svm {

/// Training options for the ν-one-class SVM (Schölkopf et al., 1999) used
/// by the data distribution test (§3.1).
struct OneClassSvmOptions {
  /// ν: upper bound on the outlier fraction, lower bound on the SV
  /// fraction. The paper evaluates ν = 0.3.
  double nu = 0.3;
  Kernel kernel = Kernel::Rbf();
  /// SMO stopping tolerance on the maximal KKT violation.
  double tolerance = 1e-4;
  /// Hard cap on SMO iterations.
  int64_t max_iterations = 200000;
  /// Divide each input dimension by its training standard deviation
  /// before kernel evaluation (recommended for embeddings of
  /// heterogeneous scale). Scale-only on purpose: the one-class SVM
  /// separates data from the origin, so mean-centering would make the
  /// linear kernel degenerate; RBF kernels are translation-invariant and
  /// unaffected by the missing centering.
  bool standardize = true;
  /// Acceptance rule: a point is in-distribution when
  /// f(x) >= decision_threshold. 0 is the classic boundary; positive
  /// values tighten the data distribution test, negative values loosen
  /// it. Every consumer must gate through Accepts() rather than
  /// hard-coding the threshold.
  double decision_threshold = 0.0;
  /// Worker count for Gram-matrix construction in Train: 0 = hardware
  /// concurrency (the default), 1 = serial. Every Gram entry is computed
  /// independently, so the trained model is bit-identical at every
  /// setting.
  int num_threads = 0;
};

/// Diagnostics from training.
struct OneClassSvmStats {
  int64_t iterations = 0;
  int num_support_vectors = 0;
  int num_margin_support_vectors = 0;
  double rho = 0.0;
};

/// ν-one-class SVM solving
///   min_alpha 1/2 alpha^T Q alpha
///   s.t. 0 <= alpha_i <= 1/(nu*n), sum alpha_i = 1
/// by sequential minimal optimization with maximal-violating-pair working
/// set selection (LIBSVM-style). Decision f(x) = sum_i alpha_i k(x_i, x) - rho;
/// a point is in-distribution when f(x) >= 0.
class OneClassSvm {
 public:
  /// Trains on the given embeddings (>= 2 rows of equal length).
  [[nodiscard]] static util::Result<OneClassSvm> Train(
      const std::vector<std::vector<double>>& points,
      const OneClassSvmOptions& options);

  /// Signed decision value f(x).
  double DecisionValue(const std::vector<double>& x) const;

  /// Batch scoring: f(x) for every point, chunked over a thread pool
  /// when num_threads != 1 (0 = hardware concurrency). Each point is
  /// scored independently, so the result is bit-identical to calling
  /// DecisionValue in a loop at every worker count.
  std::vector<double> DecisionValues(
      const std::vector<std::vector<double>>& points,
      int num_threads = 1) const;

  /// The data distribution test: true iff f(x) >= decision_threshold.
  bool Accepts(const std::vector<double>& x) const;

  /// The same acceptance rule applied to an already-computed decision
  /// value — the single authority consumers must route through instead
  /// of comparing against a hard-coded 0.
  bool Accepts(double decision_value) const {
    return decision_value >= decision_threshold_;
  }

  double rho() const { return rho_; }
  double decision_threshold() const { return decision_threshold_; }
  const OneClassSvmStats& stats() const { return stats_; }
  const Kernel& kernel() const { return kernel_; }
  int num_support_vectors() const {
    return static_cast<int>(support_vectors_.size());
  }

 private:
  OneClassSvm() = default;

  std::vector<double> Standardized(const std::vector<double>& x) const;

  Kernel kernel_;
  double rho_ = 0.0;
  double decision_threshold_ = 0.0;
  std::vector<std::vector<double>> support_vectors_;  // standardized space
  std::vector<double> alphas_;
  OneClassSvmStats stats_;
  bool standardize_ = false;
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
};

}  // namespace chameleon::svm

#endif  // CHAMELEON_SVM_ONE_CLASS_SVM_H_
