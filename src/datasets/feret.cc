#include "src/datasets/feret.h"

#include <cmath>

namespace chameleon::datasets {
namespace {

// Table 2 (male, female) counts per ethnicity.
struct EthnicityCounts {
  int male;
  int female;
};
constexpr EthnicityCounts kTable2[] = {
    {331, 229},  // White
    {21, 19},    // Black
    {80, 47},    // Asian
    {11, 8},     // Hispanic
    {9, 1},      // Middle Eastern
};

// Ethnicity -> skin palette group (light..dark render anchors).
constexpr int kSkinGroup[] = {0, 4, 1, 2, 3};
constexpr int kNumSkinGroups = 5;

}  // namespace

data::AttributeSchema FeretSchema() {
  data::AttributeSchema schema;
  // Domains are fixed literals; AddAttribute cannot fail here.
  (void)schema.AddAttribute({"gender", {"Male", "Female"}, false});
  (void)schema.AddAttribute(
      {"ethnicity",
       {"White", "Black", "Asian", "Hispanic", "MiddleEastern"},
       false});
  return schema;
}

CombinationCounts FeretTrainCounts() {
  CombinationCounts counts;
  for (int e = 0; e < 5; ++e) {
    counts.push_back({{0, e}, kTable2[e].male});
    counts.push_back({{1, e}, kTable2[e].female});
  }
  return counts;
}

image::SceneStyle FeretScene() {
  image::SceneStyle scene;
  // Uniform light-gray studio backdrop.
  scene.background_top = {168, 168, 172};
  scene.background_bottom = {148, 148, 152};
  scene.blur_sigma = 0.5;
  return scene;
}

fm::FaceStyleFn FeretFaceStyleFn() {
  return [](const std::vector<int>& values, util::Rng* rng) {
    const bool feminine = values[kFeretGender] == 1;
    const int skin_group = kSkinGroup[values[kFeretEthnicity]];
    // FERET subjects skew adult; keep a mid-age prior.
    const double age01 = 0.15 + 0.75 * rng->NextDouble();
    return image::MakeFaceStyle(skin_group, kNumSkinGroups, feminine, age01,
                                rng);
  };
}

util::Result<fm::Corpus> MakeFeret(const embedding::Embedder* embedder,
                                   const FeretOptions& options) {
  fm::Corpus corpus;
  corpus.dataset = data::Dataset(FeretSchema());
  util::Rng rng(options.seed);
  CHAMELEON_RETURN_NOT_OK(FillCorpus(&corpus, FeretTrainCounts(),
                                     FeretFaceStyleFn(), FeretScene(),
                                     embedder, options.render, &rng));
  return corpus;
}

util::Result<fm::Corpus> MakeFeretTestSet(
    const embedding::Embedder* embedder, const FeretOptions& options,
    const std::vector<int>& per_ethnicity) {
  if (per_ethnicity.size() != 5) {
    return util::Status::InvalidArgument(
        "per_ethnicity needs 5 entries (Table 2 rows)");
  }
  CombinationCounts counts;
  for (int e = 0; e < 5; ++e) {
    // Preserve the training gender ratio within each ethnicity.
    const double male_share =
        static_cast<double>(kTable2[e].male) /
        (kTable2[e].male + kTable2[e].female);
    const int males = std::max(
        1, static_cast<int>(std::lround(per_ethnicity[e] * male_share)));
    const int females = std::max(1, per_ethnicity[e] - males);
    counts.push_back({{0, e}, males});
    counts.push_back({{1, e}, females});
  }
  fm::Corpus corpus;
  corpus.dataset = data::Dataset(FeretSchema());
  // Decorrelate the holdout from the training draw.
  util::Rng rng(options.seed ^ 0xFEE7DB15ULL);
  CHAMELEON_RETURN_NOT_OK(FillCorpus(&corpus, counts, FeretFaceStyleFn(),
                                     FeretScene(), embedder, options.render,
                                     &rng));
  return corpus;
}

}  // namespace chameleon::datasets
