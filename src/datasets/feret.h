#ifndef CHAMELEON_DATASETS_FERET_H_
#define CHAMELEON_DATASETS_FERET_H_

#include <cstdint>
#include <vector>

#include "src/data/schema.h"
#include "src/datasets/synthetic_corpus.h"
#include "src/fm/corpus.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/image/face_renderer.h"
#include "src/util/status.h"

namespace chameleon::datasets {

/// Attribute indices of the FERET schema.
inline constexpr int kFeretGender = 0;
inline constexpr int kFeretEthnicity = 1;

/// Ethnicity value indices (Table 2 row order).
inline constexpr int kFeretWhite = 0;
inline constexpr int kFeretBlack = 1;
inline constexpr int kFeretAsian = 2;
inline constexpr int kFeretHispanic = 3;
inline constexpr int kFeretMiddleEastern = 4;

struct FeretOptions {
  RenderSpec render;
  uint64_t seed = 42;
};

/// gender {Male, Female} x ethnicity {White, Black, Asian, Hispanic,
/// Middle Eastern}.
data::AttributeSchema FeretSchema();

/// The paper's Table 2 training counts per (ethnicity, gender):
/// 756 images, heavily skewed towards White.
CombinationCounts FeretTrainCounts();

/// Scene style shared by all FERET images (the standardized studio
/// backdrop the real corpus is known for).
image::SceneStyle FeretScene();

/// Demographics -> appearance mapping for FERET.
fm::FaceStyleFn FeretFaceStyleFn();

/// Builds the synthetic FERET training corpus with exactly the Table 2
/// composition.
[[nodiscard]] util::Result<fm::Corpus> MakeFeret(const embedding::Embedder* embedder,
                                   const FeretOptions& options);

/// A held-out all-real test corpus. `per_ethnicity` gives the test count
/// for each ethnicity (split across genders like the training data);
/// defaults approximate a proportional 25% holdout with floors so that
/// minority metrics are measurable.
[[nodiscard]] util::Result<fm::Corpus> MakeFeretTestSet(
    const embedding::Embedder* embedder, const FeretOptions& options,
    const std::vector<int>& per_ethnicity = {240, 30, 60, 24, 20});

}  // namespace chameleon::datasets

#endif  // CHAMELEON_DATASETS_FERET_H_
