#include "src/datasets/utkface.h"

#include <algorithm>
#include <map>

namespace chameleon::datasets {
namespace {

// Marginal distributions approximating the published UTKFace statistics,
// tuned so the Figure 6 threshold sweep produces level-1 MUPs only at
// tau >= 1000 (see header).
constexpr double kGenderMarginal[] = {0.52, 0.48};
constexpr double kRaceMarginal[] = {0.475, 0.21, 0.18, 0.105, 0.03};
constexpr double kAgeMarginal[] = {0.03, 0.06, 0.09, 0.28, 0.21,
                                   0.125, 0.105, 0.07, 0.03};

// Race -> skin palette group.
constexpr int kSkinGroup[] = {0, 4, 1, 2, 3};

int SampleMarginal(const double* marginal, int n, util::Rng* rng) {
  double pick = rng->NextDouble();
  for (int i = 0; i < n; ++i) {
    if (pick < marginal[i]) return i;
    pick -= marginal[i];
  }
  return n - 1;
}

}  // namespace

data::AttributeSchema UtkFaceSchema() {
  data::AttributeSchema schema;
  (void)schema.AddAttribute({"gender", {"Male", "Female"}, false});
  (void)schema.AddAttribute(
      {"race", {"White", "Black", "Asian", "Indian", "Others"}, false});
  (void)schema.AddAttribute({"age_group",
                             {"0-2", "3-9", "10-19", "20-29", "30-39",
                              "40-49", "50-59", "60-69", "70+"},
                             true});
  return schema;
}

image::SceneStyle UtkFaceScene() {
  image::SceneStyle scene;
  // In-the-wild bluish outdoor-ish backdrop.
  scene.background_top = {92, 118, 150};
  scene.background_bottom = {140, 150, 160};
  scene.blur_sigma = 0.7;
  return scene;
}

fm::FaceStyleFn UtkFaceStyleFn() {
  return [](const std::vector<int>& values, util::Rng* rng) {
    const bool feminine = values[kUtkGender] == 1;
    const int skin_group = kSkinGroup[values[kUtkRace]];
    const double age01 =
        static_cast<double>(values[kUtkAgeGroup]) / (kUtkNumAgeGroups - 1);
    return image::MakeFaceStyle(skin_group, kUtkNumRaces, feminine, age01,
                                rng);
  };
}

util::Result<fm::Corpus> MakeUtkFace(const embedding::Embedder* embedder,
                                     const UtkFaceOptions& options) {
  fm::Corpus corpus;
  corpus.dataset = data::Dataset(UtkFaceSchema());
  util::Rng rng(options.seed);

  // Sample annotations first, then batch by combination for FillCorpus.
  std::map<std::vector<int>, int> histogram;
  for (int i = 0; i < options.num_tuples; ++i) {
    std::vector<int> values(3);
    values[kUtkGender] = SampleMarginal(kGenderMarginal, 2, &rng);
    values[kUtkRace] = SampleMarginal(kRaceMarginal, kUtkNumRaces, &rng);
    values[kUtkAgeGroup] =
        SampleMarginal(kAgeMarginal, kUtkNumAgeGroups, &rng);
    ++histogram[values];
  }
  CombinationCounts counts(histogram.begin(), histogram.end());
  CHAMELEON_RETURN_NOT_OK(FillCorpus(&corpus, counts, UtkFaceStyleFn(),
                                     UtkFaceScene(), embedder, options.render,
                                     &rng));
  return corpus;
}

std::vector<data::Pattern> ChallengeRarePatterns() {
  // Two rare (gender, race) combinations per age bucket 1..8: the
  // gender alternates with the bucket, the race walks through the
  // domain, and the two picks within a bucket differ in both.
  std::vector<data::Pattern> rare;
  for (int age = 1; age <= 8; ++age) {
    const int gender_a = age % 2;
    const int race_a = age % kUtkNumRaces;
    const int gender_b = 1 - gender_a;
    const int race_b = (age + 2) % kUtkNumRaces;
    rare.push_back(data::Pattern({gender_a, race_a, age}));
    rare.push_back(data::Pattern({gender_b, race_b, age}));
  }
  return rare;
}

util::Result<fm::Corpus> MakeUtkFaceChallengeSubset(
    const embedding::Embedder* embedder, const ChallengeOptions& options) {
  fm::Corpus corpus;
  const data::AttributeSchema schema = UtkFaceSchema();
  corpus.dataset = data::Dataset(schema);
  util::Rng rng(options.seed);

  const std::vector<data::Pattern> rare = ChallengeRarePatterns();
  auto is_rare = [&](const std::vector<int>& values) {
    for (const auto& p : rare) {
      if (p.Matches(values)) return true;
    }
    return false;
  };

  CombinationCounts counts;
  for (int64_t c = 0; c < schema.NumCombinations(); ++c) {
    const std::vector<int> values = schema.CombinationFromIndex(c);
    counts.push_back(
        {values, is_rare(values) ? options.rare_count : options.base_count});
  }
  CHAMELEON_RETURN_NOT_OK(FillCorpus(&corpus, counts, UtkFaceStyleFn(),
                                     UtkFaceScene(), embedder, options.render,
                                     &rng));
  return corpus;
}

}  // namespace chameleon::datasets
