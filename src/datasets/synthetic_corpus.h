#ifndef CHAMELEON_DATASETS_SYNTHETIC_CORPUS_H_
#define CHAMELEON_DATASETS_SYNTHETIC_CORPUS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/fm/corpus.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/image/face_renderer.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::datasets {

/// Rendering/embedding controls shared by the corpus builders.
struct RenderSpec {
  /// When false, tuples carry only annotations (coverage-only
  /// experiments run orders of magnitude faster).
  bool render_images = true;
  int image_size = 64;
  /// Per-photo lighting variation (0-255 channel units). Photo corpora
  /// vary in exposure/backdrop; this variance keeps the distribution
  /// test focused on context rather than subject identity.
  double scene_jitter_stddev = 12.0;
  /// Latent realism of real photographs: calibrated so the simulated
  /// evaluators label ~86% of real images realistic (the paper's p).
  double realism_mean = 0.92;
  double realism_stddev = 0.04;
};

/// (combination values, count) pairs describing a corpus composition.
using CombinationCounts = std::vector<std::pair<std::vector<int>, int>>;

/// Appends `count` tuples per combination to `corpus`, rendering faces
/// with `style_fn` under `scene` and embedding them with `embedder`
/// (both ignored when render_images is false).
[[nodiscard]] util::Status FillCorpus(fm::Corpus* corpus, const CombinationCounts& counts,
                        const fm::FaceStyleFn& style_fn,
                        const image::SceneStyle& scene,
                        const embedding::Embedder* embedder,
                        const RenderSpec& spec, util::Rng* rng);

}  // namespace chameleon::datasets

#endif  // CHAMELEON_DATASETS_SYNTHETIC_CORPUS_H_
