#ifndef CHAMELEON_DATASETS_UTKFACE_H_
#define CHAMELEON_DATASETS_UTKFACE_H_

#include <cstdint>
#include <vector>

#include "src/data/pattern.h"
#include "src/data/schema.h"
#include "src/datasets/synthetic_corpus.h"
#include "src/fm/corpus.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/image/face_renderer.h"
#include "src/util/status.h"

namespace chameleon::datasets {

/// Attribute indices of the UTKFace schema.
inline constexpr int kUtkGender = 0;
inline constexpr int kUtkRace = 1;
inline constexpr int kUtkAgeGroup = 2;

inline constexpr int kUtkNumRaces = 5;
inline constexpr int kUtkNumAgeGroups = 9;

struct UtkFaceOptions {
  RenderSpec render;
  /// Corpus size for the full data set (the real UTKFace has >20k faces).
  int num_tuples = 20000;
  uint64_t seed = 7;
};

/// gender {Male, Female} x race {White, Black, Asian, Indian, Others} x
/// age_group (ordinal, 9 buckets: 0-2, 3-9, ..., 70+).
data::AttributeSchema UtkFaceSchema();

image::SceneStyle UtkFaceScene();
fm::FaceStyleFn UtkFaceStyleFn();

/// The full synthetic UTKFace corpus: tuples sampled iid from published
/// UTKFace-like marginals (White-heavy, young-adult-heavy), calibrated so
/// that tau=200/350 leave only level-2/3 MUPs while tau=1000/2000 also
/// produce level-1 MUPs — the regimes Figure 6 sweeps.
/// Defaults to annotation-only (set options.render.render_images for
/// payloads).
[[nodiscard]] util::Result<fm::Corpus> MakeUtkFace(const embedding::Embedder* embedder,
                                     const UtkFaceOptions& options);

/// The §6.4.1 challenge subset: every one of the 90 combinations gets
/// `base_count` tuples except 16 designated rare combinations (two per
/// age group in buckets 1..8, alternating gender/race) which get
/// `rare_count` — yielding exactly 16 level-3 MUPs at tau = 10.
struct ChallengeOptions {
  RenderSpec render;
  int base_count = 12;
  int rare_count = 3;
  uint64_t seed = 11;
};
[[nodiscard]] util::Result<fm::Corpus> MakeUtkFaceChallengeSubset(
    const embedding::Embedder* embedder, const ChallengeOptions& options);

/// The 16 rare combinations of the challenge subset, as level-3 patterns
/// (for verifying MUP discovery output).
std::vector<data::Pattern> ChallengeRarePatterns();

}  // namespace chameleon::datasets

#endif  // CHAMELEON_DATASETS_UTKFACE_H_
