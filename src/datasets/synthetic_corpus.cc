#include "src/datasets/synthetic_corpus.h"

namespace chameleon::datasets {

util::Status FillCorpus(fm::Corpus* corpus, const CombinationCounts& counts,
                        const fm::FaceStyleFn& style_fn,
                        const image::SceneStyle& scene,
                        const embedding::Embedder* embedder,
                        const RenderSpec& spec, util::Rng* rng) {
  for (const auto& [values, count] : counts) {
    for (int i = 0; i < count; ++i) {
      data::Tuple tuple;
      tuple.values = values;
      tuple.synthetic = false;
      if (!spec.render_images) {
        CHAMELEON_RETURN_NOT_OK(corpus->AddAnnotationOnly(std::move(tuple)));
        continue;
      }
      const image::FaceStyle style = style_fn(values, rng);
      image::RenderOptions render;
      render.size = spec.image_size;
      const image::SceneStyle shot_scene =
          image::JitterScene(scene, spec.scene_jitter_stddev, rng);
      const image::Image img =
          image::RenderFace(style, shot_scene, render, rng);
      if (embedder != nullptr) tuple.embedding = embedder->Embed(img);
      const double realism =
          rng->NextGaussian(spec.realism_mean, spec.realism_stddev);
      CHAMELEON_RETURN_NOT_OK(
          corpus->Add(std::move(tuple), img, realism));
    }
  }
  return util::Status::Ok();
}

}  // namespace chameleon::datasets
