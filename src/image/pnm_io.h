#ifndef CHAMELEON_IMAGE_PNM_IO_H_
#define CHAMELEON_IMAGE_PNM_IO_H_

#include <string>

#include "src/image/image.h"
#include "src/util/status.h"

namespace chameleon::image {

/// Writes a grayscale image as binary PGM (P5) or an RGB image as binary
/// PPM (P6), chosen by channel count.
[[nodiscard]] util::Status WritePnm(const Image& image, const std::string& path);

/// Reads a binary PGM (P5) or PPM (P6) file.
[[nodiscard]] util::Result<Image> ReadPnm(const std::string& path);

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_PNM_IO_H_
