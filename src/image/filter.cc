#include "src/image/filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace chameleon::image {

Image GaussianBlur(const Image& input, double sigma) {
  if (sigma <= 0.0 || input.empty()) return input;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(2 * radius + 1);
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    kernel[i + radius] = std::exp(-(i * i) / (2.0 * sigma * sigma));
    sum += kernel[i + radius];
  }
  for (double& k : kernel) k /= sum;

  const int w = input.width();
  const int h = input.height();
  const int ch = input.channels();

  // Horizontal pass into a float buffer, then vertical pass.
  std::vector<double> temp(static_cast<size_t>(w) * h * ch, 0.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < ch; ++c) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          const int sx = std::clamp(x + i, 0, w - 1);
          acc += kernel[i + radius] * input.at(sx, y, c);
        }
        temp[(static_cast<size_t>(y) * w + x) * ch + c] = acc;
      }
    }
  }
  Image out(w, h, ch);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < ch; ++c) {
        double acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
          const int sy = std::clamp(y + i, 0, h - 1);
          acc += kernel[i + radius] *
                 temp[(static_cast<size_t>(sy) * w + x) * ch + c];
        }
        out.at(x, y, c) = static_cast<uint8_t>(std::clamp(acc, 0.0, 255.0));
      }
    }
  }
  return out;
}

void AddGaussianNoise(Image* image, double stddev, util::Rng* rng) {
  if (stddev <= 0.0) return;
  for (uint8_t& p : image->mutable_pixels()) {
    const double v = p + rng->NextGaussian(0.0, stddev);
    p = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
  }
}

void AddBanding(Image* image, int period, double amplitude) {
  if (period <= 0 || amplitude <= 0.0) return;
  for (int y = 0; y < image->height(); ++y) {
    if ((y / period) % 2 == 0) continue;
    for (int x = 0; x < image->width(); ++x) {
      for (int c = 0; c < image->channels(); ++c) {
        const double v = image->at(x, y, c) + amplitude;
        image->at(x, y, c) = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
      }
    }
  }
}

Image DilateDisc(const Image& mask, int radius) {
  if (radius <= 0) return mask;
  const int w = mask.width();
  const int h = mask.height();
  // Precompute the disc offsets.
  std::vector<std::pair<int, int>> offsets;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy <= radius * radius) offsets.emplace_back(dx, dy);
    }
  }
  Image out(w, h, 1, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (mask.at(x, y, 0) == 0) continue;
      for (const auto& [dx, dy] : offsets) {
        const int nx = x + dx;
        const int ny = y + dy;
        if (nx >= 0 && nx < w && ny >= 0 && ny < h) out.at(nx, ny, 0) = 255;
      }
    }
  }
  return out;
}

double MeanAbsoluteDifference(const Image& a, const Image& b) {
  double sum = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      sum += std::fabs(a.Luminance(x, y) - b.Luminance(x, y));
    }
  }
  return sum / (static_cast<double>(a.width()) * a.height());
}

}  // namespace chameleon::image
