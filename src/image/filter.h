#ifndef CHAMELEON_IMAGE_FILTER_H_
#define CHAMELEON_IMAGE_FILTER_H_

#include "src/image/image.h"
#include "src/util/rng.h"

namespace chameleon::image {

/// Separable Gaussian blur with the given sigma (kernel radius 3*sigma).
Image GaussianBlur(const Image& input, double sigma);

/// Adds iid Gaussian pixel noise with the given stddev (clamped to
/// [0, 255]); the knob the foundation-model simulator uses for artifacts.
void AddGaussianNoise(Image* image, double stddev, util::Rng* rng);

/// Adds horizontal banding artifacts of the given amplitude every
/// `period` rows — a caricature of generative inpainting seams.
void AddBanding(Image* image, int period, double amplitude);

/// Binary dilation of a 1-channel mask with a disc of the given radius.
Image DilateDisc(const Image& mask, int radius);

/// Mean absolute luminance difference between two same-sized images.
double MeanAbsoluteDifference(const Image& a, const Image& b);

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_FILTER_H_
