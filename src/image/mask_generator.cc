#include "src/image/mask_generator.h"

#include <algorithm>

#include "src/image/filter.h"

namespace chameleon::image {

const char* MaskLevelName(MaskLevel level) {
  switch (level) {
    case MaskLevel::kAccurate:
      return "Accurate";
    case MaskLevel::kModerate:
      return "Moderate";
    case MaskLevel::kImprecise:
      return "Imprecise";
  }
  return "Unknown";
}

Image GenerateMask(const Image& guide, MaskLevel level,
                   const ForegroundOptions& fg_options) {
  Image mask = ExtractForeground(guide, fg_options);
  switch (level) {
    case MaskLevel::kAccurate:
      return mask;
    case MaskLevel::kModerate: {
      const int radius = std::max(
          1, static_cast<int>(kModerateDilationFraction * guide.width()));
      return DilateDisc(mask, radius);
    }
    case MaskLevel::kImprecise: {
      int x0;
      int y0;
      int x1;
      int y1;
      Image box(guide.width(), guide.height(), 1, 0);
      if (MaskBoundingBox(mask, &x0, &y0, &x1, &y1)) {
        for (int y = y0; y <= y1; ++y) {
          for (int x = x0; x <= x1; ++x) box.at(x, y, 0) = 255;
        }
      }
      return box;
    }
  }
  return mask;
}

}  // namespace chameleon::image
