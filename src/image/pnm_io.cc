#include "src/image/pnm_io.h"

#include <cstdio>
#include <fstream>

namespace chameleon::image {

util::Status WritePnm(const Image& image, const std::string& path) {
  if (image.empty()) {
    return util::Status::InvalidArgument("cannot write empty image");
  }
  if (image.channels() != 1 && image.channels() != 3) {
    return util::Status::InvalidArgument("PNM supports 1 or 3 channels");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  out << (image.channels() == 1 ? "P5" : "P6") << "\n"
      << image.width() << " " << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels().data()),
            static_cast<std::streamsize>(image.pixels().size()));
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

namespace {

// Reads the next whitespace/comment-delimited token of a PNM header.
bool NextToken(std::ifstream& in, std::string* token) {
  token->clear();
  int c;
  while ((c = in.get()) != EOF) {
    if (c == '#') {
      while ((c = in.get()) != EOF && c != '\n') {
      }
      continue;
    }
    if (std::isspace(c)) {
      if (!token->empty()) return true;
      continue;
    }
    token->push_back(static_cast<char>(c));
  }
  return !token->empty();
}

}  // namespace

util::Result<Image> ReadPnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  std::string magic;
  std::string w;
  std::string h;
  std::string maxval;
  if (!NextToken(in, &magic) || !NextToken(in, &w) || !NextToken(in, &h) ||
      !NextToken(in, &maxval)) {
    return util::Status::IoError("truncated PNM header: " + path);
  }
  int channels;
  if (magic == "P5") {
    channels = 1;
  } else if (magic == "P6") {
    channels = 3;
  } else {
    return util::Status::InvalidArgument("unsupported PNM magic '" + magic +
                                         "'");
  }
  const int width = std::atoi(w.c_str());
  const int height = std::atoi(h.c_str());
  if (width <= 0 || height <= 0 || maxval != "255") {
    return util::Status::InvalidArgument("unsupported PNM geometry in " +
                                         path);
  }
  Image image(width, height, channels);
  in.read(reinterpret_cast<char*>(image.mutable_pixels().data()),
          static_cast<std::streamsize>(image.mutable_pixels().size()));
  if (in.gcount() !=
      static_cast<std::streamsize>(image.mutable_pixels().size())) {
    return util::Status::IoError("truncated PNM payload: " + path);
  }
  return image;
}

}  // namespace chameleon::image
