#ifndef CHAMELEON_IMAGE_IMAGE_H_
#define CHAMELEON_IMAGE_IMAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chameleon::image {

/// 8-bit raster with 1 (grayscale) or 3 (RGB) channels, row-major,
/// interleaved. The multi-modal payload of a tuple in this library.
class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels, uint8_t fill = 0)
      : width_(width),
        height_(height),
        channels_(channels),
        pixels_(static_cast<size_t>(width) * height * channels, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return pixels_.empty(); }

  uint8_t& at(int x, int y, int c = 0) {
    return pixels_[(static_cast<size_t>(y) * width_ + x) * channels_ + c];
  }
  uint8_t at(int x, int y, int c = 0) const {
    return pixels_[(static_cast<size_t>(y) * width_ + x) * channels_ + c];
  }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& mutable_pixels() { return pixels_; }

  /// Sets all channels at (x, y); no-op out of bounds.
  void SetPixel(int x, int y, uint8_t r, uint8_t g, uint8_t b);
  void SetPixel(int x, int y, uint8_t gray);

  /// Luminance in [0, 255] (BT.601 weights for RGB).
  double Luminance(int x, int y) const;

  /// Grayscale copy (1 channel).
  Image ToGrayscale() const;

  /// Nearest-neighbor resize.
  Image Resized(int new_width, int new_height) const;

  /// Fraction of pixels that are non-zero in channel 0 (mask coverage).
  double NonZeroFraction() const;

  bool operator==(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_ && pixels_ == other.pixels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<uint8_t> pixels_;
};

/// Composites `fg` over `bg` where `mask` (1-channel, same size) is
/// non-zero: out = mask ? fg : bg. All three must share dimensions.
Image CompositeWithMask(const Image& bg, const Image& fg, const Image& mask);

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_IMAGE_H_
