#ifndef CHAMELEON_IMAGE_FACE_RENDERER_H_
#define CHAMELEON_IMAGE_FACE_RENDERER_H_

#include "src/image/draw.h"
#include "src/image/image.h"
#include "src/util/rng.h"

namespace chameleon::image {

/// Appearance parameters of a synthetic face. Dataset builders and the
/// foundation-model simulator derive these from demographic attribute
/// values; the renderer itself is demographics-agnostic.
struct FaceStyle {
  Color skin{224, 172, 105};
  Color hair{60, 40, 20};
  /// Face ellipse width / height.
  double aspect = 0.78;
  /// Hair cap height as a fraction of face height.
  double hair_volume = 0.35;
  /// Eye radius as a fraction of face width.
  double eye_scale = 0.08;
  /// 0 (smooth) .. 1 (heavily lined).
  double wrinkle = 0.0;
  /// Facial-hair darkness 0..1 (jaw shading).
  double beard = 0.0;
};

/// Background/scene parameters: the "context" of the data set (§3.1).
/// Tuples drawn from the same distribution share a scene palette; a
/// foundation model answering without a guide falls back to its own
/// palette, which is what the data-distribution test catches.
struct SceneStyle {
  Color background_top{96, 112, 136};
  Color background_bottom{150, 160, 176};
  /// Post-render blur, in pixels.
  double blur_sigma = 0.6;
};

/// Rendering controls.
struct RenderOptions {
  int size = 64;
  /// 0 = clean; larger values add the noise/banding/feature-misplacement
  /// artifacts characteristic of low-quality generations.
  double artifact_level = 0.0;
};

/// Renders a portrait-style synthetic face (gradient background, elliptic
/// head, hair cap, eyes, nose, mouth, optional wrinkles), the stand-in for
/// UTKFace/FERET photographs. `rng` drives per-image jitter (pose, exact
/// feature placement) and artifact placement.
Image RenderFace(const FaceStyle& face, const SceneStyle& scene,
                 const RenderOptions& options, util::Rng* rng);

/// Per-photo lighting/backdrop variation: perturbs the scene's gradient
/// colors by N(0, stddev) per channel (correlated across top/bottom, as
/// exposure changes are) — real corpora vary in lighting, and that
/// variance is what makes the distribution test about context rather
/// than subject identity.
SceneStyle JitterScene(const SceneStyle& scene, double stddev, util::Rng* rng);

/// Maps generic demographic coordinates to a style:
///  * `skin_group` in [0, num_skin_groups) selects a skin/hair palette;
///  * `feminine` toggles hair volume / beard / face aspect conventions;
///  * `age01` in [0, 1] controls wrinkles and hair graying.
/// `rng` adds within-group individual variation.
FaceStyle MakeFaceStyle(int skin_group, int num_skin_groups, bool feminine,
                        double age01, util::Rng* rng);

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_FACE_RENDERER_H_
