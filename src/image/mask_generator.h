#ifndef CHAMELEON_IMAGE_MASK_GENERATOR_H_
#define CHAMELEON_IMAGE_MASK_GENERATOR_H_

#include <string>

#include "src/image/foreground.h"
#include "src/image/image.h"

namespace chameleon::image {

/// Mask delineation levels of §5.4: how tightly the regenerated region
/// hugs the guide image's foreground subject.
enum class MaskLevel {
  /// §5.4.1 — the raw background-remover outline.
  kAccurate,
  /// §5.4.2 — the outline dilated with circles of radius 10% of the
  /// image width.
  kModerate,
  /// §5.4.3 — the bounding rectangle of the outline.
  kImprecise,
};

const char* MaskLevelName(MaskLevel level);

/// Fraction of image width used as the dilation radius for kModerate
/// (the paper's "10 percent of the image size").
inline constexpr double kModerateDilationFraction = 0.10;

/// Produces the regeneration mask (1-channel, 255 = regenerate) for a
/// guide image at the requested delineation level.
Image GenerateMask(const Image& guide, MaskLevel level,
                   const ForegroundOptions& fg_options = {});

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_MASK_GENERATOR_H_
