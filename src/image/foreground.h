#ifndef CHAMELEON_IMAGE_FOREGROUND_H_
#define CHAMELEON_IMAGE_FOREGROUND_H_

#include "src/image/image.h"

namespace chameleon::image {

/// Options for foreground extraction.
struct ForegroundOptions {
  /// Per-channel color distance (0-255 scale) beyond which a pixel is
  /// considered different from the estimated background.
  double color_threshold = 28.0;
  /// Keep only the largest 4-connected component of the raw mask.
  bool largest_component_only = true;
};

/// The stand-in for the off-the-shelf `rembg` background remover (§5.4.1):
/// estimates the background color from the image border, thresholds the
/// color distance, and keeps the largest connected component. Returns a
/// 1-channel mask (255 = foreground).
Image ExtractForeground(const Image& input,
                        const ForegroundOptions& options = {});

/// Bounding box of a mask's non-zero pixels; returns false when empty.
bool MaskBoundingBox(const Image& mask, int* x0, int* y0, int* x1, int* y1);

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_FOREGROUND_H_
