#include "src/image/draw.h"

#include <algorithm>
#include <cmath>

namespace chameleon::image {

void Fill(Image* image, Color color) {
  FillRect(image, 0, 0, image->width(), image->height(), color);
}

void FillRect(Image* image, int x0, int y0, int x1, int y1, Color color) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, image->width());
  y1 = std::min(y1, image->height());
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      image->SetPixel(x, y, color.r, color.g, color.b);
    }
  }
}

void FillEllipse(Image* image, double cx, double cy, double rx, double ry,
                 Color color) {
  if (rx <= 0.0 || ry <= 0.0) return;
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - ry)));
  const int y1 = std::min(image->height() - 1,
                          static_cast<int>(std::ceil(cy + ry)));
  for (int y = y0; y <= y1; ++y) {
    const double dy = (y - cy) / ry;
    const double span = 1.0 - dy * dy;
    if (span < 0.0) continue;
    const double half_width = rx * std::sqrt(span);
    const int x0 = std::max(0, static_cast<int>(std::floor(cx - half_width)));
    const int x1 = std::min(image->width() - 1,
                            static_cast<int>(std::ceil(cx + half_width)));
    for (int x = x0; x <= x1; ++x) {
      const double dx = (x - cx) / rx;
      if (dx * dx + dy * dy <= 1.0) {
        image->SetPixel(x, y, color.r, color.g, color.b);
      }
    }
  }
}

void FillCircle(Image* image, double cx, double cy, double radius,
                Color color) {
  FillEllipse(image, cx, cy, radius, radius, color);
}

void FillVerticalGradient(Image* image, Color top, Color bottom) {
  const int h = image->height();
  for (int y = 0; y < h; ++y) {
    const double t = h > 1 ? static_cast<double>(y) / (h - 1) : 0.0;
    const Color c{
        static_cast<uint8_t>(top.r + t * (bottom.r - top.r)),
        static_cast<uint8_t>(top.g + t * (bottom.g - top.g)),
        static_cast<uint8_t>(top.b + t * (bottom.b - top.b))};
    for (int x = 0; x < image->width(); ++x) {
      image->SetPixel(x, y, c.r, c.g, c.b);
    }
  }
}

void DrawLine(Image* image, int x0, int y0, int x1, int y1, Color color) {
  const int steps = std::max(std::abs(x1 - x0), std::abs(y1 - y0));
  if (steps == 0) {
    image->SetPixel(x0, y0, color.r, color.g, color.b);
    return;
  }
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const int x = static_cast<int>(std::lround(x0 + t * (x1 - x0)));
    const int y = static_cast<int>(std::lround(y0 + t * (y1 - y0)));
    image->SetPixel(x, y, color.r, color.g, color.b);
  }
}

}  // namespace chameleon::image
