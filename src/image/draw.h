#ifndef CHAMELEON_IMAGE_DRAW_H_
#define CHAMELEON_IMAGE_DRAW_H_

#include <cstdint>

#include "src/image/image.h"

namespace chameleon::image {

/// Solid RGB color (applied as luminance on grayscale targets).
struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
};

/// Fills the whole image.
void Fill(Image* image, Color color);

/// Axis-aligned filled rectangle, [x0, x1) x [y0, y1), clipped.
void FillRect(Image* image, int x0, int y0, int x1, int y1, Color color);

/// Filled axis-aligned ellipse centered at (cx, cy) with radii (rx, ry).
void FillEllipse(Image* image, double cx, double cy, double rx, double ry,
                 Color color);

/// Filled circle.
void FillCircle(Image* image, double cx, double cy, double radius,
                Color color);

/// Vertical linear gradient from `top` to `bottom`.
void FillVerticalGradient(Image* image, Color top, Color bottom);

/// 1px-ish line via DDA.
void DrawLine(Image* image, int x0, int y0, int x1, int y1, Color color);

}  // namespace chameleon::image

#endif  // CHAMELEON_IMAGE_DRAW_H_
