#include "src/image/foreground.h"

#include <cmath>
#include <vector>

namespace chameleon::image {
namespace {

// Mean border color per channel (top & bottom rows, left & right columns).
void EstimateBackground(const Image& img, double bg[3]) {
  double sum[3] = {0, 0, 0};
  int64_t count = 0;
  auto accumulate = [&](int x, int y) {
    for (int c = 0; c < img.channels(); ++c) sum[c] += img.at(x, y, c);
    ++count;
  };
  for (int x = 0; x < img.width(); ++x) {
    accumulate(x, 0);
    accumulate(x, img.height() - 1);
  }
  for (int y = 1; y < img.height() - 1; ++y) {
    accumulate(0, y);
    accumulate(img.width() - 1, y);
  }
  for (int c = 0; c < 3; ++c) {
    bg[c] = c < img.channels() ? sum[c] / count : bg[0];
  }
}

}  // namespace

Image ExtractForeground(const Image& input, const ForegroundOptions& options) {
  const int w = input.width();
  const int h = input.height();
  Image mask(w, h, 1, 0);
  if (input.empty()) return mask;

  double bg[3] = {0, 0, 0};
  EstimateBackground(input, bg);

  // The synthetic scenes use vertical gradients, so compare against the
  // row-interpolated background: top-row estimate blended towards the
  // bottom-row estimate.
  double bg_top[3] = {0, 0, 0};
  double bg_bottom[3] = {0, 0, 0};
  for (int c = 0; c < input.channels(); ++c) {
    double top_sum = 0.0;
    double bottom_sum = 0.0;
    for (int x = 0; x < w; ++x) {
      top_sum += input.at(x, 0, c);
      bottom_sum += input.at(x, h - 1, c);
    }
    bg_top[c] = top_sum / w;
    bg_bottom[c] = bottom_sum / w;
  }

  for (int y = 0; y < h; ++y) {
    const double t = h > 1 ? static_cast<double>(y) / (h - 1) : 0.0;
    for (int x = 0; x < w; ++x) {
      double dist = 0.0;
      for (int c = 0; c < input.channels(); ++c) {
        const double expected = bg_top[c] + t * (bg_bottom[c] - bg_top[c]);
        dist += std::fabs(input.at(x, y, c) - expected);
      }
      dist /= input.channels();
      if (dist > options.color_threshold) mask.at(x, y, 0) = 255;
    }
  }

  if (!options.largest_component_only) return mask;

  // Largest 4-connected component by BFS.
  std::vector<int> label(static_cast<size_t>(w) * h, 0);
  int next_label = 0;
  int best_label = 0;
  int64_t best_size = 0;
  std::vector<int> queue;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int idx = y * w + x;
      if (mask.at(x, y, 0) == 0 || label[idx] != 0) continue;
      ++next_label;
      int64_t size = 0;
      queue.clear();
      queue.push_back(idx);
      label[idx] = next_label;
      while (!queue.empty()) {
        const int cur = queue.back();
        queue.pop_back();
        ++size;
        const int cy = cur / w;
        const int cx = cur % w;
        constexpr int kDx[] = {1, -1, 0, 0};
        constexpr int kDy[] = {0, 0, 1, -1};
        for (int dir = 0; dir < 4; ++dir) {
          const int nx = cx + kDx[dir];
          const int ny = cy + kDy[dir];
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const int nidx = ny * w + nx;
          if (mask.at(nx, ny, 0) != 0 && label[nidx] == 0) {
            label[nidx] = next_label;
            queue.push_back(nidx);
          }
        }
      }
      if (size > best_size) {
        best_size = size;
        best_label = next_label;
      }
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      mask.at(x, y, 0) = label[y * w + x] == best_label && best_label != 0
                             ? 255
                             : 0;
    }
  }
  return mask;
}

bool MaskBoundingBox(const Image& mask, int* x0, int* y0, int* x1, int* y1) {
  *x0 = mask.width();
  *y0 = mask.height();
  *x1 = -1;
  *y1 = -1;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask.at(x, y, 0) == 0) continue;
      if (x < *x0) *x0 = x;
      if (y < *y0) *y0 = y;
      if (x > *x1) *x1 = x;
      if (y > *y1) *y1 = y;
    }
  }
  return *x1 >= *x0 && *y1 >= *y0;
}

}  // namespace chameleon::image
