#include "src/image/image.h"

namespace chameleon::image {

void Image::SetPixel(int x, int y, uint8_t r, uint8_t g, uint8_t b) {
  if (!InBounds(x, y)) return;
  if (channels_ == 1) {
    at(x, y, 0) = static_cast<uint8_t>((299 * r + 587 * g + 114 * b) / 1000);
    return;
  }
  at(x, y, 0) = r;
  at(x, y, 1) = g;
  at(x, y, 2) = b;
}

void Image::SetPixel(int x, int y, uint8_t gray) {
  SetPixel(x, y, gray, gray, gray);
}

double Image::Luminance(int x, int y) const {
  if (channels_ == 1) return at(x, y, 0);
  return 0.299 * at(x, y, 0) + 0.587 * at(x, y, 1) + 0.114 * at(x, y, 2);
}

Image Image::ToGrayscale() const {
  Image out(width_, height_, 1);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.at(x, y, 0) = static_cast<uint8_t>(Luminance(x, y) + 0.5);
    }
  }
  return out;
}

Image Image::Resized(int new_width, int new_height) const {
  Image out(new_width, new_height, channels_);
  for (int y = 0; y < new_height; ++y) {
    const int sy = static_cast<int>(
        (static_cast<int64_t>(y) * height_) / new_height);
    for (int x = 0; x < new_width; ++x) {
      const int sx = static_cast<int>(
          (static_cast<int64_t>(x) * width_) / new_width);
      for (int c = 0; c < channels_; ++c) {
        out.at(x, y, c) = at(sx, sy, c);
      }
    }
  }
  return out;
}

double Image::NonZeroFraction() const {
  if (empty()) return 0.0;
  int64_t nonzero = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      nonzero += at(x, y, 0) != 0;
    }
  }
  return static_cast<double>(nonzero) /
         (static_cast<double>(width_) * height_);
}

Image CompositeWithMask(const Image& bg, const Image& fg, const Image& mask) {
  Image out = bg;
  for (int y = 0; y < bg.height(); ++y) {
    for (int x = 0; x < bg.width(); ++x) {
      if (mask.at(x, y, 0) == 0) continue;
      for (int c = 0; c < bg.channels(); ++c) {
        out.at(x, y, c) = fg.at(x, y, c);
      }
    }
  }
  return out;
}

}  // namespace chameleon::image
