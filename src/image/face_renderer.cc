#include "src/image/face_renderer.h"

#include <algorithm>
#include <cmath>

#include "src/image/filter.h"

namespace chameleon::image {
namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

Color Jitter(Color c, double amount, util::Rng* rng) {
  return Color{ClampByte(c.r + rng->NextGaussian(0, amount)),
               ClampByte(c.g + rng->NextGaussian(0, amount)),
               ClampByte(c.b + rng->NextGaussian(0, amount))};
}

Color Darken(Color c, double factor) {
  return Color{ClampByte(c.r * factor), ClampByte(c.g * factor),
               ClampByte(c.b * factor)};
}

Color TowardsGray(Color c, double t) {
  return Color{ClampByte(c.r + t * (190 - c.r)),
               ClampByte(c.g + t * (190 - c.g)),
               ClampByte(c.b + t * (190 - c.b))};
}

}  // namespace

FaceStyle MakeFaceStyle(int skin_group, int num_skin_groups, bool feminine,
                        double age01, util::Rng* rng) {
  // Palette anchors: each group shifts in its own chroma/tone direction
  // from a shared center, with spreads comparable to the within-group
  // jitter. Identity reads as a modest directional shift a supervised
  // classifier can learn from enough samples, while remaining inside the
  // photographic variance an unsupervised context test accepts — which
  // matches how generic CNN embeddings treat portrait subjects.
  static constexpr Color kSkinAnchors[] = {
      {222, 186, 152},  // group 0: light neutral
      {225, 201, 134},  // group 1: lighter, yellow shift
      {224, 168, 88},   // group 2: warm yellow-brown
      {194, 154, 148},  // group 3: pink mid
      {199, 153, 107},  // group 4: darker warm
  };
  static constexpr Color kHairAnchors[] = {
      {150, 120, 76},
      {104, 86, 60},
      {122, 96, 64},
      {112, 90, 62},
      {104, 84, 62},
  };
  constexpr int kNumAnchors = 5;

  FaceStyle style;
  // Groups index the palette directly when the group count matches the
  // table; other cardinalities interpolate along the table.
  auto pick_color = [&](const Color* anchors) {
    if (num_skin_groups == kNumAnchors || num_skin_groups <= 1) {
      return anchors[std::clamp(skin_group, 0, kNumAnchors - 1)];
    }
    const double pos = static_cast<double>(skin_group) /
                       (num_skin_groups - 1) * (kNumAnchors - 1);
    const int lo = std::clamp(static_cast<int>(pos), 0, kNumAnchors - 1);
    const int hi = std::min(lo + 1, kNumAnchors - 1);
    const double frac = pos - lo;
    return Color{
        ClampByte(anchors[lo].r + frac * (anchors[hi].r - anchors[lo].r)),
        ClampByte(anchors[lo].g + frac * (anchors[hi].g - anchors[lo].g)),
        ClampByte(anchors[lo].b + frac * (anchors[hi].b - anchors[lo].b))};
  };
  // Within-group diversity varies by group: group 4 spans a broader
  // appearance range, so few samples under-determine it.
  static constexpr double kGroupSpread[] = {1.0, 1.0, 1.0, 1.0, 1.15};
  const double spread =
      kGroupSpread[std::clamp(skin_group, 0, kNumAnchors - 1)];
  style.skin = Jitter(pick_color(kSkinAnchors), 18.0 * spread, rng);
  style.hair = Jitter(pick_color(kHairAnchors), 15.0 * spread, rng);
  style.hair = TowardsGray(style.hair, std::max(0.0, age01 - 0.55) * 1.8);

  style.aspect = (feminine ? 0.74 : 0.82) + rng->NextGaussian(0, 0.02);
  style.hair_volume =
      (feminine ? 0.52 : 0.30) + rng->NextGaussian(0, 0.04);
  style.eye_scale = 0.075 + rng->NextGaussian(0, 0.006);
  style.wrinkle = std::clamp(age01 * age01 + rng->NextGaussian(0, 0.05),
                             0.0, 1.0);
  style.beard = feminine ? 0.0
                         : std::clamp(0.25 + rng->NextGaussian(0, 0.2) +
                                          0.3 * age01,
                                      0.0, 1.0);
  return style;
}

Image RenderFace(const FaceStyle& face, const SceneStyle& scene,
                 const RenderOptions& options, util::Rng* rng) {
  const int s = options.size;
  Image img(s, s, 3);
  FillVerticalGradient(&img, scene.background_top, scene.background_bottom);

  // Pose/framing jitter: real portraits vary in crop and subject scale,
  // which keeps single grid cells from encoding pure skin tone.
  const double cx = s * (0.5 + rng->NextGaussian(0, 0.025));
  const double cy = s * (0.52 + rng->NextGaussian(0, 0.02));
  const double face_ry = s * (0.295 + rng->NextGaussian(0, 0.02));
  const double face_rx = face_ry * face.aspect;

  // Shoulders.
  const Color shirt = Jitter(Darken(scene.background_bottom, 0.6), 10, rng);
  FillEllipse(&img, cx, cy + face_ry * 1.9, face_rx * 2.1, face_ry * 1.0,
              shirt);

  // Hair cap behind the head.
  FillEllipse(&img, cx, cy - face_ry * 0.25, face_rx * 1.18,
              face_ry * (0.85 + face.hair_volume), face.hair);

  // Head.
  FillEllipse(&img, cx, cy, face_rx, face_ry, face.skin);

  // Beard shading on the jaw.
  if (face.beard > 0.05) {
    const Color jaw = Darken(face.skin, 1.0 - 0.35 * face.beard);
    FillEllipse(&img, cx, cy + face_ry * 0.55, face_rx * 0.75, face_ry * 0.38,
                jaw);
  }

  // Fringe: hair over the forehead.
  FillEllipse(&img, cx, cy - face_ry * 0.78, face_rx * 0.95,
              face_ry * (0.18 + 0.25 * face.hair_volume), face.hair);

  // Eyes.
  const double eye_r = s * face.eye_scale;
  const double eye_dx = face_rx * 0.45;
  const double eye_y = cy - face_ry * 0.12 + rng->NextGaussian(0, 0.3);
  const Color sclera{245, 245, 245};
  const Color iris{40, 34, 30};
  FillEllipse(&img, cx - eye_dx, eye_y, eye_r * 1.3, eye_r, sclera);
  FillEllipse(&img, cx + eye_dx, eye_y, eye_r * 1.3, eye_r, sclera);
  FillCircle(&img, cx - eye_dx, eye_y, eye_r * 0.55, iris);
  FillCircle(&img, cx + eye_dx, eye_y, eye_r * 0.55, iris);

  // Brows.
  const Color brow = Darken(face.hair, 0.8);
  FillRect(&img, static_cast<int>(cx - eye_dx - eye_r * 1.3),
           static_cast<int>(eye_y - eye_r * 2.2),
           static_cast<int>(cx - eye_dx + eye_r * 1.3),
           static_cast<int>(eye_y - eye_r * 1.6), brow);
  FillRect(&img, static_cast<int>(cx + eye_dx - eye_r * 1.3),
           static_cast<int>(eye_y - eye_r * 2.2),
           static_cast<int>(cx + eye_dx + eye_r * 1.3),
           static_cast<int>(eye_y - eye_r * 1.6), brow);

  // Nose.
  const Color nose = Darken(face.skin, 0.85);
  FillEllipse(&img, cx, cy + face_ry * 0.18, eye_r * 0.55, eye_r * 0.9, nose);

  // Mouth.
  const Color lips{ClampByte(face.skin.r * 0.8 + 40),
                   ClampByte(face.skin.g * 0.55),
                   ClampByte(face.skin.b * 0.55)};
  FillEllipse(&img, cx, cy + face_ry * 0.55, face_rx * 0.38, eye_r * 0.55,
              lips);

  // Wrinkles: faint horizontal forehead lines and nasolabial strokes.
  if (face.wrinkle > 0.15) {
    const Color line = Darken(face.skin, 0.75);
    const int n_lines = 1 + static_cast<int>(face.wrinkle * 3);
    for (int i = 0; i < n_lines; ++i) {
      const int y = static_cast<int>(cy - face_ry * (0.45 + 0.12 * i));
      DrawLine(&img, static_cast<int>(cx - face_rx * 0.5), y,
               static_cast<int>(cx + face_rx * 0.5), y, line);
    }
  }

  // Artifacts: what a low-quality generation looks like.
  if (options.artifact_level > 0.0) {
    const double a = options.artifact_level;
    AddBanding(&img, std::max(2, s / 12), 24.0 * a);
    // Feature misplacement: a stray skin-colored blob.
    if (a > 0.3) {
      FillCircle(&img, cx + rng->NextGaussian(0, face_rx),
                 cy + rng->NextGaussian(0, face_ry), eye_r * (1.0 + a),
                 Darken(face.skin, 0.7));
    }
    AddGaussianNoise(&img, 18.0 * a, rng);
  }

  Image blurred = GaussianBlur(img, scene.blur_sigma);
  AddGaussianNoise(&blurred, 2.0, rng);  // Sensor grain on every photo.
  return blurred;
}

SceneStyle JitterScene(const SceneStyle& scene, double stddev,
                       util::Rng* rng) {
  SceneStyle out = scene;
  // Exposure-like shift: mostly shared across the gradient, with a
  // smaller independent component per stop.
  const double shared[3] = {rng->NextGaussian(0, stddev),
                            rng->NextGaussian(0, stddev),
                            rng->NextGaussian(0, stddev)};
  const double local = 0.35 * stddev;
  out.background_top =
      Color{ClampByte(scene.background_top.r + shared[0] +
                      rng->NextGaussian(0, local)),
            ClampByte(scene.background_top.g + shared[1] +
                      rng->NextGaussian(0, local)),
            ClampByte(scene.background_top.b + shared[2] +
                      rng->NextGaussian(0, local))};
  out.background_bottom =
      Color{ClampByte(scene.background_bottom.r + shared[0] +
                      rng->NextGaussian(0, local)),
            ClampByte(scene.background_bottom.g + shared[1] +
                      rng->NextGaussian(0, local)),
            ClampByte(scene.background_bottom.b + shared[2] +
                      rng->NextGaussian(0, local))};
  return out;
}

}  // namespace chameleon::image
