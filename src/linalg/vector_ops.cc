#include "src/linalg/vector_ops.h"

#include <cmath>

namespace chameleon::linalg {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& v, double s) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

void AddScaled(std::vector<double>* a, double s, const std::vector<double>& b) {
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += s * b[i];
}

std::vector<double> Lerp(const std::vector<double>& a,
                         const std::vector<double>& b, double t) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = (1.0 - t) * a[i] + t * b[i];
  return out;
}

}  // namespace chameleon::linalg
