#ifndef CHAMELEON_LINALG_MATRIX_H_
#define CHAMELEON_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/util/status.h"

namespace chameleon::linalg {

/// Dense row-major matrix of doubles. Sized for the small systems this
/// library solves (LinUCB ridge systems, OCSVM bookkeeping, MVG models);
/// no BLAS dependency.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }

  /// this * other. Dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// this * v.
  std::vector<double> Multiply(const std::vector<double>& v) const;

  /// Transpose.
  Matrix Transposed() const;

  /// this + other (elementwise).
  Matrix Add(const Matrix& other) const;

  /// In-place rank-1 update: this += s * u v^T.
  void AddOuter(double s, const std::vector<double>& u,
                const std::vector<double>& v);

  /// Inverse via Gauss-Jordan with partial pivoting; fails on singular
  /// input.
  [[nodiscard]] util::Result<Matrix> Inverse() const;

  /// Solves A x = b for symmetric positive-definite A via Cholesky;
  /// fails when A is not SPD.
  [[nodiscard]] util::Result<std::vector<double>> CholeskySolve(
      const std::vector<double>& b) const;

  /// Cholesky factor L (lower triangular, A = L L^T) for SPD matrices.
  [[nodiscard]] util::Result<Matrix> CholeskyFactor() const;

  /// log(det(A)) for SPD A, via the Cholesky factor.
  [[nodiscard]] util::Result<double> LogDetSpd() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Sherman-Morrison update: given Ainv = A^{-1}, replaces it with
/// (A + u v^T)^{-1} in O(n^2). Fails when 1 + v^T A^{-1} u is ~0.
[[nodiscard]] util::Status ShermanMorrisonUpdate(Matrix* ainv, const std::vector<double>& u,
                                   const std::vector<double>& v);

}  // namespace chameleon::linalg

#endif  // CHAMELEON_LINALG_MATRIX_H_
