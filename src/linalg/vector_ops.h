#ifndef CHAMELEON_LINALG_VECTOR_OPS_H_
#define CHAMELEON_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace chameleon::linalg {

/// Dot product. Vectors must have equal length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm(const std::vector<double>& v);

/// Squared Euclidean distance between two equal-length vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Cosine of the angle between two vectors: the tuple-similarity measure
/// of §3.1. Returns 0 when either vector is (near) zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a + b, elementwise.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b, elementwise.
std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b);

/// s * v.
std::vector<double> Scale(const std::vector<double>& v, double s);

/// a += s * b (axpy).
void AddScaled(std::vector<double>* a, double s, const std::vector<double>& b);

/// (1-t)*a + t*b.
std::vector<double> Lerp(const std::vector<double>& a,
                         const std::vector<double>& b, double t);

}  // namespace chameleon::linalg

#endif  // CHAMELEON_LINALG_VECTOR_OPS_H_
