#include "src/linalg/matrix.h"

#include <cmath>

namespace chameleon::linalg {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Multiply(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += at(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  Matrix out = *this;
  for (size_t i = 0; i < out.data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

void Matrix::AddOuter(double s, const std::vector<double>& u,
                      const std::vector<double>& v) {
  for (size_t r = 0; r < rows_; ++r) {
    const double su = s * u[r];
    if (su == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) at(r, c) += su * v[c];
  }
}

util::Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) {
    return util::Status::InvalidArgument("Inverse of non-square matrix");
  }
  const size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return util::Status::InvalidArgument("singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    const double diag = a.at(col, col);
    for (size_t c = 0; c < n; ++c) {
      a.at(col, c) /= diag;
      inv.at(col, c) /= diag;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a.at(r, col);
      if (factor == 0.0) continue;
      for (size_t c = 0; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
        inv.at(r, c) -= factor * inv.at(col, c);
      }
    }
  }
  return inv;
}

util::Result<Matrix> Matrix::CholeskyFactor() const {
  if (rows_ != cols_) {
    return util::Status::InvalidArgument("Cholesky of non-square matrix");
  }
  const size_t n = rows_;
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = at(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return util::Status::InvalidArgument("matrix not SPD");
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

util::Result<std::vector<double>> Matrix::CholeskySolve(
    const std::vector<double>& b) const {
  auto factor = CholeskyFactor();
  if (!factor.ok()) return factor.status();
  const Matrix& l = *factor;
  const size_t n = rows_;
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[k];
    y[i] = sum / l.at(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.at(k, i) * x[k];
    x[i] = sum / l.at(i, i);
  }
  return x;
}

util::Result<double> Matrix::LogDetSpd() const {
  auto factor = CholeskyFactor();
  if (!factor.ok()) return factor.status();
  double logdet = 0.0;
  for (size_t i = 0; i < rows_; ++i) logdet += std::log(factor->at(i, i));
  return 2.0 * logdet;
}

util::Status ShermanMorrisonUpdate(Matrix* ainv, const std::vector<double>& u,
                                   const std::vector<double>& v) {
  // (A + u v^T)^{-1} = Ainv - (Ainv u v^T Ainv) / (1 + v^T Ainv u)
  const std::vector<double> ainv_u = ainv->Multiply(u);
  // w^T = v^T Ainv  (Ainv is not assumed symmetric).
  const size_t n = ainv->rows();
  std::vector<double> w(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < n; ++r) sum += v[r] * ainv->at(r, c);
    w[c] = sum;
  }
  double denom = 1.0;
  for (size_t i = 0; i < n; ++i) denom += v[i] * ainv_u[i];
  if (std::fabs(denom) < 1e-12) {
    return util::Status::InvalidArgument(
        "Sherman-Morrison denominator is ~0 (singular update)");
  }
  ainv->AddOuter(-1.0 / denom, ainv_u, w);
  return util::Status::Ok();
}

}  // namespace chameleon::linalg
