#ifndef CHAMELEON_STATS_T_TEST_H_
#define CHAMELEON_STATS_T_TEST_H_

#include <vector>

namespace chameleon::stats {

/// Result of a one-sample lower-tail Student t-test (§3.2): tests
/// H_null: p' = p against H_alt: p' < p given N Bernoulli evaluations of
/// one generated tuple.
struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;
  double sample_mean = 0.0;
  double sample_stddev = 0.0;
  int degrees_of_freedom = 0;

  /// True when the null hypothesis is rejected at significance alpha —
  /// i.e. the tuple should be *discarded*.
  bool Rejects(double alpha) const { return p_value < alpha; }
};

/// Lower-tail one-sample t-test of `samples` against population mean
/// `mu0`. Degenerate inputs (fewer than 2 samples, zero variance) are
/// resolved conservatively: zero variance yields p_value 0 or 1 depending
/// on the sign of (mean - mu0); mean == mu0 yields p_value 1.
TTestResult OneSampleTTestLower(const std::vector<double>& samples,
                                double mu0);

/// Convenience overload for 0/1 evaluator labels.
TTestResult OneSampleTTestLower(const std::vector<int>& labels, double mu0);

}  // namespace chameleon::stats

#endif  // CHAMELEON_STATS_T_TEST_H_
