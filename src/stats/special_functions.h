#ifndef CHAMELEON_STATS_SPECIAL_FUNCTIONS_H_
#define CHAMELEON_STATS_SPECIAL_FUNCTIONS_H_

namespace chameleon::stats {

/// ln Γ(x) for x > 0 (Lanczos approximation).
double LogGamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0 and
/// x in [0, 1], via the Lentz continued fraction.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Standard normal CDF (via erf).
double NormalCdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Newton step).
double NormalQuantile(double p);

/// Density of the generalized Gaussian distribution with shape alpha and
/// scale beta at x (zero mean): used by the IQA feature fits.
double GeneralizedGaussianRatio(double alpha);

}  // namespace chameleon::stats

#endif  // CHAMELEON_STATS_SPECIAL_FUNCTIONS_H_
