#include "src/stats/t_test.h"

#include <cmath>

#include "src/stats/special_functions.h"
#include "src/stats/summary.h"

namespace chameleon::stats {

TTestResult OneSampleTTestLower(const std::vector<double>& samples,
                                double mu0) {
  TTestResult result;
  const int n = static_cast<int>(samples.size());
  result.sample_mean = Mean(samples);
  result.sample_stddev = StdDev(samples);
  result.degrees_of_freedom = n > 1 ? n - 1 : 0;

  if (n < 2) {
    // Not enough evidence to reject anything.
    result.p_value = 1.0;
    return result;
  }
  if (result.sample_stddev < 1e-12) {
    // Unanimous raters: reject iff the unanimous verdict is below mu0.
    result.p_value = result.sample_mean < mu0 ? 0.0 : 1.0;
    result.t_statistic =
        result.sample_mean < mu0 ? -1e9 : (result.sample_mean > mu0 ? 1e9 : 0);
    if (result.sample_mean == mu0) result.p_value = 1.0;
    return result;
  }

  result.t_statistic = (result.sample_mean - mu0) /
                       (result.sample_stddev / std::sqrt(static_cast<double>(n)));
  result.p_value =
      StudentTCdf(result.t_statistic, static_cast<double>(n - 1));
  return result;
}

TTestResult OneSampleTTestLower(const std::vector<int>& labels, double mu0) {
  std::vector<double> samples(labels.begin(), labels.end());
  return OneSampleTTestLower(samples, mu0);
}

}  // namespace chameleon::stats
