#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace chameleon::stats {

void RunningStats::Observe(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double JaccardSimilarity(const std::vector<int64_t>& a,
                         const std::vector<int64_t>& b) {
  std::unordered_set<int64_t> sa(a.begin(), a.end());
  std::unordered_set<int64_t> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (int64_t x : sa) intersection += sb.count(x);
  const size_t uni = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

}  // namespace chameleon::stats
