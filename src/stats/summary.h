#ifndef CHAMELEON_STATS_SUMMARY_H_
#define CHAMELEON_STATS_SUMMARY_H_

#include <cstdint>
#include <vector>

namespace chameleon::stats {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Observe(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance; 0 for fewer than two values.
double Variance(const std::vector<double>& values);

/// sqrt(Variance).
double StdDev(const std::vector<double>& values);

/// q-th quantile (linear interpolation), q in [0,1]; copies & sorts.
double Quantile(std::vector<double> values, double q);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two index sets (any order,
/// duplicates ignored). Defined as 1 when both sets are empty.
double JaccardSimilarity(const std::vector<int64_t>& a,
                         const std::vector<int64_t>& b);

}  // namespace chameleon::stats

#endif  // CHAMELEON_STATS_SUMMARY_H_
