#include "src/stats/special_functions.h"

#include <cmath>
#include <limits>

namespace chameleon::stats {
namespace {

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes' betacf, modified Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  // Lanczos approximation, g=7, n=9 coefficients.
  static const double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (x + i);
  const double t = x + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                           a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(log_front);
  // Use the continued fraction directly when it converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton refinement step against the CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  return x - u / (1.0 + x * u / 2.0);
}

double GeneralizedGaussianRatio(double alpha) {
  // r(alpha) = Gamma(1/alpha) * Gamma(3/alpha) / Gamma(2/alpha)^2,
  // the moment ratio used to invert the GGD shape parameter.
  return std::exp(LogGamma(1.0 / alpha) + LogGamma(3.0 / alpha) -
                  2.0 * LogGamma(2.0 / alpha));
}

}  // namespace chameleon::stats
