#include "src/fm/corpus_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/image/pnm_io.h"

namespace chameleon::fm {
namespace {

namespace filesystem = std::filesystem;

std::string ImagePath(const std::string& directory, int64_t payload_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "%06lld.ppm",
                static_cast<long long>(payload_id));
  return directory + "/images/" + name;
}

// Windows tooling that touches a corpus (editing a CSV, a git checkout
// with autocrlf) leaves \r\n line endings; std::getline only strips the
// \n, and the strict field parsers below would then reject the last
// field of every row. A bare \r is data, not a line ending — only the
// trailing one is dropped.
void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

// Splits one CSV line (no quoting: the format never emits commas inside
// fields).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

// Strict numeric field parsers: the whole field must parse, so a
// truncated or corrupted row fails loudly instead of atoi-ing to 0 and
// producing a silently-wrong corpus.
bool ParseInt64(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = value;
  return true;
}

util::Status WriteTextFile(const std::string& path,
                           const std::string& contents) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot write " + path);
  out << contents;
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

}  // namespace

util::Status SaveCorpus(const Corpus& corpus, const std::string& directory,
                        bool include_images) {
  std::error_code ec;
  filesystem::create_directories(directory, ec);
  if (ec) {
    return util::Status::IoError("cannot create directory " + directory +
                                 ": " + ec.message());
  }

  // schema.csv: one row per attribute.
  {
    std::ostringstream out;
    const auto& schema = corpus.dataset.schema();
    for (int a = 0; a < schema.num_attributes(); ++a) {
      const auto& attribute = schema.attribute(a);
      out << attribute.name << ',' << (attribute.ordinal ? 1 : 0);
      for (const auto& value : attribute.values) out << ',' << value;
      out << '\n';
    }
    CHAMELEON_RETURN_NOT_OK(
        WriteTextFile(directory + "/schema.csv", out.str()));
  }

  // tuples.csv: payload_id, synthetic, d values, K embedding entries.
  {
    std::ostringstream out;
    for (const auto& t : corpus.dataset.tuples()) {
      out << t.payload_id << ',' << (t.synthetic ? 1 : 0);
      for (int v : t.values) out << ',' << v;
      for (double e : t.embedding) out << ',' << e;
      out << '\n';
    }
    CHAMELEON_RETURN_NOT_OK(
        WriteTextFile(directory + "/tuples.csv", out.str()));
  }

  // realism.csv: payload_id, latent realism.
  {
    std::ostringstream out;
    for (size_t i = 0; i < corpus.realism.size(); ++i) {
      out << i << ',' << corpus.realism[i] << '\n';
    }
    CHAMELEON_RETURN_NOT_OK(
        WriteTextFile(directory + "/realism.csv", out.str()));
  }

  if (include_images && !corpus.images.empty()) {
    filesystem::create_directories(directory + "/images", ec);
    if (ec) {
      return util::Status::IoError("cannot create images directory: " +
                                   ec.message());
    }
    for (size_t i = 0; i < corpus.images.size(); ++i) {
      CHAMELEON_RETURN_NOT_OK(image::WritePnm(
          corpus.images[i], ImagePath(directory, static_cast<int64_t>(i))));
    }
  }
  return util::Status::Ok();
}

util::Result<Corpus> LoadCorpus(const std::string& directory) {
  Corpus corpus;

  // Schema.
  {
    std::ifstream in(directory + "/schema.csv");
    if (!in) {
      return util::Status::IoError("cannot read " + directory +
                                   "/schema.csv");
    }
    data::AttributeSchema schema;
    std::string line;
    while (std::getline(in, line)) {
      StripTrailingCr(&line);
      if (line.empty()) continue;
      const auto fields = SplitCsv(line);
      if (fields.size() < 4) {
        return util::Status::IoError("malformed schema row: " + line);
      }
      data::Attribute attribute;
      attribute.name = fields[0];
      attribute.ordinal = fields[1] == "1";
      attribute.values.assign(fields.begin() + 2, fields.end());
      CHAMELEON_RETURN_NOT_OK(schema.AddAttribute(std::move(attribute)));
    }
    corpus.dataset = data::Dataset(schema);
  }
  const int d = corpus.dataset.schema().num_attributes();

  // Realism (indexed by payload id).
  {
    std::ifstream in(directory + "/realism.csv");
    if (in) {
      std::string line;
      while (std::getline(in, line)) {
        StripTrailingCr(&line);
        if (line.empty()) continue;
        const auto fields = SplitCsv(line);
        int64_t row_id = 0;
        double realism = 0.0;
        if (fields.size() != 2 || !ParseInt64(fields[0], &row_id) ||
            !ParseDouble(fields[1], &realism) ||
            row_id != static_cast<int64_t>(corpus.realism.size())) {
          return util::Status::IoError("malformed realism row: " + line);
        }
        corpus.realism.push_back(realism);
      }
    }
  }

  // Images (optional).
  const bool have_images =
      filesystem::is_directory(directory + "/images");
  if (have_images) {
    for (size_t i = 0; i < corpus.realism.size(); ++i) {
      auto img = image::ReadPnm(ImagePath(directory, static_cast<int64_t>(i)));
      if (!img.ok()) return img.status();
      corpus.images.push_back(std::move(*img));
    }
  }

  // Tuples.
  {
    std::ifstream in(directory + "/tuples.csv");
    if (!in) {
      return util::Status::IoError("cannot read " + directory +
                                   "/tuples.csv");
    }
    std::string line;
    // Embedding arity is fixed per corpus: the first row pins K and every
    // later row must agree, so a truncated tail row cannot slip through.
    int64_t embedding_dim = -1;
    while (std::getline(in, line)) {
      StripTrailingCr(&line);
      if (line.empty()) continue;
      const auto fields = SplitCsv(line);
      if (static_cast<int>(fields.size()) < 2 + d) {
        return util::Status::IoError("malformed tuple row: " + line);
      }
      data::Tuple tuple;
      if (!ParseInt64(fields[0], &tuple.payload_id)) {
        return util::Status::IoError("malformed tuple payload id: " + line);
      }
      if (fields[1] != "0" && fields[1] != "1") {
        return util::Status::IoError("malformed tuple synthetic flag: " +
                                     line);
      }
      tuple.synthetic = fields[1] == "1";
      for (int a = 0; a < d; ++a) {
        int64_t value = 0;
        if (!ParseInt64(fields[2 + a], &value)) {
          return util::Status::IoError("malformed tuple value: " + line);
        }
        tuple.values.push_back(static_cast<int>(value));
      }
      for (size_t f = 2 + d; f < fields.size(); ++f) {
        double entry = 0.0;
        if (!ParseDouble(fields[f], &entry)) {
          return util::Status::IoError("malformed tuple embedding: " + line);
        }
        tuple.embedding.push_back(entry);
      }
      const int64_t dim = static_cast<int64_t>(tuple.embedding.size());
      if (embedding_dim < 0) {
        embedding_dim = dim;
      } else if (dim != embedding_dim) {
        return util::Status::IoError(
            "inconsistent embedding arity (expected " +
            std::to_string(embedding_dim) + " entries): " + line);
      }
      if (have_images &&
          (tuple.payload_id < 0 ||
           tuple.payload_id >= static_cast<int64_t>(corpus.images.size()))) {
        return util::Status::IoError("tuple payload id out of range: " + line);
      }
      if (!have_images) tuple.payload_id = -1;
      const util::Status added = corpus.dataset.Add(std::move(tuple));
      if (!added.ok()) {
        // Schema-level rejection of on-disk data is still a corrupt file
        // from the caller's perspective: surface it as kIoError, never a
        // partial corpus.
        return util::Status::IoError("invalid tuple row (" + added.message() +
                                     "): " + line);
      }
    }
  }
  if (!have_images) corpus.realism.clear();
  return corpus;
}

}  // namespace chameleon::fm
