#ifndef CHAMELEON_FM_FOUNDATION_MODEL_H_
#define CHAMELEON_FM_FOUNDATION_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/schema.h"
#include "src/image/image.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::fm {

/// One query to the foundation model (§2.2): a prompt describing the
/// target combination, and optionally a guide tuple (image + its
/// attribute values) with a mask marking the regions to regenerate.
struct GenerationRequest {
  /// Full-level combination the generated tuple must match.
  std::vector<int> target_values;
  /// Natural-language rendering of the combination (informational for a
  /// simulator; the payload for a hosted model).
  std::string prompt;
  /// Optional guide image; null for prompt-only generation.
  const image::Image* guide = nullptr;
  /// Attribute values of the guide tuple (required when guide is set).
  const std::vector<int>* guide_values = nullptr;
  /// 1-channel mask, 255 = regenerate (required when guide is set).
  const image::Image* mask = nullptr;
};

/// A generated tuple. `latent_realism` is the simulator's hidden ground
/// truth consumed only by the simulated human evaluators; pipeline code
/// must treat the image as the sole observable output.
struct GenerationResult {
  image::Image image;
  std::vector<int> values;
  double latent_realism = 1.0;
};

/// Black-box generative foundation model (§2.2). Implementations must be
/// usable interchangeably by the repair pipeline; the library ships a
/// simulator, and a hosted DALL·E-style backend would plug in here.
class FoundationModel {
 public:
  virtual ~FoundationModel() = default;

  [[nodiscard]] virtual util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* rng) = 0;

  /// Fixed cost v per query (monetary for hosted models).
  virtual double query_cost() const = 0;

  int64_t num_queries() const { return num_queries_; }
  double total_cost() const { return num_queries_ * query_cost(); }

 protected:
  /// Implementations call this once per issued query.
  void RecordQuery() { ++num_queries_; }

 private:
  int64_t num_queries_ = 0;
};

/// Builds a DALL·E-style prompt for a combination, e.g.
/// "A realistic portrait photo of a person with gender=male, race=Black".
std::string BuildPrompt(const data::AttributeSchema& schema,
                        const std::vector<int>& values);

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_FOUNDATION_MODEL_H_
