#ifndef CHAMELEON_FM_FOUNDATION_MODEL_H_
#define CHAMELEON_FM_FOUNDATION_MODEL_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/data/schema.h"
#include "src/image/image.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::fm {

class Deadline;

/// One query to the foundation model (§2.2): a prompt describing the
/// target combination, and optionally a guide tuple (image + its
/// attribute values) with a mask marking the regions to regenerate.
struct GenerationRequest {
  /// Full-level combination the generated tuple must match.
  std::vector<int> target_values;
  /// Natural-language rendering of the combination (informational for a
  /// simulator; the payload for a hosted model).
  std::string prompt;
  /// Optional guide image; null for prompt-only generation.
  const image::Image* guide = nullptr;
  /// Attribute values of the guide tuple (required when guide is set).
  const std::vector<int>* guide_values = nullptr;
  /// 1-channel mask, 255 = regenerate (required when guide is set).
  const image::Image* mask = nullptr;
};

/// A generated tuple. `latent_realism` is the simulator's hidden ground
/// truth consumed only by the simulated human evaluators; pipeline code
/// must treat the image as the sole observable output.
struct GenerationResult {
  image::Image image;
  std::vector<int> values;
  double latent_realism = 1.0;
  /// Pool backend that served the query (index into the pool), or -1 for
  /// single-backend models. Feed it back via ReportOutcome so a learning
  /// router can credit the right arm.
  int backend = -1;
};

/// One slot of a batched dispatch: the request plus the private rng
/// stream that generation may draw from. The pipeline forks one stream
/// per request (at submission, in submission order), which is what makes
/// the results independent of how requests are grouped into batches.
struct BatchItem {
  const GenerationRequest* request = nullptr;
  util::Rng* rng = nullptr;
};

/// True for the retryable transport-level status family: the backend was
/// reachable-in-principle but could not serve this request right now
/// (outage, latency spike past the deadline, rate limit). Everything else
/// — invalid arguments, schema mismatches, internal bugs — is terminal:
/// retrying the identical request cannot help.
inline bool IsTransportError(util::StatusCode code) {
  return code == util::StatusCode::kUnavailable ||
         code == util::StatusCode::kDeadlineExceeded ||
         code == util::StatusCode::kResourceExhausted;
}

/// How a multi-backend pool picks the backend for each request.
enum class BackendRouterKind {
  /// Cheapest expected cost per accepted tuple (query_cost divided by the
  /// profile's expected acceptance), ties to the lowest index. Stateless.
  kGreedyCost,
  /// The in-tree LinUCB bandit over backends: learns per-backend
  /// acceptance online from ReportOutcome feedback, minus a cost penalty.
  kLinUcb,
};

const char* BackendRouterKindName(BackendRouterKind kind);

/// Counters describing what a resilience layer absorbed. All time figures
/// are *virtual* milliseconds (the library never reads a wall clock on
/// pipeline paths — see the chameleon-determinism lint rule).
struct FaultTelemetry {
  int64_t attempts = 0;            ///< backend calls issued, incl. retries
  int64_t retries = 0;             ///< attempts beyond the first, per query
  int64_t faults_masked = 0;       ///< queries that succeeded only via retry
  int64_t malformed_results = 0;   ///< OK responses rejected by validation
  int64_t failed_queries = 0;      ///< queries that returned non-OK upward
  int64_t fail_fast_rejections = 0;  ///< rejected while the breaker was open
  int64_t breaker_opens = 0;       ///< closed -> open transitions
  int64_t breaker_reopens = 0;     ///< half-open probe failed
  int64_t breaker_closes = 0;      ///< half-open probe succeeded
  double backoff_ms = 0.0;         ///< virtual time spent backing off
};

/// Black-box generative foundation model (§2.2). Implementations must be
/// usable interchangeably by the repair pipeline; the library ships a
/// simulator, and a hosted DALL·E-style backend would plug in here.
///
/// The query counter is thread-safe: decorators (and future pipelines) may
/// issue Generate calls from worker threads, and a plain int64_t here
/// would be a data race. All other state is implementation-defined.
class FoundationModel {
 public:
  virtual ~FoundationModel() = default;

  [[nodiscard]] virtual util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* rng) = 0;

  /// Batched transport: one dispatch for `items.size()` requests. The
  /// returned vector is slot-aligned with `items` (result i answers
  /// request i) and always has exactly items.size() entries; per-request
  /// failures are carried in the slot, never thrown away.
  ///
  /// The default loops over Generate in slot order, so decorators
  /// (Flaky/Resilient) compose with batching unchanged: each slot sees
  /// the same fault schedule and retry behaviour it would see as a lone
  /// Generate call. Overrides (e.g. BackendPool) must preserve slot order
  /// and call each item's Generate-equivalent exactly once.
  [[nodiscard]] virtual std::vector<util::Result<GenerationResult>>
  GenerateBatch(std::span<const BatchItem> items);

  /// Fixed cost v per query (monetary for hosted models).
  virtual double query_cost() const = 0;

  /// Acceptance feedback for a served query, delivered by the pipeline on
  /// its serial merge path (in submission order). `backend` is the id the
  /// model stamped into GenerationResult::backend; models that route
  /// (BackendPool) train their router here, everything else ignores it.
  virtual void ReportOutcome(int /*backend*/, bool /*accepted*/) {}

  /// Selects the routing policy for multi-backend models; single-backend
  /// models ignore it. The pipeline forwards ChameleonOptions::
  /// backend_router here at the start of each run.
  virtual void set_backend_router(BackendRouterKind /*kind*/) {}

  /// Called by the pipeline at the start of each repair run. Resilience
  /// decorators reset per-run state (e.g. the virtual run deadline) here;
  /// plain backends ignore it.
  virtual void OnRunStart() {}

  /// Fault-telemetry snapshot, or nullptr for models with no resilience
  /// layer. Counters are cumulative over the model's lifetime.
  virtual const FaultTelemetry* fault_telemetry() const { return nullptr; }

  /// Attaches an observability sink (not owned; null detaches). The
  /// pipeline forwards its own sink here at the start of each run, so
  /// resilience decorators can export retry/breaker activity; plain
  /// backends ignore it.
  virtual void set_observability(obs::Observability* /*observability*/) {}

  /// Attaches a per-request deadline/cancellation context (not owned;
  /// null detaches). Resilience decorators charge attempt and backoff
  /// time to it and fail fast once it expires or is cancelled; plain
  /// backends ignore it. The pipeline forwards ChameleonOptions::deadline
  /// here at the start of each run.
  virtual void set_deadline(Deadline* /*deadline*/) {}

  int64_t num_queries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }
  double total_cost() const { return num_queries() * query_cost(); }

 protected:
  /// Implementations call this once per issued query. Thread-safe.
  void RecordQuery() { num_queries_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> num_queries_{0};
};

/// Builds a DALL·E-style prompt for a combination, e.g.
/// "A realistic portrait photo of a person with gender=male, race=Black".
std::string BuildPrompt(const data::AttributeSchema& schema,
                        const std::vector<int>& values);

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_FOUNDATION_MODEL_H_
