#include "src/fm/evaluator_pool.h"

#include <cmath>

namespace chameleon::fm {

EvaluatorPool::EvaluatorPool(const Options& options, uint64_t seed)
    : options_(options) {
  util::Rng rng(seed);
  thresholds_.reserve(options.num_evaluators);
  for (int e = 0; e < options.num_evaluators; ++e) {
    thresholds_.push_back(
        rng.NextGaussian(options.threshold_mean, options.threshold_stddev));
  }
}

double EvaluatorPool::LabelProbability(double realism, int evaluator) const {
  const double z = (realism - thresholds_[evaluator]) / options_.softness;
  return 1.0 / (1.0 + std::exp(-z));
}

std::vector<int> EvaluatorPool::Evaluate(double realism, int n,
                                         util::Rng* rng) const {
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int evaluator =
        static_cast<int>(rng->NextBounded(thresholds_.size()));
    labels[i] = rng->NextBernoulli(LabelProbability(realism, evaluator));
  }
  return labels;
}

double EvaluatorPool::EstimateRealLabelRate(
    const std::vector<double>& real_realism, int num_samples,
    util::Rng* rng) const {
  if (real_realism.empty() || num_samples <= 0) return 0.0;
  int64_t positives = 0;
  for (int i = 0; i < num_samples; ++i) {
    const double realism =
        real_realism[rng->NextBounded(real_realism.size())];
    const int evaluator =
        static_cast<int>(rng->NextBounded(thresholds_.size()));
    positives += rng->NextBernoulli(LabelProbability(realism, evaluator));
  }
  return static_cast<double>(positives) / num_samples;
}

}  // namespace chameleon::fm
