#ifndef CHAMELEON_FM_BACKEND_POOL_H_
#define CHAMELEON_FM_BACKEND_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bandit/linucb.h"
#include "src/fm/foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/util/status.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::fm {

/// Static description of one pool member: what a query costs, how long a
/// dispatch takes on the pool's virtual latency axis, and the prior
/// acceptance rate the greedy router budgets with.
struct BackendProfile {
  std::string name;
  /// Monetary cost per query.
  double query_cost = 0.016;
  /// Virtual latency of one dispatch to this backend, regardless of size.
  double base_latency_ms = 25.0;
  /// Additional virtual latency per query in the dispatch — the economics
  /// of batching: a batch of k costs base + k * per, not k * (base + per).
  double per_query_latency_ms = 2.0;
  /// Prior acceptance rate (greedy routes by query_cost / acceptance).
  double expected_acceptance = 0.5;
};

/// A heterogeneous pool of foundation-model backends behind the single
/// FoundationModel interface. Every request is routed to one backend —
/// greedily by expected cost per accepted tuple, or by the in-tree
/// LinUCB bandit learning per-backend acceptance from ReportOutcome
/// feedback (ChameleonOptions::backend_router selects; DESIGN.md §11).
///
/// Determinism: routing is a pure function of the request ordinal and of
/// router state, and router state only changes on the pipeline's serial
/// merge path (ReportOutcome). Grouping requests into batches therefore
/// never changes which backend serves which request, which is half of
/// the bit-identity argument; the other half is the per-request RNG fork
/// the pipeline owns. GenerateBatch preserves slot order.
///
/// Latency is tracked on the pool's own virtual axis (virtual_ms): a
/// batched dispatch costs the max over the backends it touched of
/// base + k * per. It is deliberately not mirrored into the shared
/// obs::VirtualClock tick stream, so attaching observability never
/// perturbs journal byte-identity.
///
/// Backends are not owned. Not thread-safe for mutation (AddBackend /
/// set_backend_router); Generate/GenerateBatch are called from the
/// pipeline's serial submission section. No member carries
/// CHAMELEON_GUARDED_BY because there is no mutex here by design — if
/// the ROADMAP's daemon mode ever makes this concurrent, the new mutex's
/// members must be annotated so chameleon-lint's lock-discipline rule
/// covers them (DESIGN.md "Cross-TU analysis").
class BackendPool : public FoundationModel {
 public:
  explicit BackendPool(BackendRouterKind router = BackendRouterKind::kGreedyCost);

  /// Registers a backend (not owned) with its profile.
  void AddBackend(const BackendProfile& profile, FoundationModel* backend);

  [[nodiscard]] util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* rng) override;

  /// Routes each item, groups per backend preserving slot order, and
  /// dispatches one sub-batch per backend. Result i answers item i;
  /// each result carries the serving backend's index.
  [[nodiscard]] std::vector<util::Result<GenerationResult>> GenerateBatch(
      std::span<const BatchItem> items) override;

  /// Mean cost per routed query so far; unweighted profile mean before
  /// any query is routed.
  double query_cost() const override;

  /// Trains the LinUCB router (reward = accepted − query cost, so a
  /// cheap backend wins ties). No-op under the greedy router apart from
  /// the per-backend accepted counters.
  void ReportOutcome(int backend, bool accepted) override;

  /// Switches the routing policy and resets any learned router state.
  void set_backend_router(BackendRouterKind kind) override;

  /// Forwards to every backend and resets learned router state (runs are
  /// independent; the lattice repair loop re-learns routing per run).
  void OnRunStart() override;

  /// Attaches a sink (null detaches) and forwards it to every backend.
  /// When set, the pool feeds `fm.backend.<i>.queries` / `.accepted`
  /// counters — all from the serial path, so they are stable metrics.
  void set_observability(obs::Observability* observability) override;

  BackendRouterKind backend_router() const { return router_kind_; }
  int num_backends() const { return static_cast<int>(backends_.size()); }
  const BackendProfile& profile(int i) const { return backends_[i].profile; }
  /// Queries routed to backend i so far.
  int64_t routed_queries(int i) const { return backends_[i].routed; }
  int64_t accepted_outcomes(int i) const { return backends_[i].accepted; }
  /// Cumulative dispatch latency on the pool's virtual axis.
  double virtual_ms() const { return virtual_ms_; }

 private:
  struct Backend {
    BackendProfile profile;
    FoundationModel* model = nullptr;
    int64_t routed = 0;
    int64_t accepted = 0;
  };

  /// Picks the backend for the next request (see class comment).
  int RouteIndex() const;
  void ResetRouter();
  void NoteRouted(int backend);

  std::vector<Backend> backends_;
  BackendRouterKind router_kind_;
  /// Arms = backends, context = {1.0} (a plain UCB over backends);
  /// rebuilt by ResetRouter whenever the pool or the policy changes.
  std::unique_ptr<bandit::LinUcb> router_;
  obs::Observability* observability_ = nullptr;
  double virtual_ms_ = 0.0;
};

/// Options for the canned simulated pool below.
struct SimulatedPoolOptions {
  /// Backends cycle through three tiers: econ (cheap, slow per-batch,
  /// low acceptance), standard (the single-model defaults), premium
  /// (expensive, fast, high acceptance).
  int num_backends = 3;
  uint64_t seed = 1234;
  int image_size = 64;
};

/// A BackendPool plus the simulated backends it routes to, with tiered
/// latency/cost/acceptance profiles. Movable; the pool holds pointers to
/// the heap-allocated backends.
struct SimulatedBackendPool {
  std::vector<std::unique_ptr<SimulatedFoundationModel>> backends;
  std::unique_ptr<BackendPool> pool;
};

SimulatedBackendPool MakeSimulatedBackendPool(
    const data::AttributeSchema& schema, FaceStyleFn face_style_fn,
    const image::SceneStyle& dataset_scene, const SimulatedPoolOptions& options);

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_BACKEND_POOL_H_
