#ifndef CHAMELEON_FM_DEADLINE_H_
#define CHAMELEON_FM_DEADLINE_H_

#include <atomic>

namespace chameleon::fm {

/// Per-request deadline and cancellation context on the virtual clock.
///
/// ResilientFoundationModel charges every attempt and backoff to the
/// attached Deadline (AdvanceMs) and fails fast with kDeadlineExceeded
/// once it expires or is cancelled; the repair pipeline checks ShouldStop
/// between rounds and parks the remaining plan entries. Unlike
/// ResilienceOptions::run_deadline_ms — which lives on the decorator and
/// is therefore shared by every run the decorator serves — a Deadline is
/// owned by one request, so one request's retry storm can never burn an
/// unrelated request's budget.
///
/// Thread-safe: the serving layer cancels from its control thread while a
/// worker advances the clock. All time is virtual milliseconds; no wall
/// clock is ever read (see the chameleon-determinism lint rule).
class Deadline {
 public:
  /// Unlimited budget: never expires, but remains cancellable.
  Deadline() = default;
  /// Expires once the request has consumed `budget_ms` virtual
  /// milliseconds; a budget <= 0 means unlimited.
  explicit Deadline(double budget_ms) : budget_ms_(budget_ms) {}

  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  /// Charges `ms` virtual milliseconds to this request.
  void AdvanceMs(double ms) {
    elapsed_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

  double ElapsedMs() const {
    return elapsed_ms_.load(std::memory_order_relaxed);
  }
  double budget_ms() const { return budget_ms_; }

  bool Expired() const {
    return budget_ms_ > 0.0 && ElapsedMs() >= budget_ms_;
  }

  /// Requests cooperative cancellation; irrevocable for this request.
  void MarkCancelled() { cancelled_.store(true, std::memory_order_release); }
  bool Cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// True once the request must stop issuing new work (cancelled or out
  /// of budget). In-flight tuples still merge: callers stop at the next
  /// round boundary, which is what keeps partial reports deterministic.
  bool ShouldStop() const { return Cancelled() || Expired(); }

 private:
  const double budget_ms_ = 0.0;
  std::atomic<double> elapsed_ms_{0.0};
  std::atomic<bool> cancelled_{false};
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_DEADLINE_H_
