#include "src/fm/simulated_foundation_model.h"

#include <algorithm>
#include <cmath>

#include "src/image/foreground.h"

namespace chameleon::fm {
namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

// Estimates a scene palette from the guide's border columns — the visual
// context the model can "see" around the mask. Portrait subjects
// (shoulders) reach the bottom rows, so the vertical background gradient
// is fitted by linear regression over edge-column pixels in the top 3/4
// of the image and extrapolated to the full height.
image::SceneStyle EstimateScene(const image::Image& img) {
  const int w = img.width();
  const int h = img.height();
  const int edge = std::max(1, w / 24);
  const int y_limit = 3 * h / 4;

  double sum_y = 0.0;
  double sum_yy = 0.0;
  double sum_c[3] = {0, 0, 0};
  double sum_yc[3] = {0, 0, 0};
  int64_t count = 0;
  for (int y = 0; y < y_limit; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x >= edge && x < w - edge) continue;
      sum_y += y;
      sum_yy += static_cast<double>(y) * y;
      for (int c = 0; c < 3; ++c) {
        const double v = img.at(x, y, img.channels() == 3 ? c : 0);
        sum_c[c] += v;
        sum_yc[c] += y * v;
      }
      ++count;
    }
  }
  image::SceneStyle scene;
  if (count < 2) return scene;
  const double denom = count * sum_yy - sum_y * sum_y;
  for (int c = 0; c < 3; ++c) {
    double slope = 0.0;
    if (std::fabs(denom) > 1e-9) {
      slope = (count * sum_yc[c] - sum_y * sum_c[c]) / denom;
    }
    const double intercept = (sum_c[c] - slope * sum_y) / count;
    const double top = intercept;
    const double bottom = intercept + slope * (h - 1);
    if (c == 0) {
      scene.background_top.r = ClampByte(top);
      scene.background_bottom.r = ClampByte(bottom);
    } else if (c == 1) {
      scene.background_top.g = ClampByte(top);
      scene.background_bottom.g = ClampByte(bottom);
    } else {
      scene.background_top.b = ClampByte(top);
      scene.background_bottom.b = ClampByte(bottom);
    }
  }
  return scene;
}

image::Color PerturbColor(image::Color c, double stddev, util::Rng* rng) {
  const double shift_r = rng->NextGaussian(0, stddev);
  const double shift_g = rng->NextGaussian(0, stddev);
  const double shift_b = rng->NextGaussian(0, stddev);
  return image::Color{ClampByte(c.r + shift_r), ClampByte(c.g + shift_g),
                      ClampByte(c.b + shift_b)};
}

}  // namespace

SimulatedFoundationModel::SimulatedFoundationModel(
    const data::AttributeSchema& schema, FaceStyleFn face_style_fn,
    const image::SceneStyle& dataset_scene, const Options& options)
    : schema_(schema),
      face_style_fn_(std::move(face_style_fn)),
      options_(options) {
  util::Rng rng(options.seed);

  // Imagination palettes: the first matches the data set's scene, the
  // rest are the model's own ideas of a portrait backdrop.
  prior_palettes_.push_back(dataset_scene);
  for (int i = 1; i < options.num_prior_palettes; ++i) {
    image::SceneStyle scene;
    scene.background_top =
        image::Color{ClampByte(rng.NextInt(30, 220)),
                     ClampByte(rng.NextInt(30, 220)),
                     ClampByte(rng.NextInt(30, 220))};
    scene.background_bottom = PerturbColor(scene.background_top, 30.0, &rng);
    scene.blur_sigma = dataset_scene.blur_sigma;
    prior_palettes_.push_back(scene);
  }

  // Hidden per-(attribute, combination) edit-difficulty table. Arm base
  // costs are spread evenly over [difficulty_min, difficulty_max] in a
  // seeded random arm order — the model is systematically better at
  // editing some attributes than others, which is the signal LinUCB
  // exploits; combinations jitter mildly around their arm's base.
  const int64_t k = schema_.NumCombinations();
  const int d = schema_.num_attributes();
  const std::vector<size_t> arm_order = rng.Permutation(d);
  difficulty_.resize(d);
  for (int a = 0; a < d; ++a) {
    const double span = options.difficulty_max - options.difficulty_min;
    const double base =
        options.difficulty_min +
        (d > 1 ? span * static_cast<double>(arm_order[a]) / (d - 1)
               : 0.5 * span);
    difficulty_[a].resize(k);
    const double jitter = 0.15 * span;
    for (int64_t c = 0; c < k; ++c) {
      difficulty_[a][c] = std::max(
          0.01, base + rng.NextGaussian(0.0, jitter));
    }
  }
}

double SimulatedFoundationModel::EditDifficulty(
    int attribute, const std::vector<int>& target_values) const {
  const int64_t index = schema_.CombinationIndex(target_values);
  return difficulty_[attribute][index];
}

util::Result<GenerationResult> SimulatedFoundationModel::Generate(
    const GenerationRequest& request, util::Rng* rng) {
  if (!schema_.IsValidCombination(request.target_values)) {
    return util::Status::InvalidArgument(
        "target combination does not match the schema");
  }
  const bool guided = request.guide != nullptr;
  if (guided && (request.guide_values == nullptr || request.mask == nullptr)) {
    return util::Status::InvalidArgument(
        "guided generation needs guide_values and a mask");
  }
  RecordQuery();

  GenerationResult result;
  result.values = request.target_values;
  image::FaceStyle style = face_style_fn_(request.target_values, rng);

  if (!guided) {
    // Prompt-only: full render under one of the model's own palettes.
    const image::SceneStyle scene =
        prior_palettes_[rng->NextBounded(prior_palettes_.size())];
    result.latent_realism = rng->NextGaussian(
        options_.no_guide_realism_mean, options_.no_guide_realism_stddev);
    image::RenderOptions render;
    render.size = options_.image_size;
    render.artifact_level = std::max(0.0, 0.95 - result.latent_realism);
    result.image = image::RenderFace(style, scene, render, rng);
    return result;
  }

  // --- Guided generation ---
  // Realism: base minus mask-tightness and semantic-edit penalties.
  const double mask_fraction = request.mask->NonZeroFraction();
  const image::Image guide_fg = image::ExtractForeground(*request.guide);
  const double fg_fraction = guide_fg.NonZeroFraction();
  const double tightness =
      mask_fraction > 1e-6
          ? std::clamp(fg_fraction / mask_fraction, 0.0, 1.0)
          : 1.0;
  double realism = options_.guided_base_realism -
                   options_.tightness_penalty * tightness * tightness;

  for (int a = 0; a < schema_.num_attributes(); ++a) {
    const int guide_value = (*request.guide_values)[a];
    const int target_value = request.target_values[a];
    if (guide_value == target_value) continue;
    double cost = EditDifficulty(a, request.target_values);
    if (schema_.attribute(a).ordinal) {
      const int distance = std::abs(guide_value - target_value);
      cost *= 1.0 + 0.20 * (distance - 1);
    }
    realism -= cost;
  }
  realism += rng->NextGaussian(0.0, options_.realism_noise_stddev);
  result.latent_realism = realism;

  // Edit residue: the inpainted subject keeps a random fraction of the
  // guide subject's appearance.
  if (options_.edit_residue_stddev > 0.0) {
    const double residue = std::clamp(
        std::fabs(rng->NextGaussian(0.0, options_.edit_residue_stddev)), 0.0,
        0.5);
    const image::FaceStyle guide_style =
        face_style_fn_(*request.guide_values, rng);
    auto blend = [&](image::Color a, image::Color b) {
      return image::Color{
          ClampByte(a.r + residue * (b.r - a.r)),
          ClampByte(a.g + residue * (b.g - a.g)),
          ClampByte(a.b + residue * (b.b - a.b))};
    };
    style.skin = blend(style.skin, guide_style.skin);
    style.hair = blend(style.hair, guide_style.hair);
  }

  // Image: keep unmasked guide pixels; re-render the masked region with
  // the target's appearance over a background that continues the guide's
  // palette, with error growing in the regenerated area.
  image::SceneStyle scene = EstimateScene(*request.guide);
  const double bg_error = options_.context_error_scale * mask_fraction;
  scene.background_top = PerturbColor(scene.background_top, bg_error, rng);
  scene.background_bottom =
      PerturbColor(scene.background_bottom, bg_error, rng);

  image::RenderOptions render;
  render.size = options_.image_size;
  render.artifact_level = std::clamp(1.0 - realism, 0.0, 1.0);
  const image::Image regenerated = image::RenderFace(style, scene, render, rng);
  result.image = image::CompositeWithMask(*request.guide, regenerated,
                                          *request.mask);
  return result;
}

}  // namespace chameleon::fm
