#ifndef CHAMELEON_FM_BATCHING_H_
#define CHAMELEON_FM_BATCHING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/fm/foundation_model.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::fm {

/// Tuning for the cross-request coalescer. All times are *virtual*
/// milliseconds on the coalescer's own arrival axis (never a wall
/// clock), so flush boundaries are a pure function of the enqueue
/// sequence — the determinism contract depends on this.
struct BatchCoalescerOptions {
  /// Flush as soon as this many requests are pending.
  int max_batch_size = 8;
  /// Flush when the oldest pending request has waited this long on the
  /// virtual arrival axis.
  double window_ms = 5.0;
  /// Virtual time between consecutive arrivals (models the pipeline's
  /// request production rate).
  double arrival_interval_ms = 1.0;
};

/// Counters describing what the coalescer did (cumulative).
struct BatchCoalescerStats {
  int64_t enqueued = 0;
  int64_t flushes = 0;
  int64_t flushed_requests = 0;
  int64_t size_flushes = 0;    ///< pending hit max_batch_size
  int64_t window_flushes = 0;  ///< oldest request aged past window_ms
  int64_t forced_flushes = 0;  ///< explicit Flush() with work pending
  int64_t max_batch = 0;       ///< largest single flush
};

/// Accumulates generation requests and dispatches them to the model's
/// GenerateBatch in arrival order, flushing on whichever of the fixed
/// virtual-clock window or the max batch size trips first. Callers hand
/// over a result Slot per request; the slot is filled (with the result
/// or the per-request failure) when the batch containing it flushes.
///
/// Grouping never reorders requests and never touches any RNG, so a
/// pipeline that forks one RNG stream per request before enqueueing gets
/// bit-identical results at every batch size (DESIGN.md §11).
///
/// Not thread-safe: the pipeline enqueues from its serial submission
/// section only. Accordingly no member is CHAMELEON_GUARDED_BY-annotated
/// — there is no mutex whose discipline chameleon-lint could check; the
/// serial-path claim above is the whole synchronization story. Adding a
/// mutex here means annotating every member it guards (DESIGN.md
/// "Cross-TU analysis").
class BatchCoalescer {
 public:
  /// Result slot for one enqueued request; empty until its batch flushes.
  using Slot = std::optional<util::Result<GenerationResult>>;

  /// `model` is not owned. `observability` may be null; when set, each
  /// flush records an `fm.batch` journal event and feeds the
  /// `fm.batch.*` metrics.
  BatchCoalescer(FoundationModel* model, const BatchCoalescerOptions& options,
                 obs::Observability* observability = nullptr);

  /// Queues one request. `request` and `rng` must stay valid and `slot`
  /// writable until the flush that covers them returns. May flush the
  /// window's worth of *earlier* requests before queueing this one, and
  /// flushes immediately after queueing when the size trigger trips.
  [[nodiscard]] util::Status Enqueue(const GenerationRequest* request,
                                     util::Rng* rng, Slot* slot);

  /// Dispatches everything pending (no-op when empty). The pipeline
  /// forces a flush at each point where it needs results before it can
  /// continue — end of every rejection round.
  [[nodiscard]] util::Status Flush();

  const BatchCoalescerStats& stats() const { return stats_; }
  size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    const GenerationRequest* request = nullptr;
    util::Rng* rng = nullptr;
    Slot* slot = nullptr;
  };

  [[nodiscard]] util::Status FlushLocked(const char* reason);

  FoundationModel* model_;
  BatchCoalescerOptions options_;
  obs::Observability* observability_;
  std::vector<Pending> pending_;
  /// Virtual arrival time of the next enqueue.
  double now_ms_ = 0.0;
  /// Arrival time of the oldest pending request (window anchor).
  double window_open_ms_ = 0.0;
  BatchCoalescerStats stats_;
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_BATCHING_H_
