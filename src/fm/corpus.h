#ifndef CHAMELEON_FM_CORPUS_H_
#define CHAMELEON_FM_CORPUS_H_

#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/image/image.h"
#include "src/util/status.h"

namespace chameleon::fm {

/// A multi-modal corpus: the relational view (Dataset) plus per-tuple
/// image payloads and the simulator's latent realism ground truth.
/// tuple(i).payload_id indexes into `images` and `realism`.
struct Corpus {
  data::Dataset dataset;
  std::vector<image::Image> images;
  std::vector<double> realism;

  /// Appends a tuple with its payload, wiring payload_id.
  [[nodiscard]] util::Status Add(data::Tuple tuple, image::Image image,
                   double tuple_realism) {
    tuple.payload_id = static_cast<int64_t>(images.size());
    CHAMELEON_RETURN_NOT_OK(dataset.Add(std::move(tuple)));
    images.push_back(std::move(image));
    realism.push_back(tuple_realism);
    return util::Status::Ok();
  }

  /// Appends an annotation-only tuple (no payload), for coverage-only
  /// experiments.
  [[nodiscard]] util::Status AddAnnotationOnly(data::Tuple tuple) {
    tuple.payload_id = -1;
    return dataset.Add(std::move(tuple));
  }

  /// Realism values of the real (non-synthetic) tuples that carry
  /// payloads — the calibration sample for estimating p.
  std::vector<double> RealTupleRealism() const {
    std::vector<double> out;
    for (const auto& t : dataset.tuples()) {
      if (!t.synthetic && t.payload_id >= 0) {
        out.push_back(realism[t.payload_id]);
      }
    }
    return out;
  }

  /// Embeddings of all tuples that have one.
  std::vector<std::vector<double>> Embeddings() const {
    std::vector<std::vector<double>> out;
    for (const auto& t : dataset.tuples()) {
      if (!t.embedding.empty()) out.push_back(t.embedding);
    }
    return out;
  }
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_CORPUS_H_
