#ifndef CHAMELEON_FM_EVALUATOR_POOL_H_
#define CHAMELEON_FM_EVALUATOR_POOL_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace chameleon::fm {

/// Simulated crowd of human evaluators for the quality test (§3.2). Each
/// evaluator e has an individual strictness threshold theta_e; shown a
/// tuple with latent realism r in [0, 1], e labels it "realistic" with
/// probability sigmoid((r - theta_e) / softness). Real photographs have
/// realism ~0.92, which yields the paper's measured real-image label
/// rate p ≈ 0.86.
class EvaluatorPool {
 public:
  struct Options {
    int num_evaluators = 37;   // the paper's cohort size
    double threshold_mean = 0.78;
    double threshold_stddev = 0.05;
    double softness = 0.08;
  };

  EvaluatorPool(const Options& options, uint64_t seed);
  explicit EvaluatorPool(uint64_t seed) : EvaluatorPool(Options(), seed) {}

  int num_evaluators() const { return static_cast<int>(thresholds_.size()); }

  /// Probability that evaluator `e` labels a tuple of the given realism
  /// as realistic.
  double LabelProbability(double realism, int evaluator) const;

  /// Draws `n` labels (1 = realistic) from uniformly random evaluators.
  std::vector<int> Evaluate(double realism, int n, util::Rng* rng) const;

  /// Estimates p, the rate at which random evaluators label random real
  /// tuples realistic, from `num_samples` (evaluator, tuple) draws — the
  /// paper's separate 10-evaluator calibration experiment.
  double EstimateRealLabelRate(const std::vector<double>& real_realism,
                               int num_samples, util::Rng* rng) const;

 private:
  Options options_;
  std::vector<double> thresholds_;
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_EVALUATOR_POOL_H_
