#include "src/fm/foundation_model.h"

namespace chameleon::fm {

const char* BackendRouterKindName(BackendRouterKind kind) {
  switch (kind) {
    case BackendRouterKind::kGreedyCost:
      return "greedy";
    case BackendRouterKind::kLinUcb:
      return "linucb";
  }
  return "unknown";
}

std::vector<util::Result<GenerationResult>> FoundationModel::GenerateBatch(
    std::span<const BatchItem> items) {
  std::vector<util::Result<GenerationResult>> results;
  results.reserve(items.size());
  for (const BatchItem& item : items) {
    results.push_back(Generate(*item.request, item.rng));
  }
  return results;
}

std::string BuildPrompt(const data::AttributeSchema& schema,
                        const std::vector<int>& values) {
  std::string prompt = "A realistic portrait photo of a person with ";
  prompt += schema.CombinationToString(values);
  return prompt;
}

}  // namespace chameleon::fm
