#include "src/fm/foundation_model.h"

namespace chameleon::fm {

std::string BuildPrompt(const data::AttributeSchema& schema,
                        const std::vector<int>& values) {
  std::string prompt = "A realistic portrait photo of a person with ";
  prompt += schema.CombinationToString(values);
  return prompt;
}

}  // namespace chameleon::fm
