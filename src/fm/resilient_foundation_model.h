#ifndef CHAMELEON_FM_RESILIENT_FOUNDATION_MODEL_H_
#define CHAMELEON_FM_RESILIENT_FOUNDATION_MODEL_H_

#include <cstdint>

#include "src/fm/foundation_model.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::fm {

/// Circuit-breaker state (closed = traffic flows, open = fail fast,
/// half-open = one probe allowed through).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct ResilienceOptions {
  /// Seed for the deterministic backoff jitter stream. Independent of the
  /// pipeline rng: jitter never perturbs generation.
  uint64_t seed = 0xC0FFEEULL;

  /// Per-query retry budget: total attempts, including the first.
  int max_attempts = 4;

  /// Capped exponential backoff (virtual milliseconds): the k-th retry
  /// waits min(backoff_max_ms, backoff_base_ms * multiplier^(k-1)),
  /// scaled by a deterministic jitter in
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double backoff_base_ms = 50.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 2000.0;
  double jitter_fraction = 0.25;

  /// Virtual cost of one backend attempt, charged to the run clock.
  double attempt_cost_ms = 10.0;
  /// Per-run deadline on the virtual clock; 0 = unlimited. Once the run
  /// clock passes this, queries fail fast with kDeadlineExceeded until
  /// OnRunStart resets the clock.
  double run_deadline_ms = 0.0;

  /// Breaker trips open after this many *consecutive* failed attempts.
  int breaker_failure_threshold = 5;
  /// While open, this many queries are rejected fail-fast before the
  /// breaker goes half-open and lets the next query through as a probe.
  int breaker_probe_interval = 8;
};

/// Resilience decorator: retry with capped exponential backoff and
/// deterministic jitter, error classification (transport errors and
/// malformed responses are retryable; everything else is terminal), a
/// per-run virtual deadline, and a closed -> open -> half-open circuit
/// breaker. Wraps any FoundationModel.
///
/// Determinism contract: the wrapper checkpoints the pipeline rng before
/// the first attempt and restores it before every retry, so the attempt
/// that finally succeeds consumes *exactly* the draws a first-try success
/// would have — same seed in, same accepted tuples out, regardless of the
/// fault schedule (as long as the retry budget masks every fault). All
/// timing is virtual; no wall clock is ever read.
///
/// Not thread-safe: callers serialize Generate, as the pipeline's serial
/// submission loop does. num_queries() counts *logical* queries; the
/// wrapped model's own counter sees every retry attempt.
class ResilientFoundationModel : public FoundationModel {
 public:
  ResilientFoundationModel(FoundationModel* wrapped,
                           const ResilienceOptions& options);

  [[nodiscard]] util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* rng) override;

  double query_cost() const override { return wrapped_->query_cost(); }

  /// Resets the per-run virtual clock (the breaker and the cumulative
  /// telemetry deliberately survive across runs: a dead backend stays
  /// dead between rounds).
  void OnRunStart() override;

  const FaultTelemetry* fault_telemetry() const override {
    return &telemetry_;
  }

  BreakerState breaker_state() const { return state_; }
  /// Virtual milliseconds elapsed in the current run.
  double run_clock_ms() const { return clock_ms_; }

  /// Attaches an observability sink (not owned; null detaches). When set,
  /// every clock_ms_ advance is mirrored into the shared VirtualClock's
  /// millisecond axis (so spans correlate with retry storms), retries feed
  /// the `fm.retries` counter, and each retry/breaker transition is
  /// journaled. All of it is driven from the serial Generate path, so the
  /// journal stays deterministic.
  void set_observability(obs::Observability* observability) override {
    observability_ = observability;
    wrapped_->set_observability(observability);
  }

  /// Attaches a per-request deadline/cancellation context (not owned;
  /// null detaches). Every clock_ms_ advance — attempt cost and backoff
  /// alike — is charged to it, and Generate fails fast with
  /// kDeadlineExceeded once it expires or is cancelled. This is the
  /// per-request generalization of ResilienceOptions::run_deadline_ms:
  /// the serving layer gives each request its own decorator *and* its
  /// own Deadline, so no request can burn another's budget.
  void set_deadline(Deadline* deadline) override {
    deadline_ = deadline;
    wrapped_->set_deadline(deadline);
  }

  /// Routing hooks pass straight through: a BackendPool may sit at the
  /// bottom of the decorator stack, and outcome feedback / policy
  /// selection must reach it.
  void ReportOutcome(int backend, bool accepted) override {
    wrapped_->ReportOutcome(backend, accepted);
  }
  void set_backend_router(BackendRouterKind kind) override {
    wrapped_->set_backend_router(kind);
  }

 private:
  /// Retryable-failure bookkeeping shared by every fault path: advances
  /// the consecutive-failure count and trips the breaker at threshold.
  void OnAttemptFailure();

  /// Mirrors a clock_ms_ advance into the attached observability clock
  /// (no-op when detached).
  void AdvanceClock(double ms);

  FoundationModel* wrapped_;
  ResilienceOptions options_;
  util::Rng jitter_rng_;
  FaultTelemetry telemetry_;
  obs::Observability* observability_ = nullptr;
  Deadline* deadline_ = nullptr;

  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int rejections_since_open_ = 0;
  double clock_ms_ = 0.0;
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_RESILIENT_FOUNDATION_MODEL_H_
