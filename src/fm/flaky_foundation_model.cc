#include "src/fm/flaky_foundation_model.h"

#include <string>
#include <utility>

namespace chameleon::fm {

FlakyFoundationModel::FlakyFoundationModel(FoundationModel* wrapped,
                                           const FlakyOptions& options)
    : wrapped_(wrapped), options_(options), fault_rng_(options.seed) {}

util::Result<GenerationResult> FlakyFoundationModel::Generate(
    const GenerationRequest& request, util::Rng* rng) {
  RecordQuery();
  const int64_t call = num_calls_++;

  // Scripted faults first: they model the backend process itself being
  // gone, so they fire regardless of the stochastic schedule and they
  // must not consume the fault stream (the schedule after an outage is
  // the same as if the outage had not been configured).
  if (options_.fail_from_query >= 0 && call >= options_.fail_from_query) {
    ++counters_.scripted;
    return util::Status::Unavailable("scripted crash: backend dead since query " +
                                     std::to_string(options_.fail_from_query));
  }
  if (options_.outage_start >= 0 && call >= options_.outage_start &&
      call < options_.outage_start + options_.outage_length) {
    ++counters_.scripted;
    return util::Status::Unavailable("scripted outage window");
  }

  // One uniform per stochastic category per call, in fixed order, drawn
  // unconditionally — so the schedule for call k never depends on which
  // faults fired on calls < k.
  const double u_transient = fault_rng_.NextDouble();
  const double u_rate_limit = fault_rng_.NextDouble();
  const double u_deadline = fault_rng_.NextDouble();
  const double u_malformed = fault_rng_.NextDouble();
  const double u_mangle = fault_rng_.NextDouble();

  if (u_transient < options_.transient_rate) {
    ++counters_.transient;
    return util::Status::Unavailable("injected transient backend failure");
  }
  if (u_rate_limit < options_.rate_limit_rate) {
    ++counters_.rate_limited;
    return util::Status::ResourceExhausted("injected rate limit");
  }
  if (u_deadline < options_.deadline_rate) {
    ++counters_.deadline;
    return util::Status::DeadlineExceeded(
        "injected latency spike overran the query deadline");
  }

  auto result = wrapped_->Generate(request, rng);
  if (!result.ok()) return result;

  if (u_malformed < options_.malformed_rate) {
    ++counters_.malformed;
    // Two flavours of garbage: wrong `values` arity, or an empty image.
    if (u_mangle < 0.5) {
      if (result->values.empty()) {
        result->values.push_back(0);  // wrong arity the other way
      } else {
        result->values.pop_back();
      }
    } else {
      result->image = image::Image();
    }
  }
  return result;
}

}  // namespace chameleon::fm
