#ifndef CHAMELEON_FM_FLAKY_FOUNDATION_MODEL_H_
#define CHAMELEON_FM_FLAKY_FOUNDATION_MODEL_H_

#include <cstdint>

#include "src/fm/foundation_model.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::fm {

/// Configuration of a deterministic fault schedule. Stochastic rates are
/// driven by a private util::Rng seeded from `seed`; scripted faults key
/// off the decorator's own call index. Given the same seed and the same
/// serial call sequence, the schedule is bit-identical run to run.
struct FlakyOptions {
  uint64_t seed = 1337;

  /// Probability of a transient kUnavailable failure (backend hiccup).
  double transient_rate = 0.0;
  /// Probability of a kResourceExhausted failure (rate limit).
  double rate_limit_rate = 0.0;
  /// Probability of a kDeadlineExceeded failure (latency spike that
  /// overran the per-query deadline).
  double deadline_rate = 0.0;
  /// Probability that an otherwise-successful response is malformed:
  /// wrong `values` arity or an empty image. The wrapped model is still
  /// invoked (and consumes its rng draws) before the result is mangled.
  double malformed_rate = 0.0;

  /// Crash script: calls with index >= this value fail kUnavailable
  /// forever (the backend died). < 0 disables. 0 models a backend that
  /// is dead from the first query.
  int64_t fail_from_query = -1;
  /// Scripted outage window: calls with index in
  /// [outage_start, outage_start + outage_length) fail kUnavailable.
  int64_t outage_start = -1;
  int64_t outage_length = 0;
};

/// Per-category injection counters, for tests that assert a schedule
/// actually exercised the paths it was meant to.
struct FlakyCounters {
  int64_t transient = 0;
  int64_t rate_limited = 0;
  int64_t deadline = 0;
  int64_t malformed = 0;
  int64_t scripted = 0;
};

/// Fault-injection decorator: wraps any FoundationModel and injects
/// transport errors and malformed responses according to a seeded,
/// fully deterministic schedule. The wrapped model's rng consumption is
/// untouched on injected *transport* faults (the "backend" was never
/// reached), which is what lets a retry layer mask faults bit-exactly.
///
/// Not thread-safe: like the underlying generation loop, callers
/// serialize Generate.
class FlakyFoundationModel : public FoundationModel {
 public:
  FlakyFoundationModel(FoundationModel* wrapped, const FlakyOptions& options);

  [[nodiscard]] util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* rng) override;

  double query_cost() const override { return wrapped_->query_cost(); }
  void OnRunStart() override { wrapped_->OnRunStart(); }
  void set_observability(obs::Observability* observability) override {
    wrapped_->set_observability(observability);
  }

  /// Routing hooks pass straight through (see ResilientFoundationModel):
  /// fault injection sits above the pool, never between it and feedback.
  void ReportOutcome(int backend, bool accepted) override {
    wrapped_->ReportOutcome(backend, accepted);
  }
  void set_backend_router(BackendRouterKind kind) override {
    wrapped_->set_backend_router(kind);
  }

  const FlakyCounters& counters() const { return counters_; }
  /// Calls seen by this decorator (= retries included, fail-fasts not).
  int64_t num_calls() const { return num_calls_; }

 private:
  FoundationModel* wrapped_;
  FlakyOptions options_;
  util::Rng fault_rng_;
  FlakyCounters counters_;
  int64_t num_calls_ = 0;
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_FLAKY_FOUNDATION_MODEL_H_
