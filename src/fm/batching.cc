#include "src/fm/batching.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/observability.h"

namespace chameleon::fm {

BatchCoalescer::BatchCoalescer(FoundationModel* model,
                               const BatchCoalescerOptions& options,
                               obs::Observability* observability)
    : model_(model), options_(options), observability_(observability) {
  options_.max_batch_size = std::max(1, options_.max_batch_size);
  pending_.reserve(static_cast<size_t>(options_.max_batch_size));
}

util::Status BatchCoalescer::Enqueue(const GenerationRequest* request,
                                     util::Rng* rng, Slot* slot) {
  if (request == nullptr || rng == nullptr || slot == nullptr) {
    return util::Status::InvalidArgument(
        "BatchCoalescer::Enqueue: request, rng and slot are all required");
  }
  const double arrival_ms = now_ms_;
  now_ms_ += options_.arrival_interval_ms;

  // The window covers requests whose arrivals span less than window_ms.
  // A new arrival past the open window dispatches the old batch first,
  // exactly as a timer firing between the two arrivals would have.
  if (!pending_.empty() &&
      arrival_ms - window_open_ms_ >= options_.window_ms) {
    CHAMELEON_RETURN_NOT_OK(FlushLocked("window"));
  }
  if (pending_.empty()) window_open_ms_ = arrival_ms;
  slot->reset();
  pending_.push_back(Pending{request, rng, slot});
  ++stats_.enqueued;
  if (static_cast<int>(pending_.size()) >= options_.max_batch_size) {
    CHAMELEON_RETURN_NOT_OK(FlushLocked("size"));
  }
  return util::Status::Ok();
}

util::Status BatchCoalescer::Flush() {
  if (pending_.empty()) return util::Status::Ok();
  return FlushLocked("force");
}

util::Status BatchCoalescer::FlushLocked(const char* reason) {
  std::vector<Pending> batch;
  batch.swap(pending_);
  pending_.reserve(static_cast<size_t>(options_.max_batch_size));

  std::vector<BatchItem> items;
  items.reserve(batch.size());
  for (const Pending& p : batch) items.push_back(BatchItem{p.request, p.rng});

  std::vector<util::Result<GenerationResult>> results =
      model_->GenerateBatch(items);
  if (results.size() != batch.size()) {
    return util::Status::Internal(
        "GenerateBatch returned " + std::to_string(results.size()) +
        " results for a batch of " + std::to_string(batch.size()));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    *batch[i].slot = std::move(results[i]);
  }

  ++stats_.flushes;
  stats_.flushed_requests += static_cast<int64_t>(batch.size());
  stats_.max_batch =
      std::max(stats_.max_batch, static_cast<int64_t>(batch.size()));
  if (std::string_view(reason) == "size") ++stats_.size_flushes;
  if (std::string_view(reason) == "window") ++stats_.window_flushes;
  if (std::string_view(reason) == "force") ++stats_.forced_flushes;

  if (observability_ != nullptr) {
    observability_->journal.Record(obs::JournalEvent("fm.batch")
                                       .Set("size", batch.size())
                                       .Set("reason", reason));
    observability_->registry.Counter("fm.batch.flushes")->Increment();
    observability_->registry.Counter("fm.batch.requests")
        ->Increment(static_cast<int64_t>(batch.size()));
    observability_->registry
        .Histogram("fm.batch.size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
        ->Observe(static_cast<double>(batch.size()));
  }
  return util::Status::Ok();
}

}  // namespace chameleon::fm
