#ifndef CHAMELEON_FM_CORPUS_IO_H_
#define CHAMELEON_FM_CORPUS_IO_H_

#include <string>

#include "src/fm/corpus.h"
#include "src/util/status.h"

namespace chameleon::fm {

/// Persists a corpus to a directory:
///
///   <dir>/schema.csv        attribute name, ordinal flag, values...
///   <dir>/tuples.csv        id, synthetic, values..., embedding...
///   <dir>/realism.csv       payload id, latent realism
///   <dir>/images/NNNNNN.ppm one PNM file per payload (optional)
///
/// The format is deliberately plain-text/PNM so repaired corpora can be
/// inspected and consumed by downstream tooling without this library.
[[nodiscard]] util::Status SaveCorpus(const Corpus& corpus, const std::string& directory,
                        bool include_images = true);

/// Loads a corpus previously written by SaveCorpus. Images are loaded
/// when present; a missing images/ directory yields annotation-only
/// tuples.
[[nodiscard]] util::Result<Corpus> LoadCorpus(const std::string& directory);

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_CORPUS_IO_H_
