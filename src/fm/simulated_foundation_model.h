#ifndef CHAMELEON_FM_SIMULATED_FOUNDATION_MODEL_H_
#define CHAMELEON_FM_SIMULATED_FOUNDATION_MODEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/schema.h"
#include "src/fm/foundation_model.h"
#include "src/image/face_renderer.h"

namespace chameleon::fm {

/// Maps a full-level combination to face appearance; supplied by the
/// dataset builder so the foundation model stays schema-agnostic.
using FaceStyleFn =
    std::function<image::FaceStyle(const std::vector<int>&, util::Rng*)>;

/// The DALL·E 2 stand-in. Generates a synthetic portrait for the target
/// combination, honouring an optional guide + mask, with two latent
/// effects that drive the paper's acceptance-rate phenomena:
///
///  * Context: without a guide the model "imagines" a scene from its own
///    prior palette list — often unlike the data set's scene, so the
///    embedding drifts and the distribution test fails (~half the time).
///    With a guide, unmasked pixels are kept verbatim and the regenerated
///    background continues the guide's palette with an error that grows
///    with the regenerated area — so tighter masks adhere better.
///
///  * Realism: inpainting into a tightly cropped mask produces seams and
///    cramped features (realism penalty grows with mask tightness), and
///    every semantically-edited attribute costs realism according to a
///    hidden per-(attribute, combination) difficulty table — the signal
///    LinUCB learns. Ordinal attributes cost more per step of distance.
///
/// `latent_realism` is on an open-ended scale where real photos sit near
/// `real_photo_realism`; values above 1 mean "cleaner than a real photo"
/// (generative models often are).
class SimulatedFoundationModel : public FoundationModel {
 public:
  struct Options {
    int image_size = 64;
    /// The paper reports $0.016 per DALL·E 2 image.
    double query_cost = 0.016;
    /// Seed for the hidden difficulty table and the prior palettes.
    uint64_t seed = 1234;

    /// Realism of an unguided (prompt-only) generation.
    double no_guide_realism_mean = 1.01;
    double no_guide_realism_stddev = 0.06;

    /// Realism of a guided generation before penalties.
    double guided_base_realism = 1.12;
    double realism_noise_stddev = 0.035;

    /// Penalty at maximal mask tightness (accurate outline).
    double tightness_penalty = 0.12;

    /// Per-attribute-edit difficulty range [min, max] for the hidden
    /// table; each additional ordinal step adds 20% of the base cost.
    double difficulty_min = 0.02;
    double difficulty_max = 0.10;

    /// Background continuation error (per unit of regenerated area
    /// fraction), in 0-255 channel units.
    double context_error_scale = 10.0;

    /// Semantic edit incompleteness: guided generations keep a random
    /// residue of the guide subject's appearance (inpainting rarely
    /// commits fully to the prompt). Sampled per query as
    /// |N(0, edit_residue_stddev)|, clamped to [0, 0.5]; 0 disables.
    double edit_residue_stddev = 0.06;

    /// How many imagination palettes the unguided model draws from; the
    /// first one matches the data-set scene passed to the constructor.
    int num_prior_palettes = 6;
  };

  /// `dataset_scene` is the scene style of the corpus being repaired:
  /// used only to seed the first prior palette (the model sometimes
  /// guesses right) — guided generations never consult it.
  SimulatedFoundationModel(const data::AttributeSchema& schema,
                           FaceStyleFn face_style_fn,
                           const image::SceneStyle& dataset_scene,
                           const Options& options);

  [[nodiscard]] util::Result<GenerationResult> Generate(const GenerationRequest& request,
                                          util::Rng* rng) override;

  double query_cost() const override { return options_.query_cost; }

  /// Hidden difficulty of editing `attribute` towards `target_values`
  /// (exposed for tests and for verifying LinUCB's learning).
  double EditDifficulty(int attribute,
                        const std::vector<int>& target_values) const;

 private:
  data::AttributeSchema schema_;
  FaceStyleFn face_style_fn_;
  Options options_;
  std::vector<image::SceneStyle> prior_palettes_;
  /// difficulty_[attribute][combination_index]
  std::vector<std::vector<double>> difficulty_;
};

}  // namespace chameleon::fm

#endif  // CHAMELEON_FM_SIMULATED_FOUNDATION_MODEL_H_
