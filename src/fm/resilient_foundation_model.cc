#include "src/fm/resilient_foundation_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

#include "src/fm/deadline.h"
#include "src/obs/observability.h"

namespace chameleon::fm {
namespace {

/// An OK response can still be garbage (the paper's backend is a remote
/// black box): reject wrong `values` arity and empty images. Malformed
/// responses are retryable — the next attempt re-derives the generation
/// from the restored rng checkpoint.
bool IsWellFormed(const GenerationRequest& request,
                  const GenerationResult& result) {
  return result.values.size() == request.target_values.size() &&
         !result.image.empty();
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

ResilientFoundationModel::ResilientFoundationModel(
    FoundationModel* wrapped, const ResilienceOptions& options)
    : wrapped_(wrapped), options_(options), jitter_rng_(options.seed) {}

void ResilientFoundationModel::OnRunStart() {
  clock_ms_ = 0.0;
  wrapped_->OnRunStart();
}

void ResilientFoundationModel::AdvanceClock(double ms) {
  if (observability_ != nullptr) observability_->clock.AdvanceMs(ms);
  // Charge the per-request budget in lockstep with the run clock: the
  // attached Deadline sees exactly the virtual time this request spent.
  if (deadline_ != nullptr) deadline_->AdvanceMs(ms);
}

void ResilientFoundationModel::OnAttemptFailure() {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the backend is still down. Re-open and start a
    // fresh probe interval.
    state_ = BreakerState::kOpen;
    rejections_since_open_ = 0;
    ++telemetry_.breaker_reopens;
    if (observability_ != nullptr) {
      observability_->journal.Record(
          obs::JournalEvent("fm.breaker").Set("state", "open")
              .Set("cause", "probe_failed"));
    }
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= options_.breaker_failure_threshold) {
    state_ = BreakerState::kOpen;
    rejections_since_open_ = 0;
    ++telemetry_.breaker_opens;
    if (observability_ != nullptr) {
      observability_->journal.Record(
          obs::JournalEvent("fm.breaker").Set("state", "open")
              .Set("cause", "failure_threshold"));
    }
  }
}

util::Result<GenerationResult> ResilientFoundationModel::Generate(
    const GenerationRequest& request, util::Rng* rng) {
  RecordQuery();

  if (deadline_ != nullptr && deadline_->ShouldStop()) {
    ++telemetry_.failed_queries;
    return deadline_->Cancelled()
               ? util::Status::DeadlineExceeded(
                     "request cancelled: failing fast without contacting "
                     "the backend")
               : util::Status::DeadlineExceeded(
                     "per-request deadline exhausted (request clock at " +
                     std::to_string(deadline_->ElapsedMs()) + " of " +
                     std::to_string(deadline_->budget_ms()) + " ms)");
  }

  if (options_.run_deadline_ms > 0.0 &&
      clock_ms_ >= options_.run_deadline_ms) {
    ++telemetry_.failed_queries;
    return util::Status::DeadlineExceeded(
        "per-run deadline exhausted (virtual clock at " +
        std::to_string(clock_ms_) + " ms)");
  }

  if (state_ == BreakerState::kOpen) {
    if (rejections_since_open_ >= options_.breaker_probe_interval) {
      state_ = BreakerState::kHalfOpen;  // this query is the probe
    } else {
      ++rejections_since_open_;
      ++telemetry_.fail_fast_rejections;
      ++telemetry_.failed_queries;
      return util::Status::Unavailable(
          "circuit breaker open: failing fast without contacting the "
          "backend");
    }
  }
  // A half-open breaker admits exactly one attempt: the probe either
  // closes the breaker or re-opens it; retrying behind it is pointless.
  const int max_attempts = state_ == BreakerState::kHalfOpen
                               ? 1
                               : std::max(1, options_.max_attempts);

  // Checkpoint the pipeline stream: every retry replays it so the
  // successful attempt draws exactly what a first-try success would.
  const util::Rng checkpoint = *rng;
  util::Status last_failure =
      util::Status::Unavailable("no generation attempt was made");

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      *rng = checkpoint;
      // Cap the exponent before exponentiating: a huge attempt budget
      // must saturate at backoff_max_ms, not overflow. The uncapped
      // form shifted/compounded by (attempt - 2) directly, which for
      // attempt budgets in the thousands overflows any integer fast
      // path (UB) and sends std::pow to inf before the max applies.
      const int exponent = std::min(attempt - 2, 62);
      double backoff;
      if (options_.backoff_multiplier == 2.0) {
        // Exact power-of-two fast path, now safe: exponent <= 62.
        backoff = options_.backoff_base_ms *
                  static_cast<double>(uint64_t{1} << exponent);
      } else {
        backoff = options_.backoff_base_ms *
                  std::pow(options_.backoff_multiplier, exponent);
      }
      backoff = std::min(backoff, options_.backoff_max_ms);
      backoff *= 1.0 + options_.jitter_fraction *
                           (2.0 * jitter_rng_.NextDouble() - 1.0);
      clock_ms_ += backoff;
      AdvanceClock(backoff);
      telemetry_.backoff_ms += backoff;
      ++telemetry_.retries;
      if (observability_ != nullptr) {
        observability_->registry.Counter("fm.retries")->Increment();
        observability_->journal.Record(obs::JournalEvent("fm.retry")
                                           .Set("attempt", attempt)
                                           .Set("backoff_ms", backoff));
      }
      if (options_.run_deadline_ms > 0.0 &&
          clock_ms_ >= options_.run_deadline_ms) {
        ++telemetry_.failed_queries;
        return util::Status::DeadlineExceeded(
            "per-run deadline exhausted while backing off; last failure: " +
            last_failure.ToString());
      }
      if (deadline_ != nullptr && deadline_->ShouldStop()) {
        ++telemetry_.failed_queries;
        return util::Status::DeadlineExceeded(
            deadline_->Cancelled()
                ? "request cancelled while backing off; last failure: " +
                      last_failure.ToString()
                : "per-request deadline exhausted while backing off; last "
                  "failure: " +
                      last_failure.ToString());
      }
    }
    ++telemetry_.attempts;
    clock_ms_ += options_.attempt_cost_ms;
    AdvanceClock(options_.attempt_cost_ms);

    auto result = wrapped_->Generate(request, rng);
    if (result.ok() && IsWellFormed(request, *result)) {
      if (state_ == BreakerState::kHalfOpen) {
        state_ = BreakerState::kClosed;
        ++telemetry_.breaker_closes;
        if (observability_ != nullptr) {
          observability_->journal.Record(
              obs::JournalEvent("fm.breaker").Set("state", "closed")
                  .Set("cause", "probe_succeeded"));
        }
      }
      consecutive_failures_ = 0;
      if (attempt > 1) ++telemetry_.faults_masked;
      return result;
    }
    if (result.ok()) {
      ++telemetry_.malformed_results;
      last_failure = util::Status::Unavailable(
          "malformed backend response (wrong values arity or empty image)");
    } else if (IsTransportError(result.status().code())) {
      last_failure = result.status();
    } else {
      // Terminal: the request itself is bad (or the backend hit a real
      // bug). Retrying the identical request cannot help, and it is not
      // the backend's availability that failed — the breaker stays put.
      ++telemetry_.failed_queries;
      return result.status();
    }
    OnAttemptFailure();
    // A breaker that tripped (or re-opened after a failed probe) stops
    // the retry loop: further attempts would just hammer a dead backend.
    if (state_ == BreakerState::kOpen) break;
  }

  ++telemetry_.failed_queries;
  return last_failure;
}

}  // namespace chameleon::fm
