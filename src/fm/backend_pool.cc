#include "src/fm/backend_pool.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "src/obs/observability.h"

namespace chameleon::fm {
namespace {

/// Floor on the acceptance prior so a zero-acceptance profile cannot
/// produce an infinite expected cost (it just becomes very unattractive).
constexpr double kMinAcceptance = 1e-6;

}  // namespace

BackendPool::BackendPool(BackendRouterKind router) : router_kind_(router) {}

void BackendPool::AddBackend(const BackendProfile& profile,
                             FoundationModel* backend) {
  Backend entry;
  entry.profile = profile;
  entry.model = backend;
  backends_.push_back(std::move(entry));
  ResetRouter();
}

int BackendPool::RouteIndex() const {
  if (router_kind_ == BackendRouterKind::kLinUcb && router_ != nullptr) {
    // Ties break to the lowest index (no rng): routing must be a pure
    // function of router state, which only changes on the merge path.
    return router_->SelectArm({1.0}, /*rng=*/nullptr);
  }
  int best = 0;
  double best_cost = 0.0;
  for (int i = 0; i < static_cast<int>(backends_.size()); ++i) {
    const BackendProfile& p = backends_[i].profile;
    const double expected_cost =
        p.query_cost / std::max(kMinAcceptance, p.expected_acceptance);
    if (i == 0 || expected_cost < best_cost) {
      best = i;
      best_cost = expected_cost;
    }
  }
  return best;
}

void BackendPool::ResetRouter() {
  if (router_kind_ == BackendRouterKind::kLinUcb && !backends_.empty()) {
    router_ = std::make_unique<bandit::LinUcb>(
        static_cast<int>(backends_.size()), /*context_dim=*/1, /*alpha=*/0.5);
  } else {
    router_.reset();
  }
}

void BackendPool::NoteRouted(int backend) {
  RecordQuery();
  ++backends_[backend].routed;
  if (observability_ != nullptr) {
    observability_->registry
        .Counter("fm.backend." + std::to_string(backend) + ".queries")
        ->Increment();
  }
}

util::Result<GenerationResult> BackendPool::Generate(
    const GenerationRequest& request, util::Rng* rng) {
  if (backends_.empty()) {
    return util::Status::FailedPrecondition("BackendPool has no backends");
  }
  const int b = RouteIndex();
  NoteRouted(b);
  const BackendProfile& p = backends_[b].profile;
  virtual_ms_ += p.base_latency_ms + p.per_query_latency_ms;
  util::Result<GenerationResult> result =
      backends_[b].model->Generate(request, rng);
  if (!result.ok()) return result.status();
  GenerationResult value = std::move(*result);
  value.backend = b;
  return value;
}

std::vector<util::Result<GenerationResult>> BackendPool::GenerateBatch(
    std::span<const BatchItem> items) {
  std::vector<util::Result<GenerationResult>> results;
  results.reserve(items.size());
  if (backends_.empty()) {
    for (size_t i = 0; i < items.size(); ++i) {
      results.emplace_back(
          util::Status::FailedPrecondition("BackendPool has no backends"));
    }
    return results;
  }

  // Route every slot first (routing is ordinal-order, not group-order).
  std::vector<int> route(items.size(), 0);
  for (size_t i = 0; i < items.size(); ++i) {
    route[i] = RouteIndex();
    NoteRouted(route[i]);
  }

  // One sub-batch per backend, slot order preserved within each group.
  std::vector<std::vector<size_t>> groups(backends_.size());
  for (size_t i = 0; i < items.size(); ++i) groups[route[i]].push_back(i);

  std::vector<std::optional<util::Result<GenerationResult>>> slots(
      items.size());
  double dispatch_ms = 0.0;
  for (size_t b = 0; b < groups.size(); ++b) {
    if (groups[b].empty()) continue;
    const BackendProfile& p = backends_[b].profile;
    dispatch_ms = std::max(
        dispatch_ms, p.base_latency_ms +
                         p.per_query_latency_ms *
                             static_cast<double>(groups[b].size()));
    std::vector<BatchItem> sub;
    sub.reserve(groups[b].size());
    for (const size_t slot : groups[b]) sub.push_back(items[slot]);
    std::vector<util::Result<GenerationResult>> sub_results =
        backends_[b].model->GenerateBatch(sub);
    for (size_t j = 0; j < groups[b].size(); ++j) {
      if (j >= sub_results.size()) {
        slots[groups[b][j]] = util::Status::Internal(
            "backend " + backends_[b].profile.name +
            " returned a short batch");
        continue;
      }
      if (sub_results[j].ok()) {
        GenerationResult value = std::move(*sub_results[j]);
        value.backend = static_cast<int>(b);
        slots[groups[b][j]] = std::move(value);
      } else {
        slots[groups[b][j]] = sub_results[j].status();
      }
    }
  }
  if (!items.empty()) virtual_ms_ += dispatch_ms;

  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

double BackendPool::query_cost() const {
  if (backends_.empty()) return 0.0;
  double cost = 0.0;
  int64_t routed = 0;
  for (const Backend& b : backends_) {
    cost += b.profile.query_cost * static_cast<double>(b.routed);
    routed += b.routed;
  }
  if (routed > 0) return cost / static_cast<double>(routed);
  double mean = 0.0;
  for (const Backend& b : backends_) mean += b.profile.query_cost;
  return mean / static_cast<double>(backends_.size());
}

void BackendPool::ReportOutcome(int backend, bool accepted) {
  if (backend < 0 || backend >= static_cast<int>(backends_.size())) return;
  if (accepted) ++backends_[backend].accepted;
  if (observability_ != nullptr && accepted) {
    observability_->registry
        .Counter("fm.backend." + std::to_string(backend) + ".accepted")
        ->Increment();
  }
  if (router_ != nullptr) {
    const double reward = (accepted ? 1.0 : 0.0) -
                          backends_[backend].profile.query_cost;
    const util::Status updated = router_->Update(backend, {1.0}, reward);
    (void)updated;  // arm and context dim are in range by construction
  }
}

void BackendPool::set_backend_router(BackendRouterKind kind) {
  router_kind_ = kind;
  ResetRouter();
}

void BackendPool::OnRunStart() {
  ResetRouter();
  for (Backend& b : backends_) b.model->OnRunStart();
}

void BackendPool::set_observability(obs::Observability* observability) {
  observability_ = observability;
  for (Backend& b : backends_) b.model->set_observability(observability);
}

SimulatedBackendPool MakeSimulatedBackendPool(
    const data::AttributeSchema& schema, FaceStyleFn face_style_fn,
    const image::SceneStyle& dataset_scene,
    const SimulatedPoolOptions& options) {
  SimulatedBackendPool out;
  out.pool = std::make_unique<BackendPool>();
  const int n = std::max(1, options.num_backends);
  for (int i = 0; i < n; ++i) {
    SimulatedFoundationModel::Options model_options;
    model_options.image_size = options.image_size;
    model_options.seed = options.seed + 1000ULL * static_cast<uint64_t>(i);
    BackendProfile profile;
    switch (i % 3) {
      case 0:  // econ: cheap, slow per query, weaker generations.
        profile.name = "econ-" + std::to_string(i);
        profile.query_cost = 0.008;
        profile.base_latency_ms = 30.0;
        profile.per_query_latency_ms = 3.0;
        profile.expected_acceptance = 0.35;
        model_options.query_cost = profile.query_cost;
        model_options.guided_base_realism = 1.08;
        model_options.difficulty_max = 0.12;
        break;
      case 1:  // standard: the single-model defaults.
        profile.name = "standard-" + std::to_string(i);
        profile.query_cost = 0.016;
        profile.base_latency_ms = 25.0;
        profile.per_query_latency_ms = 2.0;
        profile.expected_acceptance = 0.5;
        model_options.query_cost = profile.query_cost;
        break;
      default:  // premium: expensive, fast, cleaner generations.
        profile.name = "premium-" + std::to_string(i);
        profile.query_cost = 0.032;
        profile.base_latency_ms = 18.0;
        profile.per_query_latency_ms = 1.2;
        profile.expected_acceptance = 0.7;
        model_options.query_cost = profile.query_cost;
        model_options.guided_base_realism = 1.16;
        model_options.difficulty_max = 0.08;
        break;
    }
    out.backends.push_back(std::make_unique<SimulatedFoundationModel>(
        schema, face_style_fn, dataset_scene, model_options));
    out.pool->AddBackend(profile, out.backends.back().get());
  }
  return out;
}

}  // namespace chameleon::fm
