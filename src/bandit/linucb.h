#ifndef CHAMELEON_BANDIT_LINUCB_H_
#define CHAMELEON_BANDIT_LINUCB_H_

#include <cstdint>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::bandit {

/// LinUCB with disjoint linear models (Li et al., WWW'10), as used for
/// guide-tuple selection (§5.3). Each arm a keeps A_a = I + sum f f^T and
/// b_a = sum r f; the coefficient estimate is the ridge solution
/// theta_a = A_a^{-1} b_a, and arms are chosen by the upper confidence
/// bound f^T theta_a + alpha * sqrt(f^T A_a^{-1} f).
///
/// A_a^{-1} is maintained incrementally with Sherman-Morrison rank-1
/// updates (O(k^2) per update instead of O(k^3) refactorization); the
/// ablation benchmark compares both paths.
class LinUcb {
 public:
  /// `alpha` is the exploration weight; `context_dim` is k = |x dom(x_i)|
  /// when contexts are one-hot combination indicators.
  LinUcb(int num_arms, int context_dim, double alpha);

  int num_arms() const { return num_arms_; }
  int context_dim() const { return context_dim_; }
  double alpha() const { return alpha_; }

  /// Estimated reward f^T theta_a.
  double EstimatedReward(int arm, const std::vector<double>& context) const;

  /// Full UCB score for one arm.
  double UpperConfidenceBound(int arm,
                              const std::vector<double>& context) const;

  /// Arm with the highest UCB; ties broken uniformly at random when `rng`
  /// is provided, by lowest index otherwise.
  int SelectArm(const std::vector<double>& context,
                util::Rng* rng = nullptr) const;

  /// Observes reward r for pulling `arm` under `context`.
  [[nodiscard]] util::Status Update(int arm, const std::vector<double>& context,
                      double reward);

  int64_t pull_count(int arm) const { return pulls_[arm]; }
  int64_t total_pulls() const;

  /// One-hot context vector for a combination index.
  static std::vector<double> OneHotContext(int context_dim, int64_t index);

 private:
  int num_arms_;
  int context_dim_;
  double alpha_;
  std::vector<linalg::Matrix> a_inverse_;  // per-arm A_a^{-1}
  std::vector<std::vector<double>> b_;     // per-arm b_a
  std::vector<int64_t> pulls_;
};

}  // namespace chameleon::bandit

#endif  // CHAMELEON_BANDIT_LINUCB_H_
