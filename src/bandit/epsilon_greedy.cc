#include "src/bandit/epsilon_greedy.h"

namespace chameleon::bandit {

EpsilonGreedy::EpsilonGreedy(int num_arms, double epsilon)
    : num_arms_(num_arms),
      epsilon_(epsilon),
      reward_sums_(num_arms, 0.0),
      pulls_(num_arms, 0) {}

int EpsilonGreedy::SelectArm(util::Rng* rng) {
  for (int a = 0; a < num_arms_; ++a) {
    if (pulls_[a] == 0) return a;
  }
  if (rng->NextBernoulli(epsilon_)) {
    return static_cast<int>(rng->NextBounded(num_arms_));
  }
  int best = 0;
  double best_mean = MeanReward(0);
  for (int a = 1; a < num_arms_; ++a) {
    const double mean = MeanReward(a);
    if (mean > best_mean) {
      best = a;
      best_mean = mean;
    }
  }
  return best;
}

util::Status EpsilonGreedy::Update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms_) {
    return util::Status::InvalidArgument("arm out of range");
  }
  reward_sums_[arm] += reward;
  ++pulls_[arm];
  return util::Status::Ok();
}

double EpsilonGreedy::MeanReward(int arm) const {
  if (pulls_[arm] == 0) return 0.0;
  return reward_sums_[arm] / static_cast<double>(pulls_[arm]);
}

}  // namespace chameleon::bandit
