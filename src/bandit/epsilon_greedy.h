#ifndef CHAMELEON_BANDIT_EPSILON_GREEDY_H_
#define CHAMELEON_BANDIT_EPSILON_GREEDY_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::bandit {

/// Context-free epsilon-greedy bandit: a baseline for LinUCB in the guide
/// selection ablation. With probability epsilon explores a uniform arm,
/// otherwise exploits the best empirical mean.
class EpsilonGreedy {
 public:
  EpsilonGreedy(int num_arms, double epsilon);

  int num_arms() const { return num_arms_; }

  /// Selects an arm. Unpulled arms are tried first (round-robin).
  int SelectArm(util::Rng* rng);

  /// Observes a reward for an arm. Rejects out-of-range arms (mirrors
  /// LinUcb::Update, so the two bandits are interchangeable in ablations).
  [[nodiscard]] util::Status Update(int arm, double reward);

  double MeanReward(int arm) const;
  int64_t pull_count(int arm) const { return pulls_[arm]; }

 private:
  int num_arms_;
  double epsilon_;
  std::vector<double> reward_sums_;
  std::vector<int64_t> pulls_;
};

}  // namespace chameleon::bandit

#endif  // CHAMELEON_BANDIT_EPSILON_GREEDY_H_
