#include "src/bandit/linucb.h"

#include <cmath>

#include "src/linalg/vector_ops.h"

namespace chameleon::bandit {

LinUcb::LinUcb(int num_arms, int context_dim, double alpha)
    : num_arms_(num_arms),
      context_dim_(context_dim),
      alpha_(alpha),
      pulls_(num_arms, 0) {
  a_inverse_.reserve(num_arms);
  b_.reserve(num_arms);
  for (int a = 0; a < num_arms; ++a) {
    a_inverse_.push_back(linalg::Matrix::Identity(context_dim));
    b_.emplace_back(context_dim, 0.0);
  }
}

double LinUcb::EstimatedReward(int arm,
                               const std::vector<double>& context) const {
  // theta = A^{-1} b; estimate = f^T theta.
  const std::vector<double> theta = a_inverse_[arm].Multiply(b_[arm]);
  return linalg::Dot(context, theta);
}

double LinUcb::UpperConfidenceBound(
    int arm, const std::vector<double>& context) const {
  const std::vector<double> ainv_f = a_inverse_[arm].Multiply(context);
  const double exploration = std::sqrt(
      std::max(0.0, linalg::Dot(context, ainv_f)));
  return EstimatedReward(arm, context) + alpha_ * exploration;
}

int LinUcb::SelectArm(const std::vector<double>& context,
                      util::Rng* rng) const {
  int best = 0;
  double best_score = UpperConfidenceBound(0, context);
  int ties = 1;
  for (int a = 1; a < num_arms_; ++a) {
    const double score = UpperConfidenceBound(a, context);
    if (score > best_score + 1e-12) {
      best = a;
      best_score = score;
      ties = 1;
    } else if (std::fabs(score - best_score) <= 1e-12) {
      ++ties;
      // Reservoir-style uniform tie break.
      if (rng != nullptr && rng->NextBounded(ties) == 0) best = a;
    }
  }
  return best;
}

util::Status LinUcb::Update(int arm, const std::vector<double>& context,
                            double reward) {
  if (arm < 0 || arm >= num_arms_) {
    return util::Status::InvalidArgument("arm index out of range");
  }
  if (static_cast<int>(context.size()) != context_dim_) {
    return util::Status::InvalidArgument("context dimension mismatch");
  }
  // A += f f^T via Sherman-Morrison on the inverse. The update is always
  // well-conditioned because A is SPD and f f^T is PSD.
  CHAMELEON_RETURN_NOT_OK(
      linalg::ShermanMorrisonUpdate(&a_inverse_[arm], context, context));
  linalg::AddScaled(&b_[arm], reward, context);
  ++pulls_[arm];
  return util::Status::Ok();
}

int64_t LinUcb::total_pulls() const {
  int64_t total = 0;
  for (int64_t p : pulls_) total += p;
  return total;
}

std::vector<double> LinUcb::OneHotContext(int context_dim, int64_t index) {
  std::vector<double> context(context_dim, 0.0);
  if (index >= 0 && index < context_dim) context[index] = 1.0;
  return context;
}

}  // namespace chameleon::bandit
