#include "src/nn/metrics.h"

#include <algorithm>

namespace chameleon::nn {

double ClassMetrics::Precision() const {
  const int64_t denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double ClassMetrics::Recall() const {
  const int64_t denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double ClassMetrics::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

ClassificationReport::ClassificationReport(const std::vector<int>& gold,
                                           const std::vector<int>& predicted,
                                           int num_classes)
    : per_class_(num_classes) {
  for (size_t i = 0; i < gold.size(); ++i) {
    const int g = gold[i];
    const int p = predicted[i];
    ++total_;
    ++per_class_[g].support;
    if (g == p) {
      ++correct_;
      ++per_class_[g].true_positives;
    } else {
      ++per_class_[g].false_negatives;
      if (p >= 0 && p < num_classes) ++per_class_[p].false_positives;
    }
  }
}

double ClassificationReport::Accuracy() const {
  return total_ > 0 ? static_cast<double>(correct_) / total_ : 0.0;
}

namespace {

template <typename Getter>
double MacroAverage(const std::vector<ClassMetrics>& per_class, Getter get) {
  double sum = 0.0;
  int counted = 0;
  for (const auto& m : per_class) {
    if (m.support == 0) continue;
    sum += get(m);
    ++counted;
  }
  return counted > 0 ? sum / counted : 0.0;
}

template <typename Getter>
double WeightedAverage(const std::vector<ClassMetrics>& per_class,
                       Getter get) {
  double sum = 0.0;
  int64_t total = 0;
  for (const auto& m : per_class) {
    sum += get(m) * static_cast<double>(m.support);
    total += m.support;
  }
  return total > 0 ? sum / static_cast<double>(total) : 0.0;
}

}  // namespace

double ClassificationReport::MacroPrecision() const {
  return MacroAverage(per_class_, [](const ClassMetrics& m) {
    return m.Precision();
  });
}
double ClassificationReport::MacroRecall() const {
  return MacroAverage(per_class_, [](const ClassMetrics& m) {
    return m.Recall();
  });
}
double ClassificationReport::MacroF1() const {
  return MacroAverage(per_class_, [](const ClassMetrics& m) {
    return m.F1();
  });
}

double ClassificationReport::WeightedPrecision() const {
  return WeightedAverage(per_class_, [](const ClassMetrics& m) {
    return m.Precision();
  });
}
double ClassificationReport::WeightedRecall() const {
  return WeightedAverage(per_class_, [](const ClassMetrics& m) {
    return m.Recall();
  });
}
double ClassificationReport::WeightedF1() const {
  return WeightedAverage(per_class_, [](const ClassMetrics& m) {
    return m.F1();
  });
}

double Disparity(double group_metric, double overall_metric) {
  if (overall_metric <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - group_metric / overall_metric);
}

}  // namespace chameleon::nn
