#include "src/nn/mlp.h"

#include <algorithm>
#include <cmath>

namespace chameleon::nn {

Mlp::Mlp(const std::vector<int>& sizes, util::Rng* rng) : sizes_(sizes) {
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    const int in = sizes[l];
    const int out = sizes[l + 1];
    layer.weights = linalg::Matrix(out, in);
    const double scale = std::sqrt(2.0 / in);
    for (int r = 0; r < out; ++r) {
      for (int c = 0; c < in; ++c) {
        layer.weights.at(r, c) = rng->NextGaussian(0.0, scale);
      }
    }
    layer.bias.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::vector<double> Mlp::Forward(const std::vector<double>& input) const {
  std::vector<double> current = input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> next = layers_[l].weights.Multiply(current);
    for (size_t i = 0; i < next.size(); ++i) next[i] += layers_[l].bias[i];
    if (l + 1 < layers_.size()) {
      for (double& v : next) v = std::max(0.0, v);  // ReLU
    }
    current = std::move(next);
  }
  return current;
}

void Mlp::ForwardWithActivations(
    const std::vector<double>& input,
    std::vector<std::vector<double>>* activations) const {
  activations->clear();
  activations->push_back(input);
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> next = layers_[l].weights.Multiply(activations->back());
    for (size_t i = 0; i < next.size(); ++i) next[i] += layers_[l].bias[i];
    if (l + 1 < layers_.size()) {
      for (double& v : next) v = std::max(0.0, v);
    }
    activations->push_back(std::move(next));
  }
}

std::vector<double> Mlp::PredictProba(const std::vector<double>& input) const {
  return Softmax(Forward(input));
}

int Mlp::Predict(const std::vector<double>& input) const {
  const std::vector<double> logits = Forward(input);
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                          logits.begin());
}

std::vector<double> Softmax(const std::vector<double>& logits) {
  std::vector<double> probs(logits.size());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

}  // namespace chameleon::nn
