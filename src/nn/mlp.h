#ifndef CHAMELEON_NN_MLP_H_
#define CHAMELEON_NN_MLP_H_

#include <vector>

#include "src/linalg/matrix.h"
#include "src/util/rng.h"

namespace chameleon::nn {

/// Fully-connected feed-forward network with ReLU hidden activations and
/// a linear output layer. Stands in for the paper's Keras CNN in the
/// proof-of-concept classifier and for the NIMA scoring network: both
/// consume embedding/feature vectors, where a dense head is the
/// appropriate architecture.
class Mlp {
 public:
  struct Layer {
    linalg::Matrix weights;    // (out x in)
    std::vector<double> bias;  // (out)
  };

  /// `sizes` = {input, hidden..., output}; weights use He initialization.
  Mlp(const std::vector<int>& sizes, util::Rng* rng);

  int input_size() const { return sizes_.front(); }
  int output_size() const { return sizes_.back(); }
  int num_layers() const { return static_cast<int>(layers_.size()); }

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& mutable_layers() { return layers_; }

  /// Raw output (logits for classification, score for regression).
  std::vector<double> Forward(const std::vector<double>& input) const;

  /// Forward pass keeping post-activation values of every layer
  /// (activations[0] = input, activations.back() = output); used by the
  /// trainer's backward pass.
  void ForwardWithActivations(
      const std::vector<double>& input,
      std::vector<std::vector<double>>* activations) const;

  /// Softmax over Forward().
  std::vector<double> PredictProba(const std::vector<double>& input) const;

  /// argmax class.
  int Predict(const std::vector<double>& input) const;

 private:
  std::vector<int> sizes_;
  std::vector<Layer> layers_;
};

/// Numerically-stable softmax.
std::vector<double> Softmax(const std::vector<double>& logits);

}  // namespace chameleon::nn

#endif  // CHAMELEON_NN_MLP_H_
