#ifndef CHAMELEON_NN_METRICS_H_
#define CHAMELEON_NN_METRICS_H_

#include <cstdint>
#include <vector>

namespace chameleon::nn {

/// Precision/recall/F1 for one class.
struct ClassMetrics {
  int64_t support = 0;
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Full multi-class evaluation report built from predictions and gold
/// labels.
class ClassificationReport {
 public:
  ClassificationReport(const std::vector<int>& gold,
                       const std::vector<int>& predicted, int num_classes);

  int num_classes() const { return static_cast<int>(per_class_.size()); }
  const ClassMetrics& class_metrics(int c) const { return per_class_[c]; }

  /// Micro accuracy: fraction of correct predictions.
  double Accuracy() const;

  /// Unweighted mean over classes with non-zero support.
  double MacroPrecision() const;
  double MacroRecall() const;
  double MacroF1() const;

  /// Support-weighted mean over classes (the paper's "overall" metric
  /// style: dominated by the majority groups).
  double WeightedPrecision() const;
  double WeightedRecall() const;
  double WeightedF1() const;

 private:
  std::vector<ClassMetrics> per_class_;
  int64_t correct_ = 0;
  int64_t total_ = 0;
};

/// p-Disparity(g) = max(0, 1 - rho_g / rho_all) — the unfairness measure
/// of §6.3 (Figure 4). Zero when the group matches or beats the overall
/// performance; 1 when the group's metric is zero.
double Disparity(double group_metric, double overall_metric);

}  // namespace chameleon::nn

#endif  // CHAMELEON_NN_METRICS_H_
