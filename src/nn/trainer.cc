#include "src/nn/trainer.h"

#include <cmath>

namespace chameleon::nn {
namespace {

/// Shared SGD loop. `output_grad_fn(index, output, grad)` fills the
/// gradient of the loss w.r.t. the network output for one example and
/// returns the example's loss.
template <typename OutputGradFn>
util::Result<TrainReport> TrainImpl(Mlp* model, size_t num_examples,
                                    const std::vector<std::vector<double>>& inputs,
                                    const TrainOptions& options,
                                    util::Rng* rng,
                                    OutputGradFn output_grad_fn) {
  if (num_examples == 0) {
    return util::Status::InvalidArgument("no training examples");
  }
  for (const auto& x : inputs) {
    if (static_cast<int>(x.size()) != model->input_size()) {
      return util::Status::InvalidArgument("input dimension mismatch");
    }
  }

  const int num_layers = model->num_layers();
  auto& layers = model->mutable_layers();

  // Momentum buffers mirror the parameter shapes.
  std::vector<linalg::Matrix> weight_velocity;
  std::vector<std::vector<double>> bias_velocity;
  for (const auto& layer : layers) {
    weight_velocity.emplace_back(layer.weights.rows(), layer.weights.cols());
    bias_velocity.emplace_back(layer.bias.size(), 0.0);
  }

  TrainReport report;
  double lr = options.learning_rate;
  std::vector<std::vector<double>> activations;
  std::vector<double> out_grad;

  // Accumulated gradients for the current batch.
  std::vector<linalg::Matrix> weight_grad;
  std::vector<std::vector<double>> bias_grad;
  for (const auto& layer : layers) {
    weight_grad.emplace_back(layer.weights.rows(), layer.weights.cols());
    bias_grad.emplace_back(layer.bias.size(), 0.0);
  }
  auto zero_grads = [&]() {
    for (int l = 0; l < num_layers; ++l) {
      weight_grad[l] = linalg::Matrix(layers[l].weights.rows(),
                                      layers[l].weights.cols());
      std::fill(bias_grad[l].begin(), bias_grad[l].end(), 0.0);
    }
  };
  auto apply_batch = [&](int batch_count) {
    const double inv = 1.0 / batch_count;
    for (int l = 0; l < num_layers; ++l) {
      auto& w = layers[l].weights;
      auto& vw = weight_velocity[l];
      for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t c = 0; c < w.cols(); ++c) {
          const double g = weight_grad[l].at(r, c) * inv +
                           options.l2 * w.at(r, c);
          vw.at(r, c) = options.momentum * vw.at(r, c) - lr * g;
          w.at(r, c) += vw.at(r, c);
        }
      }
      for (size_t i = 0; i < layers[l].bias.size(); ++i) {
        const double g = bias_grad[l][i] * inv;
        bias_velocity[l][i] = options.momentum * bias_velocity[l][i] - lr * g;
        layers[l].bias[i] += bias_velocity[l][i];
      }
    }
  };

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const std::vector<size_t> order = rng->Permutation(num_examples);
    double epoch_loss = 0.0;
    int batch_count = 0;
    zero_grads();
    for (size_t step = 0; step < order.size(); ++step) {
      const size_t idx = order[step];
      model->ForwardWithActivations(inputs[idx], &activations);
      epoch_loss += output_grad_fn(idx, activations.back(), &out_grad);

      // Backward pass: delta starts as dLoss/dOutput.
      std::vector<double> delta = out_grad;
      for (int l = num_layers - 1; l >= 0; --l) {
        const auto& a_in = activations[l];
        // Parameter gradients.
        for (size_t r = 0; r < layers[l].weights.rows(); ++r) {
          const double d = delta[r];
          if (d == 0.0) continue;
          for (size_t c = 0; c < layers[l].weights.cols(); ++c) {
            weight_grad[l].at(r, c) += d * a_in[c];
          }
          bias_grad[l][r] += d;
        }
        if (l == 0) break;
        // Propagate through W^T and the ReLU of the previous layer.
        std::vector<double> prev(layers[l].weights.cols(), 0.0);
        for (size_t r = 0; r < layers[l].weights.rows(); ++r) {
          const double d = delta[r];
          if (d == 0.0) continue;
          for (size_t c = 0; c < layers[l].weights.cols(); ++c) {
            prev[c] += d * layers[l].weights.at(r, c);
          }
        }
        for (size_t c = 0; c < prev.size(); ++c) {
          if (activations[l][c] <= 0.0) prev[c] = 0.0;  // ReLU'
        }
        delta = std::move(prev);
      }

      ++batch_count;
      if (batch_count == options.batch_size || step + 1 == order.size()) {
        apply_batch(batch_count);
        zero_grads();
        batch_count = 0;
      }
    }
    report.epoch_losses.push_back(epoch_loss / num_examples);
    lr *= options.lr_decay;
  }
  report.final_loss =
      report.epoch_losses.empty() ? 0.0 : report.epoch_losses.back();
  return report;
}

}  // namespace

util::Result<TrainReport> TrainClassifier(
    Mlp* model, const std::vector<std::vector<double>>& inputs,
    const std::vector<int>& labels, const TrainOptions& options,
    util::Rng* rng) {
  if (inputs.size() != labels.size()) {
    return util::Status::InvalidArgument("inputs/labels size mismatch");
  }
  const int num_classes = model->output_size();
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return util::Status::InvalidArgument("label out of range");
    }
  }
  return TrainImpl(
      model, inputs.size(), inputs, options, rng,
      [&](size_t idx, const std::vector<double>& output,
          std::vector<double>* grad) {
        const std::vector<double> probs = Softmax(output);
        grad->assign(probs.begin(), probs.end());
        (*grad)[labels[idx]] -= 1.0;  // dCE/dlogits = p - onehot(y)
        const double p = std::max(probs[labels[idx]], 1e-12);
        return -std::log(p);
      });
}

util::Result<TrainReport> TrainRegressor(
    Mlp* model, const std::vector<std::vector<double>>& inputs,
    const std::vector<double>& targets, const TrainOptions& options,
    util::Rng* rng) {
  if (inputs.size() != targets.size()) {
    return util::Status::InvalidArgument("inputs/targets size mismatch");
  }
  if (model->output_size() != 1) {
    return util::Status::InvalidArgument("regressor needs 1 output");
  }
  return TrainImpl(
      model, inputs.size(), inputs, options, rng,
      [&](size_t idx, const std::vector<double>& output,
          std::vector<double>* grad) {
        const double err = output[0] - targets[idx];
        grad->assign(1, err);
        return 0.5 * err * err;
      });
}

}  // namespace chameleon::nn
