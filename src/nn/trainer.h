#ifndef CHAMELEON_NN_TRAINER_H_
#define CHAMELEON_NN_TRAINER_H_

#include <vector>

#include "src/nn/mlp.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::nn {

/// Mini-batch SGD hyper-parameters.
struct TrainOptions {
  int epochs = 60;
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double l2 = 1e-4;
  /// Multiplies the learning rate after each epoch.
  double lr_decay = 0.99;
};

/// Per-epoch training diagnostics.
struct TrainReport {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
};

/// Trains `model` as a softmax classifier with cross-entropy loss.
/// `labels[i]` must be in [0, model->output_size()).
[[nodiscard]] util::Result<TrainReport> TrainClassifier(
    Mlp* model, const std::vector<std::vector<double>>& inputs,
    const std::vector<int>& labels, const TrainOptions& options,
    util::Rng* rng);

/// Trains `model` (single output) with mean-squared-error regression.
[[nodiscard]] util::Result<TrainReport> TrainRegressor(
    Mlp* model, const std::vector<std::vector<double>>& inputs,
    const std::vector<double>& targets, const TrainOptions& options,
    util::Rng* rng);

}  // namespace chameleon::nn

#endif  // CHAMELEON_NN_TRAINER_H_
