#ifndef CHAMELEON_UTIL_THREAD_POOL_H_
#define CHAMELEON_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/util/thread_annotations.h"

namespace chameleon::util {

/// Cumulative execution counters for one pool, snapshotted by stats().
/// Everything here is load/schedule-sensitive diagnostics — callers
/// exporting these as metrics must treat them as unstable across worker
/// counts (obs::IsStableMetric excludes the `threadpool.` namespace).
struct ThreadPoolStats {
  int64_t tasks_submitted = 0;     ///< Submit() calls
  int64_t parallel_for_calls = 0;  ///< ParallelFor[Seeded] invocations
  int64_t chunks_executed = 0;     ///< chunks across all ParallelFors
  int64_t max_queue_depth = 0;     ///< peak pending tasks in the queue
};

/// Fixed-size worker pool shared by the parallel pipeline stages (MUP
/// frontier counting, OCSVM Gram construction and batch scoring, the
/// rejection loop's candidate evaluation).
///
/// Determinism contract: `ParallelFor` splits the index range into chunks
/// whose boundaries depend only on (total, grain) — never on the worker
/// count — and `ParallelForSeeded` derives one Rng per chunk from the base
/// seed serially, in chunk order. A body that writes per-index or
/// per-chunk outputs therefore produces bit-identical results at every
/// `num_threads`, including 1 (which runs inline with no pool traffic).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency() clamped to >= 1.
  static int HardwareConcurrency();

  /// Maps the num_threads convention used by the options structs
  /// (0 = hardware concurrency, otherwise the value clamped to >= 1).
  static int ResolveThreadCount(int num_threads);

  /// Enqueues one task; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> task);

  /// Snapshot of the cumulative execution counters (thread-safe).
  ThreadPoolStats stats() const;

  /// Invokes body(begin, end, chunk) for every chunk [begin, end) of
  /// [0, total) with the given grain. At most num_threads() chunks run
  /// concurrently (the calling thread participates); returns once all
  /// chunks finished. The body must only write state disjoint across
  /// chunks (e.g. per-index slots of a preallocated output).
  void ParallelFor(
      int64_t total, int64_t grain,
      const std::function<void(int64_t, int64_t, int64_t)>& body);

  /// ParallelFor handing each chunk an independent Rng. Chunk seeds are
  /// drawn serially in chunk order from Rng(seed) — the splitmix64-based
  /// seeding makes the per-chunk streams independent and identical at
  /// every worker count.
  void ParallelForSeeded(
      uint64_t seed, int64_t total, int64_t grain,
      const std::function<void(int64_t, int64_t, int64_t, Rng*)>& body);

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_ CHAMELEON_GUARDED_BY(mutex_);
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ CHAMELEON_GUARDED_BY(mutex_) = false;

  // Execution counters. The queue-side pair piggybacks on mutex_ (it is
  // already held where they change); the ParallelFor pair is atomic so
  // stats() never contends with a running loop.
  int64_t tasks_submitted_ CHAMELEON_GUARDED_BY(mutex_) = 0;
  int64_t max_queue_depth_ CHAMELEON_GUARDED_BY(mutex_) = 0;
  std::atomic<int64_t> parallel_for_calls_{0};
  std::atomic<int64_t> chunks_executed_{0};
};

}  // namespace chameleon::util

#endif  // CHAMELEON_UTIL_THREAD_POOL_H_
