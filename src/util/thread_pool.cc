#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace chameleon::util {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::ResolveThreadCount(int num_threads) {
  if (num_threads == 0) return HardwareConcurrency();
  return std::max(1, num_threads);
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
    ++tasks_submitted_;
    max_queue_depth_ = std::max<int64_t>(max_queue_depth_,
                                         static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.tasks_submitted = tasks_submitted_;
    stats.max_queue_depth = max_queue_depth_;
  }
  stats.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
  stats.chunks_executed = chunks_executed_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    int64_t total, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& body) {
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (total + grain - 1) / grain;
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  chunks_executed_.fetch_add(num_chunks, std::memory_order_relaxed);
  auto run_chunk = [&](int64_t chunk) {
    const int64_t begin = chunk * grain;
    const int64_t end = std::min(total, begin + grain);
    body(begin, end, chunk);
  };

  // The calling thread is one of the num_threads() participants, so only
  // num_threads() - 1 helpers are borrowed from the pool.
  const int64_t helpers =
      std::min<int64_t>(num_threads_ - 1, num_chunks - 1);
  if (helpers <= 0) {
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }

  std::atomic<int64_t> next_chunk{0};
  auto drain = [&] {
    for (;;) {
      const int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      run_chunk(chunk);
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (int64_t h = 0; h < helpers; ++h) futures.push_back(Submit(drain));
  drain();
  for (auto& future : futures) future.get();
}

void ThreadPool::ParallelForSeeded(
    uint64_t seed, int64_t total, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t, Rng*)>& body) {
  if (total <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (total + grain - 1) / grain;
  // Drawn serially so every worker count sees the same chunk streams.
  std::vector<uint64_t> chunk_seeds(num_chunks);
  Rng seeder(seed);
  for (auto& s : chunk_seeds) s = seeder.NextU64();
  ParallelFor(total, grain,
              [&](int64_t begin, int64_t end, int64_t chunk) {
                Rng rng(chunk_seeds[chunk]);
                body(begin, end, chunk, &rng);
              });
}

}  // namespace chameleon::util
