#ifndef CHAMELEON_UTIL_THREAD_ANNOTATIONS_H_
#define CHAMELEON_UTIL_THREAD_ANNOTATIONS_H_

/// Thread-safety annotations understood by chameleon-lint's cross-TU
/// pass (DESIGN.md "Cross-TU analysis"). They expand to nothing for the
/// compiler; the analyzer reads them lexically, so no include is
/// strictly required for the tooling to see them — this header exists so
/// the macro has exactly one definition the compiler agrees with.
///
/// Contract: a member declared
///
///   std::deque<Task> queue_ CHAMELEON_GUARDED_BY(mutex_);
///
/// may only be accessed by non-const member functions of the same class
/// while `mutex_` is lexically held via std::lock_guard / unique_lock /
/// scoped_lock / shared_lock in an enclosing scope. Const member
/// functions, constructors and destructors are exempt (read-only or
/// pre/post-sharing by contract — audited manually). The annotation goes
/// between the declarator and the initializer.
#define CHAMELEON_GUARDED_BY(mu)

#endif  // CHAMELEON_UTIL_THREAD_ANNOTATIONS_H_
