#ifndef CHAMELEON_UTIL_STOPWATCH_H_
#define CHAMELEON_UTIL_STOPWATCH_H_

#include <chrono>

namespace chameleon::util {

/// Wall-clock timer for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the epoch to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace chameleon::util

#endif  // CHAMELEON_UTIL_STOPWATCH_H_
