#include "src/util/table_printer.h"

#include <cstdio>
#include <sstream>

namespace chameleon::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += emit_row(header_);
  out += rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Fmt(int64_t value) { return std::to_string(value); }
std::string Fmt(size_t value) { return std::to_string(value); }
std::string Fmt(int value) { return std::to_string(value); }

}  // namespace chameleon::util
