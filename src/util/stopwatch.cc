#include "src/util/stopwatch.h"

namespace chameleon::util {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Stopwatch::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

}  // namespace chameleon::util
