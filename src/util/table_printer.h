#ifndef CHAMELEON_UTIL_TABLE_PRINTER_H_
#define CHAMELEON_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace chameleon::util {

/// Renders aligned ASCII tables for benchmark output, e.g.
///
///   +---------+-------+
///   | group   | f1    |
///   +---------+-------+
///   | Black   | 0.16  |
///   +---------+-------+
///
/// Cells are strings; Fmt() helpers convert numbers.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Writes the table to the given stream.
  void Print(std::ostream& os) const;

  /// Emits rows as CSV (header first).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string Fmt(double value, int decimals = 2);

/// Formats an integer.
std::string Fmt(int64_t value);
std::string Fmt(size_t value);
std::string Fmt(int value);

}  // namespace chameleon::util

#endif  // CHAMELEON_UTIL_TABLE_PRINTER_H_
