#ifndef CHAMELEON_UTIL_RNG_H_
#define CHAMELEON_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chameleon::util {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// splitmix64. Every stochastic component of the library takes an explicit
/// Rng so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size() if all weights are zero or the vector is empty.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent child generator (stable given call order).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace chameleon::util

#endif  // CHAMELEON_UTIL_RNG_H_
