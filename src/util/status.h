#ifndef CHAMELEON_UTIL_STATUS_H_
#define CHAMELEON_UTIL_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>

namespace chameleon::util {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB status idiom: the library never throws; fallible
/// operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  // Transport-level codes for remote backends (foundation models, §2.2).
  // These are the *retryable* family: the request was well-formed but the
  // backend could not serve it right now. See fm::IsTransportError.
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class itself is [[nodiscard]]: any call returning Status by value
/// must be checked (or explicitly voided with a comment explaining why a
/// failure is ignorable). chameleon-lint enforces the same invariant for
/// code paths the compiler cannot see (see tools/analyzer/).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Accessing the value of an
/// errored Result aborts with a diagnostic (programming error). Like
/// Status, Result is [[nodiscard]]: dropping one on the floor silently
/// swallows both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work, mirroring absl::StatusOr.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(repr_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace chameleon::util

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define CHAMELEON_RETURN_NOT_OK(expr)                      \
  do {                                                     \
    ::chameleon::util::Status status_macro_s_ = (expr);    \
    if (!status_macro_s_.ok()) return status_macro_s_;     \
  } while (false)

#endif  // CHAMELEON_UTIL_STATUS_H_
