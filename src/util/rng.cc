#include "src/util/rng.h"

#include <cmath>

namespace chameleon::util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection on the tail.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = radius * std::sin(theta);
  has_spare_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace chameleon::util
