#ifndef CHAMELEON_CORE_GUIDE_SELECTION_H_
#define CHAMELEON_CORE_GUIDE_SELECTION_H_

#include <memory>
#include <vector>

#include "src/bandit/linucb.h"
#include "src/data/dataset.h"
#include "src/data/schema.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::core {

/// Guide-tuple selection strategies (§5).
enum class GuideStrategy {
  kNoGuide,
  kRandomGuide,
  kSimilarTuple,
  kLinUcb,
};

const char* GuideStrategyName(GuideStrategy strategy);

/// A selected guide: a tuple index in the data set plus bookkeeping for
/// bandit feedback.
struct GuideChoice {
  bool has_guide = false;
  size_t tuple_index = 0;
  std::vector<int> guide_values;
  /// The bandit arm (attribute) pulled, for LinUCB; -1 otherwise.
  int arm = -1;
};

/// Strategy interface: stateless strategies ignore ReportReward; LinUCB
/// learns from it.
class GuideSelector {
 public:
  virtual ~GuideSelector() = default;

  /// Picks a guide from `dataset` for the target combination.
  [[nodiscard]] virtual util::Result<GuideChoice> Select(const data::Dataset& dataset,
                                           const std::vector<int>& target,
                                           util::Rng* rng) = 0;

  /// Feedback: whether the generated tuple passed both rejection tests.
  virtual void ReportReward(const std::vector<int>& target,
                            const GuideChoice& choice, bool passed) {
    (void)target;
    (void)choice;
    (void)passed;
  }

  virtual const char* name() const = 0;
};

/// §5 baseline: no guide, the model generates from the prompt alone.
class NoGuideSelector : public GuideSelector {
 public:
  [[nodiscard]] util::Result<GuideChoice> Select(const data::Dataset& dataset,
                                   const std::vector<int>& target,
                                   util::Rng* rng) override;
  const char* name() const override { return "No Guide"; }
};

/// §5.1: a uniformly random tuple, ignoring the target combination.
class RandomGuideSelector : public GuideSelector {
 public:
  [[nodiscard]] util::Result<GuideChoice> Select(const data::Dataset& dataset,
                                   const std::vector<int>& target,
                                   util::Rng* rng) override;
  const char* name() const override { return "Random-Guide"; }
};

/// §5.2: a tuple from a sibling combination that is "similar" (ordinal
/// attributes may differ by at most one step), weighted by the sibling
/// combination's population so every pool tuple is equally likely.
class SimilarTupleSelector : public GuideSelector {
 public:
  explicit SimilarTupleSelector(const data::AttributeSchema& schema);

  [[nodiscard]] util::Result<GuideChoice> Select(const data::Dataset& dataset,
                                   const std::vector<int>& target,
                                   util::Rng* rng) override;
  const char* name() const override { return "Similar-Tuple"; }

  /// The similar-sibling pool of a combination (§5.2's S) — exposed for
  /// tests.
  std::vector<std::vector<int>> SimilarPool(
      const std::vector<int>& target) const;

 private:
  data::AttributeSchema schema_;
};

/// §5.3: contextual multi-armed bandit over attributes (Algorithm 2).
/// Arm a = "modify attribute a of the target"; the guide is a tuple
/// matching the modified combination; reward 1 when the generation
/// passes both rejection tests.
class LinUcbSelector : public GuideSelector {
 public:
  LinUcbSelector(const data::AttributeSchema& schema, double alpha);

  [[nodiscard]] util::Result<GuideChoice> Select(const data::Dataset& dataset,
                                   const std::vector<int>& target,
                                   util::Rng* rng) override;
  void ReportReward(const std::vector<int>& target, const GuideChoice& choice,
                    bool passed) override;
  const char* name() const override { return "LinUCB"; }

  const bandit::LinUcb& bandit() const { return bandit_; }

 private:
  data::AttributeSchema schema_;
  bandit::LinUcb bandit_;
};

/// Factory over the strategy enum.
std::unique_ptr<GuideSelector> MakeGuideSelector(
    GuideStrategy strategy, const data::AttributeSchema& schema,
    double linucb_alpha);

}  // namespace chameleon::core

#endif  // CHAMELEON_CORE_GUIDE_SELECTION_H_
