#include "src/core/guide_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace chameleon::core {
namespace {

// Tuple indices in `dataset` matching a full combination.
std::vector<size_t> TuplesMatching(const data::Dataset& dataset,
                                   const std::vector<int>& values) {
  return dataset.IndicesMatching(data::Pattern(values));
}

util::Result<GuideChoice> PickUniformTuple(const data::Dataset& dataset,
                                           util::Rng* rng) {
  if (dataset.empty()) {
    return util::Status::FailedPrecondition(
        "cannot select a guide from an empty data set");
  }
  GuideChoice choice;
  choice.has_guide = true;
  choice.tuple_index = rng->NextBounded(dataset.size());
  choice.guide_values = dataset.tuple(choice.tuple_index).values;
  return choice;
}

}  // namespace

const char* GuideStrategyName(GuideStrategy strategy) {
  switch (strategy) {
    case GuideStrategy::kNoGuide:
      return "No Guide";
    case GuideStrategy::kRandomGuide:
      return "Random-Guide";
    case GuideStrategy::kSimilarTuple:
      return "Similar-Tuple";
    case GuideStrategy::kLinUcb:
      return "LinUCB";
  }
  return "Unknown";
}

util::Result<GuideChoice> NoGuideSelector::Select(
    const data::Dataset& dataset, const std::vector<int>& target,
    util::Rng* rng) {
  (void)dataset;
  (void)target;
  (void)rng;
  return GuideChoice{};  // has_guide = false
}

util::Result<GuideChoice> RandomGuideSelector::Select(
    const data::Dataset& dataset, const std::vector<int>& target,
    util::Rng* rng) {
  (void)target;
  return PickUniformTuple(dataset, rng);
}

SimilarTupleSelector::SimilarTupleSelector(const data::AttributeSchema& schema)
    : schema_(schema) {}

std::vector<std::vector<int>> SimilarTupleSelector::SimilarPool(
    const std::vector<int>& target) const {
  std::vector<std::vector<int>> pool;
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    const auto& attribute = schema_.attribute(a);
    for (int v = 0; v < attribute.cardinality(); ++v) {
      if (v == target[a]) continue;
      // Siblings differ in exactly one attribute; ordinal siblings must
      // additionally be at distance 1 to be "similar" (§5.2).
      if (attribute.ordinal && std::abs(v - target[a]) > 1) continue;
      std::vector<int> sibling = target;
      sibling[a] = v;
      pool.push_back(std::move(sibling));
    }
  }
  return pool;
}

util::Result<GuideChoice> SimilarTupleSelector::Select(
    const data::Dataset& dataset, const std::vector<int>& target,
    util::Rng* rng) {
  const std::vector<std::vector<int>> pool = SimilarPool(target);
  std::vector<double> weights(pool.size(), 0.0);
  std::vector<std::vector<size_t>> members(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    members[i] = TuplesMatching(dataset, pool[i]);
    weights[i] = static_cast<double>(members[i].size());
  }
  const size_t picked = rng->NextWeighted(weights);
  if (picked >= pool.size()) {
    // Empty pool (no tuple in any similar combination): degrade to the
    // random-guide behaviour rather than failing the repair.
    return PickUniformTuple(dataset, rng);
  }
  GuideChoice choice;
  choice.has_guide = true;
  choice.tuple_index = members[picked][rng->NextBounded(members[picked].size())];
  choice.guide_values = dataset.tuple(choice.tuple_index).values;
  return choice;
}

LinUcbSelector::LinUcbSelector(const data::AttributeSchema& schema,
                               double alpha)
    : schema_(schema),
      bandit_(schema.num_attributes(),
              static_cast<int>(schema.NumCombinations()), alpha) {}

util::Result<GuideChoice> LinUcbSelector::Select(
    const data::Dataset& dataset, const std::vector<int>& target,
    util::Rng* rng) {
  const std::vector<double> context = bandit::LinUcb::OneHotContext(
      bandit_.context_dim(), schema_.CombinationIndex(target));

  // Rank arms by UCB, then take the best arm for which a guide tuple
  // actually exists in the data set.
  std::vector<int> arm_order(bandit_.num_arms());
  std::iota(arm_order.begin(), arm_order.end(), 0);
  std::vector<double> ucb(bandit_.num_arms());
  for (int a = 0; a < bandit_.num_arms(); ++a) {
    ucb[a] = bandit_.UpperConfidenceBound(a, context);
  }
  std::stable_sort(arm_order.begin(), arm_order.end(),
                   [&](int a, int b) { return ucb[a] > ucb[b]; });

  for (int arm : arm_order) {
    const auto& attribute = schema_.attribute(arm);
    // Candidate replacement values on the pulled arm: ordinal arms move
    // one step, unordered arms may jump to any other value.
    std::vector<int> candidate_values;
    if (attribute.ordinal) {
      if (target[arm] - 1 >= 0) candidate_values.push_back(target[arm] - 1);
      if (target[arm] + 1 < attribute.cardinality()) {
        candidate_values.push_back(target[arm] + 1);
      }
    } else {
      for (int v = 0; v < attribute.cardinality(); ++v) {
        if (v != target[arm]) candidate_values.push_back(v);
      }
    }
    // Weight candidate combinations by population for even tuple odds.
    std::vector<double> weights(candidate_values.size(), 0.0);
    std::vector<std::vector<size_t>> members(candidate_values.size());
    for (size_t i = 0; i < candidate_values.size(); ++i) {
      std::vector<int> modified = target;
      modified[arm] = candidate_values[i];
      members[i] = TuplesMatching(dataset, modified);
      weights[i] = static_cast<double>(members[i].size());
    }
    const size_t picked = rng->NextWeighted(weights);
    if (picked >= candidate_values.size()) continue;  // no tuples; next arm

    GuideChoice choice;
    choice.has_guide = true;
    choice.arm = arm;
    choice.tuple_index =
        members[picked][rng->NextBounded(members[picked].size())];
    choice.guide_values = dataset.tuple(choice.tuple_index).values;
    return choice;
  }
  // No arm yields a populated sibling: degrade to a random guide.
  return PickUniformTuple(dataset, rng);
}

void LinUcbSelector::ReportReward(const std::vector<int>& target,
                                  const GuideChoice& choice, bool passed) {
  if (choice.arm < 0) return;
  const std::vector<double> context = bandit::LinUcb::OneHotContext(
      bandit_.context_dim(), schema_.CombinationIndex(target));
  // The context dimension is fixed at construction; Update cannot fail.
  (void)bandit_.Update(choice.arm, context, passed ? 1.0 : 0.0);
}

std::unique_ptr<GuideSelector> MakeGuideSelector(
    GuideStrategy strategy, const data::AttributeSchema& schema,
    double linucb_alpha) {
  switch (strategy) {
    case GuideStrategy::kNoGuide:
      return std::make_unique<NoGuideSelector>();
    case GuideStrategy::kRandomGuide:
      return std::make_unique<RandomGuideSelector>();
    case GuideStrategy::kSimilarTuple:
      return std::make_unique<SimilarTupleSelector>(schema);
    case GuideStrategy::kLinUcb:
      return std::make_unique<LinUcbSelector>(schema, linucb_alpha);
  }
  return nullptr;
}

}  // namespace chameleon::core
