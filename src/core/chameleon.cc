#include "src/core/chameleon.h"

#include <utility>

#include "src/coverage/pattern_counter.h"

namespace chameleon::core {

Chameleon::Chameleon(fm::FoundationModel* model,
                     const embedding::Embedder* embedder,
                     const fm::EvaluatorPool* evaluators,
                     const ChameleonOptions& options)
    : model_(model),
      embedder_(embedder),
      evaluators_(evaluators),
      options_(options) {}

util::Result<int64_t> Chameleon::GenerateAccepted(
    fm::Corpus* corpus, const std::vector<int>& target, int64_t count,
    GuideSelector* selector, const RejectionSampler& sampler,
    RepairReport* report, util::Rng* rng) {
  const data::AttributeSchema& schema = corpus->dataset.schema();
  int64_t accepted_here = 0;
  int64_t attempts = 0;
  const int64_t attempt_cap = options_.max_attempts_per_tuple * count;

  while (accepted_here < count && attempts < attempt_cap &&
         report->queries < options_.max_queries) {
    ++attempts;

    auto choice = selector->Select(corpus->dataset, target, rng);
    if (!choice.ok()) return choice.status();

    fm::GenerationRequest request;
    request.target_values = target;
    request.prompt = fm::BuildPrompt(schema, target);
    image::Image mask;
    if (choice->has_guide) {
      const data::Tuple& guide_tuple = corpus->dataset.tuple(
          choice->tuple_index);
      if (guide_tuple.payload_id < 0) {
        return util::Status::FailedPrecondition(
            "guide tuple has no image payload");
      }
      const image::Image& guide_image =
          corpus->images[guide_tuple.payload_id];
      mask = image::GenerateMask(guide_image, options_.mask_level);
      request.guide = &guide_image;
      request.guide_values = &choice->guide_values;
      request.mask = &mask;
    }

    auto generation = model_->Generate(request, rng);
    if (!generation.ok()) return generation.status();
    ++report->queries;

    const std::vector<double> embedding =
        embedder_->Embed(generation->image);
    const RejectionOutcome outcome =
        sampler.Evaluate(embedding, generation->latent_realism, rng);

    report->distribution_passes += outcome.distribution_pass;
    report->quality_passes += outcome.quality_pass;
    selector->ReportReward(target, *choice, outcome.Passed());

    GenerationRecord record;
    record.target_values = target;
    record.embedding = embedding;
    record.latent_realism = generation->latent_realism;
    record.distribution_pass = outcome.distribution_pass;
    record.quality_pass = outcome.quality_pass;
    record.quality_p_value = outcome.quality_p_value;
    record.decision_value = outcome.decision_value;
    record.arm = choice->arm;
    record.accepted = outcome.Passed();
    report->records.push_back(std::move(record));

    if (!outcome.Passed()) continue;

    data::Tuple tuple;
    tuple.values = target;
    tuple.embedding = embedding;
    tuple.synthetic = true;
    CHAMELEON_RETURN_NOT_OK(corpus->Add(std::move(tuple),
                                        std::move(generation->image),
                                        generation->latent_realism));
    ++report->accepted;
    ++accepted_here;
  }
  return accepted_here;
}

util::Result<RepairReport> Chameleon::RepairMinLevelMups(fm::Corpus* corpus) {
  RepairReport report;
  util::Rng rng(options_.seed);
  const data::AttributeSchema& schema = corpus->dataset.schema();

  // 1. Detect the minimum-level MUPs.
  const coverage::PatternCounter counter =
      coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(schema, counter);
  coverage::MupFinderOptions mup_options;
  mup_options.tau = options_.tau;
  const std::vector<coverage::Mup> all_mups = finder.FindMups(mup_options);
  report.initial_mups = coverage::MupFinder::MinLevel(all_mups);
  if (report.initial_mups.empty()) {
    report.fully_resolved = true;
    return report;
  }
  const int target_level = report.initial_mups[0].Level();

  // 2. Plan the augmentation.
  switch (options_.selection) {
    case SelectionAlgorithm::kGreedy:
      report.plan = GreedySelect(schema, report.initial_mups);
      break;
    case SelectionAlgorithm::kRandom:
      report.plan = RandomSelect(schema, all_mups, target_level, &rng);
      break;
    case SelectionAlgorithm::kMinGap:
      report.plan = MinGapSelect(schema, all_mups, target_level);
      break;
  }

  // 3. Calibrate p and train the distribution test on real tuples.
  report.estimated_p = evaluators_->EstimateRealLabelRate(
      corpus->RealTupleRealism(), options_.p_estimation_samples, &rng);
  if (report.estimated_p <= 0.0) {
    return util::Status::FailedPrecondition(
        "could not estimate p: corpus has no real tuples with payloads");
  }
  std::vector<std::vector<double>> real_embeddings;
  for (const auto& t : corpus->dataset.tuples()) {
    if (!t.synthetic && !t.embedding.empty()) {
      real_embeddings.push_back(t.embedding);
    }
  }
  auto sampler = RejectionSampler::Train(real_embeddings, evaluators_,
                                         report.estimated_p,
                                         options_.rejection);
  if (!sampler.ok()) return sampler.status();

  // 4. Fulfil the plan.
  auto selector = MakeGuideSelector(options_.guide_strategy, schema,
                                    options_.linucb_alpha);
  bool all_filled = true;
  for (const auto& entry : report.plan) {
    auto accepted = GenerateAccepted(corpus, entry.values, entry.count,
                                     selector.get(), *sampler, &report, &rng);
    if (!accepted.ok()) return accepted.status();
    if (*accepted < entry.count) all_filled = false;
  }
  report.fully_resolved = all_filled;
  report.total_cost = static_cast<double>(report.queries) *
                      model_->query_cost();
  return report;
}

}  // namespace chameleon::core
