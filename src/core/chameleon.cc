#include "src/core/chameleon.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/coverage/pattern_counter.h"
#include "src/util/thread_pool.h"

namespace chameleon::core {
namespace {

/// One submitted generation awaiting evaluation. Select/Generate/label
/// draws happen serially at submission (preserving the master rng
/// stream); Embed and the rejection tests are pure and run concurrently.
struct PendingCandidate {
  GuideChoice choice;
  image::Image image;
  double latent_realism = 0.0;
  std::vector<int> quality_labels;
  // Filled by the (possibly parallel) evaluation stage.
  std::vector<double> embedding;
  RejectionOutcome outcome;
};

}  // namespace

Chameleon::Chameleon(fm::FoundationModel* model,
                     const embedding::Embedder* embedder,
                     const fm::EvaluatorPool* evaluators,
                     const ChameleonOptions& options)
    : model_(model),
      embedder_(embedder),
      evaluators_(evaluators),
      options_(options) {}

util::Result<int64_t> Chameleon::GenerateAccepted(
    fm::Corpus* corpus, const std::vector<int>& target, int64_t count,
    GuideSelector* selector, const RejectionSampler& sampler,
    RepairReport* report, util::Rng* rng) {
  const data::AttributeSchema& schema = corpus->dataset.schema();
  int64_t accepted_here = 0;
  int64_t attempts = 0;
  const int64_t attempt_cap = options_.max_attempts_per_tuple * count;
  const int64_t batch_limit =
      std::max<int64_t>(1, options_.rejection_batch);
  const int num_threads =
      util::ThreadPool::ResolveThreadCount(options_.num_threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (batch_limit > 1 && num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
  }

  bool parked = false;
  while (!parked && accepted_here < count && attempts < attempt_cap &&
         report->queries < options_.max_queries) {
    // Never submit more than the caps allow: a batch can accept at most
    // (count - accepted_here), so a capped batch issues exactly the
    // queries the one-at-a-time loop would.
    const int64_t batch = std::min(
        {batch_limit, count - accepted_here, attempt_cap - attempts,
         options_.max_queries - report->queries});

    // Submission: everything that touches the master rng or reads
    // mutable pipeline state runs serially, in the same order the legacy
    // loop consumed the rng stream (Embed and the rejection tests draw
    // nothing, so labels can be pre-drawn).
    std::vector<PendingCandidate> candidates;
    candidates.reserve(batch);
    for (int64_t b = 0; b < batch; ++b) {
      ++attempts;

      auto choice = selector->Select(corpus->dataset, target, rng);
      if (!choice.ok()) return choice.status();

      fm::GenerationRequest request;
      request.target_values = target;
      request.prompt = fm::BuildPrompt(schema, target);
      image::Image mask;
      if (choice->has_guide) {
        const data::Tuple& guide_tuple = corpus->dataset.tuple(
            choice->tuple_index);
        if (guide_tuple.payload_id < 0) {
          return util::Status::FailedPrecondition(
              "guide tuple has no image payload");
        }
        const image::Image& guide_image =
            corpus->images[guide_tuple.payload_id];
        mask = image::GenerateMask(guide_image, options_.mask_level);
        request.guide = &guide_image;
        request.guide_values = &choice->guide_values;
        request.mask = &mask;
      }

      auto generation = model_->Generate(request, rng);
      if (!generation.ok()) {
        // A transport-level failure means the model's resilience layer
        // (retries, breaker) already did what it could: park this plan
        // entry and let the run continue, but evaluate and merge the
        // candidates already submitted in this batch so the accounting
        // and the bandit state stay exactly as if the batch were shorter.
        if (options_.park_failing_entries &&
            fm::IsTransportError(generation.status().code())) {
          ++report->faults.transport_failures;
          report->faults.parked_targets.push_back(target);
          parked = true;
          break;
        }
        return generation.status();
      }
      ++report->queries;

      PendingCandidate candidate;
      candidate.choice = std::move(*choice);
      candidate.image = std::move(generation->image);
      candidate.latent_realism = generation->latent_realism;
      candidate.quality_labels =
          sampler.DrawQualityLabels(candidate.latent_realism, rng);
      candidates.push_back(std::move(candidate));
    }

    // Evaluation: pure per-candidate work, fanned out over the pool.
    // Each candidate writes only its own slot, so the results are
    // bit-identical at every worker count.
    auto evaluate = [&](int64_t begin, int64_t end, int64_t /*chunk*/) {
      for (int64_t i = begin; i < end; ++i) {
        PendingCandidate& c = candidates[i];
        c.embedding = embedder_->Embed(c.image);
        c.outcome = sampler.EvaluateWithLabels(c.embedding, c.quality_labels);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<int64_t>(candidates.size()), 1, evaluate);
    } else {
      evaluate(0, static_cast<int64_t>(candidates.size()), 0);
    }

    // Merge: rewards, records, and corpus growth strictly in submission
    // order, exactly as the serial loop interleaves them.
    for (PendingCandidate& c : candidates) {
      report->distribution_passes += c.outcome.distribution_pass;
      report->quality_passes += c.outcome.quality_pass;
      selector->ReportReward(target, c.choice, c.outcome.Passed());

      GenerationRecord record;
      record.target_values = target;
      record.embedding = c.embedding;
      record.latent_realism = c.latent_realism;
      record.distribution_pass = c.outcome.distribution_pass;
      record.quality_pass = c.outcome.quality_pass;
      record.quality_p_value = c.outcome.quality_p_value;
      record.decision_value = c.outcome.decision_value;
      record.arm = c.choice.arm;
      record.accepted = c.outcome.Passed();
      report->records.push_back(std::move(record));

      if (!c.outcome.Passed()) continue;

      data::Tuple tuple;
      tuple.values = target;
      tuple.embedding = c.embedding;
      tuple.synthetic = true;
      CHAMELEON_RETURN_NOT_OK(corpus->Add(std::move(tuple),
                                          std::move(c.image),
                                          c.latent_realism));
      ++report->accepted;
      ++accepted_here;
    }
  }
  return accepted_here;
}

util::Result<RepairReport> Chameleon::RepairMinLevelMups(fm::Corpus* corpus) {
  RepairReport report;
  util::Rng rng(options_.seed);
  const data::AttributeSchema& schema = corpus->dataset.schema();
  model_->OnRunStart();

  // 1. Detect the minimum-level MUPs.
  auto counter = coverage::PatternCounter::FromDataset(corpus->dataset);
  if (!counter.ok()) return counter.status();
  coverage::MupFinder finder(schema, *counter);
  coverage::MupFinderOptions mup_options;
  mup_options.tau = options_.tau;
  mup_options.num_threads = options_.num_threads;
  const std::vector<coverage::Mup> all_mups = finder.FindMups(mup_options);
  report.initial_mups = coverage::MupFinder::MinLevel(all_mups);
  if (report.initial_mups.empty()) {
    report.fully_resolved = true;
    return report;
  }
  const int target_level = report.initial_mups[0].Level();

  // 2. Plan the augmentation.
  switch (options_.selection) {
    case SelectionAlgorithm::kGreedy:
      report.plan = GreedySelect(schema, report.initial_mups);
      break;
    case SelectionAlgorithm::kRandom:
      report.plan = RandomSelect(schema, all_mups, target_level, &rng);
      break;
    case SelectionAlgorithm::kMinGap:
      report.plan = MinGapSelect(schema, all_mups, target_level);
      break;
  }

  // 3. Calibrate p and train the distribution test on real tuples.
  report.estimated_p = evaluators_->EstimateRealLabelRate(
      corpus->RealTupleRealism(), options_.p_estimation_samples, &rng);
  if (report.estimated_p <= 0.0) {
    return util::Status::FailedPrecondition(
        "could not estimate p: corpus has no real tuples with payloads");
  }
  std::vector<std::vector<double>> real_embeddings;
  for (const auto& t : corpus->dataset.tuples()) {
    if (!t.synthetic && !t.embedding.empty()) {
      real_embeddings.push_back(t.embedding);
    }
  }
  auto sampler = RejectionSampler::Train(real_embeddings, evaluators_,
                                         report.estimated_p,
                                         options_.rejection);
  if (!sampler.ok()) return sampler.status();

  // 4. Fulfil the plan.
  auto selector = MakeGuideSelector(options_.guide_strategy, schema,
                                    options_.linucb_alpha);
  bool all_filled = true;
  for (const auto& entry : report.plan) {
    auto accepted = GenerateAccepted(corpus, entry.values, entry.count,
                                     selector.get(), *sampler, &report, &rng);
    if (!accepted.ok()) return accepted.status();
    if (*accepted < entry.count) all_filled = false;
  }
  report.fully_resolved = all_filled;
  report.total_cost = static_cast<double>(report.queries) *
                      model_->query_cost();
  // Snapshot what the model's resilience layer (if any) absorbed, so
  // benches and operators can see the faults behind the numbers.
  if (const fm::FaultTelemetry* telemetry = model_->fault_telemetry()) {
    report.faults.transport = *telemetry;
  }
  return report;
}

}  // namespace chameleon::core
