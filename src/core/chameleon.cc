#include "src/core/chameleon.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/coverage/pattern_counter.h"
#include "src/fm/batching.h"
#include "src/fm/deadline.h"
#include "src/obs/observability.h"
#include "src/util/thread_pool.h"

namespace chameleon::core {
namespace {

/// One submitted request awaiting its transport result. Select runs
/// serially at submission; generation and label draws come from two
/// streams forked off the master rng at submission time, so neither the
/// transport grouping nor the dispatch order can change any draw. The
/// request's guide_values/mask pointers alias `choice`/`mask`, so the
/// struct must stay put once enqueued — the submission vector reserves
/// the whole round up front.
struct PendingGeneration {
  GuideChoice choice;
  fm::GenerationRequest request;
  image::Image mask;
  util::Rng gen_rng;
  util::Rng label_rng;
  fm::BatchCoalescer::Slot result;
};

/// One generated candidate awaiting evaluation. Embed and the rejection
/// tests are pure and run concurrently.
struct PendingCandidate {
  GuideChoice choice;
  image::Image image;
  double latent_realism = 0.0;
  int backend = -1;
  std::vector<int> quality_labels;
  // Filled by the (possibly parallel) evaluation stage.
  std::vector<double> embedding;
  RejectionOutcome outcome;
};

/// Renders a plan-entry target as "v0,v1,..." for journal events.
std::string FormatTarget(const std::vector<int>& target) {
  std::string out;
  for (size_t i = 0; i < target.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(target[i]);
  }
  return out;
}

/// Instrument handles for the generate→reject loop, resolved once per
/// GenerateAccepted call (Registry lookups are mutex-guarded — its
/// instrument maps carry CHAMELEON_GUARDED_BY(mutex_), enforced by
/// chameleon-lint's lock-discipline rule; the loop itself must only pay
/// atomic increments on the returned handles). All null when
/// observability is off.
struct LoopInstruments {
  obs::Counter* fm_queries = nullptr;
  obs::Counter* fm_parked = nullptr;
  obs::Counter* guide_with = nullptr;
  obs::Counter* guide_without = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* rejected_distribution = nullptr;
  obs::Counter* rejected_quality = nullptr;
  obs::Counter* rejected_both = nullptr;
  obs::Histogram* decision_value = nullptr;
  obs::Histogram* quality_p = nullptr;

  explicit LoopInstruments(obs::Registry* registry) {
    fm_queries = registry->Counter("fm.queries");
    fm_parked = registry->Counter("fm.parked");
    guide_with = registry->Counter("guide.with_guide");
    guide_without = registry->Counter("guide.no_guide");
    accepted = registry->Counter("rejection.accepted");
    rejected = registry->Counter("rejection.rejected");
    rejected_distribution = registry->Counter("rejection.rejected_distribution");
    rejected_quality = registry->Counter("rejection.rejected_quality");
    rejected_both = registry->Counter("rejection.rejected_both");
    decision_value = registry->Histogram(
        "rejection.decision_value", {-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0});
    quality_p = registry->Histogram(
        "rejection.quality_p", {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
  }
};

}  // namespace

Chameleon::Chameleon(fm::FoundationModel* model,
                     const embedding::Embedder* embedder,
                     const fm::EvaluatorPool* evaluators,
                     const ChameleonOptions& options)
    : model_(model),
      embedder_(embedder),
      evaluators_(evaluators),
      options_(options) {}

util::Result<int64_t> Chameleon::GenerateAccepted(
    fm::Corpus* corpus, const std::vector<int>& target, int64_t count,
    GuideSelector* selector, const RejectionSampler& sampler,
    RepairReport* report, util::Rng* rng) {
  const data::AttributeSchema& schema = corpus->dataset.schema();
  int64_t accepted_here = 0;
  int64_t attempts = 0;
  const int64_t attempt_cap = options_.max_attempts_per_tuple * count;
  const int64_t batch_limit =
      std::max<int64_t>(1, options_.rejection_batch);
  const int num_threads =
      util::ThreadPool::ResolveThreadCount(options_.num_threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (batch_limit > 1 && num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
  }

  obs::Observability* const obs = options_.observability;

  // Transport batching (DESIGN.md §11): 0 follows rejection_batch, 1 is
  // the legacy one-dispatch-per-query wire shape. The coalescer is
  // force-flushed at the end of every round (evaluation needs the
  // results), so the window/size triggers only fire mid-round.
  const int64_t fm_batch =
      options_.fm_batch_size > 0 ? options_.fm_batch_size : batch_limit;
  std::optional<fm::BatchCoalescer> coalescer;
  if (fm_batch > 1) {
    fm::BatchCoalescerOptions coalescer_options;
    coalescer_options.max_batch_size =
        static_cast<int>(std::min<int64_t>(fm_batch, 4096));
    coalescer_options.window_ms = options_.batch_window_ms;
    coalescer.emplace(model_, coalescer_options, obs);
  }
  std::optional<LoopInstruments> metrics;
  std::optional<obs::Span> entry_span;
  if (obs != nullptr) {
    metrics.emplace(&obs->registry);
    entry_span.emplace(obs->tracer.StartSpan("plan.entry"));
    obs->journal.Record(obs::JournalEvent("plan.entry")
                            .Set("target", FormatTarget(target))
                            .Set("count", count));
  }

  bool parked = false;
  // Accepted values of the current round, replayed into the streaming MUP
  // index after the merge (incremental_coverage mode only).
  std::vector<std::vector<int>> merged_accepted;
  while (!parked && accepted_here < count && attempts < attempt_cap &&
         report->queries < options_.max_queries) {
    // Deadline/cancel check at the round boundary: once the request's
    // budget is gone (or a cancel frame landed), park this entry — it
    // keeps whatever it accepted so far — and let the caller park the
    // rest of the plan. Checking only between rounds keeps the partial
    // report deterministic: a round either fully merges or never starts.
    if (options_.deadline != nullptr && options_.deadline->ShouldStop()) {
      report->faults.parked_targets.push_back(target);
      parked = true;
      if (obs != nullptr) {
        metrics->fm_parked->Increment();
        obs->journal.Record(
            obs::JournalEvent("fm.parked")
                .Set("target", FormatTarget(target))
                .Set("code", options_.deadline->Cancelled()
                                 ? "cancelled"
                                 : "deadline_exceeded"));
      }
      break;
    }
    // Never submit more than the caps allow: a batch can accept at most
    // (count - accepted_here), so a capped batch issues exactly the
    // queries the one-at-a-time loop would.
    const int64_t batch = std::min(
        {batch_limit, count - accepted_here, attempt_cap - attempts,
         options_.max_queries - report->queries});

    std::optional<obs::Span> batch_span;
    if (obs != nullptr) {
      batch_span.emplace(obs->tracer.StartSpan("rejection.batch"));
    }

    // Submission: everything that touches the master rng or reads
    // mutable pipeline state runs serially, in the same order at every
    // transport batch size. Each request forks a generation stream and a
    // label stream off the master rng at submission, so grouping the
    // dispatches differently cannot change any draw (DESIGN.md §11).
    std::vector<PendingGeneration> submissions;
    submissions.reserve(batch);
    for (int64_t b = 0; b < batch; ++b) {
      ++attempts;

      auto choice = selector->Select(corpus->dataset, target, rng);
      if (!choice.ok()) return choice.status();
      if (obs != nullptr) {
        (choice->has_guide ? metrics->guide_with : metrics->guide_without)
            ->Increment();
        obs->registry.Counter("guide.arm." + std::to_string(choice->arm))
            ->Increment();
        obs->journal.Record(obs::JournalEvent("fm.query")
                                .Set("target", FormatTarget(target))
                                .Set("arm", choice->arm)
                                .Set("guided", choice->has_guide));
      }

      submissions.emplace_back();
      PendingGeneration& sub = submissions.back();
      sub.choice = std::move(*choice);
      sub.request.target_values = target;
      sub.request.prompt = fm::BuildPrompt(schema, target);
      if (sub.choice.has_guide) {
        const data::Tuple& guide_tuple = corpus->dataset.tuple(
            sub.choice.tuple_index);
        if (guide_tuple.payload_id < 0) {
          return util::Status::FailedPrecondition(
              "guide tuple has no image payload");
        }
        // Stable for the round: the corpus only grows at the merge below.
        const image::Image& guide_image =
            corpus->images[guide_tuple.payload_id];
        sub.mask = image::GenerateMask(guide_image, options_.mask_level);
        sub.request.guide = &guide_image;
        sub.request.guide_values = &sub.choice.guide_values;
        sub.request.mask = &sub.mask;
      }
      sub.gen_rng = rng->Fork();
      sub.label_rng = rng->Fork();

      // `fm.queries` counts issued queries — incremented before the
      // dispatch so it equals FoundationModel::num_queries() whatever the
      // outcome (the contract test in chameleon_test.cc pins both).
      if (obs != nullptr) metrics->fm_queries->Increment();
      if (coalescer.has_value()) {
        CHAMELEON_RETURN_NOT_OK(
            coalescer->Enqueue(&sub.request, &sub.gen_rng, &sub.result));
      } else {
        sub.result = model_->Generate(sub.request, &sub.gen_rng);
        if (!sub.result->ok()) {
          // Legacy wire shape: stop submitting at the first transport
          // failure; the processing loop below parks it. Terminal codes
          // abort the run outright.
          if (options_.park_failing_entries &&
              fm::IsTransportError(sub.result->status().code())) {
            break;
          }
          return sub.result->status();
        }
      }
    }
    if (coalescer.has_value()) CHAMELEON_RETURN_NOT_OK(coalescer->Flush());

    // Transport results, in submission order. A transport failure means
    // the model's resilience layer (retries, breaker) already did what
    // it could: park this plan entry and let the run continue, but still
    // evaluate and merge this round's successful candidates so the
    // accounting and the bandit state stay exactly as if the round were
    // smaller.
    std::vector<PendingCandidate> candidates;
    candidates.reserve(submissions.size());
    for (PendingGeneration& sub : submissions) {
      if (!sub.result.has_value()) {
        return util::Status::Internal(
            "generation batch left a request unanswered");
      }
      if (!sub.result->ok()) {
        const util::Status& failure = sub.result->status();
        if (options_.park_failing_entries &&
            fm::IsTransportError(failure.code())) {
          ++report->faults.transport_failures;
          if (!parked) report->faults.parked_targets.push_back(target);
          parked = true;
          if (obs != nullptr) {
            metrics->fm_parked->Increment();
            obs->journal.Record(
                obs::JournalEvent("fm.parked")
                    .Set("target", FormatTarget(target))
                    .Set("code", util::StatusCodeName(failure.code())));
          }
          continue;
        }
        return failure;
      }
      ++report->queries;

      fm::GenerationResult generation = std::move(**sub.result);
      PendingCandidate candidate;
      candidate.choice = std::move(sub.choice);
      candidate.image = std::move(generation.image);
      candidate.latent_realism = generation.latent_realism;
      candidate.backend = generation.backend;
      candidate.quality_labels = sampler.DrawQualityLabels(
          candidate.latent_realism, &sub.label_rng);
      candidates.push_back(std::move(candidate));
    }

    // Evaluation: pure per-candidate work, fanned out over the pool.
    // Each candidate writes only its own slot, so the results are
    // bit-identical at every worker count.
    auto evaluate = [&](int64_t begin, int64_t end, int64_t /*chunk*/) {
      for (int64_t i = begin; i < end; ++i) {
        PendingCandidate& c = candidates[i];
        c.embedding = embedder_->Embed(c.image);
        c.outcome = sampler.EvaluateWithLabels(c.embedding, c.quality_labels);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<int64_t>(candidates.size()), 1, evaluate);
    } else {
      evaluate(0, static_cast<int64_t>(candidates.size()), 0);
    }

    // Merge: rewards, records, and corpus growth strictly in submission
    // order, exactly as the serial loop interleaves them.
    for (PendingCandidate& c : candidates) {
      report->distribution_passes += c.outcome.distribution_pass;
      report->quality_passes += c.outcome.quality_pass;
      selector->ReportReward(target, c.choice, c.outcome.Passed());
      // Routing feedback, strictly in submission order: a learning
      // router (BackendPool + LinUCB) must see the same update sequence
      // at every thread count and transport batch size.
      model_->ReportOutcome(c.backend, c.outcome.Passed());

      if (obs != nullptr) {
        metrics->decision_value->Observe(c.outcome.decision_value);
        metrics->quality_p->Observe(c.outcome.quality_p_value);
        if (c.outcome.Passed()) {
          metrics->accepted->Increment();
          obs->journal.Record(obs::JournalEvent("tuple.accepted")
                                  .Set("target", FormatTarget(target))
                                  .Set("arm", c.choice.arm));
        } else {
          metrics->rejected->Increment();
          const char* reason =
              !c.outcome.distribution_pass && !c.outcome.quality_pass
                  ? "both"
                  : (!c.outcome.distribution_pass ? "distribution"
                                                  : "quality");
          if (!c.outcome.distribution_pass && !c.outcome.quality_pass) {
            metrics->rejected_both->Increment();
          } else if (!c.outcome.distribution_pass) {
            metrics->rejected_distribution->Increment();
          } else {
            metrics->rejected_quality->Increment();
          }
          obs->journal.Record(obs::JournalEvent("tuple.rejected")
                                  .Set("target", FormatTarget(target))
                                  .Set("arm", c.choice.arm)
                                  .Set("reason", reason));
        }
      }

      GenerationRecord record;
      record.target_values = target;
      record.embedding = c.embedding;
      record.latent_realism = c.latent_realism;
      record.distribution_pass = c.outcome.distribution_pass;
      record.quality_pass = c.outcome.quality_pass;
      record.quality_p_value = c.outcome.quality_p_value;
      record.decision_value = c.outcome.decision_value;
      record.arm = c.choice.arm;
      record.accepted = c.outcome.Passed();
      report->records.push_back(std::move(record));

      if (!c.outcome.Passed()) continue;

      data::Tuple tuple;
      tuple.values = target;
      tuple.embedding = c.embedding;
      tuple.synthetic = true;
      CHAMELEON_RETURN_NOT_OK(corpus->Add(std::move(tuple),
                                          std::move(c.image),
                                          c.latent_realism));
      ++report->accepted;
      ++accepted_here;
      if (incremental_index_.has_value()) merged_accepted.push_back(target);
    }

    // Patch the maintained MUP frontier with this round's merged batch,
    // keeping the index in lockstep with the corpus it validated against
    // (the batch is one InsertBatch: the MUP set is a pure function of
    // the materialized dataset, so batching is exact).
    if (!merged_accepted.empty()) {
      CHAMELEON_RETURN_NOT_OK(
          incremental_index_->InsertBatch(merged_accepted));
      merged_accepted.clear();
    }
  }

  // Fold this entry's pool activity into the threadpool.* metrics
  // (unstable across worker counts by nature; obs::IsStableMetric
  // excludes the whole namespace from the determinism contract).
  if (obs != nullptr && pool != nullptr) {
    const util::ThreadPoolStats stats = pool->stats();
    obs->registry.Counter("threadpool.tasks_submitted")
        ->Increment(stats.tasks_submitted);
    obs->registry.Counter("threadpool.parallel_for_calls")
        ->Increment(stats.parallel_for_calls);
    obs->registry.Counter("threadpool.chunks_executed")
        ->Increment(stats.chunks_executed);
    obs->registry.Gauge("threadpool.workers")
        ->Set(static_cast<double>(pool->num_threads()));
    obs::Gauge* depth = obs->registry.Gauge("threadpool.max_queue_depth");
    if (static_cast<double>(stats.max_queue_depth) > depth->value()) {
      depth->Set(static_cast<double>(stats.max_queue_depth));
    }
  }
  return accepted_here;
}

util::Result<RepairReport> Chameleon::RepairMinLevelMups(fm::Corpus* corpus) {
  RepairReport report;
  util::Rng rng(options_.seed);
  const data::AttributeSchema& schema = corpus->dataset.schema();
  model_->OnRunStart();
  model_->set_backend_router(options_.backend_router);
  model_->set_deadline(options_.deadline);

  obs::Observability* const obs = options_.observability;
  model_->set_observability(obs);
  if (obs != nullptr) report.request_id = obs->request_id;
  std::optional<obs::Span> run_span;
  if (obs != nullptr) {
    run_span.emplace(obs->tracer.StartSpan("repair.run"));
    // Deliberately no num_threads / rejection_batch here: the journal of
    // a fixed configuration must be byte-identical at every thread count.
    obs->journal.Record(obs::JournalEvent("run.start")
                            .Set("tau", options_.tau)
                            .Set("seed", static_cast<int64_t>(options_.seed)));
  }
  auto journal_run_end = [&] {
    if (obs == nullptr) return;
    obs->registry.Gauge("run.fully_resolved")
        ->Set(report.fully_resolved ? 1.0 : 0.0);
    obs->registry.Gauge("run.total_cost")->Set(report.total_cost);
    obs->journal.Record(obs::JournalEvent("run.end")
                            .Set("queries", report.queries)
                            .Set("accepted", report.accepted)
                            .Set("parked", report.faults.parked_entries())
                            .Set("fully_resolved", report.fully_resolved));
  };

  // 1. Detect the minimum-level MUPs: one full lattice traversal by
  // default, or a consult of the maintained frontier in incremental mode
  // (DESIGN.md §14 — built on first use or adopted warm, then patched in
  // place with every merged batch of accepted tuples).
  std::vector<coverage::Mup> all_mups;
  if (options_.incremental_coverage) {
    const bool reusable =
        incremental_index_.has_value() &&
        incremental_index_->tau() == options_.tau &&
        incremental_index_->num_tuples() ==
            static_cast<int64_t>(corpus->dataset.size()) &&
        incremental_index_->SchemaMatches(schema);
    if (!reusable) {
      coverage::IncrementalMupOptions index_options;
      index_options.tau = options_.tau;
      index_options.num_threads = options_.num_threads;
      auto index = coverage::IncrementalMupIndex::FromDataset(corpus->dataset,
                                                              index_options);
      if (!index.ok()) return index.status();
      incremental_index_ = *std::move(index);
    }
    // From here the index observes into this run's registry — a warm
    // clone must not keep reporting to the request it was built under.
    incremental_index_->set_observability(obs);
    all_mups = incremental_index_->Mups();
    if (obs != nullptr) {
      // Mirror FindMups' recording so dashboards read the same signals
      // in either mode (mup.count_queries aside: a consult issues none).
      obs->registry.Counter("mup.found")->Increment(
          static_cast<int64_t>(all_mups.size()));
      for (const coverage::Mup& mup : all_mups) {
        obs->journal.Record(obs::JournalEvent("mup.found")
                                .Set("pattern", mup.pattern.ToString())
                                .Set("count", mup.count)
                                .Set("gap", mup.gap));
      }
    }
  } else {
    auto counter = coverage::PatternCounter::FromDataset(corpus->dataset);
    if (!counter.ok()) return counter.status();
    coverage::MupFinder finder(schema, *counter);
    coverage::MupFinderOptions mup_options;
    mup_options.tau = options_.tau;
    mup_options.num_threads = options_.num_threads;
    mup_options.observability = obs;
    all_mups = finder.FindMups(mup_options);
  }
  report.initial_mups = coverage::MupFinder::MinLevel(all_mups);
  if (report.initial_mups.empty()) {
    report.fully_resolved = true;
    journal_run_end();
    return report;
  }
  const int target_level = report.initial_mups[0].Level();
  if (obs != nullptr) {
    obs->registry.Gauge("mup.min_level")
        ->Set(static_cast<double>(target_level));
  }

  // 2. Plan the augmentation.
  {
    std::optional<obs::Span> span;
    if (obs != nullptr) span.emplace(obs->tracer.StartSpan("plan.select"));
    switch (options_.selection) {
      case SelectionAlgorithm::kGreedy:
        report.plan = GreedySelect(schema, report.initial_mups);
        break;
      case SelectionAlgorithm::kRandom:
        report.plan = RandomSelect(schema, all_mups, target_level, &rng);
        break;
      case SelectionAlgorithm::kMinGap:
        report.plan = MinGapSelect(schema, all_mups, target_level);
        break;
    }
  }
  if (obs != nullptr) {
    int64_t tuples_required = 0;
    for (const auto& entry : report.plan) tuples_required += entry.count;
    obs->registry.Gauge("plan.entries")
        ->Set(static_cast<double>(report.plan.size()));
    obs->registry.Gauge("plan.tuples_required")
        ->Set(static_cast<double>(tuples_required));
  }

  // 3. Calibrate p and train the distribution test on real tuples.
  std::optional<obs::Span> train_span;
  if (obs != nullptr) train_span.emplace(obs->tracer.StartSpan("sampler.train"));
  report.estimated_p = evaluators_->EstimateRealLabelRate(
      corpus->RealTupleRealism(), options_.p_estimation_samples, &rng);
  if (report.estimated_p <= 0.0) {
    return util::Status::FailedPrecondition(
        "could not estimate p: corpus has no real tuples with payloads");
  }
  std::vector<std::vector<double>> real_embeddings;
  for (const auto& t : corpus->dataset.tuples()) {
    if (!t.synthetic && !t.embedding.empty()) {
      real_embeddings.push_back(t.embedding);
    }
  }
  auto sampler = RejectionSampler::Train(real_embeddings, evaluators_,
                                         report.estimated_p,
                                         options_.rejection);
  if (!sampler.ok()) return sampler.status();
  if (obs != nullptr) {
    train_span->End();
    obs->registry.Gauge("run.estimated_p")->Set(report.estimated_p);
  }

  // 4. Fulfil the plan.
  auto selector = MakeGuideSelector(options_.guide_strategy, schema,
                                    options_.linucb_alpha);
  bool all_filled = true;
  for (const auto& entry : report.plan) {
    auto accepted = GenerateAccepted(corpus, entry.values, entry.count,
                                     selector.get(), *sampler, &report, &rng);
    if (!accepted.ok()) return accepted.status();
    if (*accepted < entry.count) all_filled = false;
  }
  // A tripped deadline parks every entry it reaches (GenerateAccepted
  // checks it before each round, so untouched entries park without
  // issuing a single query); record why the run stopped early.
  if (options_.deadline != nullptr) {
    report.cancelled = options_.deadline->Cancelled();
    report.deadline_expired = options_.deadline->Expired();
  }
  report.fully_resolved = all_filled;
  report.total_cost = static_cast<double>(report.queries) *
                      model_->query_cost();
  // Snapshot what the model's resilience layer (if any) absorbed, so
  // benches and operators can see the faults behind the numbers.
  if (const fm::FaultTelemetry* telemetry = model_->fault_telemetry()) {
    report.faults.transport = *telemetry;
    if (obs != nullptr) {
      obs::Registry* r = &obs->registry;
      r->Gauge("fm.transport.attempts")
          ->Set(static_cast<double>(telemetry->attempts));
      r->Gauge("fm.transport.retries")
          ->Set(static_cast<double>(telemetry->retries));
      r->Gauge("fm.transport.faults_masked")
          ->Set(static_cast<double>(telemetry->faults_masked));
      r->Gauge("fm.transport.malformed_results")
          ->Set(static_cast<double>(telemetry->malformed_results));
      r->Gauge("fm.transport.failed_queries")
          ->Set(static_cast<double>(telemetry->failed_queries));
      r->Gauge("fm.transport.fail_fast_rejections")
          ->Set(static_cast<double>(telemetry->fail_fast_rejections));
      r->Gauge("fm.transport.breaker_opens")
          ->Set(static_cast<double>(telemetry->breaker_opens));
      r->Gauge("fm.transport.breaker_reopens")
          ->Set(static_cast<double>(telemetry->breaker_reopens));
      r->Gauge("fm.transport.breaker_closes")
          ->Set(static_cast<double>(telemetry->breaker_closes));
      r->Gauge("fm.transport.backoff_ms")->Set(telemetry->backoff_ms);
    }
  }
  journal_run_end();
  return report;
}

}  // namespace chameleon::core
