#ifndef CHAMELEON_CORE_REJECTION_SAMPLER_H_
#define CHAMELEON_CORE_REJECTION_SAMPLER_H_

#include <utility>
#include <vector>

#include "src/fm/evaluator_pool.h"
#include "src/stats/t_test.h"
#include "src/svm/one_class_svm.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::core {

/// Configuration of the two rejection tests (§3).
struct RejectionSamplerOptions {
  /// Data distribution test (§3.1): OCSVM over embeddings; the paper
  /// evaluates nu = 0.3 with linear and RBF kernels.
  svm::OneClassSvmOptions svm;
  /// Quality test (§3.2) significance level alpha. 0.1 ~ majority vote,
  /// 0.4 ~ unanimity (Table 4 evaluates both).
  double quality_alpha = 0.1;
  /// N: the small fixed evaluation budget per generated tuple.
  int evaluations_per_tuple = 5;
};

/// Joint outcome of one generated tuple's rejection-sampling round.
struct RejectionOutcome {
  bool distribution_pass = false;
  bool quality_pass = false;
  double decision_value = 0.0;  // OCSVM f(v)
  double quality_p_value = 1.0;

  bool Passed() const { return distribution_pass && quality_pass; }
};

/// Implements §3: a generated tuple is accepted only if it passes the
/// OCSVM data distribution test AND the t-test-based quality test against
/// the real-tuple label rate p.
class RejectionSampler {
 public:
  /// Trains the OCSVM on the real tuples' embeddings and fixes p (the
  /// estimated rate at which evaluators label real tuples realistic).
  [[nodiscard]] static util::Result<RejectionSampler> Train(
      const std::vector<std::vector<double>>& real_embeddings,
      const fm::EvaluatorPool* evaluators, double real_label_rate_p,
      const RejectionSamplerOptions& options);

  /// The data distribution test alone.
  bool DistributionTest(const std::vector<double>& embedding) const;

  /// The quality test alone: draws N evaluator labels for a tuple of the
  /// given latent realism and runs the lower-tail t-test against p.
  stats::TTestResult QualityTest(double latent_realism, util::Rng* rng) const;

  /// Draws the N evaluator labels for one tuple — the only rng-consuming
  /// part of Evaluate, split out so a batched pipeline can draw labels
  /// serially (preserving the master rng stream) and run the pure
  /// EvaluateWithLabels part concurrently.
  std::vector<int> DrawQualityLabels(double latent_realism,
                                     util::Rng* rng) const;

  /// Both tests on pre-drawn labels. Pure and thread-safe: no rng, no
  /// mutable state.
  RejectionOutcome EvaluateWithLabels(const std::vector<double>& embedding,
                                      const std::vector<int>& labels) const;

  /// Both tests. Equivalent to EvaluateWithLabels(embedding,
  /// DrawQualityLabels(latent_realism, rng)).
  RejectionOutcome Evaluate(const std::vector<double>& embedding,
                            double latent_realism, util::Rng* rng) const;

  const svm::OneClassSvm& svm_model() const { return svm_; }
  double real_label_rate() const { return p_; }
  const RejectionSamplerOptions& options() const { return options_; }

 private:
  RejectionSampler(svm::OneClassSvm svm_model,
                   const fm::EvaluatorPool* evaluators, double p,
                   RejectionSamplerOptions options)
      : svm_(std::move(svm_model)),
        evaluators_(evaluators),
        p_(p),
        options_(options) {}

  svm::OneClassSvm svm_;
  const fm::EvaluatorPool* evaluators_;
  double p_;
  RejectionSamplerOptions options_;
};

}  // namespace chameleon::core

#endif  // CHAMELEON_CORE_REJECTION_SAMPLER_H_
