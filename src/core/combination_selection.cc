#include "src/core/combination_selection.h"

#include <algorithm>
#include <limits>
#include <map>

namespace chameleon::core {
namespace {

// Full enumeration is used when the combination space is this small;
// beyond it, candidates are derived from MUP-pattern merges.
constexpr int64_t kEnumerationLimit = 100000;

// A full-level completion of a pattern (unspecified cells -> value 0).
std::vector<int> CompletePattern(const data::Pattern& pattern) {
  std::vector<int> values(pattern.num_attributes());
  for (int i = 0; i < pattern.num_attributes(); ++i) {
    values[i] = pattern.IsSpecified(i) ? pattern.cell(i) : 0;
  }
  return values;
}

// Tries to merge two patterns: succeeds when they agree on every
// attribute both specify. The merge specifies the union.
bool MergePatterns(const data::Pattern& a, const data::Pattern& b,
                   data::Pattern* merged) {
  std::vector<int> cells(a.num_attributes());
  for (int i = 0; i < a.num_attributes(); ++i) {
    const int ca = a.cell(i);
    const int cb = b.cell(i);
    if (ca != data::Pattern::kUnspecified &&
        cb != data::Pattern::kUnspecified && ca != cb) {
      return false;
    }
    cells[i] = ca != data::Pattern::kUnspecified ? ca : cb;
  }
  *merged = data::Pattern(std::move(cells));
  return true;
}

// Number of remaining MUPs a combination matches.
int CountMatches(const std::vector<int>& values,
                 const std::vector<coverage::Mup>& mups) {
  int matches = 0;
  for (const auto& m : mups) matches += m.pattern.Matches(values);
  return matches;
}

// The greedy step: the combination matching the most remaining MUPs.
std::vector<int> FindBestCombination(const data::AttributeSchema& schema,
                                     const std::vector<coverage::Mup>& mups) {
  if (schema.NumCombinations() <= kEnumerationLimit) {
    std::vector<int> best;
    int best_matches = -1;
    for (int64_t c = 0; c < schema.NumCombinations(); ++c) {
      std::vector<int> values = schema.CombinationFromIndex(c);
      const int matches = CountMatches(values, mups);
      if (matches > best_matches) {
        best_matches = matches;
        best = std::move(values);
      }
    }
    return best;
  }

  // Large spaces: grow a merged pattern greedily from each MUP seed and
  // keep the completion matching the most MUPs.
  std::vector<int> best;
  int best_matches = -1;
  for (size_t seed = 0; seed < mups.size(); ++seed) {
    data::Pattern merged = mups[seed].pattern;
    for (size_t other = 0; other < mups.size(); ++other) {
      if (other == seed) continue;
      data::Pattern candidate;
      if (MergePatterns(merged, mups[other].pattern, &candidate)) {
        merged = candidate;
      }
    }
    std::vector<int> values = CompletePattern(merged);
    const int matches = CountMatches(values, mups);
    if (matches > best_matches) {
      best_matches = matches;
      best = std::move(values);
    }
  }
  return best;
}

// Accumulates counts into a plan keyed by combination values.
class PlanBuilder {
 public:
  void AddCount(const std::vector<int>& values, int64_t count) {
    counts_[values] += count;
  }

  CombinationPlan Build() const {
    CombinationPlan plan;
    plan.reserve(counts_.size());
    for (const auto& [values, count] : counts_) {
      plan.push_back(PlanEntry{values, count});
    }
    return plan;
  }

 private:
  std::map<std::vector<int>, int64_t> counts_;
};

}  // namespace

int64_t PlanTotal(const CombinationPlan& plan) {
  int64_t total = 0;
  for (const auto& entry : plan) total += entry.count;
  return total;
}

const char* SelectionAlgorithmName(SelectionAlgorithm algorithm) {
  switch (algorithm) {
    case SelectionAlgorithm::kGreedy:
      return "Greedy";
    case SelectionAlgorithm::kRandom:
      return "Random";
    case SelectionAlgorithm::kMinGap:
      return "Min-Gap";
  }
  return "Unknown";
}

CombinationPlan GreedySelect(const data::AttributeSchema& schema,
                             std::vector<coverage::Mup> mups) {
  PlanBuilder plan;
  // Drop already-satisfied MUPs defensively.
  std::erase_if(mups, [](const coverage::Mup& m) { return m.gap <= 0; });

  while (!mups.empty()) {
    const std::vector<int> combination = FindBestCombination(schema, mups);
    // gamma = the smallest gap among matched MUPs (Algorithm 1, line 7).
    int64_t gamma = std::numeric_limits<int64_t>::max();
    bool any = false;
    for (const auto& m : mups) {
      if (m.pattern.Matches(combination)) {
        gamma = std::min(gamma, m.gap);
        any = true;
      }
    }
    if (!any) break;  // Unreachable for consistent inputs.
    plan.AddCount(combination, gamma);
    for (auto& m : mups) {
      if (m.pattern.Matches(combination)) m.gap -= gamma;
    }
    std::erase_if(mups, [](const coverage::Mup& m) { return m.gap <= 0; });
  }
  return plan.Build();
}

CombinationPlan RandomSelect(const data::AttributeSchema& schema,
                             std::vector<coverage::Mup> all_mups,
                             int target_level, util::Rng* rng) {
  PlanBuilder plan;
  std::vector<coverage::Mup> targets;
  for (const auto& m : all_mups) {
    if (m.Level() == target_level && m.gap > 0) targets.push_back(m);
  }
  while (!targets.empty()) {
    const int64_t index = rng->NextBounded(schema.NumCombinations());
    const std::vector<int> values = schema.CombinationFromIndex(index);
    plan.AddCount(values, 1);
    for (auto& m : targets) {
      if (m.pattern.Matches(values)) --m.gap;
    }
    std::erase_if(targets, [](const coverage::Mup& m) { return m.gap <= 0; });
  }
  return plan.Build();
}

CombinationPlan MinGapSelect(const data::AttributeSchema& schema,
                             std::vector<coverage::Mup> all_mups,
                             int target_level) {
  (void)schema;
  PlanBuilder plan;
  std::erase_if(all_mups, [](const coverage::Mup& m) { return m.gap <= 0; });

  auto targets_remaining = [&]() {
    for (const auto& m : all_mups) {
      if (m.Level() == target_level && m.gap > 0) return true;
    }
    return false;
  };

  while (targets_remaining()) {
    // The unresolved MUP with the smallest gap, at ANY level.
    size_t best = 0;
    for (size_t i = 1; i < all_mups.size(); ++i) {
      if (all_mups[i].gap < all_mups[best].gap) best = i;
    }
    const int64_t delta = all_mups[best].gap;
    const std::vector<int> values = CompletePattern(all_mups[best].pattern);
    plan.AddCount(values, delta);
    for (auto& m : all_mups) {
      if (m.pattern.Matches(values)) m.gap -= delta;
    }
    std::erase_if(all_mups, [](const coverage::Mup& m) { return m.gap <= 0; });
  }
  return plan.Build();
}

}  // namespace chameleon::core
