#ifndef CHAMELEON_CORE_CHAMELEON_H_
#define CHAMELEON_CORE_CHAMELEON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/combination_selection.h"
#include "src/core/guide_selection.h"
#include "src/core/rejection_sampler.h"
#include "src/coverage/incremental_mup.h"
#include "src/coverage/mup_finder.h"
#include "src/embedding/embedder.h"
#include "src/fm/corpus.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/foundation_model.h"
#include "src/image/mask_generator.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::core {

/// End-to-end configuration of a repair run (Figure 1's pipeline).
struct ChameleonOptions {
  /// Coverage threshold tau.
  int64_t tau = 100;
  /// Combination selection (§4). The baselines exist for Figure 6; real
  /// repairs should use Greedy.
  SelectionAlgorithm selection = SelectionAlgorithm::kGreedy;
  /// Guide selection (§5).
  GuideStrategy guide_strategy = GuideStrategy::kLinUcb;
  double linucb_alpha = 0.5;
  /// Mask delineation (§5.4).
  image::MaskLevel mask_level = image::MaskLevel::kModerate;
  /// Rejection sampling (§3).
  RejectionSamplerOptions rejection;
  /// Samples used to estimate p from real tuples before repairing.
  int p_estimation_samples = 500;
  /// Safety caps: total foundation-model queries, and consecutive
  /// rejections per plan entry before giving up on it.
  int64_t max_queries = 50000;
  int64_t max_attempts_per_tuple = 40;
  uint64_t seed = 99;
  /// Worker count for the parallel stages (MUP detection and the
  /// rejection loop's candidate evaluation): 0 = hardware concurrency
  /// (the default), 1 = serial. For any fixed rejection_batch the run is
  /// bit-identical at every setting — the batch structure and merge
  /// order never depend on the worker count.
  int num_threads = 0;
  /// Candidates evaluated (embed + rejection tests) per batch of the
  /// generate→embed→reject loop. 1 (the default) is the exact legacy
  /// serial loop. Larger batches unlock parallel evaluation but delay
  /// bandit feedback and corpus growth until the batch's deterministic
  /// in-order merge, so runs with different batch sizes may diverge;
  /// runs with different num_threads never do.
  int rejection_batch = 1;
  /// Transport batch for foundation-model queries (DESIGN.md §11): how
  /// many generation requests the BatchCoalescer groups into one
  /// GenerateBatch dispatch. 0 (the default) follows rejection_batch;
  /// 1 disables coalescing (every query is its own dispatch, the legacy
  /// wire shape). Grouping is pure transport: each request owns a forked
  /// rng stream, so accepted tuples are bit-identical at every setting.
  int fm_batch_size = 0;
  /// Coalescer flush window in virtual milliseconds (the coalescer's own
  /// arrival axis, never a wall clock). A batch also flushes when it
  /// reaches the batch size, and is force-flushed at the end of every
  /// rejection round — results are needed before evaluation can start.
  double batch_window_ms = 5.0;
  /// Router policy for multi-backend models (fm::BackendPool); forwarded
  /// to the model at the start of every run. Single-backend models
  /// ignore it.
  fm::BackendRouterKind backend_router = fm::BackendRouterKind::kGreedyCost;
  /// Optional observability sink (metrics, spans, run journal) — see
  /// DESIGN.md §9. Not owned; null (the default) disables instrumentation
  /// entirely: every instrumented site guards on this pointer, so the off
  /// state costs one predictable branch per event. All recording happens
  /// on the serial submission/merge path, so with a fixed configuration
  /// the journal, the spans, and every stable metric (obs::IsStableMetric)
  /// are bit-identical at every num_threads — and attaching a sink never
  /// changes which tuples are accepted.
  obs::Observability* observability = nullptr;
  /// Optional per-request deadline/cancellation context (not owned; null
  /// — the default — disables it). Forwarded to the model at the start of
  /// every run; the rejection loop checks it at round boundaries and
  /// parks the remaining plan entries once it expires or is cancelled,
  /// returning a partial report with `cancelled`/`deadline_expired` set.
  /// The serving layer (tools/chameleond) allocates one per request.
  fm::Deadline* deadline = nullptr;
  /// Streaming-corpus mode (DESIGN.md §14): maintain the MUP frontier in
  /// a coverage::IncrementalMupIndex instead of re-running the full
  /// lattice BFS per repair call. The first RepairMinLevelMups builds the
  /// index (one FindMups traversal); every batch of accepted tuples then
  /// patches it in place, so repeated repair calls on a drifting corpus —
  /// and warm serving-layer clones (tools/chameleond) — consult the
  /// maintained frontier at a fraction of a rebuild. The index equals
  /// order-normalized FindMups on the materialized corpus at every point,
  /// so accepted tuples, reports, and digests are bit-identical to the
  /// default mode. Off by default (the legacy full recompute).
  bool incremental_coverage = false;
  /// Graceful degradation: when a generation fails with a transport-level
  /// code (kUnavailable/kDeadlineExceeded/kResourceExhausted — i.e. the
  /// model's own resilience layer already gave up), park the current plan
  /// entry and keep working down the plan instead of failing the run.
  /// Terminal codes (invalid request, internal bug) always abort the run.
  /// false restores the legacy behaviour: any generation failure is fatal.
  bool park_failing_entries = true;
};

/// One generated tuple's audit record: everything the benchmarks need to
/// recompute acceptance rates (e.g. re-scoring DDT under another kernel).
struct GenerationRecord {
  std::vector<int> target_values;
  std::vector<double> embedding;
  double latent_realism = 0.0;
  bool distribution_pass = false;
  bool quality_pass = false;
  /// Lower-tail p-value of the quality t-test: QTAR at any significance
  /// level alpha is the fraction of records with p_value >= alpha.
  double quality_p_value = 1.0;
  /// OCSVM decision value under the gating kernel.
  double decision_value = 0.0;
  int arm = -1;
  bool accepted = false;
};

/// What the run's resilience machinery saw and absorbed: the pipeline's
/// own degradation decisions plus a snapshot of the model's transport
/// telemetry (when the model carries a resilience layer).
struct FaultSummary {
  /// Plan entries parked after a persistent transport failure, in plan
  /// order. A parked entry keeps whatever tuples it accepted before the
  /// failure; the run continues with the next entry.
  std::vector<std::vector<int>> parked_targets;
  /// Generation calls that surfaced a transport error to the pipeline
  /// (each one parks an entry when park_failing_entries is set).
  int64_t transport_failures = 0;
  /// Cumulative snapshot of the model's fault telemetry at the end of the
  /// run (zeros when the model has no resilience layer).
  fm::FaultTelemetry transport;

  int64_t parked_entries() const {
    return static_cast<int64_t>(parked_targets.size());
  }
};

/// Summary of a repair run.
struct RepairReport {
  /// The request id this run was tagged with, copied from the attached
  /// Observability (DESIGN.md §15). Empty for untagged/standalone runs —
  /// serving layers use it to tie a report back to its wire request.
  std::string request_id;
  /// MUPs at the minimum level before repair, with gaps.
  std::vector<coverage::Mup> initial_mups;
  /// The sigma plan produced by combination selection.
  CombinationPlan plan;
  /// p as estimated from the corpus's real tuples.
  double estimated_p = 0.0;

  int64_t queries = 0;
  int64_t accepted = 0;
  int64_t distribution_passes = 0;  // independent of the quality outcome
  int64_t quality_passes = 0;       // independent of the distribution outcome
  double total_cost = 0.0;
  bool fully_resolved = false;
  /// The run stopped early because ChameleonOptions::deadline was
  /// cancelled (resp. expired). Both partial outcomes park the remaining
  /// plan entries into `faults.parked_targets` and keep every tuple
  /// accepted before the stop.
  bool cancelled = false;
  bool deadline_expired = false;

  /// Fault telemetry: what the resilience layer absorbed and what the
  /// pipeline parked. Empty/zero on a healthy run.
  FaultSummary faults;

  std::vector<GenerationRecord> records;

  double AcceptanceRate() const {
    return queries > 0 ? static_cast<double>(accepted) / queries : 0.0;
  }
  double QualityAcceptanceRate() const {
    return queries > 0 ? static_cast<double>(quality_passes) / queries : 0.0;
  }
  double DistributionAcceptanceRate() const {
    return queries > 0 ? static_cast<double>(distribution_passes) / queries
                       : 0.0;
  }
};

/// The Chameleon system facade: detects the minimum-level MUPs of a
/// corpus, plans the minimal augmentation, and drives the foundation
/// model + rejection sampling loop until the plan is fulfilled, appending
/// accepted synthetic tuples to the corpus.
class Chameleon {
 public:
  Chameleon(fm::FoundationModel* model, const embedding::Embedder* embedder,
            const fm::EvaluatorPool* evaluators,
            const ChameleonOptions& options);

  /// One repair round: resolves the MUPs at the smallest level. Call
  /// repeatedly to work down the lattice (§4's iterative approach).
  [[nodiscard]] util::Result<RepairReport> RepairMinLevelMups(fm::Corpus* corpus);

  /// Generates until `count` accepted tuples of `target` are added to
  /// the corpus (or the caps trip). Exposed for benches that sweep guide
  /// strategies over a fixed plan. Returns the number accepted.
  [[nodiscard]] util::Result<int64_t> GenerateAccepted(fm::Corpus* corpus,
                                         const std::vector<int>& target,
                                         int64_t count,
                                         GuideSelector* selector,
                                         const RejectionSampler& sampler,
                                         RepairReport* report, util::Rng* rng);

  const ChameleonOptions& options() const { return options_; }

  /// Hands this system a pre-built MUP index (incremental_coverage mode
  /// only; ignored otherwise). The serving layer clones one warm
  /// base-corpus index per request so a stream of repairs amortizes the
  /// initial lattice traversal. RepairMinLevelMups re-validates the index
  /// against the corpus (tau, tuple count, schema shape) and silently
  /// rebuilds on mismatch — a stale index is never trusted.
  void AdoptIncrementalIndex(coverage::IncrementalMupIndex index) {
    incremental_index_ = std::move(index);
  }

  /// The maintained index, or null before the first incremental repair.
  /// Exposed so tests can check it against a fresh FindMups.
  const coverage::IncrementalMupIndex* incremental_index() const {
    return incremental_index_.has_value() ? &*incremental_index_ : nullptr;
  }

 private:
  fm::FoundationModel* model_;
  const embedding::Embedder* embedder_;
  const fm::EvaluatorPool* evaluators_;
  ChameleonOptions options_;
  /// Engaged only in incremental_coverage mode: the corpus's maintained
  /// MUP frontier, patched with every merged batch of accepted tuples.
  std::optional<coverage::IncrementalMupIndex> incremental_index_;
};

}  // namespace chameleon::core

#endif  // CHAMELEON_CORE_CHAMELEON_H_
