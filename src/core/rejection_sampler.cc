#include "src/core/rejection_sampler.h"

namespace chameleon::core {

util::Result<RejectionSampler> RejectionSampler::Train(
    const std::vector<std::vector<double>>& real_embeddings,
    const fm::EvaluatorPool* evaluators, double real_label_rate_p,
    const RejectionSamplerOptions& options) {
  if (evaluators == nullptr) {
    return util::Status::InvalidArgument("evaluator pool is required");
  }
  if (real_label_rate_p <= 0.0 || real_label_rate_p > 1.0) {
    return util::Status::InvalidArgument("p must be in (0, 1]");
  }
  auto svm_model = svm::OneClassSvm::Train(real_embeddings, options.svm);
  if (!svm_model.ok()) return svm_model.status();
  return RejectionSampler(std::move(*svm_model), evaluators,
                          real_label_rate_p, options);
}

bool RejectionSampler::DistributionTest(
    const std::vector<double>& embedding) const {
  return svm_.Accepts(embedding);
}

stats::TTestResult RejectionSampler::QualityTest(double latent_realism,
                                                 util::Rng* rng) const {
  return stats::OneSampleTTestLower(DrawQualityLabels(latent_realism, rng),
                                    p_);
}

std::vector<int> RejectionSampler::DrawQualityLabels(double latent_realism,
                                                     util::Rng* rng) const {
  return evaluators_->Evaluate(latent_realism,
                               options_.evaluations_per_tuple, rng);
}

RejectionOutcome RejectionSampler::EvaluateWithLabels(
    const std::vector<double>& embedding,
    const std::vector<int>& labels) const {
  RejectionOutcome outcome;
  outcome.decision_value = svm_.DecisionValue(embedding);
  // The SVM owns the acceptance rule; comparing against a literal 0 here
  // would diverge from DistributionTest whenever the configured
  // decision_threshold is non-zero.
  outcome.distribution_pass = svm_.Accepts(outcome.decision_value);
  const stats::TTestResult t = stats::OneSampleTTestLower(labels, p_);
  outcome.quality_p_value = t.p_value;
  outcome.quality_pass = !t.Rejects(options_.quality_alpha);
  return outcome;
}

RejectionOutcome RejectionSampler::Evaluate(
    const std::vector<double>& embedding, double latent_realism,
    util::Rng* rng) const {
  return EvaluateWithLabels(embedding,
                            DrawQualityLabels(latent_realism, rng));
}

}  // namespace chameleon::core
