#ifndef CHAMELEON_CORE_COMBINATION_SELECTION_H_
#define CHAMELEON_CORE_COMBINATION_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/coverage/mup_finder.h"
#include "src/data/schema.h"
#include "src/util/rng.h"

namespace chameleon::core {

/// "Generate `count` synthetic tuples matching `values`."
struct PlanEntry {
  std::vector<int> values;
  int64_t count = 0;
};

/// The output of combination selection: the sigma assignment of §4.
using CombinationPlan = std::vector<PlanEntry>;

/// Sum of sigma over the plan — the number of foundation-model queries
/// the plan requires (assuming every generation is accepted).
int64_t PlanTotal(const CombinationPlan& plan);

/// Combination-selection algorithms evaluated in §6.4.2 (Figure 6).
enum class SelectionAlgorithm {
  kGreedy,
  kRandom,
  kMinGap,
};

const char* SelectionAlgorithmName(SelectionAlgorithm algorithm);

/// Algorithm 1 (Greedy): repeatedly pick the combination matching the
/// most remaining MUPs in `mups` (the smallest-level set M*), add the
/// minimum matched gap, and update. Guarantees a log(eta) approximation
/// of the optimal total (Theorem 1).
CombinationPlan GreedySelect(const data::AttributeSchema& schema,
                             std::vector<coverage::Mup> mups);

/// Baseline: draw uniform random combinations one tuple at a time until
/// every MUP at `target_level` in `all_mups` is resolved.
CombinationPlan RandomSelect(const data::AttributeSchema& schema,
                             std::vector<coverage::Mup> all_mups,
                             int target_level, util::Rng* rng);

/// Baseline: repeatedly pick the *unresolved MUP with the smallest gap*
/// (at any level), satisfy it with gap-many tuples of one matching
/// combination, and continue until all `target_level` MUPs are resolved.
/// Deliberately level-blind — the pathology Figure 6 demonstrates.
CombinationPlan MinGapSelect(const data::AttributeSchema& schema,
                             std::vector<coverage::Mup> all_mups,
                             int target_level);

}  // namespace chameleon::core

#endif  // CHAMELEON_CORE_COMBINATION_SELECTION_H_
