#ifndef CHAMELEON_EMBEDDING_EMBEDDER_H_
#define CHAMELEON_EMBEDDING_EMBEDDER_H_

#include <vector>

#include "src/image/image.h"

namespace chameleon::embedding {

/// Maps a multi-modal tuple payload (an image) to its vector
/// representation v(t) in R^K (§3.1). The paper uses MobileNetV3; any
/// implementation where cosine similarity tracks semantic similarity
/// satisfies the contract.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Embedding dimensionality K.
  virtual int dim() const = 0;

  /// Embeds one image.
  virtual std::vector<double> Embed(const image::Image& image) const = 0;
};

}  // namespace chameleon::embedding

#endif  // CHAMELEON_EMBEDDING_EMBEDDER_H_
