#include "src/embedding/simulated_embedder.h"

#include <cmath>

#include "src/util/rng.h"

namespace chameleon::embedding {
namespace {

// Downsampled luminance grid side. Deliberately coarse: each cell mixes
// subject and backdrop, so photographic context dominates the embedding
// and subject identity (e.g. skin tone) contributes a diluted signal —
// matching the behaviour of generic CNN embeddings on portraits.
constexpr int kGrid = 4;
// 16 luminance cells + 12 per-quadrant channel means + 3 global channel
// means + 6 border-band channel means + 1 gradient energy.
constexpr int kRawDim = kGrid * kGrid + 12 + 3 + 6 + 1;

}  // namespace

int SimulatedEmbedder::raw_dim() { return kRawDim; }

SimulatedEmbedder::SimulatedEmbedder(int dim, uint64_t seed) : dim_(dim) {
  util::Rng rng(seed);
  projection_ = linalg::Matrix(dim, kRawDim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(kRawDim));
  for (int r = 0; r < dim; ++r) {
    for (int c = 0; c < kRawDim; ++c) {
      projection_.at(r, c) = rng.NextGaussian(0.0, scale);
    }
  }
}

std::vector<double> SimulatedEmbedder::RawFeatures(const image::Image& image) {
  std::vector<double> features;
  features.reserve(kRawDim);

  // Downsampled luminance grid (area means).
  const int w = image.width();
  const int h = image.height();
  for (int gy = 0; gy < kGrid; ++gy) {
    const int y0 = gy * h / kGrid;
    const int y1 = (gy + 1) * h / kGrid;
    for (int gx = 0; gx < kGrid; ++gx) {
      const int x0 = gx * w / kGrid;
      const int x1 = (gx + 1) * w / kGrid;
      double sum = 0.0;
      int count = 0;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          sum += image.Luminance(x, y);
          ++count;
        }
      }
      features.push_back(count > 0 ? sum / (count * 255.0) : 0.0);
    }
  }

  // Per-quadrant channel means: coarse color composition.
  for (int qy = 0; qy < 2; ++qy) {
    for (int qx = 0; qx < 2; ++qx) {
      const int x0 = qx * w / 2;
      const int x1 = (qx + 1) * w / 2;
      const int y0 = qy * h / 2;
      const int y1 = (qy + 1) * h / 2;
      double sums[3] = {0, 0, 0};
      int64_t count = 0;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          for (int c = 0; c < 3; ++c) {
            sums[c] += image.at(x, y, image.channels() == 3 ? c : 0);
          }
          ++count;
        }
      }
      for (double s : sums) {
        features.push_back(count > 0 ? s / (count * 255.0) : 0.0);
      }
    }
  }

  // Global channel means.
  double channel_sum[3] = {0, 0, 0};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        channel_sum[c] += image.at(x, y, image.channels() == 3 ? c : 0);
      }
    }
  }
  for (double s : channel_sum) {
    features.push_back(s / (static_cast<double>(w) * h * 255.0));
  }

  // Border bands (top 10% and bottom 10% rows): the context signature.
  const int band = std::max(1, h / 10);
  auto band_means = [&](int y_start, int y_end) {
    double sums[3] = {0, 0, 0};
    int64_t count = 0;
    for (int y = y_start; y < y_end; ++y) {
      for (int x = 0; x < w; ++x) {
        for (int c = 0; c < 3; ++c) {
          sums[c] += image.at(x, y, image.channels() == 3 ? c : 0);
        }
        ++count;
      }
    }
    for (double s : sums) {
      features.push_back(count > 0 ? s / (count * 255.0) : 0.0);
    }
  };
  band_means(0, band);
  band_means(h - band, h);

  // Gradient energy: texture signature.
  double grad = 0.0;
  for (int y = 0; y < h - 1; ++y) {
    for (int x = 0; x < w - 1; ++x) {
      grad += std::fabs(image.Luminance(x + 1, y) - image.Luminance(x, y)) +
              std::fabs(image.Luminance(x, y + 1) - image.Luminance(x, y));
    }
  }
  features.push_back(grad / (static_cast<double>(w) * h * 255.0));

  return features;
}

std::vector<double> SimulatedEmbedder::Embed(const image::Image& image) const {
  return projection_.Multiply(RawFeatures(image));
}

}  // namespace chameleon::embedding
