#ifndef CHAMELEON_EMBEDDING_SIMULATED_EMBEDDER_H_
#define CHAMELEON_EMBEDDING_SIMULATED_EMBEDDER_H_

#include <cstdint>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/linalg/matrix.h"

namespace chameleon::embedding {

/// The MobileNetV3 stand-in: a deterministic shallow feature extractor
/// (downsampled luminance grid, global and border color statistics,
/// gradient energy) followed by a fixed seeded Gaussian random projection
/// into R^K. Random projections approximately preserve distances
/// (Johnson-Lindenstrauss), so in-distribution images cluster and
/// context drift — e.g. a foundation model inventing its own background —
/// moves the embedding, which is exactly the signal the OCSVM
/// distribution test needs.
class SimulatedEmbedder : public Embedder {
 public:
  explicit SimulatedEmbedder(int dim = 32, uint64_t seed = 7);

  int dim() const override { return dim_; }
  std::vector<double> Embed(const image::Image& image) const override;

  /// The raw (pre-projection) feature vector — exposed for tests.
  static std::vector<double> RawFeatures(const image::Image& image);

  /// Raw feature dimensionality.
  static int raw_dim();

 private:
  int dim_;
  linalg::Matrix projection_;  // (dim x raw_dim)
};

}  // namespace chameleon::embedding

#endif  // CHAMELEON_EMBEDDING_SIMULATED_EMBEDDER_H_
