#ifndef CHAMELEON_IQA_NIMA_H_
#define CHAMELEON_IQA_NIMA_H_

#include <memory>
#include <vector>

#include "src/image/image.h"
#include "src/nn/mlp.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::iqa {

/// Neural Image Assessment (Talebi & Milanfar, 2018), rebuilt at this
/// library's scale: a small dense network over NSS + global photographic
/// features, trained to predict an aesthetic proxy (sharpness, contrast,
/// exposure balance) since the AVA opinion corpus is unavailable offline.
/// Scores in roughly [0, 10]; higher = better. Like the original, the
/// model judges photographic quality, not semantic realism — which is
/// exactly why Table 5 finds it disagreeing with human evaluators.
class Nima {
 public:
  /// Trains the scoring network on a corpus of natural images.
  [[nodiscard]] static util::Result<Nima> Train(const std::vector<image::Image>& corpus,
                                  util::Rng* rng);

  /// Aesthetic score; higher is better.
  double Score(const image::Image& image) const;

  /// The proxy label used for training — exposed for tests.
  static double AestheticProxy(const image::Image& image);

  /// The feature vector fed to the network — exposed for tests.
  static std::vector<double> Features(const image::Image& image);

 private:
  Nima() = default;

  std::shared_ptr<nn::Mlp> model_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
};

}  // namespace chameleon::iqa

#endif  // CHAMELEON_IQA_NIMA_H_
