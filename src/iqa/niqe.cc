#include "src/iqa/niqe.h"

#include <cmath>

#include "src/iqa/ggd_fit.h"
#include "src/iqa/mscn.h"

namespace chameleon::iqa {
namespace {

// Extracts per-patch features from an image: MSCN once, then 18 NSS
// features per non-overlapping patch.
std::vector<std::vector<double>> ImagePatchFeatures(const image::Image& image,
                                                    int patch_size) {
  const image::Image gray =
      image.channels() == 1 ? image : image.ToGrayscale();
  const Field mscn = ComputeMscn(gray);

  std::vector<std::vector<double>> features;
  for (int py = 0; py + patch_size <= mscn.height; py += patch_size) {
    for (int px = 0; px + patch_size <= mscn.width; px += patch_size) {
      std::vector<double> patch;
      patch.reserve(static_cast<size_t>(patch_size) * patch_size);
      for (int y = py; y < py + patch_size; ++y) {
        for (int x = px; x < px + patch_size; ++x) {
          patch.push_back(mscn.at(x, y));
        }
      }
      features.push_back(
          Niqe::PatchFeatures(patch, patch_size, patch_size));
    }
  }
  return features;
}

// Mean and covariance of a feature sample.
void FitMvg(const std::vector<std::vector<double>>& samples,
            std::vector<double>* mean, linalg::Matrix* covariance) {
  const size_t dim = samples.empty() ? 0 : samples[0].size();
  mean->assign(dim, 0.0);
  *covariance = linalg::Matrix(dim, dim);
  if (samples.empty()) return;
  for (const auto& s : samples) {
    for (size_t i = 0; i < dim; ++i) (*mean)[i] += s[i];
  }
  for (double& v : *mean) v /= static_cast<double>(samples.size());
  if (samples.size() < 2) return;
  for (const auto& s : samples) {
    for (size_t i = 0; i < dim; ++i) {
      const double di = s[i] - (*mean)[i];
      for (size_t j = 0; j < dim; ++j) {
        covariance->at(i, j) += di * (s[j] - (*mean)[j]);
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(samples.size() - 1);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) covariance->at(i, j) *= inv;
  }
}

}  // namespace

std::vector<double> Niqe::PatchFeatures(const std::vector<double>& mscn_patch,
                                        int patch_width, int patch_height) {
  std::vector<double> features;
  features.reserve(18);
  const GgdParams ggd = FitGgd(mscn_patch);
  features.push_back(ggd.alpha);
  features.push_back(ggd.sigma * ggd.sigma);

  Field field{patch_width, patch_height, mscn_patch};
  for (Orientation orientation :
       {Orientation::kHorizontal, Orientation::kVertical,
        Orientation::kDiagonal, Orientation::kAntiDiagonal}) {
    const AggdParams aggd = FitAggd(PairwiseProducts(field, orientation));
    features.push_back(aggd.alpha);
    features.push_back(aggd.mean);
    features.push_back(aggd.sigma_left * aggd.sigma_left);
    features.push_back(aggd.sigma_right * aggd.sigma_right);
  }
  return features;
}

util::Result<Niqe> Niqe::Train(const std::vector<image::Image>& pristine,
                               const Options& options) {
  if (pristine.empty()) {
    return util::Status::InvalidArgument("NIQE needs a pristine corpus");
  }
  std::vector<std::vector<double>> all_features;
  for (const auto& img : pristine) {
    auto features = ImagePatchFeatures(img, options.patch_size);
    all_features.insert(all_features.end(), features.begin(), features.end());
  }
  if (all_features.size() < 4) {
    return util::Status::InvalidArgument(
        "pristine corpus yields too few patches; use larger images");
  }
  Niqe model;
  model.options_ = options;
  FitMvg(all_features, &model.mean_, &model.covariance_);
  return model;
}

double Niqe::Score(const image::Image& image) const {
  const auto features = ImagePatchFeatures(image, options_.patch_size);
  if (features.empty()) return 0.0;
  std::vector<double> test_mean;
  linalg::Matrix test_cov;
  FitMvg(features, &test_mean, &test_cov);

  const size_t dim = mean_.size();
  linalg::Matrix pooled(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      pooled.at(i, j) = 0.5 * (covariance_.at(i, j) + test_cov.at(i, j));
    }
    pooled.at(i, i) += options_.regularization;
  }
  std::vector<double> diff(dim);
  for (size_t i = 0; i < dim; ++i) diff[i] = mean_[i] - test_mean[i];

  auto solved = pooled.CholeskySolve(diff);
  if (!solved.ok()) {
    // Fall back to a diagonal approximation if pooling went indefinite.
    double score = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      score += diff[i] * diff[i] / (pooled.at(i, i) + 1e-9);
    }
    return std::sqrt(std::max(0.0, score));
  }
  double quad = 0.0;
  for (size_t i = 0; i < dim; ++i) quad += diff[i] * (*solved)[i];
  return std::sqrt(std::max(0.0, quad));
}

}  // namespace chameleon::iqa
