#ifndef CHAMELEON_IQA_NIQE_H_
#define CHAMELEON_IQA_NIQE_H_

#include <vector>

#include "src/image/image.h"
#include "src/linalg/matrix.h"
#include "src/util/status.h"

namespace chameleon::iqa {

/// Natural Image Quality Evaluator (Mittal et al., 2013), reimplemented
/// from scratch on this library's raster type: per-patch natural scene
/// statistics (GGD fit of MSCN coefficients + AGGD fits of four pairwise
/// orientations, 18 features) are modeled as a multivariate Gaussian over
/// a pristine corpus; the score of a test image is the Mahalanobis-style
/// distance between the pristine MVG and the test image's own patch MVG.
/// Higher score = less natural.
class Niqe {
 public:
  struct Options {
    int patch_size = 16;
    /// Ridge added to covariance diagonals before inversion.
    double regularization = 1e-3;
  };

  /// Fits the pristine model from a corpus of (assumed natural) images.
  [[nodiscard]] static util::Result<Niqe> Train(const std::vector<image::Image>& pristine,
                                  const Options& options);
  [[nodiscard]] static util::Result<Niqe> Train(const std::vector<image::Image>& pristine) {
    return Train(pristine, Options());
  }

  /// Quality score; higher is worse.
  double Score(const image::Image& image) const;

  int feature_dim() const { return static_cast<int>(mean_.size()); }
  const std::vector<double>& pristine_mean() const { return mean_; }

  /// 18-dimensional NSS feature vector of one patch-worth of MSCN data —
  /// exposed for testing and for BRISQUE feature reuse.
  static std::vector<double> PatchFeatures(
      const std::vector<double>& mscn_patch, int patch_width,
      int patch_height);

 private:
  Niqe() = default;

  Options options_;
  std::vector<double> mean_;
  linalg::Matrix covariance_;
};

}  // namespace chameleon::iqa

#endif  // CHAMELEON_IQA_NIQE_H_
