#include "src/iqa/mscn.h"

#include <algorithm>
#include <cmath>

namespace chameleon::iqa {
namespace {

constexpr int kWindowRadius = 3;
constexpr double kWindowSigma = 7.0 / 6.0;

// Separable Gaussian smoothing of a double field with clamped borders.
Field Smooth(const Field& input, const std::vector<double>& kernel) {
  const int radius = static_cast<int>(kernel.size() / 2);
  Field horizontal{input.width, input.height,
                   std::vector<double>(input.values.size(), 0.0)};
  for (int y = 0; y < input.height; ++y) {
    for (int x = 0; x < input.width; ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int sx = std::clamp(x + i, 0, input.width - 1);
        acc += kernel[i + radius] * input.at(sx, y);
      }
      horizontal.at(x, y) = acc;
    }
  }
  Field out{input.width, input.height,
            std::vector<double>(input.values.size(), 0.0)};
  for (int y = 0; y < input.height; ++y) {
    for (int x = 0; x < input.width; ++x) {
      double acc = 0.0;
      for (int i = -radius; i <= radius; ++i) {
        const int sy = std::clamp(y + i, 0, input.height - 1);
        acc += kernel[i + radius] * horizontal.at(x, sy);
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

}  // namespace

Field ComputeMscn(const image::Image& gray) {
  const int w = gray.width();
  const int h = gray.height();
  Field lum{w, h, std::vector<double>(static_cast<size_t>(w) * h)};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) lum.at(x, y) = gray.Luminance(x, y);
  }

  std::vector<double> kernel(2 * kWindowRadius + 1);
  double sum = 0.0;
  for (int i = -kWindowRadius; i <= kWindowRadius; ++i) {
    kernel[i + kWindowRadius] =
        std::exp(-(i * i) / (2.0 * kWindowSigma * kWindowSigma));
    sum += kernel[i + kWindowRadius];
  }
  for (double& k : kernel) k /= sum;

  const Field mu = Smooth(lum, kernel);
  Field squared{w, h, std::vector<double>(lum.values.size())};
  for (size_t i = 0; i < lum.values.size(); ++i) {
    squared.values[i] = lum.values[i] * lum.values[i];
  }
  const Field mu_sq = Smooth(squared, kernel);

  Field mscn{w, h, std::vector<double>(lum.values.size())};
  for (size_t i = 0; i < lum.values.size(); ++i) {
    const double variance = std::max(0.0, mu_sq.values[i] -
                                              mu.values[i] * mu.values[i]);
    const double sigma = std::sqrt(variance);
    mscn.values[i] = (lum.values[i] - mu.values[i]) / (sigma + 1.0);
  }
  return mscn;
}

std::vector<double> PairwiseProducts(const Field& mscn,
                                     Orientation orientation) {
  int dx = 0;
  int dy = 0;
  switch (orientation) {
    case Orientation::kHorizontal:
      dx = 1;
      break;
    case Orientation::kVertical:
      dy = 1;
      break;
    case Orientation::kDiagonal:
      dx = 1;
      dy = 1;
      break;
    case Orientation::kAntiDiagonal:
      dx = -1;
      dy = 1;
      break;
  }
  std::vector<double> products;
  products.reserve(mscn.values.size());
  for (int y = 0; y < mscn.height; ++y) {
    const int ny = y + dy;
    if (ny < 0 || ny >= mscn.height) continue;
    for (int x = 0; x < mscn.width; ++x) {
      const int nx = x + dx;
      if (nx < 0 || nx >= mscn.width) continue;
      products.push_back(mscn.at(x, y) * mscn.at(nx, ny));
    }
  }
  return products;
}

}  // namespace chameleon::iqa
