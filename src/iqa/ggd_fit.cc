#include "src/iqa/ggd_fit.h"

#include <algorithm>
#include <cmath>

#include "src/stats/special_functions.h"

namespace chameleon::iqa {
namespace {

// r(alpha) = Gamma(1/a)Gamma(3/a)/Gamma(2/a)^2, monotone decreasing in
// alpha. Inverts r by bisection.
double SolveShape(double target_r) {
  double lo = 0.05;
  double hi = 30.0;
  // Clamp the target into the achievable range.
  target_r = std::clamp(target_r, stats::GeneralizedGaussianRatio(hi),
                        stats::GeneralizedGaussianRatio(lo));
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (stats::GeneralizedGaussianRatio(mid) > target_r) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

GgdParams FitGgd(const std::vector<double>& samples) {
  GgdParams params;
  if (samples.size() < 2) return params;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  for (double x : samples) {
    abs_sum += std::fabs(x);
    sq_sum += x * x;
  }
  const double n = static_cast<double>(samples.size());
  const double mean_abs = abs_sum / n;
  const double mean_sq = sq_sum / n;
  params.sigma = std::sqrt(mean_sq);
  if (mean_abs < 1e-12 || mean_sq < 1e-12) {
    params.alpha = 2.0;
    return params;
  }
  // E[x^2] / (E|x|)^2 = r(alpha).
  params.alpha = SolveShape(mean_sq / (mean_abs * mean_abs));
  return params;
}

AggdParams FitAggd(const std::vector<double>& samples) {
  AggdParams params;
  if (samples.size() < 2) return params;
  double left_sq = 0.0;
  double right_sq = 0.0;
  int64_t left_count = 0;
  int64_t right_count = 0;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  for (double x : samples) {
    abs_sum += std::fabs(x);
    sq_sum += x * x;
    if (x < 0.0) {
      left_sq += x * x;
      ++left_count;
    } else {
      right_sq += x * x;
      ++right_count;
    }
  }
  const double n = static_cast<double>(samples.size());
  params.sigma_left =
      left_count > 0 ? std::sqrt(left_sq / left_count) : 1e-6;
  params.sigma_right =
      right_count > 0 ? std::sqrt(right_sq / right_count) : 1e-6;

  const double gamma_hat =
      params.sigma_left / std::max(params.sigma_right, 1e-12);
  const double mean_abs = abs_sum / n;
  const double mean_sq = sq_sum / n;
  if (mean_abs < 1e-12 || mean_sq < 1e-12) return params;
  const double r_hat = (mean_abs * mean_abs) / mean_sq;
  const double big_r = r_hat * (gamma_hat * gamma_hat * gamma_hat + 1.0) *
                       (gamma_hat + 1.0) /
                       ((gamma_hat * gamma_hat + 1.0) *
                        (gamma_hat * gamma_hat + 1.0));
  // rho(alpha) = 1 / r(alpha) is monotone increasing; invert via r.
  params.alpha = SolveShape(1.0 / std::max(big_r, 1e-9));
  const double gamma_ratio =
      std::exp(stats::LogGamma(2.0 / params.alpha) -
               stats::LogGamma(1.0 / params.alpha));
  params.mean = (params.sigma_right - params.sigma_left) * gamma_ratio;
  return params;
}

}  // namespace chameleon::iqa
