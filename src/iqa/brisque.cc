#include "src/iqa/brisque.h"

#include <cmath>

#include "src/iqa/ggd_fit.h"
#include "src/iqa/mscn.h"

namespace chameleon::iqa {
namespace {

void AppendScaleFeatures(const image::Image& gray,
                         std::vector<double>* features) {
  const Field mscn = ComputeMscn(gray);
  const GgdParams ggd = FitGgd(mscn.values);
  features->push_back(ggd.alpha);
  features->push_back(ggd.sigma * ggd.sigma);
  for (Orientation orientation :
       {Orientation::kHorizontal, Orientation::kVertical,
        Orientation::kDiagonal, Orientation::kAntiDiagonal}) {
    const AggdParams aggd = FitAggd(PairwiseProducts(mscn, orientation));
    features->push_back(aggd.alpha);
    features->push_back(aggd.mean);
    features->push_back(aggd.sigma_left * aggd.sigma_left);
    features->push_back(aggd.sigma_right * aggd.sigma_right);
  }
}

}  // namespace

std::vector<double> BrisqueFeatures(const image::Image& image) {
  const image::Image gray =
      image.channels() == 1 ? image : image.ToGrayscale();
  std::vector<double> features;
  features.reserve(36);
  AppendScaleFeatures(gray, &features);
  const image::Image half =
      gray.Resized(std::max(2, gray.width() / 2), std::max(2, gray.height() / 2));
  AppendScaleFeatures(half, &features);
  return features;
}

util::Result<Brisque> Brisque::Train(
    const std::vector<image::Image>& natural_corpus) {
  if (natural_corpus.size() < 2) {
    return util::Status::InvalidArgument(
        "BRISQUE needs at least two natural images");
  }
  std::vector<std::vector<double>> all;
  all.reserve(natural_corpus.size());
  for (const auto& img : natural_corpus) all.push_back(BrisqueFeatures(img));

  const size_t dim = all[0].size();
  Brisque model;
  model.mean_.assign(dim, 0.0);
  model.stddev_.assign(dim, 0.0);
  for (const auto& f : all) {
    for (size_t i = 0; i < dim; ++i) model.mean_[i] += f[i];
  }
  for (double& v : model.mean_) v /= static_cast<double>(all.size());
  for (const auto& f : all) {
    for (size_t i = 0; i < dim; ++i) {
      const double d = f[i] - model.mean_[i];
      model.stddev_[i] += d * d;
    }
  }
  for (double& v : model.stddev_) {
    v = std::sqrt(v / static_cast<double>(all.size() - 1));
    if (v < 1e-9) v = 1e-9;
  }
  return model;
}

double Brisque::Score(const image::Image& image) const {
  const std::vector<double> features = BrisqueFeatures(image);
  double sum = 0.0;
  for (size_t i = 0; i < features.size(); ++i) {
    const double z = (features[i] - mean_[i]) / stddev_[i];
    sum += z * z;
  }
  return std::sqrt(sum / static_cast<double>(features.size()));
}

}  // namespace chameleon::iqa
