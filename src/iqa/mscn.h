#ifndef CHAMELEON_IQA_MSCN_H_
#define CHAMELEON_IQA_MSCN_H_

#include <vector>

#include "src/image/image.h"

namespace chameleon::iqa {

/// A 2-D field of doubles (row-major), e.g. MSCN coefficients.
struct Field {
  int width = 0;
  int height = 0;
  std::vector<double> values;

  double at(int x, int y) const { return values[static_cast<size_t>(y) * width + x]; }
  double& at(int x, int y) { return values[static_cast<size_t>(y) * width + x]; }
};

/// Mean-Subtracted Contrast-Normalized coefficients (Mittal et al.):
/// mscn(x,y) = (I - mu) / (sigma + 1), with mu/sigma computed under a
/// Gaussian window (7x7, sigma 7/6). The luminance statistics NIQE and
/// BRISQUE are built on.
Field ComputeMscn(const image::Image& gray);

/// Pairwise-product orientations of MSCN neighbors.
enum class Orientation { kHorizontal, kVertical, kDiagonal, kAntiDiagonal };

/// Elementwise products of horizontally/vertically/diagonally adjacent
/// MSCN coefficients; the input to the AGGD fits.
std::vector<double> PairwiseProducts(const Field& mscn,
                                     Orientation orientation);

}  // namespace chameleon::iqa

#endif  // CHAMELEON_IQA_MSCN_H_
