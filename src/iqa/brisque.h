#ifndef CHAMELEON_IQA_BRISQUE_H_
#define CHAMELEON_IQA_BRISQUE_H_

#include <vector>

#include "src/image/image.h"
#include "src/util/status.h"

namespace chameleon::iqa {

/// Image-level BRISQUE feature vector (Mittal et al., 2012): 18 NSS
/// features (GGD of MSCN + 4 orientation AGGD fits) at full resolution
/// plus the same 18 at half resolution — 36 dimensions.
std::vector<double> BrisqueFeatures(const image::Image& image);

/// Blind/Referenceless Image Spatial Quality Evaluator. The original
/// scores features with an SVR trained on the LIVE database's human
/// opinion scores; that corpus is unavailable offline, so this
/// implementation scores by normalized distance of the 36-D feature
/// vector from the natural statistics of a training corpus (per-feature
/// z-scores, RMS-combined). Higher score = worse quality. The substitution
/// preserves BRISQUE's character: a purely low-level naturalness measure.
class Brisque {
 public:
  [[nodiscard]] static util::Result<Brisque> Train(
      const std::vector<image::Image>& natural_corpus);

  /// Quality score; higher is worse.
  double Score(const image::Image& image) const;

  int feature_dim() const { return static_cast<int>(mean_.size()); }

 private:
  Brisque() = default;

  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace chameleon::iqa

#endif  // CHAMELEON_IQA_BRISQUE_H_
