#ifndef CHAMELEON_IQA_GGD_FIT_H_
#define CHAMELEON_IQA_GGD_FIT_H_

#include <vector>

namespace chameleon::iqa {

/// Zero-mean generalized Gaussian parameters.
struct GgdParams {
  double alpha = 2.0;  // shape: 2 = Gaussian, 1 = Laplacian
  double sigma = 1.0;  // scale (stddev)
};

/// Asymmetric GGD parameters (Mittal et al., BRISQUE): separate left and
/// right scales plus the implied mean offset.
struct AggdParams {
  double alpha = 2.0;
  double sigma_left = 1.0;
  double sigma_right = 1.0;
  double mean = 0.0;
};

/// Moment-matching GGD fit: solves r(alpha) = (E|x|)^2 / E[x^2] by
/// bisection on the gamma-function ratio.
GgdParams FitGgd(const std::vector<double>& samples);

/// Moment-matching AGGD fit (the BRISQUE estimator).
AggdParams FitAggd(const std::vector<double>& samples);

}  // namespace chameleon::iqa

#endif  // CHAMELEON_IQA_GGD_FIT_H_
