#include "src/iqa/nima.h"

#include <algorithm>
#include <cmath>

#include "src/iqa/brisque.h"
#include "src/nn/trainer.h"
#include "src/stats/summary.h"

namespace chameleon::iqa {
namespace {

// Global photographic statistics appended to the NSS features.
void AppendGlobalStats(const image::Image& image,
                       std::vector<double>* features) {
  stats::RunningStats lum;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      lum.Observe(image.Luminance(x, y));
    }
  }
  features->push_back(lum.mean() / 255.0);
  features->push_back(lum.stddev() / 128.0);

  // Gradient energy (sharpness).
  double grad = 0.0;
  for (int y = 0; y < image.height() - 1; ++y) {
    for (int x = 0; x < image.width() - 1; ++x) {
      grad += std::fabs(image.Luminance(x + 1, y) - image.Luminance(x, y)) +
              std::fabs(image.Luminance(x, y + 1) - image.Luminance(x, y));
    }
  }
  grad /= (static_cast<double>(image.width()) * image.height() * 255.0);
  features->push_back(grad);
}

}  // namespace

std::vector<double> Nima::Features(const image::Image& image) {
  std::vector<double> features = BrisqueFeatures(image);
  AppendGlobalStats(image, &features);
  return features;
}

double Nima::AestheticProxy(const image::Image& image) {
  stats::RunningStats lum;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      lum.Observe(image.Luminance(x, y));
    }
  }
  // Exposure balance: mid-tones preferred.
  const double exposure = 1.0 - std::fabs(lum.mean() - 128.0) / 128.0;
  // Contrast: saturating in the stddev.
  const double contrast = std::min(1.0, lum.stddev() / 60.0);
  // Sharpness proxy: mean absolute horizontal gradient.
  double grad = 0.0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width() - 1; ++x) {
      grad += std::fabs(image.Luminance(x + 1, y) - image.Luminance(x, y));
    }
  }
  grad /= (static_cast<double>(image.width() - 1) * image.height());
  const double sharpness = std::min(1.0, grad / 12.0);
  return 10.0 * (0.4 * exposure + 0.35 * contrast + 0.25 * sharpness);
}

util::Result<Nima> Nima::Train(const std::vector<image::Image>& corpus,
                               util::Rng* rng) {
  if (corpus.size() < 4) {
    return util::Status::InvalidArgument("NIMA needs a larger corpus");
  }
  std::vector<std::vector<double>> inputs;
  std::vector<double> targets;
  inputs.reserve(corpus.size());
  for (const auto& img : corpus) {
    inputs.push_back(Features(img));
    targets.push_back(AestheticProxy(img));
  }

  // Standardize features.
  const size_t dim = inputs[0].size();
  Nima scorer;
  scorer.feature_mean_.assign(dim, 0.0);
  scorer.feature_scale_.assign(dim, 0.0);
  for (const auto& f : inputs) {
    for (size_t i = 0; i < dim; ++i) scorer.feature_mean_[i] += f[i];
  }
  for (double& v : scorer.feature_mean_) v /= static_cast<double>(inputs.size());
  for (const auto& f : inputs) {
    for (size_t i = 0; i < dim; ++i) {
      const double d = f[i] - scorer.feature_mean_[i];
      scorer.feature_scale_[i] += d * d;
    }
  }
  for (double& v : scorer.feature_scale_) {
    v = std::sqrt(v / static_cast<double>(inputs.size() - 1));
    if (v < 1e-9) v = 1.0;
  }
  for (auto& f : inputs) {
    for (size_t i = 0; i < dim; ++i) {
      f[i] = (f[i] - scorer.feature_mean_[i]) / scorer.feature_scale_[i];
    }
  }

  scorer.model_ = std::make_shared<nn::Mlp>(
      std::vector<int>{static_cast<int>(dim), 16, 1}, rng);
  nn::TrainOptions options;
  options.epochs = 120;
  options.learning_rate = 0.01;
  options.batch_size = 16;
  auto report = nn::TrainRegressor(scorer.model_.get(), inputs, targets,
                                   options, rng);
  if (!report.ok()) return report.status();
  return scorer;
}

double Nima::Score(const image::Image& image) const {
  std::vector<double> f = Features(image);
  for (size_t i = 0; i < f.size(); ++i) {
    f[i] = (f[i] - feature_mean_[i]) / feature_scale_[i];
  }
  const double raw = model_->Forward(f)[0];
  return std::clamp(raw, 0.0, 10.0);
}

}  // namespace chameleon::iqa
