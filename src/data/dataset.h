#ifndef CHAMELEON_DATA_DATASET_H_
#define CHAMELEON_DATA_DATASET_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/data/pattern.h"
#include "src/data/schema.h"
#include "src/util/status.h"

namespace chameleon::data {

/// One multi-modal tuple: attribute-of-interest values, an embedding
/// vector v(t) in R^K, and a payload handle that owners may use to attach
/// modality data (e.g. an image id in an external store). `synthetic`
/// marks tuples that were generated rather than observed.
struct Tuple {
  std::vector<int> values;
  std::vector<double> embedding;
  int64_t payload_id = -1;
  bool synthetic = false;
};

/// The data set D = {t_1, ..., t_n}: a schema plus tuples, with
/// coverage-oriented counting helpers.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(AttributeSchema schema) : schema_(std::move(schema)) {}

  const AttributeSchema& schema() const { return schema_; }

  /// Appends a tuple; rejects value vectors that do not fit the schema.
  [[nodiscard]] util::Status Add(Tuple tuple);

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  Tuple& mutable_tuple(size_t i) { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// |D ∩ P| — number of tuples matching the pattern (linear scan; use
  /// coverage::PatternCounter for repeated queries).
  int64_t CountMatching(const Pattern& pattern) const;

  /// Indices of tuples matching the pattern.
  std::vector<size_t> IndicesMatching(const Pattern& pattern) const;

  /// Count of tuples per full-level combination index.
  std::unordered_map<int64_t, int64_t> CombinationHistogram() const;

  /// Number of tuples flagged synthetic.
  int64_t NumSynthetic() const;

  /// Mean of the tuple embeddings (the sample estimate of mu_xi, §3.1).
  /// Returns an empty vector when the data set has no embeddings.
  std::vector<double> EmbeddingMean() const;

 private:
  AttributeSchema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace chameleon::data

#endif  // CHAMELEON_DATA_DATASET_H_
