#include "src/data/dataset.h"

namespace chameleon::data {

util::Status Dataset::Add(Tuple tuple) {
  if (!schema_.IsValidCombination(tuple.values)) {
    return util::Status::InvalidArgument(
        "tuple values do not match the schema");
  }
  tuples_.push_back(std::move(tuple));
  return util::Status::Ok();
}

int64_t Dataset::CountMatching(const Pattern& pattern) const {
  int64_t count = 0;
  for (const auto& t : tuples_) count += pattern.Matches(t.values);
  return count;
}

std::vector<size_t> Dataset::IndicesMatching(const Pattern& pattern) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (pattern.Matches(tuples_[i].values)) indices.push_back(i);
  }
  return indices;
}

std::unordered_map<int64_t, int64_t> Dataset::CombinationHistogram() const {
  std::unordered_map<int64_t, int64_t> histogram;
  for (const auto& t : tuples_) {
    ++histogram[schema_.CombinationIndex(t.values)];
  }
  return histogram;
}

int64_t Dataset::NumSynthetic() const {
  int64_t count = 0;
  for (const auto& t : tuples_) count += t.synthetic;
  return count;
}

std::vector<double> Dataset::EmbeddingMean() const {
  std::vector<double> mean;
  int64_t counted = 0;
  for (const auto& t : tuples_) {
    if (t.embedding.empty()) continue;
    if (mean.empty()) mean.assign(t.embedding.size(), 0.0);
    if (t.embedding.size() != mean.size()) continue;
    for (size_t k = 0; k < mean.size(); ++k) mean[k] += t.embedding[k];
    ++counted;
  }
  if (counted > 0) {
    for (double& v : mean) v /= static_cast<double>(counted);
  }
  return mean;
}

}  // namespace chameleon::data
