#include "src/data/pattern.h"

namespace chameleon::data {

int Pattern::Level() const {
  int level = 0;
  for (int c : cells_) level += (c != kUnspecified);
  return level;
}

bool Pattern::Matches(const std::vector<int>& values) const {
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] != kUnspecified && cells_[i] != values[i]) return false;
  }
  return true;
}

bool Pattern::Contains(const Pattern& other) const {
  if (other.cells_.size() != cells_.size()) return false;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] != kUnspecified && cells_[i] != other.cells_[i]) {
      return false;
    }
  }
  return true;
}

Pattern Pattern::WithCell(int i, int value) const {
  Pattern out = *this;
  out.cells_[i] = value;
  return out;
}

Pattern Pattern::WithUnspecified(int i) const {
  Pattern out = *this;
  out.cells_[i] = kUnspecified;
  return out;
}

std::vector<Pattern> Pattern::Parents() const {
  std::vector<Pattern> parents;
  for (int i = 0; i < num_attributes(); ++i) {
    if (IsSpecified(i)) parents.push_back(WithUnspecified(i));
  }
  return parents;
}

std::vector<Pattern> Pattern::Children(const AttributeSchema& schema) const {
  std::vector<Pattern> children;
  for (int i = 0; i < num_attributes(); ++i) {
    if (IsSpecified(i)) continue;
    for (int v = 0; v < schema.attribute(i).cardinality(); ++v) {
      children.push_back(WithCell(i, v));
    }
  }
  return children;
}

std::string Pattern::ToString() const {
  std::string out;
  for (int c : cells_) {
    if (c == kUnspecified) {
      out += 'X';
    } else if (c < 10) {
      out += static_cast<char>('0' + c);
    } else {
      out += '[';
      out += std::to_string(c);
      out += ']';
    }
  }
  return out;
}

std::string Pattern::ToString(const AttributeSchema& schema) const {
  std::string out;
  bool first = true;
  for (int i = 0; i < num_attributes(); ++i) {
    if (!IsSpecified(i)) continue;
    if (!first) out += ", ";
    first = false;
    out += schema.attribute(i).name;
    out += '=';
    out += schema.attribute(i).values[cells_[i]];
  }
  if (first) out = "<all>";
  return out;
}

size_t PatternHash::operator()(const Pattern& p) const {
  // FNV-1a over the cell values.
  size_t hash = 1469598103934665603ULL;
  for (int c : p.cells()) {
    hash ^= static_cast<size_t>(c + 2);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace chameleon::data
