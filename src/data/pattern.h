#ifndef CHAMELEON_DATA_PATTERN_H_
#define CHAMELEON_DATA_PATTERN_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/data/schema.h"

namespace chameleon::data {

/// A pattern P (§2.3) is a string of d cells; each cell is either a value
/// index into the attribute's domain, or kUnspecified (printed as 'X').
/// The pattern X01 matches every tuple with x2=0 and x3=1.
class Pattern {
 public:
  static constexpr int kUnspecified = -1;

  Pattern() = default;

  /// All-unspecified pattern of the given arity (the lattice root).
  explicit Pattern(int num_attributes)
      : cells_(num_attributes, kUnspecified) {}

  /// Pattern from explicit cells (kUnspecified for X).
  explicit Pattern(std::vector<int> cells) : cells_(std::move(cells)) {}

  int num_attributes() const { return static_cast<int>(cells_.size()); }
  int cell(int i) const { return cells_[i]; }
  const std::vector<int>& cells() const { return cells_; }

  bool IsSpecified(int i) const { return cells_[i] != kUnspecified; }

  /// The level l(P): number of specified attributes.
  int Level() const;

  /// True when every specified cell equals the tuple's value.
  bool Matches(const std::vector<int>& values) const;

  /// True if this pattern's subgroup contains `other`'s — i.e. other
  /// specifies a superset of this pattern's constraints with equal values.
  bool Contains(const Pattern& other) const;

  /// Copy with attribute `i` set to `value`.
  Pattern WithCell(int i, int value) const;

  /// Copy with attribute `i` made unspecified.
  Pattern WithUnspecified(int i) const;

  /// All parents: level-(l-1) generalizations (one specified cell relaxed).
  std::vector<Pattern> Parents() const;

  /// All children under the schema: one unspecified cell bound to each
  /// domain value (level l+1 specializations).
  std::vector<Pattern> Children(const AttributeSchema& schema) const;

  /// Canonical "X01"-style rendering; multi-digit values are bracketed,
  /// e.g. "X[12]0".
  std::string ToString() const;

  /// Named rendering using the schema, e.g. "race=Black".
  std::string ToString(const AttributeSchema& schema) const;

  bool operator==(const Pattern& other) const { return cells_ == other.cells_; }
  bool operator!=(const Pattern& other) const { return !(*this == other); }

  /// Deterministic total order (lexicographic) for canonical output.
  bool operator<(const Pattern& other) const { return cells_ < other.cells_; }

 private:
  std::vector<int> cells_;
};

/// Hash functor so patterns can key unordered containers.
struct PatternHash {
  size_t operator()(const Pattern& p) const;
};

/// A pattern paired with the number of synthetic tuples still needed to
/// cover it: delta(M) = tau - |D ∩ M| (§4).
struct MupGap {
  Pattern pattern;
  int64_t gap = 0;
};

}  // namespace chameleon::data

#endif  // CHAMELEON_DATA_PATTERN_H_
