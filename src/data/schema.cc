#include "src/data/schema.h"

namespace chameleon::data {

AttributeSchema::AttributeSchema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

util::Status AttributeSchema::AddAttribute(Attribute attribute) {
  if (attribute.cardinality() < 2) {
    return util::Status::InvalidArgument("attribute '" + attribute.name +
                                         "' needs a domain of size >= 2");
  }
  if (FindAttribute(attribute.name) >= 0) {
    return util::Status::InvalidArgument("duplicate attribute '" +
                                         attribute.name + "'");
  }
  attributes_.push_back(std::move(attribute));
  return util::Status::Ok();
}

int AttributeSchema::FindAttribute(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return -1;
}

int64_t AttributeSchema::NumCombinations() const {
  int64_t total = 1;
  for (const auto& attr : attributes_) total *= attr.cardinality();
  return total;
}

int64_t AttributeSchema::CombinationIndex(const std::vector<int>& values) const {
  int64_t index = 0;
  for (int i = 0; i < num_attributes(); ++i) {
    index = index * attributes_[i].cardinality() + values[i];
  }
  return index;
}

std::vector<int> AttributeSchema::CombinationFromIndex(int64_t index) const {
  std::vector<int> values(num_attributes());
  for (int i = num_attributes() - 1; i >= 0; --i) {
    const int card = attributes_[i].cardinality();
    values[i] = static_cast<int>(index % card);
    index /= card;
  }
  return values;
}

bool AttributeSchema::IsValidCombination(const std::vector<int>& values) const {
  if (static_cast<int>(values.size()) != num_attributes()) return false;
  for (int i = 0; i < num_attributes(); ++i) {
    if (values[i] < 0 || values[i] >= attributes_[i].cardinality()) {
      return false;
    }
  }
  return true;
}

std::string AttributeSchema::CombinationToString(
    const std::vector<int>& values) const {
  std::string out;
  for (int i = 0; i < num_attributes(); ++i) {
    if (i) out += ", ";
    out += attributes_[i].name;
    out += '=';
    if (i < static_cast<int>(values.size()) && values[i] >= 0 &&
        values[i] < attributes_[i].cardinality()) {
      out += attributes_[i].values[values[i]];
    } else {
      out += '?';
    }
  }
  return out;
}

}  // namespace chameleon::data
