#ifndef CHAMELEON_DATA_SCHEMA_H_
#define CHAMELEON_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace chameleon::data {

/// One categorical attribute of interest (§2.1): a name, a value domain,
/// and whether the domain is ordinal (e.g. age-group) or unordered
/// (e.g. race). Ordinality matters to the Similar-Tuple guide strategy.
struct Attribute {
  std::string name;
  std::vector<std::string> values;
  bool ordinal = false;

  int cardinality() const { return static_cast<int>(values.size()); }
};

/// The attributes of interest x = {x_1, ..., x_d} over which demographic
/// subgroups, patterns, and combinations are defined.
class AttributeSchema {
 public:
  AttributeSchema() = default;
  explicit AttributeSchema(std::vector<Attribute> attributes);

  /// Adds an attribute; returns InvalidArgument on duplicate names or
  /// domains with fewer than two values.
  [[nodiscard]] util::Status AddAttribute(Attribute attribute);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name, or -1.
  int FindAttribute(const std::string& name) const;

  /// |x_1| * |x_2| * ... * |x_d| — the number of full-level combinations.
  int64_t NumCombinations() const;

  /// Bijection between a full assignment and its dense index in
  /// [0, NumCombinations()), row-major over attribute order.
  int64_t CombinationIndex(const std::vector<int>& values) const;
  std::vector<int> CombinationFromIndex(int64_t index) const;

  /// True if `values` has one in-domain value per attribute.
  bool IsValidCombination(const std::vector<int>& values) const;

  /// Human-readable rendering, e.g. "gender=female, race=Black".
  std::string CombinationToString(const std::vector<int>& values) const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace chameleon::data

#endif  // CHAMELEON_DATA_SCHEMA_H_
