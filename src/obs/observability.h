#ifndef CHAMELEON_OBS_OBSERVABILITY_H_
#define CHAMELEON_OBS_OBSERVABILITY_H_

#include <string>

#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/virtual_clock.h"

namespace chameleon::obs {

/// Everything a run records, bundled around one shared VirtualClock so
/// metrics, spans and journal lines live on a single deterministic
/// timeline. Owned by the caller (typically stack or CLI scope) and
/// attached to the pipeline via `ChameleonOptions::observability`;
/// leaving that pointer null disables instrumentation entirely — every
/// instrumented site guards with `if (obs != nullptr)`, so the off
/// state costs one predictable branch.
struct Observability {
  Observability() = default;
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  VirtualClock clock;
  Registry registry;
  Tracer tracer{&clock};
  Journal journal{&clock};

  /// Tags this run's journal lines and spans with a stable request id
  /// (DESIGN.md §15): the serving layer sets it to the request's wire id
  /// before the repair starts, and `chameleon_cli --request-id=` sets the
  /// same id for the equivalent standalone run — which is what makes a
  /// daemon request's artifacts byte-identical to the standalone run's.
  /// Empty (the default) keeps the run-scoped rendering unchanged.
  void set_request_id(const std::string& id) {
    request_id = id;
    journal.set_request_id(id);
    tracer.set_request_id(id);
  }

  std::string request_id;
};

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_OBSERVABILITY_H_
