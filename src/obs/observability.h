#ifndef CHAMELEON_OBS_OBSERVABILITY_H_
#define CHAMELEON_OBS_OBSERVABILITY_H_

#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/virtual_clock.h"

namespace chameleon::obs {

/// Everything a run records, bundled around one shared VirtualClock so
/// metrics, spans and journal lines live on a single deterministic
/// timeline. Owned by the caller (typically stack or CLI scope) and
/// attached to the pipeline via `ChameleonOptions::observability`;
/// leaving that pointer null disables instrumentation entirely — every
/// instrumented site guards with `if (obs != nullptr)`, so the off
/// state costs one predictable branch.
struct Observability {
  Observability() = default;
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  VirtualClock clock;
  Registry registry;
  Tracer tracer{&clock};
  Journal journal{&clock};
};

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_OBSERVABILITY_H_
