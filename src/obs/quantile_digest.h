#ifndef CHAMELEON_OBS_QUANTILE_DIGEST_H_
#define CHAMELEON_OBS_QUANTILE_DIGEST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chameleon::obs {

/// Mergeable streaming quantile sketch with a fixed centroid budget.
///
/// The digest keeps at most `max_centroids` (mean, weight) pairs sorted
/// by mean, plus an insertion buffer. When the buffer fills, buffered
/// values are folded in and the centroid list is compressed by
/// repeatedly merging the adjacent pair with the smallest combined
/// weight (ties break to the leftmost pair), which keeps the tails —
/// where weights stay small — at high resolution. The exact minimum and
/// maximum are tracked separately so Quantile(0) and Quantile(1) are
/// always exact.
///
/// Determinism contract: the structure is fully determined by the
/// sequence of Add/Merge calls — no randomness, no wall clock — so two
/// runs that observe the same values in the same order produce
/// bit-identical digests (the property the observability layer's stable
/// metrics and the bench JSON reporter rely on). While the value count
/// is at most `max_centroids`, every value is its own centroid and
/// quantiles are exact (linearly interpolated order statistics).
///
/// Single-writer structure: callers serialize access themselves — the
/// lock lives in the *owner*, which is also where the
/// CHAMELEON_GUARDED_BY annotation goes (obs::Histogram declares its
/// digest member guarded by digest_mutex_; chameleon-lint checks that
/// discipline there, not here).
class QuantileDigest {
 public:
  explicit QuantileDigest(int max_centroids = kDefaultMaxCentroids);

  void Add(double value);

  /// Folds `other`'s centroids into this digest (weights preserved).
  void Merge(const QuantileDigest& other);

  /// Interpolated quantile for q in [0, 1] (clamped). Returns 0 for an
  /// empty digest so exported values stay JSON-representable.
  double Quantile(double q) const;

  int64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Number of retained centroids (after folding the buffer in).
  size_t num_centroids() const;

  static constexpr int kDefaultMaxCentroids = 64;

 private:
  struct Centroid {
    double mean = 0.0;
    int64_t weight = 0;
  };

  /// Folds the buffer into `centroids_` and compresses to the budget.
  void Compress() const;

  int max_centroids_;
  int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Logically const views (Quantile/num_centroids) fold the pending
  // buffer in first; both members are mutable for that amortization.
  mutable std::vector<Centroid> centroids_;  // sorted by mean
  mutable std::vector<double> buffer_;
};

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_QUANTILE_DIGEST_H_
