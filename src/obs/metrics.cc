#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

namespace chameleon::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  // First bucket whose inclusive upper bound admits `value`; past-the-end
  // is the overflow bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(digest_mutex_);
    digest_.Add(value);
  }
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(digest_mutex_);
  return digest_.Quantile(q);
}

QuantileDigest Histogram::Digest() const {
  std::lock_guard<std::mutex> lock(digest_mutex_);
  return digest_;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

obs::Counter* Registry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<obs::Counter>();
  return slot.get();
}

obs::Gauge* Registry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<obs::Gauge>();
  return slot.get();
}

obs::Histogram* Registry::Histogram(const std::string& name,
                                    const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<obs::Histogram>(bounds);
  return slot.get();
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::vector<MetricSample> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_) {
      MetricSample sample;
      sample.name = name;
      sample.type = "counter";
      sample.value = static_cast<double>(counter->value());
      samples.push_back(std::move(sample));
    }
    for (const auto& [name, gauge] : gauges_) {
      MetricSample sample;
      sample.name = name;
      sample.type = "gauge";
      sample.value = gauge->value();
      samples.push_back(std::move(sample));
    }
    for (const auto& [name, histogram] : histograms_) {
      MetricSample sample;
      sample.name = name;
      sample.type = "histogram";
      sample.value = static_cast<double>(histogram->count());
      sample.sum = histogram->sum();
      sample.bounds = histogram->bounds();
      sample.buckets = histogram->BucketCounts();
      sample.p50 = histogram->Quantile(0.5);
      sample.p90 = histogram->Quantile(0.9);
      sample.p99 = histogram->Quantile(0.99);
      sample.digest = histogram->Digest();
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

util::TablePrinter Registry::ToTable() const {
  util::TablePrinter table({"metric", "type", "value", "detail"});
  for (const MetricSample& sample : Snapshot()) {
    std::string detail;
    if (sample.type == "histogram") {
      detail = "sum=" + FormatMetricValue(sample.sum) +
               " p50=" + FormatMetricValue(sample.p50) +
               " p90=" + FormatMetricValue(sample.p90) +
               " p99=" + FormatMetricValue(sample.p99) + " buckets=[";
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i > 0) detail += " ";
        detail += (i < sample.bounds.size()
                       ? "le" + FormatMetricValue(sample.bounds[i])
                       : std::string("inf")) +
                  ":" + util::Fmt(sample.buckets[i]);
      }
      detail += "]";
    }
    table.AddRow({sample.name, sample.type, FormatMetricValue(sample.value),
                  detail});
  }
  return table;
}

std::string Registry::ToJson() const {
  std::string out;
  for (const MetricSample& sample : Snapshot()) {
    out += "{\"name\":\"" + sample.name + "\",\"type\":\"" + sample.type +
           "\",\"value\":" + FormatMetricValue(sample.value);
    if (sample.type == "histogram") {
      out += ",\"sum\":" + FormatMetricValue(sample.sum) + ",\"bounds\":[";
      for (size_t i = 0; i < sample.bounds.size(); ++i) {
        if (i > 0) out += ",";
        out += FormatMetricValue(sample.bounds[i]);
      }
      out += "],\"buckets\":[";
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        if (i > 0) out += ",";
        out += util::Fmt(sample.buckets[i]);
      }
      out += "],\"p50\":" + FormatMetricValue(sample.p50) +
             ",\"p90\":" + FormatMetricValue(sample.p90) +
             ",\"p99\":" + FormatMetricValue(sample.p99);
    }
    out += "}\n";
  }
  return out;
}

util::Status Registry::Write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return util::Status::IoError("cannot open metrics file: " + path);
  }
  out << ToJson();
  out.close();
  if (!out) return util::Status::IoError("failed writing metrics: " + path);
  return util::Status::Ok();
}

bool IsStableMetric(const std::string& name) {
  if (name.rfind("threadpool.", 0) == 0) return false;
  // Amortized wall time per insert (IncrementalMupIndex) — machine- and
  // load-dependent by nature. The sibling mup.incremental.* counters
  // (patched/retired/discovered) are deterministic and stay stable.
  if (name == "mup.incremental.insert_ns") return false;
  return name != "mup.count_queries";
}

std::string FormatMetricValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.15g", value);
  if (std::strtod(buffer, nullptr) != value) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

}  // namespace chameleon::obs
