#include "src/obs/export.h"

#include <cctype>
#include <fstream>
#include <vector>

#include "src/obs/journal.h"

namespace chameleon::obs {
namespace {

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; everything
/// else (the registry's dots, mostly) flattens to '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':' ||
                    (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("_") : out;
}

util::Status WriteText(const std::string& text, const std::string& path,
                       const char* what) {
  std::ofstream out(path);
  if (!out) {
    return util::Status::IoError(std::string("cannot open ") + what +
                                 " file: " + path);
  }
  out << text;
  out.close();
  if (!out) {
    return util::Status::IoError(std::string("failed writing ") + what +
                                 ": " + path);
  }
  return util::Status::Ok();
}

}  // namespace

std::string ExportOpenMetrics(const Registry& registry) {
  return ExportOpenMetrics(registry.Snapshot());
}

std::string ExportOpenMetrics(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& sample : samples) {
    const std::string name = SanitizeMetricName(sample.name);
    if (sample.type == "counter") {
      out += "# TYPE " + name + " counter\n";
      out += name + "_total " + FormatMetricValue(sample.value) + "\n";
    } else if (sample.type == "gauge") {
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + FormatMetricValue(sample.value) + "\n";
    } else {
      out += "# TYPE " + name + " histogram\n";
      int64_t cumulative = 0;
      for (size_t i = 0; i < sample.buckets.size(); ++i) {
        cumulative += sample.buckets[i];
        const std::string le = i < sample.bounds.size()
                                   ? FormatMetricValue(sample.bounds[i])
                                   : std::string("+Inf");
        out += name + "_bucket{le=\"" + le + "\"} " +
               util::Fmt(cumulative) + "\n";
      }
      out += name + "_sum " + FormatMetricValue(sample.sum) + "\n";
      out += name + "_count " + FormatMetricValue(sample.value) + "\n";
      out += "# TYPE " + name + "_latency summary\n";
      const std::pair<const char*, double> quantiles[] = {
          {"0.5", sample.p50}, {"0.9", sample.p90}, {"0.99", sample.p99}};
      for (const auto& [label, value] : quantiles) {
        out += name + "_latency{quantile=\"" + label + "\"} " +
               FormatMetricValue(value) + "\n";
      }
    }
  }
  out += "# EOF\n";
  return out;
}

std::string ExportTraceEvents(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":"
                    "{\"clock\":\"virtual ticks (1 tick = 1us)\"},"
                    "\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : tracer.Spans()) {
    if (!first) out += ",";
    first = false;
    const bool open = span.end_tick == 0;
    out += "\n{\"name\":\"" + JsonEscape(span.name) +
           "\",\"cat\":\"chameleon\",\"ph\":\"" + (open ? "B" : "X") +
           "\",\"pid\":1,\"tid\":1,\"ts\":" + std::to_string(span.start_tick);
    if (!open) {
      out += ",\"dur\":" + std::to_string(span.end_tick - span.start_tick);
    }
    out += ",\"args\":{\"id\":" + std::to_string(span.id) +
           ",\"parent\":" + std::to_string(span.parent_id) +
           ",\"depth\":" + std::to_string(span.depth) +
           ",\"start_ms\":" + FormatMetricValue(span.start_ms) +
           ",\"end_ms\":" + FormatMetricValue(span.end_ms) + "}}";
  }
  out += "\n]}\n";
  return out;
}

util::Status WriteOpenMetrics(const Registry& registry,
                              const std::string& path) {
  return WriteText(ExportOpenMetrics(registry), path, "openmetrics");
}

util::Status WriteTraceEvents(const Tracer& tracer, const std::string& path) {
  return WriteText(ExportTraceEvents(tracer), path, "trace-events");
}

}  // namespace chameleon::obs
