#ifndef CHAMELEON_OBS_TRACE_H_
#define CHAMELEON_OBS_TRACE_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/virtual_clock.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace chameleon::obs {

class Tracer;

/// One completed (or still-open) span. `start_tick`/`end_tick` come from
/// the shared VirtualClock event counter, and `start_ms`/`end_ms` from
/// its virtual-millisecond axis — never from a wall clock, so traces of
/// the same seeded run are bit-identical at every thread count.
struct SpanRecord {
  int64_t id = 0;         // 1-based, in start order
  int64_t parent_id = 0;  // 0 = root span
  int depth = 0;          // root = 0
  std::string name;
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;  // 0 while the span is open
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// RAII handle returned by Tracer::StartSpan: ends the span on
/// destruction (or at an explicit End()). Movable, not copyable.
/// Discarding the returned Span ends it immediately — chameleon-lint
/// flags a discarded StartSpan call for exactly that reason.
class [[nodiscard]] Span {
 public:
  Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Ends the span (idempotent; a moved-from Span is a no-op).
  void End();

  int64_t id() const { return id_; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, int64_t id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_;
  int64_t id_;
};

/// Records a tree of named spans over the virtual clock. Parentage is
/// the innermost span still open at StartSpan time, which matches the
/// pipeline's usage: spans open and close on the serial
/// submission/merge path only, so nesting, order and tick stamps are
/// deterministic. Thread-safe (one mutex around the span table) so a
/// stray span from a worker cannot corrupt the trace — but such spans
/// are not part of the determinism contract.
class Tracer {
 public:
  explicit Tracer(VirtualClock* clock) : clock_(clock) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  Span StartSpan(const std::string& name);

  /// Stamps every rendered span line with `"rid":"<id>"` (leading field),
  /// mirroring Journal::set_request_id: one combined trace file can then
  /// carry spans from many concurrent requests without colliding span
  /// ids. Empty (the default) renders byte-identically to the run-scoped
  /// format.
  void set_request_id(const std::string& request_id);
  std::string request_id() const;

  /// Installs a live tee: `sink` receives each span record the moment it
  /// ends (under the tracer mutex, so sinks observe spans in end order).
  /// Pass an empty function to detach.
  void SetSpanSink(std::function<void(const SpanRecord&)> sink);

  /// All spans in start order (open spans have end_tick == 0).
  std::vector<SpanRecord> Spans() const;

  size_t num_open() const;

  /// One JSON object per span, one per line (JSONL), in start order.
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path`.
  [[nodiscard]] util::Status Write(const std::string& path) const;

  /// Opens `path` and appends each span as one flushed line the moment
  /// it *ends* (a span's record is only complete then), so a killed run
  /// leaves every finished span on disk. Spans that already ended are
  /// written immediately; spans still open when the process dies are
  /// lost — the price of the append-only format. Note the streamed file
  /// is therefore in end order, not the start order Write() uses.
  [[nodiscard]] util::Status StreamTo(const std::string& path);

  /// Flushes and closes the streaming sink; reports any pending write
  /// error. No-op when not streaming.
  [[nodiscard]] util::Status CloseStream();

  bool streaming() const;

 private:
  friend class Span;
  void EndSpan(int64_t id);

  VirtualClock* clock_;
  mutable std::mutex mutex_;
  // index = id - 1
  std::vector<SpanRecord> spans_ CHAMELEON_GUARDED_BY(mutex_);
  // ids of open spans, outermost first
  std::vector<int64_t> stack_ CHAMELEON_GUARDED_BY(mutex_);
  std::string request_id_ CHAMELEON_GUARDED_BY(mutex_);
  std::function<void(const SpanRecord&)> span_sink_
      CHAMELEON_GUARDED_BY(mutex_);
  std::unique_ptr<std::ofstream> stream_ CHAMELEON_GUARDED_BY(mutex_);
  std::string stream_path_ CHAMELEON_GUARDED_BY(mutex_);
};

/// The single-line JSONL rendering shared by Write and StreamTo.
std::string SpanToJson(const SpanRecord& span);

/// Request-scoped rendering: a non-empty `request_id` prepends a
/// `"rid"` field; empty is byte-identical to SpanToJson(span).
std::string SpanToJson(const SpanRecord& span, const std::string& request_id);

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_TRACE_H_
