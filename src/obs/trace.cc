#include "src/obs/trace.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "src/obs/journal.h"
#include "src/obs/metrics.h"

namespace chameleon::obs {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  tracer_->EndSpan(id_);
  tracer_ = nullptr;
}

Span Tracer::StartSpan(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord record;
  record.id = static_cast<int64_t>(spans_.size()) + 1;
  record.parent_id = stack_.empty() ? 0 : stack_.back();
  record.depth = static_cast<int>(stack_.size());
  record.name = name;
  record.start_tick = clock_->Tick();
  record.start_ms = clock_->NowMs();
  stack_.push_back(record.id);
  spans_.push_back(std::move(record));
  return Span(this, spans_.back().id);
}

void Tracer::EndSpan(int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 1 || id > static_cast<int64_t>(spans_.size())) return;
  SpanRecord& record = spans_[id - 1];
  if (record.end_tick != 0) return;  // already ended
  record.end_tick = clock_->Tick();
  record.end_ms = clock_->NowMs();
  stack_.erase(std::remove(stack_.begin(), stack_.end(), id), stack_.end());
  if (stream_ != nullptr) {
    *stream_ << SpanToJson(record, request_id_) << '\n';
    stream_->flush();
  }
  if (span_sink_) span_sink_(record);
}

void Tracer::set_request_id(const std::string& request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  request_id_ = request_id;
}

std::string Tracer::request_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return request_id_;
}

void Tracer::SetSpanSink(std::function<void(const SpanRecord&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  span_sink_ = std::move(sink);
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Tracer::num_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stack_.size();
}

std::string SpanToJson(const SpanRecord& span,
                       const std::string& request_id) {
  if (request_id.empty()) return SpanToJson(span);
  return "{\"rid\":\"" + JsonEscape(request_id) + "\"," +
         SpanToJson(span).substr(1);
}

std::string SpanToJson(const SpanRecord& span) {
  return "{\"id\":" + std::to_string(span.id) +
         ",\"parent\":" + std::to_string(span.parent_id) +
         ",\"depth\":" + std::to_string(span.depth) + ",\"name\":\"" +
         span.name + "\",\"start_tick\":" + std::to_string(span.start_tick) +
         ",\"end_tick\":" + std::to_string(span.end_tick) +
         ",\"start_ms\":" + FormatMetricValue(span.start_ms) +
         ",\"end_ms\":" + FormatMetricValue(span.end_ms) + "}";
}

std::string Tracer::ToJsonl() const {
  const std::string rid = request_id();
  std::string out;
  for (const SpanRecord& span : Spans()) {
    out += SpanToJson(span, rid);
    out += "\n";
  }
  return out;
}

util::Status Tracer::Write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open trace file: " + path);
  out << ToJsonl();
  out.close();
  if (!out) return util::Status::IoError("failed writing trace: " + path);
  return util::Status::Ok();
}

util::Status Tracer::StreamTo(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_ != nullptr) {
    return util::Status::FailedPrecondition(
        "tracer is already streaming to: " + stream_path_);
  }
  auto stream = std::make_unique<std::ofstream>(path);
  if (!*stream) {
    return util::Status::IoError("cannot open trace stream: " + path);
  }
  // Catch up on spans that already ended, in end order (approximated by
  // start order among the ended — before streaming starts the
  // distinction is unobservable in the file's analysis).
  for (const SpanRecord& span : spans_) {
    if (span.end_tick != 0) *stream << SpanToJson(span, request_id_) << '\n';
  }
  stream->flush();
  if (!*stream) {
    return util::Status::IoError("failed writing trace stream: " + path);
  }
  stream_ = std::move(stream);
  stream_path_ = path;
  return util::Status::Ok();
}

util::Status Tracer::CloseStream() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_ == nullptr) return util::Status::Ok();
  stream_->flush();
  const bool ok = static_cast<bool>(*stream_);
  const std::string path = stream_path_;
  stream_.reset();
  stream_path_.clear();
  if (!ok) {
    return util::Status::IoError("failed writing trace stream: " + path);
  }
  return util::Status::Ok();
}

bool Tracer::streaming() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stream_ != nullptr;
}

}  // namespace chameleon::obs
