#ifndef CHAMELEON_OBS_VIRTUAL_CLOCK_H_
#define CHAMELEON_OBS_VIRTUAL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace chameleon::obs {

/// Deterministic time source for the observability layer. Two notions of
/// "time" advance independently, neither of which ever reads a wall
/// clock (the chameleon-determinism rule holds by construction):
///
///  * ticks — a monotonic event counter. Every span start/end and every
///    journal event draws one tick, so "when" something happened is its
///    position in the pipeline's serial event order. Because all
///    instrumented events fire on the serial submission/merge path,
///    tick-stamped traces are bit-identical at every thread count.
///  * virtual milliseconds — the same virtual-time axis the resilience
///    layer budgets backoff and deadlines on
///    (fm::ResilientFoundationModel advances it when observability is
///    attached), so spans can be correlated with retry storms.
///
/// Thread-safe: both counters are atomics; concurrent Tick()s are
/// allowed (they simply serialize), though the pipeline only ticks from
/// its serial sections.
class VirtualClock {
 public:
  /// Advances and returns the event counter (first call returns 1).
  uint64_t Tick() { return ticks_.fetch_add(1, std::memory_order_relaxed) + 1; }

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// Advances the virtual-millisecond axis (e.g. resilience backoff).
  void AdvanceMs(double ms) {
    double current = ms_.load(std::memory_order_relaxed);
    while (!ms_.compare_exchange_weak(current, current + ms,
                                      std::memory_order_relaxed)) {
    }
  }

  double NowMs() const { return ms_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> ticks_{0};
  std::atomic<double> ms_{0.0};
};

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_VIRTUAL_CLOCK_H_
