#include "src/obs/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

namespace chameleon::obs {

void MergeSample(MergedMetrics* into, const MetricSample& sample) {
  auto [it, inserted] = into->try_emplace(sample.name);
  MergedMetric& merged = it->second;
  if (inserted) {
    merged.type = sample.type;
    merged.bounds = sample.bounds;
    merged.buckets.assign(sample.buckets.size(), 0);
  } else if (merged.type != sample.type) {
    return;  // first-seen type wins; conflicting sample dropped
  }
  if (sample.type == "gauge") {
    merged.value = sample.value;
    return;
  }
  if (sample.type == "counter") {
    merged.value += sample.value;
    return;
  }
  // Histogram: counts, sums and aligned bucket vectors add; digests fold
  // through QuantileDigest::Merge. Bucket bounds are fixed by the first
  // sample — a later sample with different bounds contributes count/sum/
  // digest but not its (incomparable) bucket vector.
  merged.value += sample.value;
  merged.sum += sample.sum;
  if (sample.bounds == merged.bounds &&
      sample.buckets.size() == merged.buckets.size()) {
    for (size_t i = 0; i < sample.buckets.size(); ++i) {
      merged.buckets[i] += sample.buckets[i];
    }
  }
  merged.digest.Merge(sample.digest);
}

void MergeAll(MergedMetrics* into, const MergedMetrics& from) {
  for (const auto& [name, metric] : from) {
    auto [it, inserted] = into->try_emplace(name);
    MergedMetric& merged = it->second;
    if (inserted) {
      merged = metric;
      continue;
    }
    if (merged.type != metric.type) continue;
    if (metric.type == "gauge") {
      merged.value = metric.value;
      continue;
    }
    if (metric.type == "counter") {
      merged.value += metric.value;
      continue;
    }
    merged.value += metric.value;
    merged.sum += metric.sum;
    if (metric.bounds == merged.bounds &&
        metric.buckets.size() == merged.buckets.size()) {
      for (size_t i = 0; i < metric.buckets.size(); ++i) {
        merged.buckets[i] += metric.buckets[i];
      }
    }
    merged.digest.Merge(metric.digest);
  }
}

std::vector<MetricSample> MergedToSamples(const MergedMetrics& merged) {
  std::vector<MetricSample> samples;
  samples.reserve(merged.size());
  for (const auto& [name, metric] : merged) {  // map order == name order
    MetricSample sample;
    sample.name = name;
    sample.type = metric.type;
    sample.value = metric.value;
    if (metric.type == "histogram") {
      sample.sum = metric.sum;
      sample.bounds = metric.bounds;
      sample.buckets = metric.buckets;
      sample.p50 = metric.digest.Quantile(0.5);
      sample.p90 = metric.digest.Quantile(0.9);
      sample.p99 = metric.digest.Quantile(0.99);
      sample.digest = metric.digest;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

Aggregator::Aggregator(const AggregatorOptions& options) : options_(options) {}

void Aggregator::AbsorbMerged(const MergedMetrics& merged, double at_ms,
                              bool count_request) {
  std::lock_guard<std::mutex> lock(mutex_);
  MergeAll(&total_, merged);
  // Timestamps may regress slightly when completions race on the virtual
  // axis; clamp into the newest bucket so windows never grow backwards.
  if (!buckets_.empty() && at_ms < buckets_.back().start_ms) {
    at_ms = buckets_.back().start_ms;
  }
  const double bucket_start =
      std::floor(at_ms / options_.bucket_ms) * options_.bucket_ms;
  if (buckets_.empty() || buckets_.back().start_ms < bucket_start) {
    buckets_.push_back(Bucket{bucket_start, {}});
  }
  MergeAll(&buckets_.back().metrics, merged);
  // Buckets older than the long window can never be scraped again.
  const double horizon = at_ms - options_.long_window_ms;
  while (!buckets_.empty() &&
         buckets_.front().start_ms + options_.bucket_ms <= horizon) {
    buckets_.pop_front();
  }
  if (count_request) ++absorbed_;
}

void Aggregator::Absorb(const Registry& registry, double at_ms) {
  AbsorbSamples(registry.Snapshot(), at_ms);
}

void Aggregator::AbsorbSamples(const std::vector<MetricSample>& samples,
                               double at_ms) {
  MergedMetrics merged;
  for (const MetricSample& sample : samples) MergeSample(&merged, sample);
  AbsorbMerged(merged, at_ms, /*count_request=*/true);
}

void Aggregator::AddCounter(const std::string& name, int64_t delta,
                            double at_ms) {
  if (delta <= 0) return;
  MetricSample sample;
  sample.name = name;
  sample.type = "counter";
  sample.value = static_cast<double>(delta);
  MergedMetrics merged;
  MergeSample(&merged, sample);
  AbsorbMerged(merged, at_ms, /*count_request=*/false);
}

std::vector<MetricSample> Aggregator::Scrape(double now_ms) const {
  MergedMetrics total;
  MergedMetrics short_window;
  MergedMetrics long_window;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total = total_;
    for (const Bucket& bucket : buckets_) {
      // A bucket is in the window if any part of its span is.
      if (bucket.start_ms + options_.bucket_ms >
          now_ms - options_.long_window_ms) {
        MergeAll(&long_window, bucket.metrics);
      }
      if (bucket.start_ms + options_.bucket_ms >
          now_ms - options_.short_window_ms) {
        MergeAll(&short_window, bucket.metrics);
      }
    }
  }
  std::vector<MetricSample> out = MergedToSamples(total);
  for (MetricSample& sample : MergedToSamples(short_window)) {
    sample.name = "window1m." + sample.name;
    out.push_back(std::move(sample));
  }
  for (MetricSample& sample : MergedToSamples(long_window)) {
    sample.name = "window5m." + sample.name;
    out.push_back(std::move(sample));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

int64_t Aggregator::absorbed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return absorbed_;
}

}  // namespace chameleon::obs
