#include "src/obs/quantile_digest.h"

#include <algorithm>
#include <vector>

namespace chameleon::obs {
namespace {

// Buffered values per compression, as a multiple of the centroid budget.
// Larger buffers amortize the sort + reduction over more insertions —
// the dominant cost of Histogram::Observe (ROADMAP hot-path item b) —
// at the price of a few hundred extra doubles per digest (8 × 64 = 512
// doubles = 4 KiB at the default budget) and a deferred first
// compression. Raising the factor changes *which* values share a
// centroid (so absolute quantile estimates shift slightly); it never
// affects determinism — identical Add/Merge sequences still produce
// bit-identical digests.
constexpr int kBufferFactor = 8;

}  // namespace

QuantileDigest::QuantileDigest(int max_centroids)
    : max_centroids_(std::max(4, max_centroids)) {
  centroids_.reserve(static_cast<size_t>(max_centroids_) + 1);
  buffer_.reserve(static_cast<size_t>(max_centroids_) * kBufferFactor);
}

void QuantileDigest::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  buffer_.push_back(value);
  if (buffer_.size() >=
      static_cast<size_t>(max_centroids_) * kBufferFactor) {
    Compress();
  }
}

void QuantileDigest::Merge(const QuantileDigest& other) {
  if (&other == this) {
    // Self-merge: the insert below would read other.centroids_ while
    // growing centroids_ — iterator invalidation on the same vector.
    // Doubling via a snapshot is the behaviour a caller could expect.
    const QuantileDigest copy = other;
    Merge(copy);
    return;
  }
  other.Compress();
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  Compress();  // fold own buffer first so the merge sees centroids only
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  std::stable_sort(centroids_.begin(), centroids_.end(),
                   [](const Centroid& a, const Centroid& b) {
                     return a.mean < b.mean;
                   });
  // Reuse the buffer-fold path's reducer by compressing with an already
  // sorted centroid list and an empty buffer.
  Compress();
}

void QuantileDigest::Compress() const {
  if (!buffer_.empty()) {
    std::sort(buffer_.begin(), buffer_.end());
    std::vector<Centroid> merged;
    merged.reserve(centroids_.size() + buffer_.size());
    size_t ci = 0;
    size_t bi = 0;
    while (ci < centroids_.size() || bi < buffer_.size()) {
      if (bi >= buffer_.size() ||
          (ci < centroids_.size() && centroids_[ci].mean <= buffer_[bi])) {
        merged.push_back(centroids_[ci++]);
      } else {
        merged.push_back({buffer_[bi++], 1});
      }
    }
    centroids_ = std::move(merged);
    buffer_.clear();
  }
  // Reduce to the budget with one equal-frequency pass: bin k absorbs
  // consecutive centroids until the cumulative weight reaches the rank
  // boundary (k+1) * total / budget (exact integer compare, no
  // division). Each bin becomes one centroid at the bin's weighted mean.
  // Rank-aligned bins keep the quantile error bounded by the largest
  // bin (~1/budget of the mass) across repeated compressions, and the
  // result is a pure function of the centroid list — identical
  // Add/Merge sequences still produce bit-identical digests. This
  // replaced an iterated smallest-adjacent-pair merge whose O(n) scan
  // per merge dominated Histogram::Observe (ROADMAP hot-path item b).
  const size_t budget = static_cast<size_t>(max_centroids_);
  if (centroids_.size() <= budget) return;
  int64_t total = 0;
  for (const Centroid& centroid : centroids_) total += centroid.weight;
  std::vector<Centroid> binned;
  binned.reserve(budget);
  int64_t cum = 0;
  double bin_sum = 0.0;
  int64_t bin_weight = 0;
  for (const Centroid& centroid : centroids_) {
    bin_sum += centroid.mean * static_cast<double>(centroid.weight);
    bin_weight += centroid.weight;
    cum += centroid.weight;
    if (cum * static_cast<int64_t>(budget) >=
        static_cast<int64_t>(binned.size() + 1) * total) {
      binned.push_back(
          {bin_sum / static_cast<double>(bin_weight), bin_weight});
      bin_sum = 0.0;
      bin_weight = 0;
    }
  }
  if (bin_weight > 0) {
    binned.push_back({bin_sum / static_cast<double>(bin_weight), bin_weight});
  }
  centroids_ = std::move(binned);
}

size_t QuantileDigest::num_centroids() const {
  Compress();
  return centroids_.size();
}

double QuantileDigest::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  Compress();
  q = std::clamp(q, 0.0, 1.0);
  if (count_ == 1 || q <= 0.0) return min_;
  if (q >= 1.0) return max_;

  // Treat centroid i as centroids_[i].weight points clustered at its
  // mean, giving it the midpoint rank cum + (weight - 1) / 2. The target
  // rank q * (count - 1) is interpolated between neighbouring midpoints,
  // with the exact min/max anchoring the extremes.
  const double target = q * static_cast<double>(count_ - 1);
  double prev_rank = 0.0;
  double prev_mean = min_;
  int64_t cum = 0;
  for (const Centroid& c : centroids_) {
    const double rank =
        static_cast<double>(cum) + static_cast<double>(c.weight - 1) / 2.0;
    if (target <= rank) {
      if (rank <= prev_rank) return c.mean;
      const double t = (target - prev_rank) / (rank - prev_rank);
      return prev_mean + t * (c.mean - prev_mean);
    }
    prev_rank = rank;
    prev_mean = c.mean;
    cum += c.weight;
  }
  const double last_rank = static_cast<double>(count_ - 1);
  if (last_rank <= prev_rank) return max_;
  const double t = (target - prev_rank) / (last_rank - prev_rank);
  return prev_mean + t * (max_ - prev_mean);
}

}  // namespace chameleon::obs
