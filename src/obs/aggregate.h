#ifndef CHAMELEON_OBS_AGGREGATE_H_
#define CHAMELEON_OBS_AGGREGATE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/quantile_digest.h"
#include "src/util/thread_annotations.h"

namespace chameleon::obs {

/// One metric folded across many per-request registries (DESIGN.md §15).
/// Merge rules: counters and histogram counts/sums/bucket vectors add;
/// gauges are last-write-wins in absorb order; histogram digests merge
/// (QuantileDigest::Merge) and bucket bounds are fixed by the first
/// sample that carries them.
struct MergedMetric {
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;
  double sum = 0.0;                // histogram only
  std::vector<double> bounds;      // histogram only
  std::vector<int64_t> buckets;    // histogram only
  QuantileDigest digest;           // histogram only
};

/// Name-keyed merge view of one or more registry snapshots.
using MergedMetrics = std::map<std::string, MergedMetric>;

/// Folds `sample` into `into` under the merge rules above. A type
/// mismatch on an existing name keeps the first-seen type and ignores
/// the conflicting sample (aggregates must never crash the daemon).
void MergeSample(MergedMetrics* into, const MetricSample& sample);

/// Folds every sample of `from` into `into` (in `from`'s name order, so
/// two merges of the same operand sets in the same order are
/// deterministic).
void MergeAll(MergedMetrics* into, const MergedMetrics& from);

/// Flattens a merge view back to export-ready samples, sorted by name.
/// Histogram p50/p90/p99 are re-derived from the merged digest.
std::vector<MetricSample> MergedToSamples(const MergedMetrics& merged);

struct AggregatorOptions {
  /// Rolling window spans, on the daemon's virtual-millisecond axis.
  double short_window_ms = 60000.0;   // the "1m" view
  double long_window_ms = 300000.0;   // the "5m" view
  /// Granularity of window bookkeeping: absorbs landing within one
  /// bucket merge eagerly; windows are therefore accurate to one bucket.
  double bucket_ms = 5000.0;
};

/// Daemon-global rollup of per-request telemetry: each finished request's
/// registry snapshot is absorbed at a virtual timestamp, and Scrape
/// renders three views — the lifetime total plus rolling short/long
/// windows ("window1m." / "window5m." name prefixes). SLO counters
/// (deadline misses, parked rounds, admission rejects) ride through the
/// same machinery via AddCounter, so they get windowed views for free.
///
/// The aggregate is operational telemetry, not a determinism artifact:
/// counter totals, histogram counts/sums and bucket vectors are
/// order-independent and therefore reproducible, but gauge values,
/// window assignment, and merged-digest quantiles depend on request
/// completion order (DESIGN.md §15 — never gate CI on those).
///
/// Thread-safe; completion-path callers serialize through the mutex.
class Aggregator {
 public:
  explicit Aggregator(const AggregatorOptions& options = AggregatorOptions());
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Folds a registry snapshot in at virtual time `at_ms` (monotone per
  /// caller; out-of-order timestamps clamp to the newest bucket).
  void Absorb(const Registry& registry, double at_ms);

  /// Same, from an already-taken snapshot (tests, replay).
  void AbsorbSamples(const std::vector<MetricSample>& samples, double at_ms);

  /// Adds `delta` to counter `name` at `at_ms` (the SLO counters' path).
  void AddCounter(const std::string& name, int64_t delta, double at_ms);

  /// Total + windowed views as of `now_ms`, sorted by name. Windowed
  /// names carry "window1m." / "window5m." prefixes; the total view
  /// keeps bare names, so one OpenMetrics document serves all three.
  std::vector<MetricSample> Scrape(double now_ms) const;

  /// Registry snapshots absorbed so far (requests, not samples).
  int64_t absorbed() const;

 private:
  struct Bucket {
    double start_ms = 0.0;
    MergedMetrics metrics;
  };

  // Takes mutex_ itself; `count_request` bumps the absorbed() counter.
  void AbsorbMerged(const MergedMetrics& merged, double at_ms,
                    bool count_request);

  AggregatorOptions options_;
  mutable std::mutex mutex_;
  MergedMetrics total_ CHAMELEON_GUARDED_BY(mutex_);
  std::deque<Bucket> buckets_ CHAMELEON_GUARDED_BY(mutex_);
  int64_t absorbed_ CHAMELEON_GUARDED_BY(mutex_) = 0;
};

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_AGGREGATE_H_
