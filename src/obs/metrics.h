#ifndef CHAMELEON_OBS_METRICS_H_
#define CHAMELEON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/quantile_digest.h"
#include "src/util/status.h"
#include "src/util/table_printer.h"
#include "src/util/thread_annotations.h"

namespace chameleon::obs {

/// Monotonic event counter. Thread-safe: a single relaxed atomic add per
/// Increment, so instrumented hot paths pay one uncontended RMW.
class Counter {
 public:
  /// Adds `delta` (negative deltas are ignored: counters only go up).
  void Increment(int64_t delta = 1) {
    if (delta > 0) value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, estimated p, ...).
/// Thread-safe via an atomic double.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Adds `delta` with a CAS loop (for +1/-1 in-flight style gauges).
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in strictly
/// increasing order; bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i], and one implicit overflow bucket counts
/// v > bounds.back(). Every observation also feeds a QuantileDigest, so
/// p50/p90/p99 are queryable without choosing bucket bounds that happen
/// to bracket them. Thread-safe: per-bucket atomic counts plus CAS-added
/// sum (concurrent Observe calls never lose an observation) and a
/// mutex-guarded digest. The digest contents depend on observation
/// *order*, so its quantiles are part of the determinism contract only
/// for metrics observed from the pipeline's serial path — which is every
/// stable metric (DESIGN.md §9).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<int64_t> BucketCounts() const;

  /// Interpolated quantile of everything observed so far (0 when empty).
  double Quantile(double q) const;

  /// Copy of the underlying digest (for merging across registries).
  QuantileDigest Digest() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable std::mutex digest_mutex_;
  QuantileDigest digest_ CHAMELEON_GUARDED_BY(digest_mutex_);
};

/// One exported metric, flattened for table/JSON rendering.
struct MetricSample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;  // counter/gauge value; histogram observation count
  double sum = 0.0;                // histogram only
  std::vector<double> bounds;      // histogram only
  std::vector<int64_t> buckets;    // histogram only, bounds.size() + 1
  double p50 = 0.0;                // histogram only, digest quantiles
  double p90 = 0.0;
  double p99 = 0.0;
  /// Histogram only: a copy of the mergeable quantile digest, so
  /// registry snapshots can be merged across requests (obs::Aggregator)
  /// without losing tail resolution. Empty for counters/gauges.
  QuantileDigest digest;
};

/// Name-indexed metric registry. Registration is idempotent: the first
/// call for a name creates the instrument, later calls return the same
/// pointer (a histogram's bounds are fixed by the first registration).
/// Returned pointers stay valid for the registry's lifetime. Thread-safe:
/// lookup/creation is mutex-guarded; the returned instruments synchronize
/// themselves, so cache the pointer outside loops.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  obs::Counter* Counter(const std::string& name);
  obs::Gauge* Gauge(const std::string& name);
  obs::Histogram* Histogram(const std::string& name,
                            const std::vector<double>& bounds);

  /// All metrics, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Rows (metric, type, value, detail) ready for util::TablePrinter.
  util::TablePrinter ToTable() const;

  /// One JSON object per metric, one per line (JSONL).
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  [[nodiscard]] util::Status Write(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<obs::Counter>> counters_
      CHAMELEON_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<obs::Gauge>> gauges_
      CHAMELEON_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<obs::Histogram>> histograms_
      CHAMELEON_GUARDED_BY(mutex_);
};

/// The determinism contract (DESIGN.md §9): a stable metric must be
/// bit-identical at every `num_threads` for a fixed configuration. The
/// exemptions are load/schedule-dependent by nature and documented as
/// such: everything under `threadpool.` (no pool even exists on the
/// serial path), `mup.count_queries` (the parallel lattice traversal
/// prefetches parent counts instead of short-circuiting), and
/// `mup.incremental.insert_ns` (amortized wall time per streamed insert).
bool IsStableMetric(const std::string& name);

/// Formats a double for export: shortest representation that
/// round-trips, so snapshots and goldens are stable.
std::string FormatMetricValue(double value);

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_METRICS_H_
