#include "src/obs/journal.h"

#include <cstdio>
#include <fstream>

#include "src/obs/metrics.h"

namespace chameleon::obs {

JournalEvent& JournalEvent::Set(const std::string& key,
                                const std::string& value) {
  std::string rendered = "\"";
  rendered += JsonEscape(value);
  rendered += "\"";
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JournalEvent& JournalEvent::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JournalEvent& JournalEvent::Set(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JournalEvent& JournalEvent::Set(const std::string& key, double value) {
  fields_.emplace_back(key, FormatMetricValue(value));
  return *this;
}

JournalEvent& JournalEvent::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string JournalEvent::ToJson(uint64_t tick) const {
  return ToJson(tick, std::string());
}

std::string JournalEvent::ToJson(uint64_t tick,
                                 const std::string& request_id) const {
  std::string out = "{\"type\":\"" + JsonEscape(type_) +
                    "\",\"tick\":" + std::to_string(tick);
  if (!request_id.empty()) {
    out += ",\"rid\":\"" + JsonEscape(request_id) + "\"";
  }
  for (const auto& [key, value] : fields_) {
    out += ",\"" + JsonEscape(key) + "\":" + value;
  }
  out += "}";
  return out;
}

void Journal::Record(const JournalEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(event.ToJson(clock_->Tick(), request_id_));
  if (stream_ != nullptr) {
    *stream_ << lines_.back() << '\n';
    stream_->flush();
  }
  if (line_sink_) line_sink_(lines_.back());
}

void Journal::set_request_id(const std::string& request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  request_id_ = request_id;
}

std::string Journal::request_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return request_id_;
}

void Journal::SetLineSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  line_sink_ = std::move(sink);
}

size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

std::vector<std::string> Journal::Lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::string Journal::ToJsonl() const {
  std::string out;
  for (const std::string& line : Lines()) {
    out += line;
    out += "\n";
  }
  return out;
}

util::Status Journal::Write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return util::Status::IoError("cannot open journal file: " + path);
  }
  out << ToJsonl();
  out.close();
  if (!out) return util::Status::IoError("failed writing journal: " + path);
  return util::Status::Ok();
}

util::Status Journal::StreamTo(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_ != nullptr) {
    return util::Status::FailedPrecondition(
        "journal is already streaming to: " + stream_path_);
  }
  auto stream = std::make_unique<std::ofstream>(path);
  if (!*stream) {
    return util::Status::IoError("cannot open journal stream: " + path);
  }
  for (const std::string& line : lines_) *stream << line << '\n';
  stream->flush();
  if (!*stream) {
    return util::Status::IoError("failed writing journal stream: " + path);
  }
  stream_ = std::move(stream);
  stream_path_ = path;
  return util::Status::Ok();
}

util::Status Journal::CloseStream() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_ == nullptr) return util::Status::Ok();
  stream_->flush();
  const bool ok = static_cast<bool>(*stream_);
  const std::string path = stream_path_;
  stream_.reset();
  stream_path_.clear();
  if (!ok) {
    return util::Status::IoError("failed writing journal stream: " + path);
  }
  return util::Status::Ok();
}

bool Journal::streaming() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stream_ != nullptr;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace chameleon::obs
