#ifndef CHAMELEON_OBS_EXPORT_H_
#define CHAMELEON_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace chameleon::obs {

/// Renders a registry snapshot in the OpenMetrics / Prometheus text
/// exposition format, ready for `promtool check metrics` or a scrape
/// endpoint:
///
///   # TYPE fm_queries counter
///   fm_queries_total 47
///   # TYPE rejection_decision_value histogram
///   rejection_decision_value_bucket{le="-2"} 0
///   ...
///   rejection_decision_value_bucket{le="+Inf"} 12
///   rejection_decision_value_sum 3.5
///   rejection_decision_value_count 12
///   # EOF
///
/// Metric names are sanitized (dots and other non-[a-zA-Z0-9_:] become
/// '_'); counters gain the conventional `_total` suffix. Each histogram
/// additionally exports its digest quantiles as a summary named
/// `<name>_latency` with quantile labels 0.5 / 0.9 / 0.99. Output is
/// sorted by metric name and deterministic for a fixed snapshot.
[[nodiscard]] std::string ExportOpenMetrics(const Registry& registry);

/// Same rendering from an already-flattened sample list (sorted by name
/// by the producer — Registry::Snapshot and obs::Aggregator::Scrape both
/// guarantee that), so merged aggregates export through the exact code
/// path a single registry does.
[[nodiscard]] std::string ExportOpenMetrics(
    const std::vector<MetricSample>& samples);

/// Renders the span tree in the Chrome `trace_event` JSON format, which
/// loads directly in Perfetto / `about://tracing`. The time axis is the
/// deterministic virtual tick counter (microsecond units in the file, 1
/// tick = 1 us), so two traces of the same seeded run are byte-identical
/// at every thread count; the virtual-millisecond axis travels in each
/// event's `args`. Closed spans become complete ("ph":"X") events; spans
/// still open when exporting become begin ("ph":"B") events.
[[nodiscard]] std::string ExportTraceEvents(const Tracer& tracer);

/// Writes ExportOpenMetrics(registry) to `path`.
[[nodiscard]] util::Status WriteOpenMetrics(const Registry& registry,
                                            const std::string& path);

/// Writes ExportTraceEvents(tracer) to `path`.
[[nodiscard]] util::Status WriteTraceEvents(const Tracer& tracer,
                                            const std::string& path);

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_EXPORT_H_
