#ifndef CHAMELEON_OBS_JOURNAL_H_
#define CHAMELEON_OBS_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/virtual_clock.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace chameleon::obs {

/// One structured journal event: a type plus ordered key/value fields,
/// rendered as a single JSON object line. Values are rendered at Set
/// time, so an event is a cheap flat string list.
class JournalEvent {
 public:
  explicit JournalEvent(std::string type) : type_(std::move(type)) {}

  JournalEvent& Set(const std::string& key, const std::string& value);
  JournalEvent& Set(const std::string& key, const char* value);
  JournalEvent& Set(const std::string& key, int64_t value);
  JournalEvent& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JournalEvent& Set(const std::string& key, size_t value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JournalEvent& Set(const std::string& key, double value);
  JournalEvent& Set(const std::string& key, bool value);

  const std::string& type() const { return type_; }

  /// `{"type":"...","tick":N, ...fields}` — field order = Set order.
  std::string ToJson(uint64_t tick) const;

  /// Request-scoped rendering: with a non-empty `request_id` the event
  /// carries a `"rid"` field right after the tick, so one daemon journal
  /// can interleave events from many concurrent requests and still be
  /// split apart per request. An empty id renders byte-identically to
  /// ToJson(tick) — run-scoped artifacts are unchanged.
  std::string ToJson(uint64_t tick, const std::string& request_id) const;

 private:
  std::string type_;
  // (key, pre-rendered JSON value) in insertion order.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Append-only structured run journal (JSONL sink). Each Record stamps
/// the event with the shared VirtualClock's next tick — the same
/// sequence the Tracer draws span ticks from, so journal lines and
/// spans interleave on one deterministic timeline. Thread-safe; the
/// pipeline records from its serial sections only, which is what makes
/// the journal bit-identical at every thread count.
class Journal {
 public:
  explicit Journal(VirtualClock* clock) : clock_(clock) {}
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void Record(const JournalEvent& event);

  /// Stamps every subsequently recorded event with `"rid":"<id>"` (the
  /// request-scoped telemetry contract, DESIGN.md §15). Set it before
  /// recording; an empty id (the default) leaves the rendering
  /// byte-identical to the run-scoped format.
  void set_request_id(const std::string& request_id);
  std::string request_id() const;

  /// Installs a live tee: `sink` is invoked with each rendered line
  /// immediately after it is recorded (under the journal mutex, so sinks
  /// observe lines in record order). The serving layer uses this to
  /// forward per-request events into the daemon-wide journal. Pass an
  /// empty function to detach.
  void SetLineSink(std::function<void(const std::string&)> sink);

  size_t size() const;

  /// Serialized event lines, in record order (no trailing newline).
  std::vector<std::string> Lines() const;

  /// All lines joined with '\n' (newline-terminated when non-empty).
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path`.
  [[nodiscard]] util::Status Write(const std::string& path) const;

  /// Opens `path` and appends every subsequent Record as one flushed
  /// line. A run that dies mid-way therefore leaves an analyzable
  /// prefix on disk (obsctl tolerates a truncated final line), instead
  /// of the whole journal evaporating with the process. Events recorded
  /// before StreamTo are written immediately, so the file is always a
  /// prefix of ToJsonl().
  [[nodiscard]] util::Status StreamTo(const std::string& path);

  /// Flushes and closes the streaming sink; reports any pending write
  /// error. No-op when not streaming.
  [[nodiscard]] util::Status CloseStream();

  bool streaming() const;

 private:
  VirtualClock* clock_;
  mutable std::mutex mutex_;
  std::vector<std::string> lines_ CHAMELEON_GUARDED_BY(mutex_);
  std::string request_id_ CHAMELEON_GUARDED_BY(mutex_);
  std::function<void(const std::string&)> line_sink_
      CHAMELEON_GUARDED_BY(mutex_);
  std::unique_ptr<std::ofstream> stream_ CHAMELEON_GUARDED_BY(mutex_);
  std::string stream_path_ CHAMELEON_GUARDED_BY(mutex_);
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& text);

}  // namespace chameleon::obs

#endif  // CHAMELEON_OBS_JOURNAL_H_
