#ifndef CHAMELEON_COVERAGE_INCREMENTAL_MUP_H_
#define CHAMELEON_COVERAGE_INCREMENTAL_MUP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/data/dataset.h"
#include "src/data/pattern.h"
#include "src/data/schema.h"
#include "src/util/status.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::coverage {

/// Configuration for an IncrementalMupIndex.
struct IncrementalMupOptions {
  /// Coverage threshold tau: a subgroup g is uncovered when |g ∩ D| < tau.
  int64_t tau = 50;
  /// Only maintain MUPs at level <= max_level (d by default, i.e. all) —
  /// the same semantics as MupFinderOptions::max_level.
  int max_level = -1;
  /// Worker count for the *initial* full lattice traversal (delegated to
  /// MupFinder::FindMups, which is bit-identical at every setting).
  /// Incremental patches touch a handful of lattice nodes and always run
  /// serially, so the maintained MUP set is bit-identical at every value.
  int num_threads = 0;
  /// Optional observability sink (not owned; null = no instrumentation).
  /// Inserts record the `mup.incremental.patched` / `mup.incremental.
  /// retired` / `mup.incremental.discovered` counters (deterministic) and
  /// the `mup.incremental.insert_ns` amortized wall-time histogram
  /// (exempt from the determinism contract via obs::IsStableMetric).
  obs::Observability* observability = nullptr;
};

/// Maintains the exact MUP set of a growing dataset under single-tuple
/// and batched inserts (DESIGN.md §14). Instead of re-running the full
/// top-down lattice BFS after every arrival, an insert
///
///   1. patches the stored counts of the live MUPs the tuple matches,
///   2. retires every MUP whose count crossed tau (it became covered, so
///      it is no longer maximal-uncovered), and
///   3. expands only the sublattice below the retired MUPs — the one
///      region the original BFS pruned away — discovering the new MUPs
///      that the retirement exposed.
///
/// Correctness rests on count monotonicity (a parent is more general than
/// its child, so count(parent) >= count(child)): inserts only increase
/// counts, a pattern that flips uncovered→covered must previously have
/// been uncovered, every previously-uncovered pattern lies at or below a
/// current MUP, and therefore every flipped pattern is reachable from a
/// retired MUP. The local expansion applies the exact FindMups predicate
/// (uncovered with every parent covered), so after every insert `Mups()`
/// equals order-normalized `MupFinder::FindMups` on the materialized
/// dataset — the contract the differential oracle in
/// tests/incremental_mup_test.cc checks step by step.
///
/// The index owns its schema (shared, immutable) and its PatternCounter,
/// so it is copyable: the serving layer clones one warm base-corpus index
/// per request instead of re-traversing the lattice (DESIGN.md §14).
/// Not thread-safe; confine an instance to one request/thread.
class IncrementalMupIndex {
 public:
  /// An index over the empty dataset (the root pattern is the single MUP
  /// whenever tau > 0).
  IncrementalMupIndex(const data::AttributeSchema& schema,
                      const IncrementalMupOptions& options);

  /// Builds an index over all tuples currently in `dataset` (one full
  /// FindMups traversal). Returns InvalidArgument when a tuple does not
  /// fit the dataset's schema.
  static util::Result<IncrementalMupIndex> FromDataset(
      const data::Dataset& dataset, const IncrementalMupOptions& options);

  /// Inserts one tuple and patches the MUP frontier. Returns
  /// InvalidArgument — changing nothing — when the tuple's arity or any
  /// value falls outside the schema.
  [[nodiscard]] util::Status Insert(const std::vector<int>& values);

  /// Inserts a batch of tuples, then patches the frontier once against
  /// the fully-updated counts. Equivalent to (but cheaper than) inserting
  /// the tuples one at a time: the MUP set is a pure function of the
  /// materialized dataset. Validates the whole batch up front, so a
  /// failed call changes nothing.
  [[nodiscard]] util::Status InsertBatch(
      const std::vector<std::vector<int>>& batch);

  /// The current MUP set, order-normalized exactly like FindMups:
  /// ascending level, then lexicographic pattern. Counts and gaps are
  /// exact for the materialized dataset.
  [[nodiscard]] std::vector<Mup> Mups() const;

  /// Number of inserted tuples (the size of the materialized dataset).
  int64_t num_tuples() const { return counter_.num_tuples(); }

  int64_t tau() const { return options_.tau; }

  const data::AttributeSchema& schema() const { return *schema_; }

  /// Structural schema equality (attribute count + per-attribute
  /// cardinality): the cheap staleness guard callers use before trusting
  /// a warm index against a corpus they did not watch grow.
  bool SchemaMatches(const data::AttributeSchema& other) const;

  /// Re-points the instrumentation sink (not owned; null disables it).
  /// A warm index cloned across requests must observe into the adopting
  /// request's registry, not the one it was built under.
  void set_observability(obs::Observability* observability) {
    options_.observability = observability;
  }

  /// Lifetime diagnostics: cumulative live-MUP count patches applied,
  /// MUPs retired (crossed tau), and new MUPs discovered by expansion.
  int64_t patched() const { return patched_total_; }
  int64_t retired() const { return retired_total_; }
  int64_t discovered() const { return discovered_total_; }

 private:
  /// Full FindMups traversal over the current counter; seeds the live
  /// frontier (construction and FromDataset only — never on insert).
  void RebuildFrontier();

  /// The patch algorithm described above; `batch` is already validated
  /// and indexed into counter_.
  void PatchFrontier(const std::vector<std::vector<int>>& batch);

  [[nodiscard]] util::Status ValidateTuple(const std::vector<int>& values) const;

  /// Shared so the default copy keeps counter_'s schema pointer alive and
  /// correct: copies alias one immutable schema instead of dangling into
  /// a dead sibling.
  std::shared_ptr<const data::AttributeSchema> schema_;
  IncrementalMupOptions options_;
  PatternCounter counter_;
  /// Live frontier: MUP pattern -> exact |D ∩ P|.
  std::unordered_map<data::Pattern, int64_t, data::PatternHash> live_;

  int64_t patched_total_ = 0;
  int64_t retired_total_ = 0;
  int64_t discovered_total_ = 0;
};

}  // namespace chameleon::coverage

#endif  // CHAMELEON_COVERAGE_INCREMENTAL_MUP_H_
