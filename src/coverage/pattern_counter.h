#ifndef CHAMELEON_COVERAGE_PATTERN_COUNTER_H_
#define CHAMELEON_COVERAGE_PATTERN_COUNTER_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/pattern.h"
#include "src/data/schema.h"
#include "src/util/status.h"

namespace chameleon::coverage {

/// Counts |D ∩ P| for many patterns efficiently using the inverted-index
/// idea of Asudeh et al. (ICDE'19): one sorted posting list of tuple ids
/// per (attribute, value); a pattern count is the size of the intersection
/// of the posting lists of its specified cells, intersected smallest-first.
///
/// Supports incremental growth (AddTuple) so the repair loop can keep the
/// index in sync as synthetic tuples are accepted.
class PatternCounter {
 public:
  explicit PatternCounter(const data::AttributeSchema& schema);

  /// Builds the index over all tuples currently in `dataset`. Returns
  /// InvalidArgument when a tuple does not fit the dataset's schema
  /// (reachable via Dataset::mutable_tuple; Dataset::Add validates on
  /// insert). Like the rest of the library, this never aborts.
  static util::Result<PatternCounter> FromDataset(
      const data::Dataset& dataset);

  /// Registers one tuple's attribute values. Ids are assigned in call
  /// order and must be appended in increasing order (as Dataset does).
  /// Returns InvalidArgument — indexing nothing — when the tuple's arity
  /// or any value falls outside the schema (an unchecked write here would
  /// be out-of-bounds UB).
  [[nodiscard]] util::Status AddTuple(const std::vector<int>& values);

  /// Number of indexed tuples.
  int64_t num_tuples() const { return num_tuples_; }

  /// |D ∩ P|.
  int64_t Count(const data::Pattern& pattern) const;

  /// Ids of tuples matching the pattern (ascending).
  std::vector<int64_t> Matching(const data::Pattern& pattern) const;

 private:
  const std::vector<int64_t>& Postings(int attribute, int value) const;

  const data::AttributeSchema* schema_;
  // postings_[attribute][value] = sorted tuple ids with that value.
  std::vector<std::vector<std::vector<int64_t>>> postings_;
  int64_t num_tuples_ = 0;
};

}  // namespace chameleon::coverage

#endif  // CHAMELEON_COVERAGE_PATTERN_COUNTER_H_
