#include "src/coverage/pattern_counter.h"

#include <algorithm>

namespace chameleon::coverage {

PatternCounter::PatternCounter(const data::AttributeSchema& schema)
    : schema_(&schema) {
  postings_.resize(schema.num_attributes());
  for (int a = 0; a < schema.num_attributes(); ++a) {
    postings_[a].resize(schema.attribute(a).cardinality());
  }
}

util::Result<PatternCounter> PatternCounter::FromDataset(
    const data::Dataset& dataset) {
  PatternCounter counter(dataset.schema());
  for (const auto& t : dataset.tuples()) {
    // Dataset::Add validates on insert, but tuples are mutable in place
    // (Dataset::mutable_tuple), so a mismatch is recoverable input here,
    // not a reason to abort the process.
    CHAMELEON_RETURN_NOT_OK(counter.AddTuple(t.values));
  }
  return counter;
}

util::Status PatternCounter::AddTuple(const std::vector<int>& values) {
  if (static_cast<int>(values.size()) != schema_->num_attributes()) {
    return util::Status::InvalidArgument(
        "tuple arity does not match the schema");
  }
  for (int a = 0; a < schema_->num_attributes(); ++a) {
    if (values[a] < 0 || values[a] >= schema_->attribute(a).cardinality()) {
      return util::Status::InvalidArgument(
          "value out of domain for attribute " + schema_->attribute(a).name);
    }
  }
  for (int a = 0; a < schema_->num_attributes(); ++a) {
    postings_[a][values[a]].push_back(num_tuples_);
  }
  ++num_tuples_;
  return util::Status::Ok();
}

const std::vector<int64_t>& PatternCounter::Postings(int attribute,
                                                     int value) const {
  return postings_[attribute][value];
}

int64_t PatternCounter::Count(const data::Pattern& pattern) const {
  // Collect the posting lists of specified cells, smallest first.
  std::vector<const std::vector<int64_t>*> lists;
  for (int a = 0; a < pattern.num_attributes(); ++a) {
    if (pattern.IsSpecified(a)) {
      lists.push_back(&Postings(a, pattern.cell(a)));
    }
  }
  if (lists.empty()) return num_tuples_;
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  if (lists.size() == 1) return static_cast<int64_t>(lists[0]->size());

  // Galloping intersection seeded by the smallest list.
  int64_t count = 0;
  for (int64_t id : *lists[0]) {
    bool in_all = true;
    for (size_t l = 1; l < lists.size(); ++l) {
      if (!std::binary_search(lists[l]->begin(), lists[l]->end(), id)) {
        in_all = false;
        break;
      }
    }
    count += in_all;
  }
  return count;
}

std::vector<int64_t> PatternCounter::Matching(
    const data::Pattern& pattern) const {
  std::vector<const std::vector<int64_t>*> lists;
  for (int a = 0; a < pattern.num_attributes(); ++a) {
    if (pattern.IsSpecified(a)) {
      lists.push_back(&Postings(a, pattern.cell(a)));
    }
  }
  std::vector<int64_t> result;
  if (lists.empty()) {
    result.resize(num_tuples_);
    for (int64_t i = 0; i < num_tuples_; ++i) result[i] = i;
    return result;
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  for (int64_t id : *lists[0]) {
    bool in_all = true;
    for (size_t l = 1; l < lists.size(); ++l) {
      if (!std::binary_search(lists[l]->begin(), lists[l]->end(), id)) {
        in_all = false;
        break;
      }
    }
    if (in_all) result.push_back(id);
  }
  return result;
}

}  // namespace chameleon::coverage
