#include "src/coverage/incremental_mup.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "src/obs/observability.h"
#include "src/util/stopwatch.h"

namespace chameleon::coverage {
namespace {

/// FindMups' canonical output order: ascending level, then lexicographic
/// pattern (mup_finder.cc keeps its own copy; the two must stay in sync
/// for the differential oracle's exact-equality check).
void SortMups(std::vector<Mup>* mups) {
  std::sort(mups->begin(), mups->end(), [](const Mup& a, const Mup& b) {
    if (a.Level() != b.Level()) return a.Level() < b.Level();
    return a.pattern < b.pattern;
  });
}

/// Amortized wall nanoseconds per inserted tuple. Wall time is inherently
/// machine/load-dependent, so the metric is exempt from the determinism
/// contract (obs::IsStableMetric).
const std::vector<double>& InsertNsBounds() {
  static const std::vector<double> bounds = {100.0,    250.0,    500.0,
                                             1000.0,   2500.0,   5000.0,
                                             10000.0,  25000.0,  50000.0,
                                             100000.0, 1000000.0};
  return bounds;
}

}  // namespace

IncrementalMupIndex::IncrementalMupIndex(const data::AttributeSchema& schema,
                                         const IncrementalMupOptions& options)
    : schema_(std::make_shared<data::AttributeSchema>(schema)),
      options_(options),
      counter_(*schema_) {
  RebuildFrontier();
}

util::Result<IncrementalMupIndex> IncrementalMupIndex::FromDataset(
    const data::Dataset& dataset, const IncrementalMupOptions& options) {
  IncrementalMupIndex index(dataset.schema(), options);
  for (const data::Tuple& tuple : dataset.tuples()) {
    CHAMELEON_RETURN_NOT_OK(index.counter_.AddTuple(tuple.values));
  }
  // One full traversal over the loaded counter beats patching the empty
  // index tuple by tuple, and gets the parallel FindMups for free.
  index.RebuildFrontier();
  return index;
}

void IncrementalMupIndex::RebuildFrontier() {
  MupFinder finder(*schema_, counter_);
  MupFinderOptions find_options;
  find_options.tau = options_.tau;
  find_options.max_level = options_.max_level;
  find_options.num_threads = options_.num_threads;
  // Deliberately no observability: the adopting pipeline decides how a
  // (re)build is journaled, and a warm clone must not re-emit the build's
  // mup.found events into a second request's registry.
  const std::vector<Mup> mups = finder.FindMups(find_options);
  live_.clear();
  for (const Mup& mup : mups) {
    live_.emplace(mup.pattern, mup.count);
  }
}

util::Status IncrementalMupIndex::ValidateTuple(
    const std::vector<int>& values) const {
  if (static_cast<int>(values.size()) != schema_->num_attributes()) {
    return util::Status::InvalidArgument(
        "tuple arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(schema_->num_attributes()));
  }
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    if (values[i] < 0 || values[i] >= schema_->attribute(i).cardinality()) {
      return util::Status::InvalidArgument(
          "value " + std::to_string(values[i]) + " out of domain for '" +
          schema_->attribute(i).name + "'");
    }
  }
  return util::Status::Ok();
}

util::Status IncrementalMupIndex::Insert(const std::vector<int>& values) {
  const std::vector<std::vector<int>> batch = {values};
  return InsertBatch(batch);
}

util::Status IncrementalMupIndex::InsertBatch(
    const std::vector<std::vector<int>>& batch) {
  if (batch.empty()) return util::Status::Ok();
  // Validate everything up front: a failed batch must change nothing, and
  // PatternCounter only validates per tuple.
  for (const std::vector<int>& values : batch) {
    CHAMELEON_RETURN_NOT_OK(ValidateTuple(values));
  }

  obs::Observability* const obs = options_.observability;
  std::optional<util::Stopwatch> timer;
  if (obs != nullptr) timer.emplace();
  const int64_t patched_before = patched_total_;
  const int64_t retired_before = retired_total_;
  const int64_t discovered_before = discovered_total_;

  for (const std::vector<int>& values : batch) {
    // Cannot fail: ValidateTuple mirrors AddTuple's checks.
    CHAMELEON_RETURN_NOT_OK(counter_.AddTuple(values));
  }
  PatchFrontier(batch);

  if (obs != nullptr) {
    obs->registry.Counter("mup.incremental.patched")
        ->Increment(patched_total_ - patched_before);
    obs->registry.Counter("mup.incremental.retired")
        ->Increment(retired_total_ - retired_before);
    obs->registry.Counter("mup.incremental.discovered")
        ->Increment(discovered_total_ - discovered_before);
    obs->registry.Histogram("mup.incremental.insert_ns", InsertNsBounds())
        ->Observe(timer->ElapsedSeconds() * 1e9 /
                  static_cast<double>(batch.size()));
  }
  return util::Status::Ok();
}

void IncrementalMupIndex::PatchFrontier(
    const std::vector<std::vector<int>>& batch) {
  const int d = schema_->num_attributes();
  const int max_level = options_.max_level < 0 ? d : options_.max_level;

  // 1. Patch: bump each live MUP by its number of matches. Counts stay
  // exact (the stored count was |D ∩ P| and the batch is now part of D),
  // so Mups() never has to re-query the counter.
  std::vector<data::Pattern> crossed;
  for (auto& entry : live_) {
    int64_t delta = 0;
    for (const std::vector<int>& values : batch) {
      if (entry.first.Matches(values)) ++delta;
    }
    if (delta == 0) continue;
    entry.second += delta;
    ++patched_total_;
    if (entry.second >= options_.tau) crossed.push_back(entry.first);
  }
  if (crossed.empty()) return;

  // 2. Retire every MUP that crossed tau. Sorting first keeps the
  // expansion order (and therefore any future journaling) independent of
  // hash-map iteration order.
  std::sort(crossed.begin(), crossed.end(),
            [](const data::Pattern& a, const data::Pattern& b) {
              if (a.Level() != b.Level()) return a.Level() < b.Level();
              return a < b;
            });
  std::unordered_map<data::Pattern, int64_t, data::PatternHash> counts;
  for (const data::Pattern& pattern : crossed) {
    counts.emplace(pattern, live_.at(pattern));
    live_.erase(pattern);
  }
  retired_total_ += static_cast<int64_t>(crossed.size());

  auto count_of = [&](const data::Pattern& pattern) {
    auto it = counts.find(pattern);
    if (it != counts.end()) return it->second;
    const int64_t count = counter_.Count(pattern);
    counts.emplace(pattern, count);
    return count;
  };

  // 3. Expand only below the retired MUPs. Everything down there was
  // uncovered before this batch (count monotonicity), i.e. it is exactly
  // the region the original BFS pruned; re-running FindMups' loop on it
  // with fresh counts surfaces every newly-exposed MUP. Patterns whose
  // uncovered→covered flip happened under a *different* ancestor are
  // still reached: any flipped chain tops out at a retired MUP.
  std::unordered_set<data::Pattern, data::PatternHash> visited(
      crossed.begin(), crossed.end());
  std::deque<data::Pattern> frontier(crossed.begin(), crossed.end());
  while (!frontier.empty()) {
    const data::Pattern pattern = frontier.front();
    frontier.pop_front();

    const int64_t count = count_of(pattern);
    if (count >= options_.tau) {
      // Covered: descend, exactly like FindMups (including the max_level
      // cutoff, so a bounded index matches a bounded finder).
      if (pattern.Level() >= max_level) continue;
      for (auto& child : pattern.Children(*schema_)) {
        if (visited.insert(child).second) {
          frontier.push_back(std::move(child));
        }
      }
      continue;
    }

    // Uncovered: a MUP iff every parent is covered. Parents outside the
    // expansion region kept their old coverage status, so querying the
    // counter directly is exact.
    bool all_parents_covered = true;
    for (const auto& parent : pattern.Parents()) {
      if (count_of(parent) < options_.tau) {
        all_parents_covered = false;
        break;
      }
    }
    if (all_parents_covered) {
      live_.emplace(pattern, count);
      ++discovered_total_;
    }
  }
}

std::vector<Mup> IncrementalMupIndex::Mups() const {
  std::vector<Mup> mups;
  mups.reserve(live_.size());
  for (const auto& entry : live_) {
    mups.push_back(
        Mup{entry.first, entry.second, options_.tau - entry.second});
  }
  SortMups(&mups);
  return mups;
}

bool IncrementalMupIndex::SchemaMatches(
    const data::AttributeSchema& other) const {
  if (other.num_attributes() != schema_->num_attributes()) return false;
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    if (other.attribute(i).cardinality() !=
        schema_->attribute(i).cardinality()) {
      return false;
    }
  }
  return true;
}

}  // namespace chameleon::coverage
