#include "src/coverage/mup_finder.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace chameleon::coverage {

MupFinder::MupFinder(const data::AttributeSchema& schema,
                     const PatternCounter& counter)
    : schema_(&schema), counter_(&counter) {}

std::vector<Mup> MupFinder::FindMups(const MupFinderOptions& options) const {
  const int d = schema_->num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;
  last_count_queries_ = 0;

  std::unordered_map<data::Pattern, int64_t, data::PatternHash> count_cache;
  auto count_of = [&](const data::Pattern& p) {
    auto it = count_cache.find(p);
    if (it != count_cache.end()) return it->second;
    ++last_count_queries_;
    const int64_t c = counter_->Count(p);
    count_cache.emplace(p, c);
    return c;
  };

  std::vector<Mup> mups;
  std::unordered_set<data::Pattern, data::PatternHash> visited;
  std::deque<data::Pattern> frontier;
  const data::Pattern root(d);
  frontier.push_back(root);
  visited.insert(root);

  while (!frontier.empty()) {
    const data::Pattern pattern = frontier.front();
    frontier.pop_front();

    const int64_t count = count_of(pattern);
    if (count >= options.tau) {
      // Covered: descend. Children of covered nodes are the only
      // candidates that can have all parents covered.
      if (pattern.Level() >= max_level) continue;
      for (auto& child : pattern.Children(*schema_)) {
        if (visited.insert(child).second) {
          frontier.push_back(std::move(child));
        }
      }
      continue;
    }

    // Uncovered: a MUP iff every parent is covered. (The root has no
    // parents and is a MUP when itself uncovered.)
    bool all_parents_covered = true;
    for (const auto& parent : pattern.Parents()) {
      if (count_of(parent) < options.tau) {
        all_parents_covered = false;
        break;
      }
    }
    if (all_parents_covered) {
      mups.push_back(Mup{pattern, count, options.tau - count});
    }
  }

  std::sort(mups.begin(), mups.end(), [](const Mup& a, const Mup& b) {
    if (a.Level() != b.Level()) return a.Level() < b.Level();
    return a.pattern < b.pattern;
  });
  return mups;
}

std::vector<Mup> MupFinder::FindMupsNaive(const MupFinderOptions& options) const {
  const int d = schema_->num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  // Materialize every pattern level by level.
  std::vector<data::Pattern> current = {data::Pattern(d)};
  std::unordered_map<data::Pattern, int64_t, data::PatternHash> counts;
  counts.emplace(current[0], counter_->Count(current[0]));

  std::vector<Mup> mups;
  auto consider = [&](const data::Pattern& p) {
    const int64_t count = counts.at(p);
    if (count >= options.tau) return;
    for (const auto& parent : p.Parents()) {
      if (counts.at(parent) < options.tau) return;
    }
    mups.push_back(Mup{p, count, options.tau - count});
  };
  consider(current[0]);

  for (int level = 1; level <= max_level; ++level) {
    std::unordered_set<data::Pattern, data::PatternHash> next_set;
    for (const auto& p : current) {
      for (auto& child : p.Children(*schema_)) next_set.insert(std::move(child));
    }
    current.assign(next_set.begin(), next_set.end());
    for (const auto& p : current) {
      counts.emplace(p, counter_->Count(p));
    }
    for (const auto& p : current) consider(p);
  }

  std::sort(mups.begin(), mups.end(), [](const Mup& a, const Mup& b) {
    if (a.Level() != b.Level()) return a.Level() < b.Level();
    return a.pattern < b.pattern;
  });
  return mups;
}

std::vector<Mup> MupFinder::MinLevel(const std::vector<Mup>& mups) {
  if (mups.empty()) return {};
  int min_level = mups[0].Level();
  for (const auto& m : mups) min_level = std::min(min_level, m.Level());
  std::vector<Mup> out;
  for (const auto& m : mups) {
    if (m.Level() == min_level) out.push_back(m);
  }
  return out;
}

}  // namespace chameleon::coverage
