#include "src/coverage/mup_finder.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/obs/observability.h"
#include "src/util/thread_pool.h"

namespace chameleon::coverage {
namespace {

/// Patterns per ParallelFor chunk when counting a frontier level. Small
/// enough to balance skewed posting-list sizes, large enough to amortize
/// dispatch.
constexpr int64_t kCountGrain = 8;

void SortMups(std::vector<Mup>* mups) {
  std::sort(mups->begin(), mups->end(), [](const Mup& a, const Mup& b) {
    if (a.Level() != b.Level()) return a.Level() < b.Level();
    return a.pattern < b.pattern;
  });
}

}  // namespace

MupFinder::MupFinder(const data::AttributeSchema& schema,
                     const PatternCounter& counter)
    : schema_(&schema), counter_(&counter) {}

std::vector<Mup> MupFinder::FindMups(const MupFinderOptions& options) const {
  obs::Observability* const obs = options.observability;
  std::optional<obs::Span> span;
  if (obs != nullptr) span.emplace(obs->tracer.StartSpan("mup.find"));

  const int num_threads = util::ThreadPool::ResolveThreadCount(
      options.num_threads);
  std::vector<Mup> mups = num_threads <= 1
                              ? FindMupsSerial(options)
                              : FindMupsParallel(options, num_threads);

  if (obs != nullptr) {
    obs->registry.Counter("mup.found")->Increment(
        static_cast<int64_t>(mups.size()));
    // Unstable across worker counts by design (see MupFinderOptions);
    // obs::IsStableMetric exempts it from the determinism contract.
    obs->registry.Counter("mup.count_queries")->Increment(
        last_count_queries());
    for (const Mup& mup : mups) {
      obs->journal.Record(obs::JournalEvent("mup.found")
                              .Set("pattern", mup.pattern.ToString())
                              .Set("count", mup.count)
                              .Set("gap", mup.gap));
    }
  }
  return mups;
}

std::vector<Mup> MupFinder::FindMupsSerial(
    const MupFinderOptions& options) const {
  const int d = schema_->num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;
  last_count_queries_.store(0, std::memory_order_relaxed);

  std::unordered_map<data::Pattern, int64_t, data::PatternHash> count_cache;
  auto count_of = [&](const data::Pattern& p) {
    auto it = count_cache.find(p);
    if (it != count_cache.end()) return it->second;
    last_count_queries_.fetch_add(1, std::memory_order_relaxed);
    const int64_t c = counter_->Count(p);
    count_cache.emplace(p, c);
    return c;
  };

  std::vector<Mup> mups;
  std::unordered_set<data::Pattern, data::PatternHash> visited;
  std::deque<data::Pattern> frontier;
  const data::Pattern root(d);
  frontier.push_back(root);
  visited.insert(root);

  while (!frontier.empty()) {
    const data::Pattern pattern = frontier.front();
    frontier.pop_front();

    const int64_t count = count_of(pattern);
    if (count >= options.tau) {
      // Covered: descend. Children of covered nodes are the only
      // candidates that can have all parents covered.
      if (pattern.Level() >= max_level) continue;
      for (auto& child : pattern.Children(*schema_)) {
        if (visited.insert(child).second) {
          frontier.push_back(std::move(child));
        }
      }
      continue;
    }

    // Uncovered: a MUP iff every parent is covered. (The root has no
    // parents and is a MUP when itself uncovered.)
    bool all_parents_covered = true;
    for (const auto& parent : pattern.Parents()) {
      if (count_of(parent) < options.tau) {
        all_parents_covered = false;
        break;
      }
    }
    if (all_parents_covered) {
      mups.push_back(Mup{pattern, count, options.tau - count});
    }
  }

  SortMups(&mups);
  return mups;
}

std::vector<Mup> MupFinder::FindMupsParallel(const MupFinderOptions& options,
                                             int num_threads) const {
  const int d = schema_->num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;
  last_count_queries_.store(0, std::memory_order_relaxed);

  util::ThreadPool pool(num_threads);
  std::unordered_map<data::Pattern, int64_t, data::PatternHash> counts;

  // Counts a batch of distinct uncached patterns: the Count() calls fan
  // out over the pool into per-index slots, then merge into the cache in
  // batch order (deterministic for every worker count).
  auto count_batch = [&](const std::vector<data::Pattern>& batch) {
    if (batch.empty()) return;
    std::vector<int64_t> results(batch.size(), 0);
    pool.ParallelFor(static_cast<int64_t>(batch.size()), kCountGrain,
                     [&](int64_t begin, int64_t end, int64_t /*chunk*/) {
                       for (int64_t i = begin; i < end; ++i) {
                         results[i] = counter_->Count(batch[i]);
                       }
                     });
    last_count_queries_.fetch_add(static_cast<int64_t>(batch.size()),
                                  std::memory_order_relaxed);
    for (size_t i = 0; i < batch.size(); ++i) {
      counts.emplace(batch[i], results[i]);
    }
  };

  std::vector<Mup> mups;
  std::unordered_set<data::Pattern, data::PatternHash> visited;
  std::vector<data::Pattern> frontier;
  frontier.emplace_back(d);
  visited.insert(frontier[0]);
  count_batch(frontier);

  // Level-synchronous BFS over the same node set the serial traversal
  // visits: each level's counts (and the parent counts its uncovered
  // members need for the MUP predicate) are computed in parallel.
  while (!frontier.empty()) {
    std::vector<data::Pattern> missing_parents;
    std::unordered_set<data::Pattern, data::PatternHash> requested;
    for (const auto& pattern : frontier) {
      if (counts.at(pattern) >= options.tau) continue;
      for (auto& parent : pattern.Parents()) {
        if (counts.find(parent) == counts.end() &&
            requested.insert(parent).second) {
          missing_parents.push_back(std::move(parent));
        }
      }
    }
    count_batch(missing_parents);

    std::vector<data::Pattern> next;
    for (const auto& pattern : frontier) {
      const int64_t count = counts.at(pattern);
      if (count >= options.tau) {
        if (pattern.Level() >= max_level) continue;
        for (auto& child : pattern.Children(*schema_)) {
          if (visited.insert(child).second) {
            next.push_back(std::move(child));
          }
        }
        continue;
      }
      bool all_parents_covered = true;
      for (const auto& parent : pattern.Parents()) {
        if (counts.at(parent) < options.tau) {
          all_parents_covered = false;
          break;
        }
      }
      if (all_parents_covered) {
        mups.push_back(Mup{pattern, count, options.tau - count});
      }
    }
    count_batch(next);
    frontier = std::move(next);
  }

  SortMups(&mups);
  return mups;
}

std::vector<Mup> MupFinder::FindMupsNaive(const MupFinderOptions& options) const {
  const int d = schema_->num_attributes();
  const int max_level = options.max_level < 0 ? d : options.max_level;

  // Materialize every pattern level by level.
  std::vector<data::Pattern> current = {data::Pattern(d)};
  std::unordered_map<data::Pattern, int64_t, data::PatternHash> counts;
  counts.emplace(current[0], counter_->Count(current[0]));

  std::vector<Mup> mups;
  auto consider = [&](const data::Pattern& p) {
    const int64_t count = counts.at(p);
    if (count >= options.tau) return;
    for (const auto& parent : p.Parents()) {
      if (counts.at(parent) < options.tau) return;
    }
    mups.push_back(Mup{p, count, options.tau - count});
  };
  consider(current[0]);

  for (int level = 1; level <= max_level; ++level) {
    std::unordered_set<data::Pattern, data::PatternHash> next_set;
    for (const auto& p : current) {
      for (auto& child : p.Children(*schema_)) next_set.insert(std::move(child));
    }
    current.assign(next_set.begin(), next_set.end());
    for (const auto& p : current) {
      counts.emplace(p, counter_->Count(p));
    }
    for (const auto& p : current) consider(p);
  }

  SortMups(&mups);
  return mups;
}

std::vector<Mup> MupFinder::MinLevel(const std::vector<Mup>& mups) {
  if (mups.empty()) return {};
  int min_level = mups[0].Level();
  for (const auto& m : mups) min_level = std::min(min_level, m.Level());
  std::vector<Mup> out;
  for (const auto& m : mups) {
    if (m.Level() == min_level) out.push_back(m);
  }
  return out;
}

}  // namespace chameleon::coverage
