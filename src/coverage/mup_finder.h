#ifndef CHAMELEON_COVERAGE_MUP_FINDER_H_
#define CHAMELEON_COVERAGE_MUP_FINDER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/coverage/pattern_counter.h"
#include "src/data/pattern.h"
#include "src/data/schema.h"

namespace chameleon::obs {
struct Observability;
}  // namespace chameleon::obs

namespace chameleon::coverage {

/// Configuration for MUP discovery.
struct MupFinderOptions {
  /// Coverage threshold tau: a subgroup g is uncovered when |g ∩ D| < tau.
  int64_t tau = 50;
  /// Only report MUPs at level <= max_level (d by default, i.e. all).
  int max_level = -1;
  /// Worker count for frontier counting: 0 = hardware concurrency
  /// (the default), 1 = the exact legacy serial traversal. The reported
  /// MUPs (patterns, counts, gaps, order) are identical at every setting;
  /// only last_count_queries() may differ between the serial and parallel
  /// traversals (the parallel one prefetches parent counts instead of
  /// short-circuiting).
  int num_threads = 0;
  /// Optional observability sink (not owned; null = no instrumentation).
  /// FindMups records a `mup.find` span, the `mup.found` /
  /// `mup.count_queries` counters, and one `mup.found` journal event per
  /// discovered MUP.
  obs::Observability* observability = nullptr;
};

/// One discovered Maximal Uncovered Pattern with its coverage count and
/// gap delta(M) = tau - |D ∩ M|.
struct Mup {
  data::Pattern pattern;
  int64_t count = 0;
  int64_t gap = 0;

  int Level() const { return pattern.Level(); }
};

/// Discovers all Maximal Uncovered Patterns (§2.3): patterns P with
/// |D ∩ P| < tau whose parents are all covered. Two algorithms:
///
///  * FindMups       — top-down lattice BFS expanding only covered nodes,
///                     with memoized counts (the practical algorithm).
///                     With num_threads > 1 each BFS level's candidate
///                     patterns are counted in parallel.
///  * FindMupsNaive  — full lattice materialization with the same MUP
///                     predicate, used as a correctness oracle in tests
///                     and as the ablation baseline in benchmarks.
class MupFinder {
 public:
  MupFinder(const data::AttributeSchema& schema, const PatternCounter& counter);

  std::vector<Mup> FindMups(const MupFinderOptions& options) const;
  std::vector<Mup> FindMupsNaive(const MupFinderOptions& options) const;

  /// Restricts a MUP list to its minimum level: the set M* of §4.
  static std::vector<Mup> MinLevel(const std::vector<Mup>& mups);

  /// Number of Count() calls issued by the last FindMups invocation
  /// (diagnostic; atomic so the parallel traversal can tally safely).
  int64_t last_count_queries() const {
    return last_count_queries_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Mup> FindMupsSerial(const MupFinderOptions& options) const;
  std::vector<Mup> FindMupsParallel(const MupFinderOptions& options,
                                    int num_threads) const;

  const data::AttributeSchema* schema_;
  const PatternCounter* counter_;
  mutable std::atomic<int64_t> last_count_queries_{0};
};

}  // namespace chameleon::coverage

#endif  // CHAMELEON_COVERAGE_MUP_FINDER_H_
