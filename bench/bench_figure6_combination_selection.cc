// Reproduces Figure 6: the cost (total number of images to generate) of
// resolving the smallest-level MUPs of the full UTKFace corpus under the
// Greedy, Random, and Min-Gap combination-selection algorithms, for
// tau in {200, 350, 1000, 2000}. At 200/350 the smallest MUP level is 2;
// at 1000/2000 level-1 MUPs appear and the repair targets those.

#include <cstdio>

#include "bench/experiment_common.h"
#include "src/core/combination_selection.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/util/rng.h"
#include "src/util/table_printer.h"

using namespace chameleon;

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf(
      "=== Figure 6: combination-selection cost on UTKFace "
      "(n=20000) ===\n");

  const embedding::SimulatedEmbedder embedder;
  datasets::UtkFaceOptions options;
  options.render.render_images = false;  // annotations are sufficient
  auto corpus = datasets::MakeUtkFace(&embedder, options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const auto& schema = corpus->dataset.schema();
  const auto counter = *coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(schema, counter);

  util::TablePrinter table({"tau", "target level", "#MUPs(all)",
                            "#MUPs(target)", "Greedy", "Min-Gap", "Random"});

  for (int64_t tau : {200, 350, 1000, 2000}) {
    coverage::MupFinderOptions mup_options;
    mup_options.tau = tau;
    const auto all_mups = finder.FindMups(mup_options);
    const auto targets = coverage::MupFinder::MinLevel(all_mups);
    if (targets.empty()) {
      table.AddRow({util::Fmt(tau), "-", "0", "0", "0", "0", "0"});
      continue;
    }
    const int target_level = targets[0].Level();

    const auto greedy = core::GreedySelect(schema, targets);
    const auto min_gap = core::MinGapSelect(schema, all_mups, target_level);
    util::Rng rng(tau);  // deterministic per-threshold baseline draw
    const auto random =
        core::RandomSelect(schema, all_mups, target_level, &rng);

    table.AddRow({util::Fmt(tau), util::Fmt(target_level),
                  util::Fmt(static_cast<int64_t>(all_mups.size())),
                  util::Fmt(static_cast<int64_t>(targets.size())),
                  util::Fmt(core::PlanTotal(greedy)),
                  util::Fmt(core::PlanTotal(min_gap)),
                  util::Fmt(core::PlanTotal(random))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): Greedy lowest everywhere; Min-Gap beats\n"
      "Random on level-2 repairs (tau=200/350) but degrades badly on\n"
      "level-1 repairs (tau=1000/2000).\n");
  return bench::FinishExperiment(argc, argv, "bench_figure6_combination_selection",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
