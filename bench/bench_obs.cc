// Micro-benchmarks for the observability layer: the raw cost of each
// primitive (counter increment, histogram observe, journal record, span
// open/close) and the end-to-end tax on a full repair run with the sink
// attached vs. detached. The budget from DESIGN.md §9: an instrumented
// run pays <2% wall-clock over the bare run, and a run with
// `observability == nullptr` pays <0.5% (a handful of pointer tests on
// the serial path).

#include <benchmark/benchmark.h>

#include <string>

#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/observability.h"

namespace {

using namespace chameleon;

// ---------------------------------------------------------------------------
// Primitive costs
// ---------------------------------------------------------------------------

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);

void BM_RegistryLookupAndIncrement(benchmark::State& state) {
  // The instrumented hot loop caches instrument pointers up front
  // (LoopInstruments in chameleon.cc); this measures the cost of NOT
  // doing that — a map lookup per hit — to justify the caching.
  obs::Registry registry;
  for (auto _ : state) {
    registry.Counter("fm.queries")->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLookupAndIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram histogram({-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0});
  double v = -3.0;
  for (auto _ : state) {
    histogram.Observe(v);
    v += 0.1;
    if (v > 3.0) v = -3.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanStartEnd(benchmark::State& state) {
  obs::VirtualClock clock;
  obs::Tracer tracer(&clock);
  for (auto _ : state) {
    obs::Span span = tracer.StartSpan("rejection.batch");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanStartEnd);

void BM_JournalRecord(benchmark::State& state) {
  obs::VirtualClock clock;
  obs::Journal journal(&clock);
  int i = 0;
  for (auto _ : state) {
    journal.Record(obs::JournalEvent("tuple.accepted")
                       .Set("target", "0,3")
                       .Set("arm", i++)
                       .Set("reason", "distribution"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalRecord);

// ---------------------------------------------------------------------------
// End-to-end: the instrumented pipeline
// ---------------------------------------------------------------------------

// One full seeded FERET repair. `sink` == nullptr is the off
// configuration every production run without --metrics pays.
int64_t RunRepair(obs::Observability* sink) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus = *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel model(corpus.dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(),
                                     fm::SimulatedFoundationModel::Options());
  core::ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.num_threads = 1;
  options.rejection_batch = 4;
  options.observability = sink;
  core::Chameleon system(&model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  return report.ok() ? report->accepted : -1;
}

void BM_RepairObsOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRepair(nullptr));
  }
}
BENCHMARK(BM_RepairObsOff)->Unit(benchmark::kMillisecond);

void BM_RepairObsOn(benchmark::State& state) {
  int64_t journal_lines = 0;
  for (auto _ : state) {
    obs::Observability sink;
    benchmark::DoNotOptimize(RunRepair(&sink));
    journal_lines = static_cast<int64_t>(sink.journal.size());
  }
  state.counters["journal_lines"] =
      benchmark::Counter(static_cast<double>(journal_lines));
}
BENCHMARK(BM_RepairObsOn)->Unit(benchmark::kMillisecond);

}  // namespace
