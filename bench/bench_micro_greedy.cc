// Micro-benchmarks for the combination-selection algorithms (§4) as the
// MUP count grows.

#include <benchmark/benchmark.h>

#include "src/core/combination_selection.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

data::AttributeSchema MakeSchema() {
  data::AttributeSchema schema;
  (void)schema.AddAttribute({"a", {"0", "1"}, false});
  (void)schema.AddAttribute({"b", {"0", "1", "2", "3", "4"}, false});
  (void)schema.AddAttribute(
      {"c", {"0", "1", "2", "3", "4", "5", "6", "7", "8"}, true});
  return schema;
}

std::vector<coverage::Mup> MakeMups(const data::AttributeSchema& schema,
                                    int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<coverage::Mup> mups;
  for (int i = 0; i < count; ++i) {
    data::Pattern p(schema.num_attributes());
    // Random level-2 patterns with random gaps.
    const int first = static_cast<int>(rng.NextBounded(3));
    const int second = (first + 1 + static_cast<int>(rng.NextBounded(2))) % 3;
    p = p.WithCell(first,
                   static_cast<int>(rng.NextBounded(
                       schema.attribute(first).cardinality())));
    p = p.WithCell(second,
                   static_cast<int>(rng.NextBounded(
                       schema.attribute(second).cardinality())));
    mups.push_back(coverage::Mup{p, 0, rng.NextInt(5, 200)});
  }
  return mups;
}

void BM_GreedySelect(benchmark::State& state) {
  const auto schema = MakeSchema();
  const auto mups = MakeMups(schema, static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GreedySelect(schema, mups));
  }
}
BENCHMARK(BM_GreedySelect)->Range(4, 64);

void BM_MinGapSelect(benchmark::State& state) {
  const auto schema = MakeSchema();
  const auto mups = MakeMups(schema, static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MinGapSelect(schema, mups, 2));
  }
}
BENCHMARK(BM_MinGapSelect)->Range(4, 64);

void BM_RandomSelect(benchmark::State& state) {
  const auto schema = MakeSchema();
  const auto mups = MakeMups(schema, static_cast<int>(state.range(0)), 9);
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RandomSelect(schema, mups, 2, &rng));
  }
}
BENCHMARK(BM_RandomSelect)->Range(4, 64);

}  // namespace
