#ifndef CHAMELEON_BENCH_EXPERIMENT_COMMON_H_
#define CHAMELEON_BENCH_EXPERIMENT_COMMON_H_

// Shared helpers for the experiment harnesses that regenerate the paper's
// tables and figures. Each bench binary is standalone; this header keeps
// the FERET proof-of-concept plumbing (classifier training/evaluation)
// in one place for Table 3 and Figure 4.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/datasets/feret.h"
#include "src/fm/corpus.h"
#include "src/nn/metrics.h"
#include "src/nn/mlp.h"
#include "src/nn/trainer.h"
#include "src/obs/quantile_digest.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace chameleon::bench {

// ---------------------------------------------------------------------------
// Machine-readable bench reports (BENCH_<name>.json, schema v1)
// ---------------------------------------------------------------------------
//
// Every bench binary accepts `--json=<path>` and writes a schema-versioned
// report there; `obsctl validate` checks the schema and `obsctl diff`
// gates regressions against the committed baselines in bench/baselines/.

/// Bumped when the report shape changes incompatibly. Must stay in sync
/// with obsctl::kBenchSchemaVersion.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// One measured benchmark case. Percentiles come from a quantile digest
/// over per-repetition timings; a single-shot experiment reports its one
/// measurement as all three.
struct BenchCase {
  std::string name;
  double ns_per_op = 0.0;
  int64_t iterations = 0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

inline std::string BenchJsonEscape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

inline std::string BenchJsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

/// Accumulates cases and renders/writes the schema-v1 report. The git
/// SHA is injected by the harness via the CHAMELEON_GIT_SHA environment
/// variable (tools/ci.sh sets it) so binaries never shell out to git.
class BenchJsonReport {
 public:
  explicit BenchJsonReport(std::string name) : name_(std::move(name)) {}

  void set_smoke(bool smoke) { smoke_ = smoke; }

  void AddConfig(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }

  void AddCase(BenchCase bench_case) {
    cases_.push_back(std::move(bench_case));
  }

  /// Convenience: derive the percentiles from a digest of per-repetition
  /// nanosecond timings.
  void AddCase(const std::string& case_name, double ns_per_op,
               int64_t iterations, const obs::QuantileDigest& ns_digest) {
    BenchCase bench_case;
    bench_case.name = case_name;
    bench_case.ns_per_op = ns_per_op;
    bench_case.iterations = iterations;
    bench_case.p50_ns = ns_digest.Quantile(0.5);
    bench_case.p90_ns = ns_digest.Quantile(0.9);
    bench_case.p99_ns = ns_digest.Quantile(0.99);
    cases_.push_back(std::move(bench_case));
  }

  std::string ToJson() const {
    const char* sha = std::getenv("CHAMELEON_GIT_SHA");
#ifdef NDEBUG
    const char* build_type = "release";
#else
    const char* build_type = "debug";
#endif
    std::string out = "{\n";
    out += "  \"schema_version\": " +
           std::to_string(kBenchJsonSchemaVersion) + ",\n";
    out += "  \"name\": \"";
    out += BenchJsonEscape(name_);
    out += "\",\n  \"git_sha\": \"";
    out += BenchJsonEscape(sha != nullptr && sha[0] != '\0' ? sha
                                                            : "unknown");
    out += "\",\n";
    out += std::string("  \"build_type\": \"") + build_type + "\",\n";
    out += std::string("  \"smoke\": ") + (smoke_ ? "true" : "false") +
           ",\n";
    out += "  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += BenchJsonEscape(config_[i].first);
      out += "\": \"";
      out += BenchJsonEscape(config_[i].second);
      out += '"';
    }
    out += "},\n";
    out += "  \"cases\": [\n";
    for (size_t i = 0; i < cases_.size(); ++i) {
      const BenchCase& c = cases_[i];
      out += "    {\"name\": \"";
      out += BenchJsonEscape(c.name);
      out += "\", \"ns_per_op\": " + BenchJsonNumber(c.ns_per_op);
      out += ", \"iterations\": " + std::to_string(c.iterations);
      out += ", \"p50_ns\": " + BenchJsonNumber(c.p50_ns);
      out += ", \"p90_ns\": " + BenchJsonNumber(c.p90_ns);
      out += ", \"p99_ns\": " + BenchJsonNumber(c.p99_ns) + "}";
      if (i + 1 < cases_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  [[nodiscard]] util::Status WriteJson(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::IoError("cannot open " + path + " for writing");
    }
    out << ToJson();
    out.flush();
    if (!out) {
      return util::Status::IoError("write failed for " + path);
    }
    return util::Status::Ok();
  }

 private:
  std::string name_;
  bool smoke_ = false;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<BenchCase> cases_;
};

/// Returns the value of `--json=<path>` from argv, or "" when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

/// Experiment-binary epilogue: when `--json=<path>` was passed, writes a
/// single-case report timing the whole run. Returns the exit code to
/// propagate — `exit_code` unchanged on success, 1 when the report could
/// not be written (so CI notices missing artifacts).
inline int FinishExperiment(int argc, char** argv, const std::string& name,
                            double elapsed_seconds, int exit_code) {
  const std::string path = JsonPathFromArgs(argc, argv);
  if (path.empty()) return exit_code;
  BenchJsonReport report(name);
  BenchCase bench_case;
  bench_case.name = "end_to_end";
  bench_case.ns_per_op = elapsed_seconds * 1e9;
  bench_case.iterations = 1;
  bench_case.p50_ns = bench_case.ns_per_op;
  bench_case.p90_ns = bench_case.ns_per_op;
  bench_case.p99_ns = bench_case.ns_per_op;
  report.AddCase(bench_case);
  const util::Status status = report.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "bench json: %s\n", status.ToString().c_str());
    return exit_code == 0 ? 1 : exit_code;
  }
  return exit_code;
}

/// Training hyper-parameters for the race-predicting classifier (the
/// paper's Keras CNN stand-in). Chosen for stable convergence on the
/// 756-tuple FERET corpus.
inline nn::TrainOptions ClassifierTrainOptions() {
  nn::TrainOptions options;
  options.epochs = 250;
  options.learning_rate = 0.02;
  options.batch_size = 32;
  return options;
}

/// Trains an ethnicity classifier on `train` and evaluates on `test`.
/// The label is the FERET ethnicity attribute.
inline nn::ClassificationReport TrainAndEvaluateEthnicityClassifier(
    const fm::Corpus& train, const fm::Corpus& test, uint64_t seed = 33) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  for (const auto& t : train.dataset.tuples()) {
    inputs.push_back(t.embedding);
    labels.push_back(t.values[datasets::kFeretEthnicity]);
  }
  const int num_classes =
      train.dataset.schema().attribute(datasets::kFeretEthnicity).cardinality();
  nn::Mlp model({static_cast<int>(inputs[0].size()), 32, num_classes}, &rng);
  auto report =
      nn::TrainClassifier(&model, inputs, labels, ClassifierTrainOptions(),
                          &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "classifier training failed: %s\n",
                 report.status().ToString().c_str());
  }
  std::vector<int> gold;
  std::vector<int> predicted;
  for (const auto& t : test.dataset.tuples()) {
    gold.push_back(t.values[datasets::kFeretEthnicity]);
    predicted.push_back(model.Predict(t.embedding));
  }
  return nn::ClassificationReport(gold, predicted, num_classes);
}

}  // namespace chameleon::bench

#endif  // CHAMELEON_BENCH_EXPERIMENT_COMMON_H_
