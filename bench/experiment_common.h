#ifndef CHAMELEON_BENCH_EXPERIMENT_COMMON_H_
#define CHAMELEON_BENCH_EXPERIMENT_COMMON_H_

// Shared helpers for the experiment harnesses that regenerate the paper's
// tables and figures. Each bench binary is standalone; this header keeps
// the FERET proof-of-concept plumbing (classifier training/evaluation)
// in one place for Table 3 and Figure 4.

#include <cstdio>
#include <vector>

#include "src/datasets/feret.h"
#include "src/fm/corpus.h"
#include "src/nn/metrics.h"
#include "src/nn/mlp.h"
#include "src/nn/trainer.h"
#include "src/util/rng.h"

namespace chameleon::bench {

/// Training hyper-parameters for the race-predicting classifier (the
/// paper's Keras CNN stand-in). Chosen for stable convergence on the
/// 756-tuple FERET corpus.
inline nn::TrainOptions ClassifierTrainOptions() {
  nn::TrainOptions options;
  options.epochs = 250;
  options.learning_rate = 0.02;
  options.batch_size = 32;
  return options;
}

/// Trains an ethnicity classifier on `train` and evaluates on `test`.
/// The label is the FERET ethnicity attribute.
inline nn::ClassificationReport TrainAndEvaluateEthnicityClassifier(
    const fm::Corpus& train, const fm::Corpus& test, uint64_t seed = 33) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  for (const auto& t : train.dataset.tuples()) {
    inputs.push_back(t.embedding);
    labels.push_back(t.values[datasets::kFeretEthnicity]);
  }
  const int num_classes =
      train.dataset.schema().attribute(datasets::kFeretEthnicity).cardinality();
  nn::Mlp model({static_cast<int>(inputs[0].size()), 32, num_classes}, &rng);
  auto report =
      nn::TrainClassifier(&model, inputs, labels, ClassifierTrainOptions(),
                          &rng);
  if (!report.ok()) {
    std::fprintf(stderr, "classifier training failed: %s\n",
                 report.status().ToString().c_str());
  }
  std::vector<int> gold;
  std::vector<int> predicted;
  for (const auto& t : test.dataset.tuples()) {
    gold.push_back(t.values[datasets::kFeretEthnicity]);
    predicted.push_back(model.Predict(t.embedding));
  }
  return nn::ClassificationReport(gold, predicted, num_classes);
}

}  // namespace chameleon::bench

#endif  // CHAMELEON_BENCH_EXPERIMENT_COMMON_H_
