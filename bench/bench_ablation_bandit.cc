// Ablation for §5.3: is the *contextual* bandit (LinUCB) worth it?
// Compares four arm-selection policies for the "which attribute do I
// modify" decision on the UTKFace challenge subset, holding everything
// else fixed: LinUCB, context-free epsilon-greedy, round-robin, and an
// oracle that reads the simulator's hidden difficulty table. Reports the
// cumulative rejection-sampling pass rate.

#include <cstdio>
#include <vector>

#include "bench/experiment_common.h"
#include "src/bandit/epsilon_greedy.h"
#include "src/bandit/linucb.h"
#include "src/core/rejection_sampler.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/image/mask_generator.h"
#include "src/util/table_printer.h"

using namespace chameleon;

namespace {

constexpr int kRounds = 600;

enum class Policy { kLinUcb, kEpsilonGreedy, kRoundRobin, kOracle };

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kLinUcb:
      return "LinUCB";
    case Policy::kEpsilonGreedy:
      return "epsilon-greedy (0.1)";
    case Policy::kRoundRobin:
      return "round-robin";
    case Policy::kOracle:
      return "quality oracle";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf(
      "=== Ablation: arm-selection policy for guide modification ===\n");

  const embedding::SimulatedEmbedder embedder;
  datasets::ChallengeOptions challenge;
  auto corpus = datasets::MakeUtkFaceChallengeSubset(&embedder, challenge);
  if (!corpus.ok()) return 1;
  const auto& schema = corpus->dataset.schema();
  const int d = schema.num_attributes();
  const int64_t k = schema.NumCombinations();

  fm::SimulatedFoundationModel model(schema, datasets::UtkFaceStyleFn(),
                                     datasets::UtkFaceScene(),
                                     fm::SimulatedFoundationModel::Options());
  const fm::EvaluatorPool evaluators(2024);
  core::RejectionSamplerOptions sampler_options;
  auto sampler = core::RejectionSampler::Train(
      corpus->Embeddings(), &evaluators, 0.86, sampler_options);
  if (!sampler.ok()) return 1;

  const auto rare = datasets::ChallengeRarePatterns();

  util::TablePrinter table(
      {"policy", "rounds", "passes", "pass rate", "quality rate"});

  for (Policy policy : {Policy::kLinUcb, Policy::kEpsilonGreedy,
                        Policy::kRoundRobin, Policy::kOracle}) {
    util::Rng rng(4242);
    bandit::LinUcb linucb(d, static_cast<int>(k), 0.5);
    bandit::EpsilonGreedy epsilon_greedy(d, 0.1);
    int64_t passes = 0;
    int64_t quality_passes = 0;

    for (int round = 0; round < kRounds; ++round) {
      const std::vector<int> target = rare[round % rare.size()].cells();
      const auto context =
          bandit::LinUcb::OneHotContext(static_cast<int>(k),
                                        schema.CombinationIndex(target));
      int arm = 0;
      switch (policy) {
        case Policy::kLinUcb:
          arm = linucb.SelectArm(context, &rng);
          break;
        case Policy::kEpsilonGreedy:
          arm = epsilon_greedy.SelectArm(&rng);
          break;
        case Policy::kRoundRobin:
          arm = round % d;
          break;
        case Policy::kOracle: {
          double best = 1e9;
          for (int a = 0; a < d; ++a) {
            const double difficulty = model.EditDifficulty(a, target);
            if (difficulty < best) {
              best = difficulty;
              arm = a;
            }
          }
          break;
        }
      }

      // Build a guide matching the arm-modified combination; retry the
      // round with another value if the sibling is unpopulated.
      std::vector<int> guide_values = target;
      const auto& attribute = schema.attribute(arm);
      if (attribute.ordinal) {
        guide_values[arm] = target[arm] > 0 ? target[arm] - 1
                                            : target[arm] + 1;
      } else {
        guide_values[arm] = (target[arm] + 1) % attribute.cardinality();
      }
      const auto members =
          corpus->dataset.IndicesMatching(data::Pattern(guide_values));
      if (members.empty()) continue;
      const auto& guide_tuple =
          corpus->dataset.tuple(members[rng.NextBounded(members.size())]);
      const image::Image& guide = corpus->images[guide_tuple.payload_id];
      const image::Image mask =
          image::GenerateMask(guide, image::MaskLevel::kModerate);

      fm::GenerationRequest request;
      request.target_values = target;
      request.guide = &guide;
      request.guide_values = &guide_values;
      request.mask = &mask;
      auto result = model.Generate(request, &rng);
      if (!result.ok()) continue;
      const core::RejectionOutcome outcome = sampler->Evaluate(
          embedder.Embed(result->image), result->latent_realism, &rng);
      passes += outcome.Passed();
      quality_passes += outcome.quality_pass;

      const double reward = outcome.Passed() ? 1.0 : 0.0;
      // Arms come from SelectArm, so updates cannot fail; benchmark loop.
      (void)linucb.Update(arm, context, reward);
      (void)epsilon_greedy.Update(arm, reward);
    }

    table.AddRow({PolicyName(policy), util::Fmt(kRounds),
                  util::Fmt(passes),
                  util::Fmt(static_cast<double>(passes) / kRounds),
                  util::Fmt(static_cast<double>(quality_passes) / kRounds)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: LinUCB beats round-robin and epsilon-greedy — and even\n"
      "the quality oracle, because the reward it learns from is the JOINT\n"
      "pass (quality AND distribution), while the oracle only minimizes\n"
      "the hidden quality difficulty.\n");
  return bench::FinishExperiment(argc, argv, "bench_ablation_bandit",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
