// Micro-benchmarks for MUP discovery: lattice BFS vs the naive
// full-materialization baseline (the DESIGN.md ablation), swept over the
// number of binary attributes d.

#include <benchmark/benchmark.h>

#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

data::Dataset MakeBinaryDataset(int d, int n, uint64_t seed) {
  data::AttributeSchema schema;
  for (int i = 0; i < d; ++i) {
    // += instead of operator+ dodges GCC 12's -Wrestrict false positive
    // on char*/std::string concatenation (GCC PR105651).
    std::string name = "x";
    name += std::to_string(i);
    // Benchmark fixture; the schema is valid by construction.
    (void)schema.AddAttribute({std::move(name), {"0", "1"}, false});
  }
  data::Dataset dataset(schema);
  util::Rng rng(seed);
  for (int t = 0; t < n; ++t) {
    data::Tuple tuple;
    tuple.values.resize(d);
    for (int i = 0; i < d; ++i) {
      // Skewed marginals create interesting uncovered regions.
      tuple.values[i] = rng.NextBernoulli(0.25 + 0.5 * (i % 2));
    }
    (void)dataset.Add(std::move(tuple));
  }
  return dataset;
}

void BM_FindMupsLattice(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const data::Dataset dataset = MakeBinaryDataset(d, 20000, 42);
  const auto counter = *coverage::PatternCounter::FromDataset(dataset);
  coverage::MupFinder finder(dataset.schema(), counter);
  coverage::MupFinderOptions options;
  options.tau = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.FindMups(options));
  }
}
BENCHMARK(BM_FindMupsLattice)->DenseRange(3, 9, 2);

// Level-synchronous parallel BFS. Sweeps thread count at a fixed (hard)
// lattice size; Arg is num_threads. The thread pool is constructed per
// FindMups call, so measured time includes pool startup.
void BM_FindMupsLatticeParallel(benchmark::State& state) {
  const int d = 9;
  const data::Dataset dataset = MakeBinaryDataset(d, 20000, 42);
  const auto counter = *coverage::PatternCounter::FromDataset(dataset);
  coverage::MupFinder finder(dataset.schema(), counter);
  coverage::MupFinderOptions options;
  options.tau = 500;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.FindMups(options));
  }
}
BENCHMARK(BM_FindMupsLatticeParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_FindMupsNaive(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const data::Dataset dataset = MakeBinaryDataset(d, 20000, 42);
  const auto counter = *coverage::PatternCounter::FromDataset(dataset);
  coverage::MupFinder finder(dataset.schema(), counter);
  coverage::MupFinderOptions options;
  options.tau = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.FindMupsNaive(options));
  }
}
BENCHMARK(BM_FindMupsNaive)->DenseRange(3, 9, 2);

void BM_PatternCount(benchmark::State& state) {
  const int d = 6;
  const data::Dataset dataset =
      MakeBinaryDataset(d, static_cast<int>(state.range(0)), 42);
  const auto counter = *coverage::PatternCounter::FromDataset(dataset);
  data::Pattern pattern(d);
  pattern = pattern.WithCell(0, 1).WithCell(3, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Count(pattern));
  }
}
BENCHMARK(BM_PatternCount)->Range(1000, 100000);

}  // namespace
