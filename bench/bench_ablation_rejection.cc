// Ablation: what does rejection sampling buy? The paper motivates the
// two tests (§3) but never runs the pipeline without them; this harness
// does. It repairs FERET (tau=100) under three gating regimes —
// both tests (the full system), distribution-only, quality-only, and
// accept-everything — and reports (a) the latent quality and
// distribution adherence of what enters the corpus and (b) the
// downstream classifier fairness outcome.

#include <cstdio>

#include "bench/experiment_common.h"
#include "src/core/chameleon.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/stats/summary.h"
#include "src/util/table_printer.h"

using namespace chameleon;

namespace {

enum class Gate { kBoth, kDistributionOnly, kQualityOnly, kNone };

const char* GateName(Gate gate) {
  switch (gate) {
    case Gate::kBoth:
      return "distribution + quality";
    case Gate::kDistributionOnly:
      return "distribution only";
    case Gate::kQualityOnly:
      return "quality only";
    case Gate::kNone:
      return "accept everything";
  }
  return "?";
}

// Gate configurations are expressed through the existing options: the
// quality test is disabled with alpha = 0 (a lower-tail p-value is never
// < 0), and the distribution test with nu -> tiny + a huge acceptance
// region is impractical, so instead we post-filter via records: we run
// with both tests gating and separately with relaxed gates emulated by
// alpha=0 / a pass-through SVM trained on a widened nu. For the
// "distribution disabled" arms we simply flip the respective option.
core::ChameleonOptions MakeOptions(Gate gate) {
  core::ChameleonOptions options;
  options.tau = 100;
  options.seed = 99;
  options.guide_strategy = core::GuideStrategy::kLinUcb;
  options.mask_level = image::MaskLevel::kModerate;
  switch (gate) {
    case Gate::kBoth:
      break;
    case Gate::kDistributionOnly:
      options.rejection.quality_alpha = 0.0;  // never rejects
      break;
    case Gate::kQualityOnly:
      // nu ~ 0: almost every training point inside; the boundary balloons.
      options.rejection.svm.nu = 1e-3;
      break;
    case Gate::kNone:
      options.rejection.quality_alpha = 0.0;
      options.rejection.svm.nu = 1e-3;
      break;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf(
      "=== Ablation: rejection sampling on/off (FERET, tau=100) ===\n");

  const embedding::SimulatedEmbedder embedder;
  datasets::FeretOptions feret_options;
  auto test = datasets::MakeFeretTestSet(&embedder, feret_options);
  if (!test.ok()) {
    std::fprintf(stderr, "test corpus failed\n");
    return 1;
  }

  util::TablePrinter table({"gate", "queries", "accepted", "mean realism",
                            "in-dist frac", "minority F1 (B/H/M)",
                            "overall F1"});

  for (Gate gate : {Gate::kBoth, Gate::kDistributionOnly, Gate::kQualityOnly,
                    Gate::kNone}) {
    auto corpus = datasets::MakeFeret(&embedder, feret_options);
    if (!corpus.ok()) return 1;
    fm::SimulatedFoundationModel model(
        corpus->dataset.schema(), datasets::FeretFaceStyleFn(),
        datasets::FeretScene(), fm::SimulatedFoundationModel::Options());
    const fm::EvaluatorPool evaluators(2024);
    core::Chameleon system(&model, &embedder, &evaluators,
                           MakeOptions(gate));
    auto report = system.RepairMinLevelMups(&*corpus);
    if (!report.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }

    // Quality of what was *accepted*: latent realism of synthetic tuples
    // and the fraction a reference OCSVM (nu=0.3) would call in-dist.
    stats::RunningStats realism;
    int64_t in_dist = 0;
    int64_t accepted = 0;
    core::RejectionSamplerOptions reference_options;
    auto reference = core::RejectionSampler::Train(
        [&] {
          std::vector<std::vector<double>> real;
          for (const auto& t : corpus->dataset.tuples()) {
            if (!t.synthetic) real.push_back(t.embedding);
          }
          return real;
        }(),
        &evaluators, 0.86, reference_options);
    for (const auto& record : report->records) {
      if (!record.accepted) continue;
      ++accepted;
      realism.Observe(record.latent_realism);
      in_dist += reference->DistributionTest(record.embedding);
    }

    const auto after =
        bench::TrainAndEvaluateEthnicityClassifier(*corpus, *test);
    char minority[64];
    std::snprintf(minority, sizeof(minority), "%.2f/%.2f/%.2f",
                  after.class_metrics(datasets::kFeretBlack).F1(),
                  after.class_metrics(datasets::kFeretHispanic).F1(),
                  after.class_metrics(datasets::kFeretMiddleEastern).F1());
    table.AddRow({GateName(gate), util::Fmt(report->queries),
                  util::Fmt(accepted), util::Fmt(realism.mean()),
                  util::Fmt(accepted > 0
                                ? static_cast<double>(in_dist) / accepted
                                : 0.0),
                  minority, util::Fmt(after.WeightedF1())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected: dropping the quality gate admits low-realism tuples;\n"
      "dropping the distribution gate admits context drift; the full\n"
      "system needs more queries but yields the cleanest augmentation.\n");
  return bench::FinishExperiment(argc, argv, "bench_ablation_rejection",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
