// Micro-benchmarks for the chameleond serving layer: end-to-end repair
// throughput through the frame protocol, admission control, and the
// shared worker pool at 1 / 8 / 64 concurrent requests. Traffic is the
// micro corpus with a small query budget, so an iteration measures the
// daemon's multiplexing overhead plus real (virtual-time) repair work,
// not image rendering.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>

#include "tools/chameleond/daemon.h"
#include "tools/chameleond/frame.h"
#include "tools/chameleond/protocol.h"
#include "tools/chameleond/transport.h"
#include "tools/obsctl/json.h"

namespace {

using namespace chameleon;

/// Benchmark traffic: a micro-corpus repair capped at a few dozen
/// queries. Single-threaded inside the request — concurrency comes from
/// the daemon's pool, which is what this bench is measuring.
daemon::RepairRequestSpec BenchSpec(const std::string& id) {
  daemon::RepairRequestSpec spec;
  spec.id = id;
  spec.dataset = daemon::DatasetKind::kMicro;
  spec.max_queries = 8;
  spec.num_threads = 1;
  return spec;
}

/// In-process daemon over a PipePair, serving for the benchmark's
/// lifetime; requests go through the same frame codec production uses.
class BenchDaemon {
 public:
  explicit BenchDaemon(int concurrency, bool telemetry = false) {
    daemon::DaemonOptions options;
    options.max_queue = 2 * concurrency;
    options.max_inflight_per_client = 2 * concurrency;
    options.telemetry = telemetry;
    server_ = std::make_unique<daemon::Daemon>(pipe_.server(), options);
    serve_thread_ = std::thread([this] {
      const util::Status status = server_->Serve();
      serve_ok_.store(status.ok(), std::memory_order_release);
    });
  }

  ~BenchDaemon() {
    pipe_.client()->Close();
    serve_thread_.join();
  }

  /// Submits `count` repairs and blocks until every report is back.
  /// Returns the total fm queries the reports account for (the unit of
  /// throughput) and accumulates consumed virtual milliseconds.
  int64_t RunBatch(int count, double* virtual_ms) {
    for (int i = 0; i < count; ++i) {
      const std::string payload = daemon::RenderRepairRequest(
          BenchSpec("bench-" + std::to_string(next_id_++)));
      if (!daemon::WriteFrame(pipe_.client(), payload).ok()) return -1;
    }
    int64_t queries = 0;
    int reports = 0;
    while (reports < count) {
      daemon::FrameReadResult result = daemon::ReadFrame(pipe_.client());
      if (result.kind != daemon::FrameReadResult::Kind::kFrame) return -1;
      auto value = obsctl::ParseJson(result.payload);
      if (!value.ok()) return -1;
      const std::string type = value->StringOr("type", "");
      if (type == "error") return -1;
      if (type != "report") continue;  // acks
      ++reports;
      queries += value->IntOr("queries", 0);
      *virtual_ms += value->NumberOr("virtual_ms", 0.0);
    }
    return queries;
  }

  bool serve_ok() const { return serve_ok_.load(std::memory_order_acquire); }

 private:
  daemon::PipePair pipe_;
  std::unique_ptr<daemon::Daemon> server_;
  std::thread serve_thread_;
  std::atomic<bool> serve_ok_{false};
  int next_id_ = 0;
};

/// One iteration = one batch of `concurrency` repairs, submitted
/// together and awaited together. items/s is fm queries per wall
/// second; the `virtual_qps` counter is the same numerator over the
/// virtual time the requests consumed (deterministic across machines).
void BM_DaemonRepairBatch(benchmark::State& state) {
  const int concurrency = static_cast<int>(state.range(0));
  BenchDaemon bench_daemon(concurrency);
  int64_t total_queries = 0;
  double total_virtual_ms = 0.0;
  for (auto _ : state) {
    const int64_t queries =
        bench_daemon.RunBatch(concurrency, &total_virtual_ms);
    if (queries < 0) {
      state.SkipWithError("daemon batch failed");
      return;
    }
    total_queries += queries;
  }
  state.SetItemsProcessed(total_queries);
  if (total_virtual_ms > 0.0) {
    state.counters["virtual_qps"] = benchmark::Counter(
        static_cast<double>(total_queries) / (total_virtual_ms / 1000.0));
  }
}
BENCHMARK(BM_DaemonRepairBatch)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// The same batch with --telemetry on: every request carries its own
/// Observability, its journal/spans are teed into the daemon journal,
/// and its registry is folded into the live aggregate. The serving
/// budget (DESIGN.md §15): within 2% of the telemetry-off case above —
/// compare against BM_DaemonRepairBatch at the same arg.
void BM_DaemonRepairBatchTelemetry(benchmark::State& state) {
  const int concurrency = static_cast<int>(state.range(0));
  BenchDaemon bench_daemon(concurrency, /*telemetry=*/true);
  int64_t total_queries = 0;
  double total_virtual_ms = 0.0;
  for (auto _ : state) {
    const int64_t queries =
        bench_daemon.RunBatch(concurrency, &total_virtual_ms);
    if (queries < 0) {
      state.SkipWithError("daemon batch failed");
      return;
    }
    total_queries += queries;
  }
  state.SetItemsProcessed(total_queries);
  if (total_virtual_ms > 0.0) {
    state.counters["virtual_qps"] = benchmark::Counter(
        static_cast<double>(total_queries) / (total_virtual_ms / 1000.0));
  }
}
BENCHMARK(BM_DaemonRepairBatchTelemetry)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
