// Reproduces Figure 4: the unfairness (disparate performance) of the
// classifier for the uncovered FERET groups before vs after repair —
// p-Disparity(g) = max(0, 1 - rho_g / rho_all) for precision, recall and
// F1 (panels a-c) — and the price of fairness (panel d): the change in
// overall precision/recall/F1 caused by the repair.

#include <cstdio>

#include "bench/experiment_common.h"
#include "src/core/chameleon.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/util/table_printer.h"

using namespace chameleon;

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf("=== Figure 4: disparity reduction after repair ===\n");

  const embedding::SimulatedEmbedder embedder;
  datasets::FeretOptions feret_options;
  auto corpus = datasets::MakeFeret(&embedder, feret_options);
  auto test = datasets::MakeFeretTestSet(&embedder, feret_options);
  if (!corpus.ok() || !test.ok()) {
    std::fprintf(stderr, "corpus construction failed\n");
    return 1;
  }
  const auto before =
      bench::TrainAndEvaluateEthnicityClassifier(*corpus, *test);

  fm::SimulatedFoundationModel::Options fm_options;
  fm::SimulatedFoundationModel model(corpus->dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(), fm_options);
  const fm::EvaluatorPool evaluators(2024);
  core::ChameleonOptions options;
  options.tau = 100;
  options.seed = 99;
  core::Chameleon system(&model, &embedder, &evaluators, options);
  auto repair = system.RepairMinLevelMups(&*corpus);
  if (!repair.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }
  const auto after =
      bench::TrainAndEvaluateEthnicityClassifier(*corpus, *test);

  const auto& schema = corpus->dataset.schema();
  const int groups[] = {datasets::kFeretBlack, datasets::kFeretHispanic,
                        datasets::kFeretMiddleEastern};

  struct MetricDef {
    const char* name;
    double (nn::ClassMetrics::*group_fn)() const;
    double (nn::ClassificationReport::*overall_fn)() const;
  };
  const MetricDef metrics[] = {
      {"F1", &nn::ClassMetrics::F1, &nn::ClassificationReport::WeightedF1},
      {"Precision", &nn::ClassMetrics::Precision,
       &nn::ClassificationReport::WeightedPrecision},
      {"Recall", &nn::ClassMetrics::Recall,
       &nn::ClassificationReport::WeightedRecall},
  };

  for (const auto& metric : metrics) {
    std::printf("\n(%s-Disparity)\n", metric.name);
    util::TablePrinter table({"Group", "Before repair", "After repair",
                              "Reduction"});
    const double overall_before = (before.*(metric.overall_fn))();
    const double overall_after = (after.*(metric.overall_fn))();
    for (int g : groups) {
      const double d_before = nn::Disparity(
          (before.class_metrics(g).*(metric.group_fn))(), overall_before);
      const double d_after = nn::Disparity(
          (after.class_metrics(g).*(metric.group_fn))(), overall_after);
      table.AddRow({schema.attribute(1).values[g], util::Fmt(d_before),
                    util::Fmt(d_after), util::Fmt(d_before - d_after)});
    }
    std::printf("%s", table.ToString().c_str());
  }

  std::printf("\n(d) Price of fairness: overall performance change\n");
  util::TablePrinter price({"Metric", "FERETDB", "Repaired", "Change"});
  price.AddRow({"Precision", util::Fmt(before.WeightedPrecision()),
                util::Fmt(after.WeightedPrecision()),
                util::Fmt(after.WeightedPrecision() -
                          before.WeightedPrecision())});
  price.AddRow({"Recall", util::Fmt(before.WeightedRecall()),
                util::Fmt(after.WeightedRecall()),
                util::Fmt(after.WeightedRecall() - before.WeightedRecall())});
  price.AddRow({"F1", util::Fmt(before.WeightedF1()),
                util::Fmt(after.WeightedF1()),
                util::Fmt(after.WeightedF1() - before.WeightedF1())});
  std::printf("%s", price.ToString().c_str());
  return bench::FinishExperiment(argc, argv, "bench_figure4_disparity",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
