// Micro-benchmarks for the image substrate: face rendering, foreground
// extraction, mask generation at each delineation level, and embedding.

#include <benchmark/benchmark.h>

#include "src/embedding/simulated_embedder.h"
#include "src/image/face_renderer.h"
#include "src/image/mask_generator.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

image::Image MakeFace(int size, uint64_t seed) {
  util::Rng rng(seed);
  const image::FaceStyle style = image::MakeFaceStyle(1, 5, true, 0.3, &rng);
  image::SceneStyle scene;
  image::RenderOptions options;
  options.size = size;
  return image::RenderFace(style, scene, options, &rng);
}

void BM_RenderFace(benchmark::State& state) {
  util::Rng rng(1);
  const image::FaceStyle style = image::MakeFaceStyle(0, 5, false, 0.5, &rng);
  image::SceneStyle scene;
  image::RenderOptions options;
  options.size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(image::RenderFace(style, scene, options, &rng));
  }
}
BENCHMARK(BM_RenderFace)->Range(32, 256);

void BM_ExtractForeground(benchmark::State& state) {
  const image::Image face = MakeFace(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(image::ExtractForeground(face));
  }
}
BENCHMARK(BM_ExtractForeground)->Range(32, 256);

void BM_MaskAccurate(benchmark::State& state) {
  const image::Image face = MakeFace(64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        image::GenerateMask(face, image::MaskLevel::kAccurate));
  }
}
BENCHMARK(BM_MaskAccurate);

void BM_MaskModerate(benchmark::State& state) {
  const image::Image face = MakeFace(64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        image::GenerateMask(face, image::MaskLevel::kModerate));
  }
}
BENCHMARK(BM_MaskModerate);

void BM_MaskImprecise(benchmark::State& state) {
  const image::Image face = MakeFace(64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        image::GenerateMask(face, image::MaskLevel::kImprecise));
  }
}
BENCHMARK(BM_MaskImprecise);

void BM_Embed(benchmark::State& state) {
  const embedding::SimulatedEmbedder embedder;
  const image::Image face = MakeFace(64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Embed(face));
  }
}
BENCHMARK(BM_Embed);

}  // namespace
