// Streaming-coverage cost: amortized maintenance of the MUP frontier via
// coverage::IncrementalMupIndex versus re-running the full lattice
// traversal (MupFinder::FindMups) at every refresh point (DESIGN.md §14).
//
// The workload models the serving layer: tuples arrive in batches of 100
// (a repair round's merged accepted tuples) and the frontier must be
// current after every batch. The incremental strategy patches the index
// per batch; the recompute strategy would re-run FindMups per batch, so
// its cost is sampled at evenly spaced checkpoints along the same stream
// and averaged (running it at every one of the 10^4 refresh points would
// dominate the bench without changing the estimate). The incremental
// side is charged its full cost — posting-list growth AND frontier patch
// — while the recompute side is charged only the FindMups traversal,
// which biases the comparison against the incremental index.
//
// The binary self-checks the acceptance criterion: at the run's largest
// scale (10^6 tuples full, 2*10^4 smoke) the mean per-refresh patch must
// be at least 10x cheaper than the mean full recompute. The schema's
// rarest value combinations sit near tau at 10^6 tuples, so the frontier
// stays populated at depth and the patch path is exercised for real.
//
// Flags: --json=<path> (schema-v1 report), --smoke (one small scale).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment_common.h"
#include "src/coverage/incremental_mup.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/data/schema.h"
#include "src/obs/quantile_digest.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace {

using chameleon::coverage::IncrementalMupIndex;
using chameleon::coverage::IncrementalMupOptions;
using chameleon::coverage::MupFinder;
using chameleon::coverage::MupFinderOptions;
using chameleon::coverage::PatternCounter;

constexpr int64_t kTau = 50;
constexpr int kBatch = 100;       // accepted tuples per refresh
constexpr int kRecomputeSamples = 20;

chameleon::data::AttributeSchema StreamSchema() {
  chameleon::data::AttributeSchema schema;
  const std::vector<int> cardinalities = {2, 5, 4, 3, 3};
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    std::string name = "a";
    name += std::to_string(i);
    std::vector<std::string> values;
    for (int v = 0; v < cardinalities[i]; ++v) {
      std::string value = "v";
      value += std::to_string(v);
      values.push_back(std::move(value));
    }
    (void)schema.AddAttribute({std::move(name), std::move(values), false});
  }
  return schema;
}

/// Skewed stream: value 0 dominates each attribute, so deep combinations
/// stay rare and the frontier never collapses to empty.
std::vector<int> NextTuple(const chameleon::data::AttributeSchema& schema,
                           chameleon::util::Rng* rng) {
  std::vector<int> values(schema.num_attributes());
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const int cardinality = schema.attribute(i).cardinality();
    values[i] = rng->NextBernoulli(0.55)
                    ? 0
                    : static_cast<int>(rng->NextBounded(cardinality));
  }
  return values;
}

struct ScaleResult {
  int64_t n = 0;
  double insert_ns = 0.0;           // amortized per tuple, full incremental cost
  double patch_refresh_ns = 0.0;    // mean incremental cost per refresh
  double recompute_refresh_ns = 0.0;  // mean FindMups cost per refresh
  double speedup = 0.0;
  int64_t final_mups = 0;
  chameleon::obs::QuantileDigest patch_digest;      // per-refresh ns
  chameleon::obs::QuantileDigest recompute_digest;  // per-sample ns
};

ScaleResult RunScale(const chameleon::data::AttributeSchema& schema,
                     int64_t n) {
  IncrementalMupOptions options;
  options.tau = kTau;
  IncrementalMupIndex index(schema, options);
  PatternCounter reference(schema);
  MupFinderOptions find_options;
  find_options.tau = kTau;

  chameleon::util::Rng rng(2024);
  ScaleResult out;
  out.n = n;
  const int64_t refreshes = n / kBatch;
  const int64_t sample_every =
      refreshes / kRecomputeSamples > 0 ? refreshes / kRecomputeSamples : 1;

  double incremental_s = 0.0;
  double recompute_s = 0.0;
  int64_t samples = 0;
  chameleon::util::Stopwatch timer;
  for (int64_t r = 0; r < refreshes; ++r) {
    std::vector<std::vector<int>> batch;
    batch.reserve(kBatch);
    for (int b = 0; b < kBatch; ++b) batch.push_back(NextTuple(schema, &rng));

    timer.Restart();
    if (!index.InsertBatch(batch).ok()) {
      std::fprintf(stderr, "InsertBatch failed at refresh %lld\n",
                   static_cast<long long>(r));
      std::exit(1);
    }
    const double patch_s = timer.ElapsedSeconds();
    incremental_s += patch_s;
    out.patch_digest.Add(patch_s * 1e9);

    // The recompute strategy pays this same posting growth before its
    // FindMups; it is deliberately left untimed (see header comment).
    for (const std::vector<int>& values : batch) {
      if (!reference.AddTuple(values).ok()) {
        std::fprintf(stderr, "AddTuple failed\n");
        std::exit(1);
      }
    }
    if (r % sample_every == sample_every - 1) {
      MupFinder finder(schema, reference);
      timer.Restart();
      const auto mups = finder.FindMups(find_options);
      const double find_s = timer.ElapsedSeconds();
      recompute_s += find_s;
      out.recompute_digest.Add(find_s * 1e9);
      ++samples;
      if (mups.size() != index.Mups().size()) {
        std::fprintf(stderr,
                     "FAIL: frontier diverged at refresh %lld (%zu vs %zu "
                     "MUPs)\n",
                     static_cast<long long>(r), index.Mups().size(),
                     mups.size());
        std::exit(1);
      }
    }
  }

  out.insert_ns = incremental_s * 1e9 / static_cast<double>(refreshes * kBatch);
  out.patch_refresh_ns = incremental_s * 1e9 / static_cast<double>(refreshes);
  out.recompute_refresh_ns = recompute_s * 1e9 / static_cast<double>(samples);
  out.speedup = out.recompute_refresh_ns / out.patch_refresh_ns;
  out.final_mups = static_cast<int64_t>(index.Mups().size());
  std::printf("  n=%-8lld insert %8.0f ns/tuple | refresh: patch %10.0f ns "
              "vs recompute %12.0f ns -> %7.1fx | %lld live MUPs\n",
              static_cast<long long>(n), out.insert_ns, out.patch_refresh_ns,
              out.recompute_refresh_ns, out.speedup,
              static_cast<long long>(out.final_mups));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::vector<int64_t> scales =
      smoke ? std::vector<int64_t>{20000}
            : std::vector<int64_t>{100000, 1000000};

  const chameleon::data::AttributeSchema schema = StreamSchema();
  std::printf("bench_incremental_coverage: tau=%lld, refresh batch=%d, "
              "schema cards 2x5x4x3x3\n",
              static_cast<long long>(kTau), kBatch);
  std::vector<ScaleResult> results;
  for (const int64_t n : scales) results.push_back(RunScale(schema, n));

  int exit_code = 0;
  const ScaleResult& largest = results.back();
  std::printf("speedup at n=%lld: %.1fx (gate: >= 10x)\n",
              static_cast<long long>(largest.n), largest.speedup);
  if (largest.speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: incremental maintenance only %.1fx cheaper than "
                 "full recompute (gate: 10x)\n",
                 largest.speedup);
    exit_code = 1;
  }

  const std::string json_path = chameleon::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    chameleon::bench::BenchJsonReport report("bench_incremental_coverage");
    report.set_smoke(smoke);
    report.AddConfig("tau", std::to_string(kTau));
    report.AddConfig("refresh_batch", std::to_string(kBatch));
    report.AddConfig("schema", "2x5x4x3x3");
    for (const ScaleResult& r : results) {
      const std::string suffix = "_n" + std::to_string(r.n);
      chameleon::obs::QuantileDigest insert_digest;
      insert_digest.Add(r.insert_ns);
      report.AddCase("incremental_insert" + suffix, r.insert_ns, r.n,
                     insert_digest);
      report.AddCase("incremental_refresh" + suffix, r.patch_refresh_ns,
                     r.n / kBatch, r.patch_digest);
      report.AddCase("full_recompute" + suffix, r.recompute_refresh_ns,
                     kRecomputeSamples, r.recompute_digest);
    }
    const chameleon::util::Status status = report.WriteJson(json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench json: %s\n", status.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}
