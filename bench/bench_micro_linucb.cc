// Micro-benchmarks for LinUCB (§5.3): arm selection and the update path.
// The ablation contrasts the library's Sherman-Morrison O(k^2) inverse
// maintenance against recomputing A^{-1} from scratch per update.

#include <benchmark/benchmark.h>

#include "src/bandit/linucb.h"
#include "src/linalg/matrix.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

void BM_SelectArm(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  bandit::LinUcb bandit(3, k, 0.5);
  util::Rng rng(3);
  // Warm it up with some pulls.
  for (int i = 0; i < 50; ++i) {
    const auto context =
        bandit::LinUcb::OneHotContext(k, rng.NextBounded(k));
    const int arm = bandit.SelectArm(context, &rng);
    (void)bandit.Update(arm, context, rng.NextBernoulli(0.5));
  }
  const auto context = bandit::LinUcb::OneHotContext(k, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bandit.SelectArm(context, &rng));
  }
}
BENCHMARK(BM_SelectArm)->Range(16, 256);

void BM_UpdateShermanMorrison(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  bandit::LinUcb bandit(3, k, 0.5);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto context =
        bandit::LinUcb::OneHotContext(k, rng.NextBounded(k));
    benchmark::DoNotOptimize(bandit.Update(0, context, 1.0));
  }
}
BENCHMARK(BM_UpdateShermanMorrison)->Range(16, 256);

// Baseline ablation: maintain A explicitly and refactorize per update.
void BM_UpdateRefactorize(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  linalg::Matrix a = linalg::Matrix::Identity(k);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto context =
        bandit::LinUcb::OneHotContext(k, rng.NextBounded(k));
    a.AddOuter(1.0, context, context);
    benchmark::DoNotOptimize(a.Inverse());
  }
}
BENCHMARK(BM_UpdateRefactorize)->Range(16, 256);

}  // namespace
