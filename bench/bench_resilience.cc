// Micro-benchmarks for the resilience decorators: the cost of routing
// every generation through ResilientFoundationModel when nothing fails
// (the steady-state tax, budgeted at <2%), and the cost of masking a
// hostile fault schedule (retries + backoff bookkeeping, all virtual
// time — no sleeping).

#include <benchmark/benchmark.h>

#include "src/datasets/feret.h"
#include "src/fm/flaky_foundation_model.h"
#include "src/fm/foundation_model.h"
#include "src/fm/resilient_foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

fm::GenerationRequest UnguidedRequest(int i) {
  fm::GenerationRequest request;
  request.target_values = {i % 2, i % 5};
  return request;
}

// Baseline: the bare simulator. Everything below is measured against
// this — any decorator overhead shows up as a delta on this number.
void BM_GenerateBare(benchmark::State& state) {
  const auto schema = datasets::FeretSchema();
  fm::SimulatedFoundationModel model(schema, datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(),
                                     fm::SimulatedFoundationModel::Options());
  util::Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    auto result = model.Generate(UnguidedRequest(i++), &rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateBare);

// The resilient wrapper at a zero fault rate: one rng checkpoint copy,
// one well-formedness check, and telemetry updates per query. This is
// the configuration every healthy run pays for.
void BM_GenerateResilientZeroFaults(benchmark::State& state) {
  const auto schema = datasets::FeretSchema();
  fm::SimulatedFoundationModel backend(schema, datasets::FeretFaceStyleFn(),
                                       datasets::FeretScene(),
                                       fm::SimulatedFoundationModel::Options());
  fm::ResilientFoundationModel model(&backend, fm::ResilienceOptions());
  util::Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    auto result = model.Generate(UnguidedRequest(i++), &rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateResilientZeroFaults);

// Full stack under fire: 30% transient faults plus rate limits and
// malformed responses, all masked by retries. Backoff is virtual time,
// so the cost is redundant backend calls, not sleeping.
void BM_GenerateResilientUnderFaults(benchmark::State& state) {
  const auto schema = datasets::FeretSchema();
  fm::SimulatedFoundationModel backend(schema, datasets::FeretFaceStyleFn(),
                                       datasets::FeretScene(),
                                       fm::SimulatedFoundationModel::Options());
  fm::FlakyOptions flaky_options;
  flaky_options.transient_rate = 0.3;
  flaky_options.rate_limit_rate = 0.05;
  flaky_options.malformed_rate = 0.05;
  fm::FlakyFoundationModel flaky(&backend, flaky_options);
  fm::ResilienceOptions resilience;
  resilience.max_attempts = 16;
  resilience.breaker_failure_threshold = 1 << 30;
  fm::ResilientFoundationModel model(&flaky, resilience);
  util::Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    auto result = model.Generate(UnguidedRequest(i++), &rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateResilientUnderFaults);

}  // namespace
