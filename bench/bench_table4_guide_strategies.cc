// Reproduces Table 4: Quality Test Acceptance Rate (alpha = 0.1 and 0.4)
// and Data Distribution Test Acceptance Rate (nu = 0.3; linear and RBF
// kernels) for every guide-tuple strategy x mask delineation level, on
// the §6.4.1 UTKFace challenge subset (16 designed level-3 MUPs,
// tau = 10).
//
// Each setting runs a full repair; QTAR at both significance levels and
// DDTAR under both kernels are recomputed from the per-generation audit
// records, exactly as the paper scores one generation set under several
// test configurations.

#include <cstdio>
#include <vector>

#include "bench/experiment_common.h"
#include "src/core/chameleon.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/svm/one_class_svm.h"
#include "src/util/table_printer.h"

using namespace chameleon;

namespace {

struct SettingResult {
  int64_t generated = 0;
  double qtar_01 = 0.0;
  double qtar_04 = 0.0;
  double ddtar_linear = 0.0;
  double ddtar_rbf = 0.0;
};

SettingResult ScoreRecords(const std::vector<core::GenerationRecord>& records,
                           const svm::OneClassSvm& linear_svm,
                           const svm::OneClassSvm& rbf_svm) {
  SettingResult result;
  result.generated = static_cast<int64_t>(records.size());
  if (records.empty()) return result;
  int64_t q01 = 0;
  int64_t q04 = 0;
  int64_t d_linear = 0;
  int64_t d_rbf = 0;
  for (const auto& r : records) {
    q01 += r.quality_p_value >= 0.1;
    q04 += r.quality_p_value >= 0.4;
    d_linear += linear_svm.Accepts(r.embedding);
    d_rbf += rbf_svm.Accepts(r.embedding);
  }
  const double n = static_cast<double>(records.size());
  result.qtar_01 = q01 / n;
  result.qtar_04 = q04 / n;
  result.ddtar_linear = d_linear / n;
  result.ddtar_rbf = d_rbf / n;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf(
      "=== Table 4: guide-selection strategies x mask levels "
      "(UTKFace challenge subset, tau=10, nu=0.3) ===\n");

  const embedding::SimulatedEmbedder embedder;
  datasets::ChallengeOptions challenge_options;
  auto base_corpus =
      datasets::MakeUtkFaceChallengeSubset(&embedder, challenge_options);
  if (!base_corpus.ok()) {
    std::fprintf(stderr, "%s\n", base_corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("challenge subset: %zu tuples\n", base_corpus->dataset.size());

  // Both DDT kernels are trained once on the (shared) real embeddings.
  const std::vector<std::vector<double>> real_embeddings =
      base_corpus->Embeddings();
  svm::OneClassSvmOptions linear_options;
  linear_options.nu = 0.3;
  linear_options.kernel = svm::Kernel::Linear();
  svm::OneClassSvmOptions rbf_options;
  rbf_options.nu = 0.3;
  rbf_options.kernel = svm::Kernel::Rbf();
  auto linear_svm = svm::OneClassSvm::Train(real_embeddings, linear_options);
  auto rbf_svm = svm::OneClassSvm::Train(real_embeddings, rbf_options);
  if (!linear_svm.ok() || !rbf_svm.ok()) {
    std::fprintf(stderr, "OCSVM training failed\n");
    return 1;
  }

  const core::GuideStrategy strategies[] = {
      core::GuideStrategy::kNoGuide, core::GuideStrategy::kRandomGuide,
      core::GuideStrategy::kSimilarTuple, core::GuideStrategy::kLinUcb};
  const image::MaskLevel mask_levels[] = {image::MaskLevel::kAccurate,
                                          image::MaskLevel::kModerate,
                                          image::MaskLevel::kImprecise};

  util::TablePrinter table({"Guide Strategy", "Mask Level", "#Gen",
                            "QTAR a=0.1", "QTAR a=0.4", "DDTAR Linear",
                            "DDTAR RBF"});

  for (core::GuideStrategy strategy : strategies) {
    SettingResult sum;
    int rows = 0;
    for (image::MaskLevel mask_level : mask_levels) {
      fm::Corpus corpus = *base_corpus;  // fresh copy per setting
      fm::SimulatedFoundationModel::Options fm_options;
      fm::SimulatedFoundationModel model(corpus.dataset.schema(),
                                         datasets::UtkFaceStyleFn(),
                                         datasets::UtkFaceScene(), fm_options);
      const fm::EvaluatorPool evaluators(2024);

      core::ChameleonOptions options;
      options.tau = 10;
      options.guide_strategy = strategy;
      options.mask_level = mask_level;
      options.rejection.quality_alpha = 0.1;  // gating config
      options.rejection.svm.nu = 0.3;
      options.rejection.svm.kernel = svm::Kernel::Rbf();
      options.seed = 7000 + static_cast<int>(strategy) * 10 +
                     static_cast<int>(mask_level);
      core::Chameleon system(&model, &embedder, &evaluators, options);
      auto report = system.RepairMinLevelMups(&corpus);
      if (!report.ok()) {
        std::fprintf(stderr, "repair failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      const SettingResult result =
          ScoreRecords(report->records, *linear_svm, *rbf_svm);
      table.AddRow({core::GuideStrategyName(strategy),
                    strategy == core::GuideStrategy::kNoGuide
                        ? "-"
                        : image::MaskLevelName(mask_level),
                    util::Fmt(result.generated), util::Fmt(result.qtar_01),
                    util::Fmt(result.qtar_04), util::Fmt(result.ddtar_linear),
                    util::Fmt(result.ddtar_rbf)});
      sum.generated += result.generated;
      sum.qtar_01 += result.qtar_01;
      sum.qtar_04 += result.qtar_04;
      sum.ddtar_linear += result.ddtar_linear;
      sum.ddtar_rbf += result.ddtar_rbf;
      ++rows;
      if (strategy == core::GuideStrategy::kNoGuide) break;  // one row
    }
    if (rows > 1) {
      table.AddRow({core::GuideStrategyName(strategy), "Avg:",
                    util::Fmt(sum.generated), util::Fmt(sum.qtar_01 / rows),
                    util::Fmt(sum.qtar_04 / rows),
                    util::Fmt(sum.ddtar_linear / rows),
                    util::Fmt(sum.ddtar_rbf / rows)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): LinUCB QTAR > Similar-Tuple > Random-Guide;"
      "\nNo-Guide DDTAR lowest (~0.5); Accurate mask best DDTAR, worst QTAR.\n");
  return bench::FinishExperiment(argc, argv, "bench_table4_guide_strategies",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
