// Reproduces Table 3 and the §6.3 proof of concept: a race-predicting
// classifier is trained on the FERET corpus before and after repairing
// the three uncovered ethnicity groups (Black, Hispanic, Middle Eastern)
// with Chameleon at tau = 100, and evaluated on the same all-real test
// set. Also prints the repair-run statistics the paper reports in-text
// (307 queries, 75% pass rate, $4.91 cost for the authors' run).

#include <cstdio>

#include "bench/experiment_common.h"
#include "src/core/chameleon.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/util/table_printer.h"

using namespace chameleon;

namespace {

constexpr uint64_t kSeed = 99;

void AddReportRows(util::TablePrinter* table, const char* dataset_label,
                   const fm::Corpus& corpus,
                   const nn::ClassificationReport& report) {
  const auto& schema = corpus.dataset.schema();
  auto group_count = [&](int e) {
    return corpus.dataset.CountMatching(data::Pattern(
        {data::Pattern::kUnspecified, e}));
  };
  table->AddRow({dataset_label, "Overall",
                 util::Fmt(static_cast<int64_t>(corpus.dataset.size())),
                 util::Fmt(report.WeightedPrecision()),
                 util::Fmt(report.WeightedRecall()),
                 util::Fmt(report.WeightedF1())});
  for (int e : {datasets::kFeretBlack, datasets::kFeretHispanic,
                datasets::kFeretMiddleEastern}) {
    const auto& m = report.class_metrics(e);
    table->AddRow({dataset_label, schema.attribute(1).values[e],
                   util::Fmt(group_count(e)), util::Fmt(m.Precision()),
                   util::Fmt(m.Recall()), util::Fmt(m.F1())});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf(
      "=== Table 3: repairing lack of coverage on FERETDB (tau=100, "
      "seed=%llu) ===\n",
      static_cast<unsigned long long>(kSeed));

  const embedding::SimulatedEmbedder embedder;
  datasets::FeretOptions feret_options;
  auto corpus = datasets::MakeFeret(&embedder, feret_options);
  auto test = datasets::MakeFeretTestSet(&embedder, feret_options);
  if (!corpus.ok() || !test.ok()) {
    std::fprintf(stderr, "corpus construction failed\n");
    return 1;
  }

  util::TablePrinter table(
      {"Train set", "Group", "#Images", "Precision", "Recall", "F1"});

  const auto before =
      bench::TrainAndEvaluateEthnicityClassifier(*corpus, *test);
  AddReportRows(&table, "FERETDB", *corpus, before);

  // Repair with Greedy selection + LinUCB guides + Moderate masks — the
  // configuration §6.3 names.
  fm::SimulatedFoundationModel::Options fm_options;
  fm::SimulatedFoundationModel model(corpus->dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(), fm_options);
  const fm::EvaluatorPool evaluators(2024);
  core::ChameleonOptions options;
  options.tau = 100;
  options.selection = core::SelectionAlgorithm::kGreedy;
  options.guide_strategy = core::GuideStrategy::kLinUcb;
  options.mask_level = image::MaskLevel::kModerate;
  options.seed = kSeed;
  core::Chameleon system(&model, &embedder, &evaluators, options);
  auto repair = system.RepairMinLevelMups(&*corpus);
  if (!repair.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }

  const auto after =
      bench::TrainAndEvaluateEthnicityClassifier(*corpus, *test);
  AddReportRows(&table, "Repaired", *corpus, after);

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\n--- repair run (paper: 307 queries, 231 accepted = 75%%, $4.91) "
      "---\n");
  std::printf("queries issued:        %lld\n",
              static_cast<long long>(repair->queries));
  std::printf("accepted:              %lld (%.0f%%)\n",
              static_cast<long long>(repair->accepted),
              100.0 * repair->AcceptanceRate());
  std::printf("estimated p:           %.2f (paper: 0.86)\n",
              repair->estimated_p);
  std::printf("cost at $%.3f/image:   $%.2f\n", model.query_cost(),
              repair->total_cost);
  std::printf("level-1 MUPs resolved: %s\n",
              repair->fully_resolved ? "yes" : "NO");
  return bench::FinishExperiment(argc, argv, "bench_table3_proof_of_concept",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
