// Micro-benchmarks for the thread pool itself: task dispatch overhead,
// ParallelFor scaling against an embarrassingly parallel workload, and
// the cost of deterministic per-chunk RNG splitting.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace {

using namespace chameleon;

// Raw Submit round-trip cost: enqueue a trivial task and wait for it.
void BM_SubmitRoundTrip(benchmark::State& state) {
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> sink{0};
    pool.Submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); })
        .wait();
    benchmark::DoNotOptimize(sink.load());
  }
}
BENCHMARK(BM_SubmitRoundTrip)->Arg(1)->Arg(2)->Arg(4);

// CPU-bound ParallelFor: each index does a fixed amount of transcendental
// work. Sweeps thread count at a fixed problem size, so per-thread
// scaling reads directly off the time column.
void BM_ParallelForCompute(benchmark::State& state) {
  const int num_threads = static_cast<int>(state.range(0));
  constexpr int64_t kTotal = 1 << 14;
  constexpr int64_t kGrain = 64;
  util::ThreadPool pool(num_threads);
  std::vector<double> out(kTotal);
  for (auto _ : state) {
    pool.ParallelFor(kTotal, kGrain,
                     [&out](int64_t begin, int64_t end, int64_t /*chunk*/) {
                       for (int64_t i = begin; i < end; ++i) {
                         double acc = static_cast<double>(i);
                         for (int k = 0; k < 32; ++k) {
                           acc = std::sqrt(acc + 1.0) * 1.0001;
                         }
                         out[i] = acc;
                       }
                     });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_ParallelForCompute)->Arg(1)->Arg(2)->Arg(4);

// Deterministic seeded variant: same workload plus one RNG draw per
// index, measuring the overhead of serial chunk-seed derivation.
void BM_ParallelForSeeded(benchmark::State& state) {
  const int num_threads = static_cast<int>(state.range(0));
  constexpr int64_t kTotal = 1 << 14;
  constexpr int64_t kGrain = 64;
  util::ThreadPool pool(num_threads);
  std::vector<double> out(kTotal);
  for (auto _ : state) {
    pool.ParallelForSeeded(
        /*seed=*/42, kTotal, kGrain,
        [&out](int64_t begin, int64_t end, int64_t /*chunk*/,
               util::Rng* rng) {
          for (int64_t i = begin; i < end; ++i) {
            out[i] = rng->NextGaussian(0.0, 1.0);
          }
        });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_ParallelForSeeded)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
