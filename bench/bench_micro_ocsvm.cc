// Micro-benchmarks for the one-class SVM (§3.1): SMO training and
// decision-function evaluation under both Table 4 kernels.

#include <benchmark/benchmark.h>

#include "src/svm/one_class_svm.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

std::vector<std::vector<double>> MakeCluster(int n, int dim, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points) {
    for (double& v : p) v = rng.NextGaussian(0.5, 0.2);
  }
  return points;
}

void BM_TrainRbf(benchmark::State& state) {
  const auto points = MakeCluster(static_cast<int>(state.range(0)), 32, 5);
  svm::OneClassSvmOptions options;
  options.nu = 0.3;
  options.kernel = svm::Kernel::Rbf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm::OneClassSvm::Train(points, options));
  }
}
BENCHMARK(BM_TrainRbf)->Range(64, 2048);

void BM_TrainLinear(benchmark::State& state) {
  const auto points = MakeCluster(static_cast<int>(state.range(0)), 32, 5);
  svm::OneClassSvmOptions options;
  options.nu = 0.3;
  options.kernel = svm::Kernel::Linear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm::OneClassSvm::Train(points, options));
  }
}
BENCHMARK(BM_TrainLinear)->Range(64, 2048);

void BM_DecisionValue(benchmark::State& state) {
  const auto points = MakeCluster(static_cast<int>(state.range(0)), 32, 5);
  svm::OneClassSvmOptions options;
  options.nu = 0.3;
  auto model = svm::OneClassSvm::Train(points, options);
  const auto query = MakeCluster(1, 32, 77)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->DecisionValue(query));
  }
}
BENCHMARK(BM_DecisionValue)->Range(64, 2048);

// Parallel Gram-matrix construction during training. Fixed n = 1024 so
// the cache build dominates; Arg is num_threads (1 = serial baseline).
void BM_TrainRbfParallel(benchmark::State& state) {
  const auto points = MakeCluster(1024, 32, 5);
  svm::OneClassSvmOptions options;
  options.nu = 0.3;
  options.kernel = svm::Kernel::Rbf();
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm::OneClassSvm::Train(points, options));
  }
}
BENCHMARK(BM_TrainRbfParallel)->Arg(1)->Arg(2)->Arg(4);

// Batch scoring via DecisionValues; Arg is num_threads.
void BM_DecisionValuesBatch(benchmark::State& state) {
  const auto points = MakeCluster(1024, 32, 5);
  svm::OneClassSvmOptions options;
  options.nu = 0.3;
  auto model = svm::OneClassSvm::Train(points, options);
  const auto queries = MakeCluster(512, 32, 77);
  const int num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->DecisionValues(queries, num_threads));
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_DecisionValuesBatch)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
