// Reproduces Table 5: can automated no-reference image-quality tools
// replace the human evaluators of the quality test? 271 synthetic images
// are generated from UTKFace guides at mixed mask levels; human ground
// truth labels them via the §3.2 procedure (alpha = 0.1); NIQE, BRISQUE
// and NIMA thresholds are then calibrated to reject exactly as many
// images as the humans did, and the rejected sets are compared by
// Jaccard similarity. The paper's finding is negative: all tools land
// far from the human ground truth (Jaccard 0.07-0.13).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/experiment_common.h"
#include "src/core/guide_selection.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/image/mask_generator.h"
#include "src/iqa/brisque.h"
#include "src/iqa/nima.h"
#include "src/iqa/niqe.h"
#include "src/stats/summary.h"
#include "src/stats/t_test.h"
#include "src/util/table_printer.h"

using namespace chameleon;

namespace {

constexpr int kNumImages = 271;     // paper's synthetic pool size
constexpr int kEvaluationsPerImage = 6;  // "more than five evaluators"

/// Indices of the `count` highest-scoring entries (used when a higher
/// tool score means worse quality).
std::vector<int64_t> WorstByScore(const std::vector<double>& scores,
                                  int64_t count, bool higher_is_worse) {
  std::vector<int64_t> order(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return higher_is_worse ? scores[a] > scores[b] : scores[a] < scores[b];
  });
  order.resize(count);
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf("=== Table 5: IQA tools vs human ground truth ===\n");

  const embedding::SimulatedEmbedder embedder;
  datasets::ChallengeOptions challenge_options;
  auto corpus =
      datasets::MakeUtkFaceChallengeSubset(&embedder, challenge_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // Generate the synthetic pool: similar-tuple guides, mask level cycling
  // through the three delineation levels (the paper's "varying" setup).
  fm::SimulatedFoundationModel::Options fm_options;
  fm::SimulatedFoundationModel model(corpus->dataset.schema(),
                                     datasets::UtkFaceStyleFn(),
                                     datasets::UtkFaceScene(), fm_options);
  const fm::EvaluatorPool evaluators(2024);
  // Alternate guide strategies so the pool spans the full quality range
  // the pipeline produces (similar-tuple edits are clean; random guides
  // require multi-attribute edits and yield the unrealistic tail).
  core::SimilarTupleSelector similar_selector(corpus->dataset.schema());
  core::RandomGuideSelector random_selector;
  util::Rng rng(555);

  const auto rare = datasets::ChallengeRarePatterns();
  std::vector<image::Image> generated;
  std::vector<double> realism;
  const image::MaskLevel levels[] = {image::MaskLevel::kAccurate,
                                     image::MaskLevel::kModerate,
                                     image::MaskLevel::kImprecise};
  while (static_cast<int>(generated.size()) < kNumImages) {
    const auto& target_pattern = rare[generated.size() % rare.size()];
    const std::vector<int> target = target_pattern.cells();
    core::GuideSelector& selector =
        generated.size() % 2 == 0
            ? static_cast<core::GuideSelector&>(similar_selector)
            : static_cast<core::GuideSelector&>(random_selector);
    auto choice = selector.Select(corpus->dataset, target, &rng);
    if (!choice.ok() || !choice->has_guide) continue;
    const auto& guide_tuple = corpus->dataset.tuple(choice->tuple_index);
    const image::Image& guide = corpus->images[guide_tuple.payload_id];
    const image::Image mask = image::GenerateMask(
        guide, levels[generated.size() % 3]);
    fm::GenerationRequest request;
    request.target_values = target;
    request.guide = &guide;
    request.guide_values = &choice->guide_values;
    request.mask = &mask;
    auto result = model.Generate(request, &rng);
    if (!result.ok()) continue;
    generated.push_back(std::move(result->image));
    realism.push_back(result->latent_realism);
  }

  // Human ground truth: §3.2 labeling with alpha = 0.1 against the
  // real-image label rate p.
  const double p = evaluators.EstimateRealLabelRate(
      corpus->RealTupleRealism(), 500, &rng);
  std::vector<int64_t> human_rejects;
  for (int i = 0; i < kNumImages; ++i) {
    const std::vector<int> labels =
        evaluators.Evaluate(realism[i], kEvaluationsPerImage, &rng);
    const auto t = stats::OneSampleTTestLower(labels, p);
    if (t.Rejects(0.1)) human_rejects.push_back(i);
  }
  std::printf("humans rejected %zu of %d images (p=%.2f; paper: 27 of 271)\n",
              human_rejects.size(), kNumImages, p);
  if (human_rejects.empty()) {
    std::printf("no rejected images; nothing to compare\n");
    return bench::FinishExperiment(argc, argv, "bench_table5_iqa_jaccard",
                                   bench_stopwatch.ElapsedSeconds(), 0);
  }

  // Train the IQA tools on the real corpus and calibrate each threshold
  // to reject exactly |human_rejects| images.
  auto niqe = iqa::Niqe::Train(corpus->images);
  auto brisque = iqa::Brisque::Train(corpus->images);
  util::Rng nima_rng(77);
  auto nima = iqa::Nima::Train(corpus->images, &nima_rng);
  if (!niqe.ok() || !brisque.ok() || !nima.ok()) {
    std::fprintf(stderr, "IQA training failed\n");
    return 1;
  }

  std::vector<double> niqe_scores;
  std::vector<double> brisque_scores;
  std::vector<double> nima_scores;
  for (const auto& img : generated) {
    niqe_scores.push_back(niqe->Score(img));
    brisque_scores.push_back(brisque->Score(img));
    nima_scores.push_back(nima->Score(img));
  }
  const int64_t k = static_cast<int64_t>(human_rejects.size());
  const auto niqe_rejects = WorstByScore(niqe_scores, k, true);
  const auto brisque_rejects = WorstByScore(brisque_scores, k, true);
  const auto nima_rejects = WorstByScore(nima_scores, k, false);  // low=bad

  util::TablePrinter table({"Quality Assessment Algorithm", "Jaccard"});
  table.AddRow({"NIQE", util::Fmt(stats::JaccardSimilarity(
                            niqe_rejects, human_rejects), 3)});
  table.AddRow({"BRISQUE", util::Fmt(stats::JaccardSimilarity(
                               brisque_rejects, human_rejects), 3)});
  table.AddRow({"NIMA", util::Fmt(stats::JaccardSimilarity(
                            nima_rejects, human_rejects), 3)});
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper: NIQE 0.127, BRISQUE 0.068, NIMA 0.068):\n"
      "all tools score low — none reliably isolates unrealistic images.\n");
  return bench::FinishExperiment(argc, argv, "bench_table5_iqa_jaccard",
                                 bench_stopwatch.ElapsedSeconds(), 0);
}
