// Custom main for the google-benchmark micro-benchmarks. benchmark_main
// rejects unknown flags, so this wrapper strips the harness flags before
// handing over:
//
//   --json=<path>  write a schema-v1 BENCH_<name>.json report (see
//                  experiment_common.h) with per-case ns/op and digest
//                  percentiles over repetitions
//   --smoke        continuous-benchmark smoke mode: caps min time per
//                  case and runs several repetitions so the whole binary
//                  finishes in seconds; the reported ns/op is the median
//                  over repetitions, which survives load spikes on noisy
//                  CI machines far better than a single-shot mean
//
// Everything else (--benchmark_filter, --benchmark_repetitions, ...) is
// passed through to google-benchmark unchanged.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment_common.h"
#include "src/obs/quantile_digest.h"

namespace {

/// Console output plus per-case aggregation for the JSON report.
/// Repetitions of one case fold into a single BenchCase whose digest
/// carries the per-repetition ns/op spread.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct CaseAggregate {
    std::string name;
    int64_t iterations = 0;
    int64_t repetitions = 0;
    chameleon::obs::QuantileDigest ns_digest;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 /
                    static_cast<double>(run.iterations)
              : 0.0;
      CaseAggregate* aggregate = FindOrAdd(run.benchmark_name());
      aggregate->iterations += run.iterations;
      ++aggregate->repetitions;
      aggregate->ns_digest.Add(ns_per_op);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<CaseAggregate>& cases() const { return cases_; }

 private:
  CaseAggregate* FindOrAdd(const std::string& name) {
    for (CaseAggregate& aggregate : cases_) {
      if (aggregate.name == name) return &aggregate;
    }
    cases_.emplace_back();
    cases_.back().name = name;
    return &cases_.back();
  }

  std::vector<CaseAggregate> cases_;
};

std::string BinaryName(const char* argv0) {
  std::string name = argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // benchmark 1.7 takes --benchmark_min_time as a plain double (seconds).
  // The repetitions feed the per-case digest; gating on the median of
  // several short repetitions beats one long run on a noisy machine.
  std::string min_time_flag = "--benchmark_min_time=0.01";
  // 9 repetitions (was 7): the extra two tighten the p50 that the diff
  // gate uses for sub-microsecond cases, at negligible wall-clock cost.
  std::string repetitions_flag = "--benchmark_repetitions=9";
  std::string no_aggregates_flag = "--benchmark_report_aggregates_only=false";
  if (smoke) {
    passthrough.push_back(min_time_flag.data());
    passthrough.push_back(repetitions_flag.data());
    passthrough.push_back(no_aggregates_flag.data());
  }

  int passthrough_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 2;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json_path.empty()) return 0;
  chameleon::bench::BenchJsonReport report(BinaryName(argv[0]));
  report.set_smoke(smoke);
  report.AddConfig("min_time", smoke ? "0.01" : "default");
  report.AddConfig("repetitions", smoke ? "9" : "default");
  for (const CollectingReporter::CaseAggregate& aggregate :
       reporter.cases()) {
    // Minimum over repetitions: scheduler/load contention only ever adds
    // time, so the min is the least-noisy estimate of the true cost on a
    // busy CI machine (the digest still records the full spread). Equal
    // to the single measurement when repetitions were not requested.
    // obsctl's diff gate reads the digest p50 instead of this min for
    // sub-microsecond cases, where even the min flakes under load.
    report.AddCase(aggregate.name, aggregate.ns_digest.Quantile(0.0),
                   aggregate.iterations, aggregate.ns_digest);
  }
  const chameleon::util::Status status = report.WriteJson(json_path);
  if (!status.ok()) {
    std::fprintf(stderr, "bench json: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
