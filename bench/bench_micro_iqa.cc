// Micro-benchmarks for the no-reference IQA pipeline (Table 5's tools):
// MSCN transform, feature extraction and scoring throughput.

#include <benchmark/benchmark.h>

#include "src/image/face_renderer.h"
#include "src/iqa/brisque.h"
#include "src/iqa/mscn.h"
#include "src/iqa/niqe.h"
#include "src/util/rng.h"

namespace {

using namespace chameleon;

image::Image MakeFace(int size, uint64_t seed) {
  util::Rng rng(seed);
  const image::FaceStyle style = image::MakeFaceStyle(2, 5, false, 0.4, &rng);
  image::SceneStyle scene;
  image::RenderOptions options;
  options.size = size;
  return image::RenderFace(style, scene, options, &rng);
}

void BM_Mscn(benchmark::State& state) {
  const image::Image face =
      MakeFace(static_cast<int>(state.range(0)), 1).ToGrayscale();
  for (auto _ : state) {
    benchmark::DoNotOptimize(iqa::ComputeMscn(face));
  }
}
BENCHMARK(BM_Mscn)->Range(32, 256);

void BM_BrisqueFeatures(benchmark::State& state) {
  const image::Image face = MakeFace(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(iqa::BrisqueFeatures(face));
  }
}
BENCHMARK(BM_BrisqueFeatures)->Range(32, 256);

void BM_NiqeScore(benchmark::State& state) {
  std::vector<image::Image> corpus;
  for (int i = 0; i < 16; ++i) corpus.push_back(MakeFace(64, i));
  auto niqe = iqa::Niqe::Train(corpus);
  const image::Image face = MakeFace(64, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(niqe->Score(face));
  }
}
BENCHMARK(BM_NiqeScore);

}  // namespace
