// Reproduces Table 2: the demographic group distribution of the FERET
// training corpus. The synthetic corpus is built to exactly the paper's
// counts; this bench prints the realized counts and checks them against
// the published numbers.

#include <cstdio>

#include "bench/experiment_common.h"
#include "src/data/pattern.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/util/table_printer.h"

using namespace chameleon;  // Bench binary; brevity over hygiene.

int main(int argc, char** argv) {
  util::Stopwatch bench_stopwatch;
  std::printf("=== Table 2: demographic groups distribution in FERETDB ===\n");
  const embedding::SimulatedEmbedder embedder;
  datasets::FeretOptions options;
  options.render.render_images = false;  // counts only
  auto corpus = datasets::MakeFeret(&embedder, options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const auto& schema = corpus->dataset.schema();

  // Paper values for the check column.
  const int64_t paper[5][3] = {{331, 229, 560},
                               {21, 19, 40},
                               {80, 47, 127},
                               {11, 8, 19},
                               {9, 1, 10}};

  util::TablePrinter table(
      {"Ethnicity", "Male", "Female", "Total", "Paper", "Match"});
  int64_t total_male = 0;
  int64_t total_female = 0;
  bool all_match = true;
  for (int e = 0; e < 5; ++e) {
    data::Pattern male({0, e});
    data::Pattern female({1, e});
    const int64_t m = corpus->dataset.CountMatching(male);
    const int64_t f = corpus->dataset.CountMatching(female);
    total_male += m;
    total_female += f;
    const bool match =
        m == paper[e][0] && f == paper[e][1] && m + f == paper[e][2];
    all_match = all_match && match;
    table.AddRow({schema.attribute(1).values[e], util::Fmt(m), util::Fmt(f),
                  util::Fmt(m + f), util::Fmt(paper[e][2]),
                  match ? "yes" : "NO"});
  }
  table.AddRow({"Total", util::Fmt(total_male), util::Fmt(total_female),
                util::Fmt(total_male + total_female), "756",
                total_male + total_female == 756 ? "yes" : "NO"});
  std::printf("%s", table.ToString().c_str());
  std::printf("paper counts reproduced: %s\n", all_match ? "yes" : "NO");
  return bench::FinishExperiment(argc, argv, "bench_table2_feret_counts",
                                 bench_stopwatch.ElapsedSeconds(),
                                 all_match ? 0 : 1);
}
