// Throughput of the batched FM transport against the simulated backend
// pool. Queries are pushed through the BatchCoalescer at transport batch
// sizes 1/8/32 and timed on the pool's *virtual* latency axis (a batch
// of k dispatched to one backend costs base + k * per, not k * (base +
// per)), so the reported numbers are machine-independent and the
// committed baseline diffs at exactly 0% on any host.
//
// The binary self-checks the acceptance criterion — batch 32 must
// deliver at least 3x the queries/sec of batch 1 — and that the
// generated results are bit-identical across batch sizes (the
// determinism contract of DESIGN.md §11), so a batching regression
// fails CI even before the obsctl diff runs.
//
// Flags: --json=<path> (schema-v1 report), --smoke (fewer queries; the
// per-query virtual numbers are identical because every count used is a
// multiple of every batch size).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment_common.h"
#include "src/datasets/feret.h"
#include "src/fm/backend_pool.h"
#include "src/fm/batching.h"
#include "src/fm/foundation_model.h"
#include "src/obs/quantile_digest.h"
#include "src/util/rng.h"

namespace {

using chameleon::fm::BatchCoalescer;
using chameleon::fm::BatchCoalescerOptions;
using chameleon::fm::GenerationRequest;
using chameleon::fm::GenerationResult;

struct CaseResult {
  int batch = 0;
  double virtual_ms = 0.0;
  double ns_per_query = 0.0;   // virtual ns
  double queries_per_sec = 0.0;  // virtual qps
  std::vector<GenerationResult> results;
};

/// Drives `num_queries` requests through coalescer + pool at one batch
/// size. A fresh pool and a fresh rng parent per case: bit-identity
/// across cases is part of what this bench asserts.
CaseResult RunCase(int batch, int num_queries) {
  chameleon::fm::SimulatedBackendPool pool =
      chameleon::fm::MakeSimulatedBackendPool(
          chameleon::datasets::FeretSchema(),
          chameleon::datasets::FeretFaceStyleFn(),
          chameleon::datasets::FeretScene(),
          chameleon::fm::SimulatedPoolOptions());

  BatchCoalescerOptions options;
  options.max_batch_size = batch;
  options.window_ms = 1e12;  // size-triggered flushes only
  BatchCoalescer coalescer(pool.pool.get(), options);

  std::vector<GenerationRequest> requests(num_queries);
  std::vector<chameleon::util::Rng> rngs;
  std::vector<BatchCoalescer::Slot> slots(num_queries);
  rngs.reserve(requests.size());
  chameleon::util::Rng parent(7);
  for (int i = 0; i < num_queries; ++i) {
    requests[i].target_values = {i % 2, i % 5};
    rngs.push_back(parent.Fork());
  }
  for (int i = 0; i < num_queries; ++i) {
    if (!coalescer.Enqueue(&requests[i], &rngs[i], &slots[i]).ok()) {
      std::fprintf(stderr, "enqueue failed at query %d\n", i);
      std::exit(1);
    }
  }
  if (!coalescer.Flush().ok()) {
    std::fprintf(stderr, "flush failed\n");
    std::exit(1);
  }

  CaseResult out;
  out.batch = batch;
  out.virtual_ms = pool.pool->virtual_ms();
  out.ns_per_query = out.virtual_ms * 1e6 / num_queries;
  out.queries_per_sec = num_queries / (out.virtual_ms / 1000.0);
  out.results.reserve(slots.size());
  for (int i = 0; i < num_queries; ++i) {
    if (!slots[i].has_value() || !(*slots[i]).ok()) {
      std::fprintf(stderr, "query %d unanswered\n", i);
      std::exit(1);
    }
    out.results.push_back(std::move(**slots[i]));
  }
  std::printf("  batch %2d: %8.1f virtual ms for %d queries"
              " (%7.0f q/s, routed: ",
              batch, out.virtual_ms, num_queries, out.queries_per_sec);
  for (int b = 0; b < pool.pool->num_backends(); ++b) {
    std::printf("%s%s=%lld", b > 0 ? " " : "",
                pool.pool->profile(b).name.c_str(),
                static_cast<long long>(pool.pool->routed_queries(b)));
  }
  std::printf(")\n");
  return out;
}

bool SameResults(const std::vector<GenerationResult>& a,
                 const std::vector<GenerationResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].image != b[i].image || a[i].values != b[i].values ||
        a[i].latent_realism != b[i].latent_realism ||
        a[i].backend != b[i].backend) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  // Both counts are multiples of 32, so every case flushes full batches
  // and the virtual per-query numbers are identical in smoke mode.
  const int num_queries = smoke ? 96 : 960;

  std::printf("bench_batching: %d queries through the 3-backend simulated "
              "pool\n", num_queries);
  const std::vector<int> batches = {1, 8, 32};
  std::vector<CaseResult> cases;
  for (const int batch : batches) cases.push_back(RunCase(batch, num_queries));

  int exit_code = 0;
  const double speedup =
      cases.back().queries_per_sec / cases.front().queries_per_sec;
  std::printf("speedup batch32 vs batch1: %.2fx (gate: >= 3x)\n", speedup);
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: batching speedup %.2fx below the 3x gate\n",
                 speedup);
    exit_code = 1;
  }
  for (size_t i = 1; i < cases.size(); ++i) {
    if (!SameResults(cases[0].results, cases[i].results)) {
      std::fprintf(stderr,
                   "FAIL: batch %d results differ from batch 1 "
                   "(determinism contract broken)\n",
                   cases[i].batch);
      exit_code = 1;
    }
  }
  if (exit_code == 0) {
    std::printf("results bit-identical across batch sizes: yes\n");
  }

  const std::string json_path = chameleon::bench::JsonPathFromArgs(argc, argv);
  if (!json_path.empty()) {
    chameleon::bench::BenchJsonReport report("bench_batching");
    report.set_smoke(smoke);
    report.AddConfig("backends", "3");
    report.AddConfig("router", "greedy");
    report.AddConfig("time_axis", "virtual");
    for (const CaseResult& c : cases) {
      // Virtual time is exact, so the digest is a single point and the
      // percentiles collapse onto ns_per_op.
      chameleon::obs::QuantileDigest digest;
      digest.Add(c.ns_per_query);
      report.AddCase("pool_batch" + std::to_string(c.batch), c.ns_per_query,
                     num_queries, digest);
    }
    const chameleon::util::Status status = report.WriteJson(json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench json: %s\n", status.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}
