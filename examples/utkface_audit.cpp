// Coverage audit of the UTKFace corpus: discover MUPs at several
// thresholds and show what each combination-selection algorithm would
// pay to repair them — detection and planning only, no generation.
//
// Usage: utkface_audit [n_tuples]   (default 20000)

#include <cstdio>
#include <cstdlib>

#include "src/core/combination_selection.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/util/rng.h"

using namespace chameleon;  // Example code.

int main(int argc, char** argv) {
  const embedding::SimulatedEmbedder embedder;
  datasets::UtkFaceOptions options;
  options.render.render_images = false;
  if (argc > 1) options.num_tuples = std::atoi(argv[1]);

  auto corpus = datasets::MakeUtkFace(&embedder, options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const auto& schema = corpus->dataset.schema();
  std::printf("UTKFace corpus: %zu tuples, %lld combinations\n",
              corpus->dataset.size(),
              static_cast<long long>(schema.NumCombinations()));

  const auto counter = *coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(schema, counter);

  for (int64_t tau : {200, 350, 1000, 2000}) {
    coverage::MupFinderOptions mup_options;
    mup_options.tau = tau;
    const auto mups = finder.FindMups(mup_options);
    std::printf("\n--- tau = %lld: %zu MUP(s) ---\n",
                static_cast<long long>(tau), mups.size());
    int shown = 0;
    for (const auto& m : mups) {
      if (++shown > 8) {
        std::printf("  ... %zu more\n", mups.size() - 8);
        break;
      }
      std::printf("  level-%d %-44s count=%lld gap=%lld\n", m.Level(),
                  m.pattern.ToString(schema).c_str(),
                  static_cast<long long>(m.count),
                  static_cast<long long>(m.gap));
    }
    const auto targets = coverage::MupFinder::MinLevel(mups);
    if (targets.empty()) continue;
    const int level = targets[0].Level();
    util::Rng rng(tau);
    std::printf(
        "  repairing the %zu level-%d MUP(s) would cost: Greedy=%lld, "
        "Min-Gap=%lld, Random=%lld images\n",
        targets.size(), level,
        static_cast<long long>(core::PlanTotal(
            core::GreedySelect(schema, targets))),
        static_cast<long long>(core::PlanTotal(
            core::MinGapSelect(schema, mups, level))),
        static_cast<long long>(core::PlanTotal(
            core::RandomSelect(schema, mups, level, &rng))));
  }
  return 0;
}
