// Mask delineation demo (the paper's Figure 2, plus Figure 3-style
// dataset samples): renders sample faces from both corpora, extracts the
// foreground, and writes the guide image with its Accurate / Moderate /
// Imprecise masks as PGM/PPM files under ./mask_demo_out/.

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/datasets/feret.h"
#include "src/datasets/utkface.h"
#include "src/image/face_renderer.h"
#include "src/image/mask_generator.h"
#include "src/image/pnm_io.h"
#include "src/util/rng.h"

using namespace chameleon;  // Example code.

namespace {

bool WriteOrComplain(const image::Image& img, const std::string& path) {
  const util::Status status = image::WritePnm(img, path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  std::printf("wrote %s (%dx%d)\n", path.c_str(), img.width(), img.height());
  return true;
}

}  // namespace

int main() {
  const std::string out_dir = "mask_demo_out";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  util::Rng rng(2024);
  struct Sample {
    const char* name;
    fm::FaceStyleFn style_fn;
    image::SceneStyle scene;
    std::vector<int> values;
  };
  const Sample samples[] = {
      {"feret_white_male", datasets::FeretFaceStyleFn(),
       datasets::FeretScene(), {0, datasets::kFeretWhite}},
      {"feret_black_female", datasets::FeretFaceStyleFn(),
       datasets::FeretScene(), {1, datasets::kFeretBlack}},
      {"utk_asian_female_adult", datasets::UtkFaceStyleFn(),
       datasets::UtkFaceScene(), {1, 2, 3}},
      {"utk_indian_male_senior", datasets::UtkFaceStyleFn(),
       datasets::UtkFaceScene(), {0, 3, 7}},
  };

  for (const auto& sample : samples) {
    const image::FaceStyle style = sample.style_fn(sample.values, &rng);
    image::RenderOptions render;
    render.size = 96;
    const image::Image face =
        image::RenderFace(style, sample.scene, render, &rng);
    const std::string base = out_dir + "/" + sample.name;
    if (!WriteOrComplain(face, base + ".ppm")) return 1;

    for (image::MaskLevel level :
         {image::MaskLevel::kAccurate, image::MaskLevel::kModerate,
          image::MaskLevel::kImprecise}) {
      const image::Image mask = image::GenerateMask(face, level);
      std::string suffix = MaskLevelName(level);
      for (char& c : suffix) c = static_cast<char>(std::tolower(c));
      if (!WriteOrComplain(mask, base + "_mask_" + suffix + ".pgm")) return 1;
      std::printf("  %s mask covers %.0f%% of the image\n",
                  image::MaskLevelName(level),
                  100.0 * mask.NonZeroFraction());
    }
  }
  std::printf("\nInspect the PPM/PGM files with any image viewer.\n");
  return 0;
}
