// End-to-end fairness repair on the FERET corpus (the paper's §6.3
// scenario): train a race classifier, measure per-group disparity,
// repair the uncovered groups with Chameleon, retrain, and compare.
//
// Usage: feret_repair [tau]   (default tau = 100)

#include <cstdio>
#include <cstdlib>

#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/nn/metrics.h"
#include "src/nn/mlp.h"
#include "src/nn/trainer.h"

namespace {

using namespace chameleon;

nn::ClassificationReport TrainAndScore(const fm::Corpus& train,
                                       const fm::Corpus& test) {
  util::Rng rng(33);
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  for (const auto& t : train.dataset.tuples()) {
    inputs.push_back(t.embedding);
    labels.push_back(t.values[datasets::kFeretEthnicity]);
  }
  nn::Mlp model({static_cast<int>(inputs[0].size()), 32, 5}, &rng);
  nn::TrainOptions options;
  options.epochs = 250;
  options.learning_rate = 0.02;
  (void)nn::TrainClassifier(&model, inputs, labels, options, &rng);
  std::vector<int> gold;
  std::vector<int> predicted;
  for (const auto& t : test.dataset.tuples()) {
    gold.push_back(t.values[datasets::kFeretEthnicity]);
    predicted.push_back(model.Predict(t.embedding));
  }
  return nn::ClassificationReport(gold, predicted, 5);
}

void PrintReport(const nn::ClassificationReport& report,
                 const data::AttributeSchema& schema, const char* label) {
  std::printf("[%s] overall F1 %.2f (P %.2f / R %.2f)\n", label,
              report.WeightedF1(), report.WeightedPrecision(),
              report.WeightedRecall());
  for (int e = 0; e < 5; ++e) {
    const auto& m = report.class_metrics(e);
    std::printf("  %-14s F1 %.2f  F1-disparity %.2f\n",
                schema.attribute(datasets::kFeretEthnicity).values[e].c_str(),
                m.F1(), nn::Disparity(m.F1(), report.WeightedF1()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t tau = argc > 1 ? std::atoll(argv[1]) : 100;

  const embedding::SimulatedEmbedder embedder;
  datasets::FeretOptions feret_options;
  auto corpus = datasets::MakeFeret(&embedder, feret_options);
  auto test = datasets::MakeFeretTestSet(&embedder, feret_options);
  if (!corpus.ok() || !test.ok()) {
    std::fprintf(stderr, "corpus construction failed\n");
    return 1;
  }
  const auto& schema = corpus->dataset.schema();

  std::printf("FERET corpus: %zu train / %zu test tuples, tau=%lld\n\n",
              corpus->dataset.size(), test->dataset.size(),
              static_cast<long long>(tau));

  PrintReport(TrainAndScore(*corpus, *test), schema, "before repair");

  fm::SimulatedFoundationModel::Options fm_options;
  fm::SimulatedFoundationModel model(schema, datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(), fm_options);
  const fm::EvaluatorPool evaluators(2024);
  core::ChameleonOptions options;
  options.tau = tau;
  options.guide_strategy = core::GuideStrategy::kLinUcb;
  options.mask_level = image::MaskLevel::kModerate;
  core::Chameleon system(&model, &embedder, &evaluators, options);

  auto repair = system.RepairMinLevelMups(&*corpus);
  if (!repair.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 repair.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nrepair: %lld queries, %lld accepted (%.0f%%), cost $%.2f, "
      "resolved=%s\n\n",
      static_cast<long long>(repair->queries),
      static_cast<long long>(repair->accepted),
      100.0 * repair->AcceptanceRate(), repair->total_cost,
      repair->fully_resolved ? "yes" : "no");

  PrintReport(TrainAndScore(*corpus, *test), schema, "after repair");
  return 0;
}
