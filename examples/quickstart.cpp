// Quickstart: repair the coverage of a small face corpus end-to-end.
//
//   1. Build a FERET-like corpus whose minority groups are uncovered.
//   2. Detect the Maximal Uncovered Patterns (MUPs) at threshold tau.
//   3. Let Chameleon plan the minimal augmentation, query the (simulated)
//      foundation model with guide tuples + masks, rejection-sample the
//      results, and append the accepted synthetic tuples.
//   4. Verify the corpus is covered afterwards.

#include <cstdio>

#include "src/core/chameleon.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"

namespace {

using namespace chameleon;  // Example code; the library never does this.

void PrintMups(const fm::Corpus& corpus, int64_t tau, const char* label) {
  const auto counter = *coverage::PatternCounter::FromDataset(corpus.dataset);
  coverage::MupFinder finder(corpus.dataset.schema(), counter);
  coverage::MupFinderOptions options;
  options.tau = tau;
  const auto mups = finder.FindMups(options);
  std::printf("%s: %zu MUP(s) at tau=%lld\n", label, mups.size(),
              static_cast<long long>(tau));
  for (const auto& m : mups) {
    std::printf("  level-%d  %-28s  count=%lld gap=%lld\n", m.Level(),
                m.pattern.ToString(corpus.dataset.schema()).c_str(),
                static_cast<long long>(m.count),
                static_cast<long long>(m.gap));
  }
}

}  // namespace

int main() {
  constexpr int64_t kTau = 40;

  // 1. The corpus: synthetic FERET with the paper's Table 2 skew.
  const embedding::SimulatedEmbedder embedder;
  datasets::FeretOptions feret_options;
  auto corpus = datasets::MakeFeret(&embedder, feret_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("corpus: %zu tuples\n", corpus->dataset.size());

  // 2. Coverage before repair.
  PrintMups(*corpus, kTau, "before");

  // 3. Repair.
  fm::SimulatedFoundationModel::Options fm_options;
  fm::SimulatedFoundationModel model(corpus->dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(), fm_options);
  const fm::EvaluatorPool evaluators(/*seed=*/2024);

  core::ChameleonOptions options;
  options.tau = kTau;
  options.guide_strategy = core::GuideStrategy::kLinUcb;
  options.mask_level = image::MaskLevel::kModerate;
  core::Chameleon system(&model, &embedder, &evaluators, options);

  auto report = system.RepairMinLevelMups(&*corpus);
  if (!report.ok()) {
    std::fprintf(stderr, "repair: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "repair: %lld queries, %lld accepted (%.0f%%), est. p=%.2f, "
      "cost=$%.2f, resolved=%s\n",
      static_cast<long long>(report->queries),
      static_cast<long long>(report->accepted),
      100.0 * report->AcceptanceRate(), report->estimated_p,
      report->total_cost, report->fully_resolved ? "yes" : "no");

  // 4. Coverage after repair.
  PrintMups(*corpus, kTau, "after");
  std::printf("synthetic tuples now in corpus: %lld\n",
              static_cast<long long>(corpus->dataset.NumSynthetic()));
  return 0;
}
