#include "gtest/gtest.h"
#include "src/bandit/epsilon_greedy.h"
#include "src/bandit/linucb.h"
#include "src/util/rng.h"

namespace chameleon::bandit {
namespace {

TEST(LinUcbTest, OneHotContext) {
  const auto context = LinUcb::OneHotContext(4, 2);
  EXPECT_EQ(context, (std::vector<double>{0, 0, 1, 0}));
  // Out of range -> all zero.
  EXPECT_EQ(LinUcb::OneHotContext(3, 9), (std::vector<double>{0, 0, 0}));
}

TEST(LinUcbTest, InitialEstimatesAreZeroWithPositiveExploration) {
  LinUcb bandit(3, 4, 0.5);
  const auto context = LinUcb::OneHotContext(4, 1);
  for (int a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(bandit.EstimatedReward(a, context), 0.0);
    EXPECT_NEAR(bandit.UpperConfidenceBound(a, context), 0.5, 1e-12);
  }
}

TEST(LinUcbTest, UpdateValidatesArguments) {
  LinUcb bandit(2, 3, 0.5);
  const auto context = LinUcb::OneHotContext(3, 0);
  EXPECT_FALSE(bandit.Update(-1, context, 1.0).ok());
  EXPECT_FALSE(bandit.Update(2, context, 1.0).ok());
  EXPECT_FALSE(bandit.Update(0, {1.0, 0.0}, 1.0).ok());
  EXPECT_TRUE(bandit.Update(0, context, 1.0).ok());
  EXPECT_EQ(bandit.pull_count(0), 1);
  EXPECT_EQ(bandit.total_pulls(), 1);
}

TEST(LinUcbTest, RewardedArmGainsEstimate) {
  LinUcb bandit(2, 2, 0.1);
  const auto context = LinUcb::OneHotContext(2, 0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bandit.Update(0, context, 1.0).ok());
    ASSERT_TRUE(bandit.Update(1, context, 0.0).ok());
  }
  EXPECT_GT(bandit.EstimatedReward(0, context), 0.8);
  EXPECT_LT(bandit.EstimatedReward(1, context), 0.1);
  EXPECT_EQ(bandit.SelectArm(context), 0);
}

TEST(LinUcbTest, ExplorationShrinksWithPulls) {
  LinUcb bandit(1, 2, 1.0);
  const auto context = LinUcb::OneHotContext(2, 0);
  const double before = bandit.UpperConfidenceBound(0, context) -
                        bandit.EstimatedReward(0, context);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(bandit.Update(0, context, 0.5).ok());
  }
  const double after = bandit.UpperConfidenceBound(0, context) -
                       bandit.EstimatedReward(0, context);
  EXPECT_LT(after, before);
}

TEST(LinUcbTest, ContextsAreDisjointAcrossCombinations) {
  // Rewards observed under context 0 must not leak into context 1.
  LinUcb bandit(1, 2, 0.0);
  const auto c0 = LinUcb::OneHotContext(2, 0);
  const auto c1 = LinUcb::OneHotContext(2, 1);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(bandit.Update(0, c0, 1.0).ok());
  EXPECT_GT(bandit.EstimatedReward(0, c0), 0.9);
  EXPECT_NEAR(bandit.EstimatedReward(0, c1), 0.0, 1e-9);
}

TEST(LinUcbTest, LearnsBestArmPerContext) {
  // Arm 0 pays in context 0, arm 1 pays in context 1.
  LinUcb bandit(2, 2, 0.5);
  util::Rng rng(7);
  for (int step = 0; step < 400; ++step) {
    const int64_t ctx_index = rng.NextBounded(2);
    const auto context = LinUcb::OneHotContext(2, ctx_index);
    const int arm = bandit.SelectArm(context, &rng);
    const double pay_prob =
        (arm == static_cast<int>(ctx_index)) ? 0.9 : 0.2;
    ASSERT_TRUE(
        bandit.Update(arm, context, rng.NextBernoulli(pay_prob)).ok());
  }
  EXPECT_EQ(bandit.SelectArm(LinUcb::OneHotContext(2, 0)), 0);
  EXPECT_EQ(bandit.SelectArm(LinUcb::OneHotContext(2, 1)), 1);
}

TEST(EpsilonGreedyTest, TriesEveryArmFirst) {
  EpsilonGreedy bandit(3, 0.1);
  util::Rng rng(1);
  std::vector<bool> pulled(3, false);
  for (int i = 0; i < 3; ++i) {
    const int arm = bandit.SelectArm(&rng);
    EXPECT_FALSE(pulled[arm]);
    pulled[arm] = true;
    ASSERT_TRUE(bandit.Update(arm, 0.0).ok());
  }
}

TEST(EpsilonGreedyTest, ExploitsBestArm) {
  EpsilonGreedy bandit(3, 0.0);  // pure exploitation after warmup
  util::Rng rng(2);
  for (int a = 0; a < 3; ++a) {
    bandit.SelectArm(&rng);
    ASSERT_TRUE(bandit.Update(a, a == 1 ? 1.0 : 0.0).ok());
  }
  for (int i = 0; i < 10; ++i) {
    const int arm = bandit.SelectArm(&rng);
    EXPECT_EQ(arm, 1);
    ASSERT_TRUE(bandit.Update(arm, 1.0).ok());
  }
  EXPECT_GT(bandit.MeanReward(1), 0.9);
}

TEST(EpsilonGreedyTest, EpsilonOneIsUniform) {
  EpsilonGreedy bandit(4, 1.0);
  util::Rng rng(3);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    const int arm = bandit.SelectArm(&rng);
    ++counts[arm];
    ASSERT_TRUE(bandit.Update(arm, arm == 0 ? 1.0 : 0.0).ok());
  }
  // Despite arm 0 being best, epsilon=1 keeps exploring all arms.
  for (int a = 0; a < 4; ++a) EXPECT_GT(counts[a], 600);
}

}  // namespace
}  // namespace chameleon::bandit
