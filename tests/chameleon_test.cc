// Integration tests: the full Chameleon repair pipeline over simulated
// corpora, foundation model, embedder and evaluators.

#include "gtest/gtest.h"
#include "src/core/chameleon.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/datasets/feret.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/observability.h"

namespace chameleon::core {
namespace {

class ChameleonFeretTest : public ::testing::Test {
 protected:
  ChameleonFeretTest()
      : embedder_(),
        evaluators_(2024),
        corpus_(*datasets::MakeFeret(&embedder_, datasets::FeretOptions())),
        model_(corpus_.dataset.schema(), datasets::FeretFaceStyleFn(),
               datasets::FeretScene(),
               fm::SimulatedFoundationModel::Options()) {}

  std::vector<coverage::Mup> CurrentMups(int64_t tau) const {
    const auto counter =
        *coverage::PatternCounter::FromDataset(corpus_.dataset);
    coverage::MupFinder finder(corpus_.dataset.schema(), counter);
    coverage::MupFinderOptions options;
    options.tau = tau;
    return finder.FindMups(options);
  }

  embedding::SimulatedEmbedder embedder_;
  fm::EvaluatorPool evaluators_;
  fm::Corpus corpus_;
  fm::SimulatedFoundationModel model_;
};

TEST_F(ChameleonFeretTest, NoOpWhenAlreadyCovered) {
  ChameleonOptions options;
  options.tau = 1;  // everything covered
  Chameleon system(&model_, &embedder_, &evaluators_, options);
  auto report = system.RepairMinLevelMups(&corpus_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->fully_resolved);
  EXPECT_EQ(report->queries, 0);
  EXPECT_TRUE(report->initial_mups.empty());
  EXPECT_EQ(corpus_.dataset.NumSynthetic(), 0);
}

TEST_F(ChameleonFeretTest, RepairsLevel1MupsEndToEnd) {
  constexpr int64_t kTau = 40;
  const size_t before_size = corpus_.dataset.size();
  ASSERT_FALSE(CurrentMups(kTau).empty());

  ChameleonOptions options;
  options.tau = kTau;
  options.guide_strategy = GuideStrategy::kLinUcb;
  options.mask_level = image::MaskLevel::kModerate;
  options.seed = 11;
  Chameleon system(&model_, &embedder_, &evaluators_, options);
  auto report = system.RepairMinLevelMups(&corpus_);
  ASSERT_TRUE(report.ok());

  EXPECT_TRUE(report->fully_resolved);
  EXPECT_GT(report->accepted, 0);
  EXPECT_GE(report->queries, report->accepted);
  EXPECT_EQ(report->accepted,
            static_cast<int64_t>(corpus_.dataset.size() - before_size));
  EXPECT_EQ(corpus_.dataset.NumSynthetic(), report->accepted);
  EXPECT_NEAR(report->estimated_p, 0.86, 0.05);
  EXPECT_NEAR(report->total_cost, report->queries * model_.query_cost(),
              1e-9);

  // The smallest-level MUPs must be gone (level-1 at this tau); any
  // remaining MUPs must sit deeper in the lattice.
  for (const auto& m : CurrentMups(kTau)) {
    EXPECT_GT(m.Level(), 1);
  }

  // The plan total matches the accepted tuple count for a full repair.
  EXPECT_EQ(PlanTotal(report->plan), report->accepted);

  // Records cover every query, and every accepted record passed both.
  EXPECT_EQ(static_cast<int64_t>(report->records.size()), report->queries);
  int64_t accepted_records = 0;
  for (const auto& r : report->records) {
    if (r.accepted) {
      ++accepted_records;
      EXPECT_TRUE(r.distribution_pass);
      EXPECT_TRUE(r.quality_pass);
    }
  }
  EXPECT_EQ(accepted_records, report->accepted);
}

TEST_F(ChameleonFeretTest, SyntheticTuplesMatchTheirTargets) {
  ChameleonOptions options;
  options.tau = 30;
  options.seed = 13;
  Chameleon system(&model_, &embedder_, &evaluators_, options);
  auto report = system.RepairMinLevelMups(&corpus_);
  ASSERT_TRUE(report.ok());
  for (const auto& t : corpus_.dataset.tuples()) {
    if (!t.synthetic) continue;
    EXPECT_FALSE(t.embedding.empty());
    ASSERT_GE(t.payload_id, 0);
    ASSERT_LT(t.payload_id, static_cast<int64_t>(corpus_.images.size()));
    // Its values must match some planned combination.
    bool planned = false;
    for (const auto& entry : report->plan) {
      planned |= entry.values == t.values;
    }
    EXPECT_TRUE(planned);
  }
}

TEST_F(ChameleonFeretTest, QueryCapStopsTheLoop) {
  ChameleonOptions options;
  options.tau = 100;
  options.max_queries = 25;
  options.seed = 17;
  Chameleon system(&model_, &embedder_, &evaluators_, options);
  auto report = system.RepairMinLevelMups(&corpus_);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->queries, 25);
  EXPECT_FALSE(report->fully_resolved);
}

TEST_F(ChameleonFeretTest, AcceptanceCountersAreConsistent) {
  ChameleonOptions options;
  options.tau = 40;
  options.seed = 19;
  Chameleon system(&model_, &embedder_, &evaluators_, options);
  auto report = system.RepairMinLevelMups(&corpus_);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->accepted, report->distribution_passes);
  EXPECT_LE(report->accepted, report->quality_passes);
  EXPECT_LE(report->distribution_passes, report->queries);
  EXPECT_LE(report->quality_passes, report->queries);
  EXPECT_GT(report->DistributionAcceptanceRate(), 0.2);
  EXPECT_GT(report->QualityAcceptanceRate(), 0.5);
}

TEST_F(ChameleonFeretTest, NoGuideStrategyAlsoRepairs) {
  ChameleonOptions options;
  options.tau = 30;
  options.guide_strategy = GuideStrategy::kNoGuide;
  options.seed = 23;
  options.max_queries = 20000;
  Chameleon system(&model_, &embedder_, &evaluators_, options);
  auto report = system.RepairMinLevelMups(&corpus_);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accepted, 0);
  for (const auto& r : report->records) EXPECT_EQ(r.arm, -1);
}

TEST(ChameleonChallengeTest, ResolvesDesignedLevel3Mups) {
  const embedding::SimulatedEmbedder embedder;
  datasets::ChallengeOptions challenge;
  auto corpus = datasets::MakeUtkFaceChallengeSubset(&embedder, challenge);
  ASSERT_TRUE(corpus.ok());
  fm::SimulatedFoundationModel model(corpus->dataset.schema(),
                                     datasets::UtkFaceStyleFn(),
                                     datasets::UtkFaceScene(),
                                     fm::SimulatedFoundationModel::Options());
  const fm::EvaluatorPool evaluators(2024);
  ChameleonOptions options;
  options.tau = 10;
  options.guide_strategy = GuideStrategy::kSimilarTuple;
  options.mask_level = image::MaskLevel::kModerate;
  options.seed = 29;
  Chameleon system(&model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&*corpus);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->initial_mups.size(), 16u);
  EXPECT_TRUE(report->fully_resolved);

  const auto counter = *coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(corpus->dataset.schema(), counter);
  coverage::MupFinderOptions mup_options;
  mup_options.tau = 10;
  EXPECT_TRUE(finder.FindMups(mup_options).empty());
}


// Runs one full repair on a fresh FERET corpus with the given threading
// configuration and returns the report (plus the resulting corpus size
// via *out_synthetic).
RepairReport RunSeededRepair(int num_threads, int rejection_batch,
                             int64_t* out_synthetic) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus = *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel model(corpus.dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(),
                                     fm::SimulatedFoundationModel::Options());
  ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.num_threads = num_threads;
  options.rejection_batch = rejection_batch;
  Chameleon system(&model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  EXPECT_TRUE(report.ok());
  *out_synthetic = corpus.dataset.NumSynthetic();
  return *report;
}

void ExpectReportsBitIdentical(const RepairReport& a, const RepairReport& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.distribution_passes, b.distribution_passes);
  EXPECT_EQ(a.quality_passes, b.quality_passes);
  EXPECT_EQ(a.estimated_p, b.estimated_p);
  EXPECT_EQ(a.fully_resolved, b.fully_resolved);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].target_values, b.records[i].target_values);
    EXPECT_EQ(a.records[i].embedding, b.records[i].embedding);
    EXPECT_EQ(a.records[i].decision_value, b.records[i].decision_value);
    EXPECT_EQ(a.records[i].quality_p_value, b.records[i].quality_p_value);
    EXPECT_EQ(a.records[i].arm, b.records[i].arm);
    EXPECT_EQ(a.records[i].accepted, b.records[i].accepted);
  }
}

TEST(ChameleonDeterminismTest, ParallelRunIsBitIdenticalToSerial) {
  // The determinism contract: for a fixed rejection_batch, the worker
  // count must not change a single bit of the run — candidates are
  // submitted serially and merged in submission order.
  int64_t serial_synthetic = 0;
  const RepairReport serial =
      RunSeededRepair(/*num_threads=*/1, /*rejection_batch=*/4,
                      &serial_synthetic);
  for (int threads : {2, 4}) {
    int64_t parallel_synthetic = 0;
    const RepairReport parallel =
        RunSeededRepair(threads, /*rejection_batch=*/4, &parallel_synthetic);
    ExpectReportsBitIdentical(serial, parallel);
    EXPECT_EQ(serial_synthetic, parallel_synthetic);
  }
}

TEST(ChameleonDeterminismTest, BatchOfOneIsTheLegacySerialLoop) {
  // rejection_batch = 1 must reproduce the pre-batching loop exactly,
  // at every thread count (no pool is even constructed).
  int64_t legacy_synthetic = 0;
  const RepairReport legacy =
      RunSeededRepair(/*num_threads=*/1, /*rejection_batch=*/1,
                      &legacy_synthetic);
  int64_t threaded_synthetic = 0;
  const RepairReport threaded =
      RunSeededRepair(/*num_threads=*/4, /*rejection_batch=*/1,
                      &threaded_synthetic);
  ExpectReportsBitIdentical(legacy, threaded);
  EXPECT_EQ(legacy_synthetic, threaded_synthetic);
  EXPECT_GT(legacy.accepted, 0);
}

TEST(ChameleonInstrumentationContractTest, MetricIdentitiesHoldAtEveryThreadCount) {
  // The instrumentation contract ties the obs registry to ground truth
  // the pipeline already exposes: the fm.queries counter must equal the
  // model's own query count, and every non-parked query must receive
  // exactly one accept/reject verdict. These identities must hold at
  // every thread count — instrumentation fires on the serial
  // submission/merge path, never inside workers.
  for (int threads : {1, 2, 8}) {
    embedding::SimulatedEmbedder embedder;
    fm::EvaluatorPool evaluators(2024);
    fm::Corpus corpus =
        *datasets::MakeFeret(&embedder, datasets::FeretOptions());
    fm::SimulatedFoundationModel model(corpus.dataset.schema(),
                                       datasets::FeretFaceStyleFn(),
                                       datasets::FeretScene(),
                                       fm::SimulatedFoundationModel::Options());
    obs::Observability observability;
    ChameleonOptions options;
    options.tau = 40;
    options.seed = 11;
    options.num_threads = threads;
    options.rejection_batch = 4;
    options.observability = &observability;
    Chameleon system(&model, &embedder, &evaluators, options);
    auto report = system.RepairMinLevelMups(&corpus);
    ASSERT_TRUE(report.ok());

    obs::Registry& registry = observability.registry;
    const int64_t fm_queries = registry.Counter("fm.queries")->value();
    const int64_t fm_parked = registry.Counter("fm.parked")->value();
    const int64_t accepted = registry.Counter("rejection.accepted")->value();
    const int64_t rejected = registry.Counter("rejection.rejected")->value();

    EXPECT_EQ(fm_queries, model.num_queries()) << threads << " threads";
    EXPECT_EQ(accepted + rejected, fm_queries - fm_parked)
        << threads << " threads";
    EXPECT_EQ(report->queries, fm_queries - fm_parked) << threads << " threads";
    EXPECT_EQ(report->accepted, accepted) << threads << " threads";
    EXPECT_EQ(fm_parked, 0) << "healthy model must park nothing";
    EXPECT_GT(accepted, 0);

    // The decision-value histogram sees exactly the evaluated candidates.
    EXPECT_EQ(
        registry.Histogram("rejection.decision_value", {})->count(),
        fm_queries - fm_parked)
        << threads << " threads";
  }
}

TEST_F(ChameleonFeretTest, IterativeRepairWorksDownTheLattice) {
  // §4's iterative scheme: each RepairMinLevelMups round resolves the
  // smallest-level MUPs; repeating drains the whole lattice.
  constexpr int64_t kTau = 25;
  ChameleonOptions options;
  options.tau = kTau;
  options.seed = 31;
  Chameleon system(&model_, &embedder_, &evaluators_, options);

  int previous_min_level = -1;
  for (int round = 0; round < 4; ++round) {
    auto report = system.RepairMinLevelMups(&corpus_);
    ASSERT_TRUE(report.ok());
    if (report->initial_mups.empty()) break;
    const int level = report->initial_mups[0].Level();
    EXPECT_GT(level, previous_min_level)
        << "each round must target a deeper (or done) level";
    previous_min_level = level;
    EXPECT_TRUE(report->fully_resolved);
  }
  EXPECT_TRUE(CurrentMups(kTau).empty())
      << "lattice should be fully covered after iterating";
}

}  // namespace
}  // namespace chameleon::core
