#include <cmath>
#include <functional>
#include <map>

#include "gtest/gtest.h"
#include "src/core/combination_selection.h"
#include "src/util/rng.h"

namespace chameleon::core {
namespace {

data::AttributeSchema MakeSchema() {
  data::AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute({"g", {"0", "1"}, false}).ok());
  EXPECT_TRUE(schema.AddAttribute({"r", {"0", "1", "2"}, false}).ok());
  EXPECT_TRUE(
      schema.AddAttribute({"a", {"0", "1", "2", "3"}, true}).ok());
  return schema;
}

coverage::Mup MakeMup(std::vector<int> cells, int64_t gap) {
  return coverage::Mup{data::Pattern(std::move(cells)), 0, gap};
}

constexpr int kX = data::Pattern::kUnspecified;

// Simulates fulfilling a plan and checks that every target-level MUP's
// gap is satisfied.
bool PlanSatisfies(const CombinationPlan& plan,
                   std::vector<coverage::Mup> mups) {
  for (const auto& entry : plan) {
    for (auto& m : mups) {
      if (m.pattern.Matches(entry.values)) m.gap -= entry.count;
    }
  }
  for (const auto& m : mups) {
    if (m.gap > 0) return false;
  }
  return true;
}

TEST(PlanTest, TotalSums) {
  CombinationPlan plan;
  plan.push_back({{0, 0, 0}, 3});
  plan.push_back({{1, 2, 3}, 4});
  EXPECT_EQ(PlanTotal(plan), 7);
  EXPECT_EQ(PlanTotal({}), 0);
}

TEST(GreedyTest, SingleMupCostsExactlyItsGap) {
  const auto schema = MakeSchema();
  const auto plan =
      GreedySelect(schema, {MakeMup({kX, 1, kX}, 5)});
  EXPECT_EQ(PlanTotal(plan), 5);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].values[1], 1);
}

TEST(GreedyTest, MergesCompatibleMups) {
  // Two MUPs on disjoint attributes: one combination covers both, so the
  // cost is max(gap) + residue, not the sum.
  const auto schema = MakeSchema();
  const std::vector<coverage::Mup> mups = {MakeMup({kX, 1, kX}, 10),
                                           MakeMup({kX, kX, 2}, 4)};
  const auto plan = GreedySelect(schema, mups);
  EXPECT_EQ(PlanTotal(plan), 10);  // 4 shared + 6 extra for the first
  EXPECT_TRUE(PlanSatisfies(plan, mups));
}

TEST(GreedyTest, ConflictingMupsCostSum) {
  // Same attribute, different values: no combination matches both.
  const auto schema = MakeSchema();
  const std::vector<coverage::Mup> mups = {MakeMup({kX, 0, kX}, 3),
                                           MakeMup({kX, 1, kX}, 4)};
  const auto plan = GreedySelect(schema, mups);
  EXPECT_EQ(PlanTotal(plan), 7);
  EXPECT_TRUE(PlanSatisfies(plan, mups));
}

TEST(GreedyTest, IgnoresNonPositiveGaps) {
  const auto schema = MakeSchema();
  const auto plan = GreedySelect(
      schema, {MakeMup({kX, 0, kX}, 0), MakeMup({0, kX, kX}, -2)});
  EXPECT_TRUE(plan.empty());
}

TEST(GreedyTest, PlanCombinationsMatchSomeMup) {
  const auto schema = MakeSchema();
  const std::vector<coverage::Mup> mups = {
      MakeMup({0, 1, kX}, 7), MakeMup({kX, 1, 3}, 2), MakeMup({1, kX, 0}, 5)};
  const auto plan = GreedySelect(schema, mups);
  EXPECT_TRUE(PlanSatisfies(plan, mups));
  for (const auto& entry : plan) {
    EXPECT_TRUE(schema.IsValidCombination(entry.values));
    bool matches_any = false;
    for (const auto& m : mups) matches_any |= m.pattern.Matches(entry.values);
    EXPECT_TRUE(matches_any);
  }
}

TEST(RandomTest, ResolvesTargetsAndCountsEachDraw) {
  const auto schema = MakeSchema();
  const std::vector<coverage::Mup> mups = {MakeMup({kX, 1, kX}, 3)};
  util::Rng rng(5);
  const auto plan = RandomSelect(schema, mups, 1, &rng);
  EXPECT_TRUE(PlanSatisfies(plan, mups));
  // Random draws waste queries on non-matching combinations: with the
  // target present in 1/3 of combinations, cost must be >= gap.
  EXPECT_GE(PlanTotal(plan), 3);
}

TEST(RandomTest, IgnoresOffLevelMups) {
  const auto schema = MakeSchema();
  // Only the level-2 MUP matters when target_level is 2.
  const std::vector<coverage::Mup> mups = {MakeMup({kX, 1, kX}, 1000),
                                           MakeMup({0, 2, kX}, 1)};
  util::Rng rng(6);
  const auto plan = RandomSelect(schema, mups, 2, &rng);
  // Resolving the single level-2 MUP should cost far less than 1000.
  EXPECT_LT(PlanTotal(plan), 500);
}

TEST(MinGapTest, SatisfiesTargetsEventually) {
  const auto schema = MakeSchema();
  const std::vector<coverage::Mup> mups = {MakeMup({kX, 1, kX}, 6),
                                           MakeMup({kX, kX, 2}, 3)};
  const auto plan = MinGapSelect(schema, mups, 1);
  std::vector<coverage::Mup> targets;
  for (const auto& m : mups) {
    if (m.Level() == 1) targets.push_back(m);
  }
  EXPECT_TRUE(PlanSatisfies(plan, targets));
}

TEST(MinGapTest, WastesQueriesOnSmallGapIrrelevantMups) {
  // The Figure 6 pathology: many small-gap level-2 MUPs are satisfied
  // before the level-1 target, so Min-Gap pays for all of them.
  const auto schema = MakeSchema();
  std::vector<coverage::Mup> mups;
  mups.push_back(MakeMup({kX, 1, kX}, 100));  // the level-1 target
  // Small-gap level-2 MUPs on other values.
  for (int a = 0; a < 4; ++a) {
    mups.push_back(MakeMup({0, 2, a}, 2));
    mups.push_back(MakeMup({1, 0, a}, 2));
  }
  const auto min_gap_plan = MinGapSelect(schema, mups, 1);
  std::vector<coverage::Mup> targets = {mups[0]};
  const auto greedy_plan = GreedySelect(schema, targets);
  EXPECT_TRUE(PlanSatisfies(min_gap_plan, targets));
  // Greedy pays exactly 100; Min-Gap pays for the irrelevant MUPs too.
  EXPECT_EQ(PlanTotal(greedy_plan), 100);
  EXPECT_GT(PlanTotal(min_gap_plan), PlanTotal(greedy_plan));
}

TEST(AlgorithmNamesTest, AreStable) {
  EXPECT_STREQ(SelectionAlgorithmName(SelectionAlgorithm::kGreedy), "Greedy");
  EXPECT_STREQ(SelectionAlgorithmName(SelectionAlgorithm::kRandom), "Random");
  EXPECT_STREQ(SelectionAlgorithmName(SelectionAlgorithm::kMinGap),
               "Min-Gap");
}

// Property sweep: on random MUP sets, every algorithm satisfies the
// target gaps, and Greedy never costs more than Min-Gap or Random.
class SelectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectionPropertyTest, AllSatisfyAndGreedyIsCheapest) {
  const uint64_t seed = GetParam();
  const auto schema = MakeSchema();
  util::Rng rng(seed);

  // Random level-2 MUPs (distinct patterns).
  std::map<std::vector<int>, int64_t> unique;
  const int num_mups = 2 + static_cast<int>(rng.NextBounded(6));
  while (static_cast<int>(unique.size()) < num_mups) {
    std::vector<int> cells(3, kX);
    const int first = static_cast<int>(rng.NextBounded(3));
    const int second = (first + 1) % 3;
    cells[first] = static_cast<int>(
        rng.NextBounded(schema.attribute(first).cardinality()));
    cells[second] = static_cast<int>(
        rng.NextBounded(schema.attribute(second).cardinality()));
    unique.emplace(cells, rng.NextInt(1, 40));
  }
  std::vector<coverage::Mup> mups;
  for (const auto& [cells, gap] : unique) {
    mups.push_back(MakeMup(cells, gap));
  }

  const auto greedy = GreedySelect(schema, mups);
  const auto min_gap = MinGapSelect(schema, mups, 2);
  const auto random = RandomSelect(schema, mups, 2, &rng);
  EXPECT_TRUE(PlanSatisfies(greedy, mups));
  EXPECT_TRUE(PlanSatisfies(min_gap, mups));
  EXPECT_TRUE(PlanSatisfies(random, mups));
  EXPECT_LE(PlanTotal(greedy), PlanTotal(min_gap));
  EXPECT_LE(PlanTotal(greedy), PlanTotal(random));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest,
                         ::testing::Range(1, 16));


// Theorem 1 check: on small instances, Greedy's total is within
// H(eta) = ln(eta)+1 of the brute-force optimum (it is usually equal).
namespace {

// Brute force: minimize total sigma over all assignments, searching over
// per-combination counts bounded by the max gap. Exponential — only for
// tiny instances.
int64_t BruteForceOptimal(const data::AttributeSchema& schema,
                          const std::vector<coverage::Mup>& mups) {
  // Candidate combinations: all of them (tiny schema).
  std::vector<std::vector<int>> combos;
  for (int64_t c = 0; c < schema.NumCombinations(); ++c) {
    combos.push_back(schema.CombinationFromIndex(c));
  }
  // Depth-first over combos, assigning each a count 0..max_gap, pruning
  // on the running best.
  int64_t best = 0;
  for (const auto& m : mups) best += m.gap;  // satisfy each individually

  std::vector<int64_t> gaps;
  for (const auto& m : mups) gaps.push_back(m.gap);

  std::function<void(size_t, int64_t, std::vector<int64_t>)> dfs =
      [&](size_t index, int64_t spent, std::vector<int64_t> remaining) {
        if (spent >= best) return;  // prune
        bool done = true;
        int64_t max_remaining = 0;
        for (int64_t g : remaining) {
          if (g > 0) done = false;
          max_remaining = std::max(max_remaining, g);
        }
        if (done) {
          best = spent;
          return;
        }
        if (index >= combos.size()) return;
        for (int64_t count = max_remaining; count >= 0; --count) {
          std::vector<int64_t> next = remaining;
          for (size_t m = 0; m < mups.size(); ++m) {
            if (mups[m].pattern.Matches(combos[index])) next[m] -= count;
          }
          dfs(index + 1, spent + count, std::move(next));
        }
      };
  dfs(0, 0, gaps);
  return best;
}

}  // namespace

class GreedyOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyOptimalityTest, WithinLogFactorOfOptimal) {
  // Tiny schema so brute force is feasible: 2 x 2 x 2.
  data::AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute({"a", {"0", "1"}, false}).ok());
  ASSERT_TRUE(schema.AddAttribute({"b", {"0", "1"}, false}).ok());
  ASSERT_TRUE(schema.AddAttribute({"c", {"0", "1"}, false}).ok());

  util::Rng rng(GetParam());
  std::map<std::vector<int>, int64_t> unique;
  const int num_mups = 2 + static_cast<int>(rng.NextBounded(3));
  while (static_cast<int>(unique.size()) < num_mups) {
    std::vector<int> cells(3, kX);
    const int attr = static_cast<int>(rng.NextBounded(3));
    cells[attr] = static_cast<int>(rng.NextBounded(2));
    if (rng.NextBernoulli(0.6)) {
      const int attr2 = (attr + 1) % 3;
      cells[attr2] = static_cast<int>(rng.NextBounded(2));
    }
    unique.emplace(cells, rng.NextInt(1, 6));
  }
  std::vector<coverage::Mup> mups;
  double eta = 0.0;
  for (const auto& [cells, gap] : unique) {
    mups.push_back(MakeMup(cells, gap));
    eta += static_cast<double>(gap);
  }

  const int64_t greedy = PlanTotal(GreedySelect(schema, mups));
  const int64_t optimal = BruteForceOptimal(schema, mups);
  EXPECT_GE(greedy, optimal);
  const double bound = (std::log(eta) + 1.0) * static_cast<double>(optimal);
  EXPECT_LE(static_cast<double>(greedy), bound + 1e-9)
      << "greedy " << greedy << " vs optimal " << optimal;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOptimalityTest,
                         ::testing::Range(100, 120));

}  // namespace
}  // namespace chameleon::core
