#include <cmath>

#include "gtest/gtest.h"
#include "src/stats/special_functions.h"
#include "src/stats/summary.h"
#include "src/stats/t_test.h"

namespace chameleon::stats {
namespace {

TEST(SpecialFunctionsTest, LogGammaKnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-9);
}

TEST(SpecialFunctionsTest, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(SpecialFunctionsTest, IncompleteBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a)
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 1.5, x),
                1.0 - RegularizedIncompleteBeta(1.5, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(SpecialFunctionsTest, IncompleteBetaUniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.6, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, x), x, 1e-10);
  }
}

TEST(SpecialFunctionsTest, StudentTCdfReferenceValues) {
  // Standard t-table: P(T_4 <= 2.132) ~= 0.95; P(T_9 <= 1.833) ~= 0.95.
  EXPECT_NEAR(StudentTCdf(2.132, 4), 0.95, 2e-3);
  EXPECT_NEAR(StudentTCdf(1.833, 9), 0.95, 2e-3);
  EXPECT_NEAR(StudentTCdf(0.0, 7), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(-2.132, 4), 0.05, 2e-3);
}

TEST(SpecialFunctionsTest, StudentTApproachesNormalAtHighDf) {
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), NormalCdf(1.96), 1e-4);
}

TEST(SpecialFunctionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.6449), 0.05, 1e-4);
}

TEST(SpecialFunctionsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.01, 0.05, 0.3, 0.5, 0.77, 0.99}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8);
  }
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
}

TEST(SpecialFunctionsTest, GgdRatioMonotoneDecreasing) {
  double prev = GeneralizedGaussianRatio(0.2);
  for (double alpha : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double current = GeneralizedGaussianRatio(alpha);
    EXPECT_LT(current, prev);
    prev = current;
  }
  // Gaussian case: r(2) = pi/2.
  EXPECT_NEAR(GeneralizedGaussianRatio(2.0), M_PI / 2.0, 1e-9);
}

TEST(RunningStatsTest, MatchesBatchFormulas) {
  RunningStats stats;
  const std::vector<double> values = {1, 4, 4, 9, -2, 3.5};
  for (double v : values) stats.Observe(v);
  EXPECT_EQ(stats.count(), 6);
  EXPECT_NEAR(stats.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(stats.variance(), Variance(values), 1e-12);
  EXPECT_NEAR(stats.stddev(), StdDev(values), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2);
  EXPECT_DOUBLE_EQ(stats.max(), 9);
}

TEST(SummaryTest, DegenerateInputs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({5.0}), 0.0);
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(SummaryTest, QuantileInterpolates) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
}

TEST(JaccardTest, StandardCases) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  // Duplicates are set-collapsed.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(TTestTest, RejectsClearlyLowMean) {
  // 0/10 positives against p = 0.86: overwhelming rejection.
  const std::vector<int> labels(10, 0);
  const auto result = OneSampleTTestLower(labels, 0.86);
  EXPECT_TRUE(result.Rejects(0.1));
  EXPECT_TRUE(result.Rejects(0.01));
}

TEST(TTestTest, AcceptsMatchingMean) {
  // Alternating labels, mean 0.5, against mu0 = 0.5.
  const std::vector<int> labels = {1, 0, 1, 0, 1, 0};
  const auto result = OneSampleTTestLower(labels, 0.5);
  EXPECT_FALSE(result.Rejects(0.1));
  EXPECT_NEAR(result.p_value, 0.5, 0.05);
}

TEST(TTestTest, UnanimousPositiveNeverRejected) {
  const std::vector<int> labels(5, 1);
  const auto result = OneSampleTTestLower(labels, 0.86);
  EXPECT_FALSE(result.Rejects(0.4));
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(TTestTest, UnanimousNegativeAlwaysRejected) {
  const std::vector<int> labels(5, 0);
  const auto result = OneSampleTTestLower(labels, 0.86);
  EXPECT_TRUE(result.Rejects(0.01));
  EXPECT_DOUBLE_EQ(result.p_value, 0.0);
}

TEST(TTestTest, TooFewSamplesNeverRejects) {
  EXPECT_FALSE(OneSampleTTestLower(std::vector<int>{0}, 0.9).Rejects(0.4));
  EXPECT_FALSE(OneSampleTTestLower(std::vector<int>{}, 0.9).Rejects(0.4));
}

TEST(TTestTest, DegenerateSampleSizesReportNoEvidence) {
  const auto empty = OneSampleTTestLower(std::vector<double>{}, 0.5);
  EXPECT_DOUBLE_EQ(empty.p_value, 1.0);
  EXPECT_EQ(empty.degrees_of_freedom, 0);
  EXPECT_DOUBLE_EQ(empty.t_statistic, 0.0);

  // A single sample has no variance estimate: p = 1 regardless of how
  // far the observation sits from mu0, on either side.
  for (double sample : {0.0, 0.5, 1.0}) {
    const auto single =
        OneSampleTTestLower(std::vector<double>{sample}, 0.5);
    EXPECT_DOUBLE_EQ(single.p_value, 1.0) << "sample=" << sample;
    EXPECT_EQ(single.degrees_of_freedom, 0);
    EXPECT_DOUBLE_EQ(single.sample_mean, sample);
  }
}

TEST(TTestTest, ZeroVarianceBranchesByVerdictPosition) {
  // Unanimous raters below mu0: certain rejection with a -inf-like t.
  const auto below = OneSampleTTestLower(std::vector<double>(5, 0.4), 0.86);
  EXPECT_DOUBLE_EQ(below.p_value, 0.0);
  EXPECT_LT(below.t_statistic, -1e8);
  EXPECT_EQ(below.degrees_of_freedom, 4);
  EXPECT_TRUE(below.Rejects(0.01));

  // Unanimous raters exactly at mu0: no evidence against the null.
  // (0.75 is exactly representable, so the sample mean equals mu0
  // bit-for-bit and exercises the == branch.)
  const auto at = OneSampleTTestLower(std::vector<double>(5, 0.75), 0.75);
  EXPECT_DOUBLE_EQ(at.p_value, 1.0);
  EXPECT_DOUBLE_EQ(at.t_statistic, 0.0);
  EXPECT_FALSE(at.Rejects(0.4));

  // Unanimous raters above mu0: the lower-tail test can never reject.
  const auto above = OneSampleTTestLower(std::vector<double>(5, 0.95), 0.86);
  EXPECT_DOUBLE_EQ(above.p_value, 1.0);
  EXPECT_GT(above.t_statistic, 1e8);
  EXPECT_FALSE(above.Rejects(0.4));
}

TEST(TTestTest, PaperCalibration) {
  // §6.4.1: with N = 5 evaluations and p = 0.86, alpha = 0.1 behaves
  // like a majority vote (3/5 passes) while alpha = 0.4 approximates
  // unanimity (4/5 fails).
  const double p = 0.86;
  const auto four_of_five =
      OneSampleTTestLower(std::vector<int>{1, 1, 1, 1, 0}, p);
  EXPECT_FALSE(four_of_five.Rejects(0.1));
  EXPECT_TRUE(four_of_five.Rejects(0.4));

  const auto three_of_five =
      OneSampleTTestLower(std::vector<int>{1, 1, 1, 0, 0}, p);
  EXPECT_FALSE(three_of_five.Rejects(0.1));

  const auto two_of_five =
      OneSampleTTestLower(std::vector<int>{1, 1, 0, 0, 0}, p);
  EXPECT_TRUE(two_of_five.Rejects(0.1));
}

// Property: p-value is monotone in the sample mean (for fixed N).
class TTestMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(TTestMonotonicityTest, MorePositivesHigherPValue) {
  const int n = GetParam();
  double previous = -1.0;
  for (int positives = 0; positives <= n; ++positives) {
    std::vector<int> labels(n, 0);
    for (int i = 0; i < positives; ++i) labels[i] = 1;
    const double p_value = OneSampleTTestLower(labels, 0.86).p_value;
    EXPECT_GE(p_value, previous) << positives << " of " << n;
    previous = p_value;
  }
}

INSTANTIATE_TEST_SUITE_P(BudgetSizes, TTestMonotonicityTest,
                         ::testing::Values(3, 5, 7, 10, 20));

}  // namespace
}  // namespace chameleon::stats
