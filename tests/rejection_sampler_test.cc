#include "gtest/gtest.h"
#include "src/core/rejection_sampler.h"
#include "src/util/rng.h"

namespace chameleon::core {
namespace {

std::vector<std::vector<double>> MakeCloud(int n, double mean, double stddev,
                                           uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(8));
  for (auto& p : points) {
    for (double& v : p) v = rng.NextGaussian(mean, stddev);
  }
  return points;
}

class RejectionSamplerTest : public ::testing::Test {
 protected:
  RejectionSamplerTest() : evaluators_(fm::EvaluatorPool::Options(), 42) {}

  util::Result<RejectionSampler> MakeSampler(double alpha = 0.1) {
    RejectionSamplerOptions options;
    options.quality_alpha = alpha;
    options.evaluations_per_tuple = 5;
    options.svm.nu = 0.3;
    return RejectionSampler::Train(MakeCloud(300, 0.0, 1.0, 1), &evaluators_,
                                   0.86, options);
  }

  fm::EvaluatorPool evaluators_;
};

TEST_F(RejectionSamplerTest, TrainValidatesArguments) {
  RejectionSamplerOptions options;
  EXPECT_FALSE(RejectionSampler::Train(MakeCloud(10, 0, 1, 1), nullptr, 0.86,
                                       options)
                   .ok());
  EXPECT_FALSE(RejectionSampler::Train(MakeCloud(10, 0, 1, 1), &evaluators_,
                                       0.0, options)
                   .ok());
  EXPECT_FALSE(RejectionSampler::Train(MakeCloud(10, 0, 1, 1), &evaluators_,
                                       1.5, options)
                   .ok());
  EXPECT_FALSE(
      RejectionSampler::Train({}, &evaluators_, 0.86, options).ok());
}

TEST_F(RejectionSamplerTest, DistributionTestSeparatesInOut) {
  auto sampler = MakeSampler();
  ASSERT_TRUE(sampler.ok());
  EXPECT_TRUE(sampler->DistributionTest(std::vector<double>(8, 0.0)));
  EXPECT_FALSE(sampler->DistributionTest(std::vector<double>(8, 20.0)));
}

TEST_F(RejectionSamplerTest, QualityTestPassesHighRealism) {
  auto sampler = MakeSampler();
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(5);
  int passes = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    passes += !sampler->QualityTest(1.1, &rng).Rejects(0.1);
  }
  EXPECT_GT(passes, trials * 0.9);
}

TEST_F(RejectionSamplerTest, QualityTestRejectsLowRealism) {
  auto sampler = MakeSampler();
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(6);
  int passes = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    passes += !sampler->QualityTest(0.35, &rng).Rejects(0.1);
  }
  EXPECT_LT(passes, trials * 0.2);
}

TEST_F(RejectionSamplerTest, StricterAlphaAcceptsLess) {
  auto sampler = MakeSampler();
  ASSERT_TRUE(sampler.ok());
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  int lenient = 0;
  int strict = 0;
  for (int i = 0; i < 300; ++i) {
    lenient += !sampler->QualityTest(0.92, &rng_a).Rejects(0.1);
    strict += !sampler->QualityTest(0.92, &rng_b).Rejects(0.4);
  }
  EXPECT_GT(lenient, strict);
}

TEST_F(RejectionSamplerTest, EvaluateCombinesBothTests) {
  auto sampler = MakeSampler();
  ASSERT_TRUE(sampler.ok());
  util::Rng rng(8);

  // In distribution + high realism: passes.
  const RejectionOutcome good =
      sampler->Evaluate(std::vector<double>(8, 0.0), 1.2, &rng);
  EXPECT_TRUE(good.distribution_pass);
  EXPECT_GE(good.decision_value, 0.0);

  // Far out of distribution: distribution must fail regardless of
  // realism, and Passed() requires both.
  const RejectionOutcome drifted =
      sampler->Evaluate(std::vector<double>(8, 25.0), 1.2, &rng);
  EXPECT_FALSE(drifted.distribution_pass);
  EXPECT_FALSE(drifted.Passed());

  // Terrible realism: quality fails even in-distribution.
  int quality_passes = 0;
  for (int i = 0; i < 50; ++i) {
    quality_passes +=
        sampler->Evaluate(std::vector<double>(8, 0.0), 0.2, &rng)
            .quality_pass;
  }
  EXPECT_LT(quality_passes, 10);
}

TEST_F(RejectionSamplerTest, EvaluateAgreesWithDistributionTestUnderNonZeroThreshold) {
  // Regression: Evaluate used to hard-code `decision_value >= 0.0` while
  // DistributionTest delegated to OneClassSvm::Accepts, so the two
  // disagreed whenever the SVM's acceptance rule was anything but a zero
  // threshold. Both must route through the SVM.
  RejectionSamplerOptions options;
  options.svm.nu = 0.3;
  options.svm.decision_threshold = 1.0;  // stricter than any f(x)
  auto sampler = RejectionSampler::Train(MakeCloud(300, 0.0, 1.0, 1),
                                         &evaluators_, 0.86, options);
  ASSERT_TRUE(sampler.ok());

  util::Rng rng(77);
  const std::vector<double> centroid(8, 0.0);
  // The centroid scores f >= 0 but below the 1.0 threshold: the old
  // duplicated logic reported distribution_pass = true here.
  const RejectionOutcome outcome = sampler->Evaluate(centroid, 1.0, &rng);
  EXPECT_GE(outcome.decision_value, 0.0);
  EXPECT_LT(outcome.decision_value, 1.0);
  EXPECT_FALSE(outcome.distribution_pass);
  EXPECT_EQ(outcome.distribution_pass, sampler->DistributionTest(centroid));
  EXPECT_FALSE(outcome.Passed());

  // Property: the two code paths agree on arbitrary embeddings.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> e(8);
    for (double& v : e) v = rng.NextGaussian(0.0, 3.0);
    EXPECT_EQ(sampler->Evaluate(e, 1.0, &rng).distribution_pass,
              sampler->DistributionTest(e));
  }
}

TEST_F(RejectionSamplerTest, EvaluateWithLabelsMatchesEvaluate) {
  auto sampler = MakeSampler();
  ASSERT_TRUE(sampler.ok());
  const std::vector<double> embedding(8, 0.3);
  for (double realism : {0.3, 0.8, 1.1}) {
    util::Rng rng_a(41);
    util::Rng rng_b(41);
    const RejectionOutcome direct =
        sampler->Evaluate(embedding, realism, &rng_a);
    const std::vector<int> labels =
        sampler->DrawQualityLabels(realism, &rng_b);
    const RejectionOutcome split =
        sampler->EvaluateWithLabels(embedding, labels);
    EXPECT_EQ(direct.distribution_pass, split.distribution_pass);
    EXPECT_EQ(direct.quality_pass, split.quality_pass);
    EXPECT_EQ(direct.decision_value, split.decision_value);
    EXPECT_EQ(direct.quality_p_value, split.quality_p_value);
    // Both consumed the same rng draws.
    EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
  }
}

TEST_F(RejectionSamplerTest, AccessorsExposeConfiguration) {
  auto sampler = MakeSampler(0.25);
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ(sampler->real_label_rate(), 0.86);
  EXPECT_DOUBLE_EQ(sampler->options().quality_alpha, 0.25);
  EXPECT_GT(sampler->svm_model().num_support_vectors(), 0);
}

}  // namespace
}  // namespace chameleon::core
