#include <set>

#include "gtest/gtest.h"
#include "src/core/guide_selection.h"
#include "src/util/rng.h"

namespace chameleon::core {
namespace {

data::AttributeSchema MakeSchema() {
  data::AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute({"g", {"0", "1"}, false}).ok());
  EXPECT_TRUE(schema.AddAttribute({"r", {"0", "1", "2"}, false}).ok());
  EXPECT_TRUE(
      schema.AddAttribute({"a", {"0", "1", "2", "3"}, true}).ok());
  return schema;
}

data::Dataset MakeDataset(const data::AttributeSchema& schema) {
  data::Dataset dataset(schema);
  auto add = [&](std::vector<int> values, int count) {
    for (int i = 0; i < count; ++i) {
      data::Tuple t;
      t.values = values;
      EXPECT_TRUE(dataset.Add(std::move(t)).ok());
    }
  };
  add({0, 0, 0}, 10);
  add({0, 1, 0}, 6);
  add({1, 0, 0}, 4);
  add({0, 0, 1}, 8);
  add({0, 0, 3}, 5);
  return dataset;
}

TEST(NoGuideTest, ReturnsNoGuide) {
  const auto schema = MakeSchema();
  const auto dataset = MakeDataset(schema);
  NoGuideSelector selector;
  util::Rng rng(1);
  auto choice = selector.Select(dataset, {0, 0, 0}, &rng);
  ASSERT_TRUE(choice.ok());
  EXPECT_FALSE(choice->has_guide);
}

TEST(RandomGuideTest, PicksExistingTupleIgnoringTarget) {
  const auto schema = MakeSchema();
  const auto dataset = MakeDataset(schema);
  RandomGuideSelector selector;
  util::Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    auto choice = selector.Select(dataset, {1, 2, 3}, &rng);
    ASSERT_TRUE(choice.ok());
    ASSERT_TRUE(choice->has_guide);
    ASSERT_LT(choice->tuple_index, dataset.size());
    EXPECT_EQ(choice->guide_values, dataset.tuple(choice->tuple_index).values);
    seen.insert(choice->tuple_index);
  }
  EXPECT_GT(seen.size(), 20u);  // spreads over the data set
}

TEST(RandomGuideTest, FailsOnEmptyDataset) {
  const auto schema = MakeSchema();
  data::Dataset empty(schema);
  RandomGuideSelector selector;
  util::Rng rng(3);
  EXPECT_FALSE(selector.Select(empty, {0, 0, 0}, &rng).ok());
}

TEST(SimilarTupleTest, PoolContainsOnlySimilarSiblings) {
  const auto schema = MakeSchema();
  SimilarTupleSelector selector(schema);
  const auto pool = selector.SimilarPool({0, 1, 2});
  // g: 1 sibling; r: 2 siblings; a (ordinal, value 2): values 1 and 3.
  EXPECT_EQ(pool.size(), 1u + 2u + 2u);
  for (const auto& sibling : pool) {
    int diffs = 0;
    for (int i = 0; i < 3; ++i) diffs += sibling[i] != std::vector<int>{0, 1, 2}[i];
    EXPECT_EQ(diffs, 1);
  }
}

TEST(SimilarTupleTest, OrdinalEndpointsClampThePool) {
  const auto schema = MakeSchema();
  SimilarTupleSelector selector(schema);
  const auto pool = selector.SimilarPool({0, 0, 0});
  // a = 0 has a single ordinal neighbour (1); a distance-2 sibling like
  // a=2 is excluded by the similarity rule.
  int ordinal_neighbors = 0;
  for (const auto& sibling : pool) {
    if (sibling[2] != 0) {
      EXPECT_EQ(sibling[2], 1);
      ++ordinal_neighbors;
    }
  }
  EXPECT_EQ(ordinal_neighbors, 1);
}

TEST(SimilarTupleTest, SelectsFromPopulatedSiblings) {
  const auto schema = MakeSchema();
  const auto dataset = MakeDataset(schema);
  SimilarTupleSelector selector(schema);
  util::Rng rng(4);
  // Target {0,0,0}: populated similar siblings are {0,1,0}, {1,0,0},
  // {0,0,1} (a=1 at ordinal distance 1). {0,0,3} is NOT similar.
  for (int i = 0; i < 100; ++i) {
    auto choice = selector.Select(dataset, {0, 0, 0}, &rng);
    ASSERT_TRUE(choice.ok());
    ASSERT_TRUE(choice->has_guide);
    const auto& v = choice->guide_values;
    int diffs = 0;
    for (int k = 0; k < 3; ++k) diffs += v[k] != 0;
    EXPECT_EQ(diffs, 1) << "guide must be a sibling";
    EXPECT_NE(v, (std::vector<int>{0, 0, 3}));
  }
}

TEST(SimilarTupleTest, WeightsBySiblingPopulation) {
  const auto schema = MakeSchema();
  const auto dataset = MakeDataset(schema);
  SimilarTupleSelector selector(schema);
  util::Rng rng(5);
  int from_biggest = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    auto choice = selector.Select(dataset, {0, 0, 0}, &rng);
    ASSERT_TRUE(choice.ok());
    // {0,0,1} has 8 of the 18 populated similar tuples.
    if (choice->guide_values == std::vector<int>{0, 0, 1}) ++from_biggest;
  }
  EXPECT_NEAR(static_cast<double>(from_biggest) / trials, 8.0 / 18.0, 0.05);
}

TEST(SimilarTupleTest, FallsBackToRandomWhenPoolEmpty) {
  const auto schema = MakeSchema();
  data::Dataset dataset(schema);
  data::Tuple t;
  t.values = {1, 2, 3};  // far from the target's sibling set
  ASSERT_TRUE(dataset.Add(t).ok());
  SimilarTupleSelector selector(schema);
  util::Rng rng(6);
  auto choice = selector.Select(dataset, {0, 0, 0}, &rng);
  ASSERT_TRUE(choice.ok());
  EXPECT_TRUE(choice->has_guide);
  EXPECT_EQ(choice->guide_values, (std::vector<int>{1, 2, 3}));
}

TEST(LinUcbSelectorTest, GuideDiffersInExactlyThePulledArm) {
  const auto schema = MakeSchema();
  const auto dataset = MakeDataset(schema);
  LinUcbSelector selector(schema, 0.5);
  util::Rng rng(7);
  const std::vector<int> target = {0, 0, 0};
  for (int i = 0; i < 50; ++i) {
    auto choice = selector.Select(dataset, target, &rng);
    ASSERT_TRUE(choice.ok());
    ASSERT_TRUE(choice->has_guide);
    if (choice->arm < 0) continue;  // random fallback
    for (int k = 0; k < 3; ++k) {
      if (k == choice->arm) {
        EXPECT_NE(choice->guide_values[k], target[k]);
        if (schema.attribute(k).ordinal) {
          EXPECT_LE(std::abs(choice->guide_values[k] - target[k]), 1);
        }
      } else {
        EXPECT_EQ(choice->guide_values[k], target[k]);
      }
    }
    selector.ReportReward(target, *choice, i % 2 == 0);
  }
}

TEST(LinUcbSelectorTest, LearnsTheRewardingArm) {
  const auto schema = MakeSchema();
  const auto dataset = MakeDataset(schema);
  LinUcbSelector selector(schema, 0.3);
  util::Rng rng(8);
  // Target {1,1,0}: arm 0 has populated sibling {0,1,0}, arm 1 has
  // {1,0,0}; arm 2 has none. Only arm 0 is rewarded.
  const std::vector<int> target = {1, 1, 0};
  // Reward only pulls of arm 0 (the gender attribute).
  for (int i = 0; i < 120; ++i) {
    auto choice = selector.Select(dataset, target, &rng);
    ASSERT_TRUE(choice.ok());
    if (choice->arm < 0) continue;
    selector.ReportReward(target, *choice, choice->arm == 0);
  }
  EXPECT_GT(selector.bandit().pull_count(0), 40);
}

TEST(FactoryTest, BuildsEveryStrategy) {
  const auto schema = MakeSchema();
  for (GuideStrategy strategy :
       {GuideStrategy::kNoGuide, GuideStrategy::kRandomGuide,
        GuideStrategy::kSimilarTuple, GuideStrategy::kLinUcb}) {
    auto selector = MakeGuideSelector(strategy, schema, 0.5);
    ASSERT_NE(selector, nullptr);
    EXPECT_STREQ(selector->name(), GuideStrategyName(strategy));
  }
}

}  // namespace
}  // namespace chameleon::core
