#include <cmath>

#include "gtest/gtest.h"
#include "src/image/face_renderer.h"
#include "src/image/filter.h"
#include "src/iqa/brisque.h"
#include "src/iqa/ggd_fit.h"
#include "src/iqa/mscn.h"
#include "src/iqa/nima.h"
#include "src/iqa/niqe.h"
#include "src/util/rng.h"

namespace chameleon::iqa {
namespace {

image::Image MakeFace(uint64_t seed, double artifacts = 0.0) {
  util::Rng rng(seed);
  const image::FaceStyle style =
      image::MakeFaceStyle(static_cast<int>(seed % 5), 5, seed % 2 == 0,
                           0.4, &rng);
  image::SceneStyle scene;
  image::RenderOptions options;
  options.size = 64;
  options.artifact_level = artifacts;
  return image::RenderFace(style, scene, options, &rng);
}

std::vector<image::Image> MakeCorpus(int n, uint64_t seed) {
  std::vector<image::Image> corpus;
  for (int i = 0; i < n; ++i) corpus.push_back(MakeFace(seed + i));
  return corpus;
}

TEST(MscnTest, CoefficientsAreRoughlyCentered) {
  const Field mscn = ComputeMscn(MakeFace(1).ToGrayscale());
  double sum = 0.0;
  for (double v : mscn.values) sum += v;
  const double mean = sum / mscn.values.size();
  EXPECT_NEAR(mean, 0.0, 0.15);
}

TEST(MscnTest, FlatImageGivesZeroCoefficients) {
  const image::Image flat(32, 32, 1, 128);
  const Field mscn = ComputeMscn(flat);
  for (double v : mscn.values) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(MscnTest, PairwiseProductsShapes) {
  Field field{4, 4, std::vector<double>(16, 1.0)};
  EXPECT_EQ(PairwiseProducts(field, Orientation::kHorizontal).size(), 12u);
  EXPECT_EQ(PairwiseProducts(field, Orientation::kVertical).size(), 12u);
  EXPECT_EQ(PairwiseProducts(field, Orientation::kDiagonal).size(), 9u);
  EXPECT_EQ(PairwiseProducts(field, Orientation::kAntiDiagonal).size(), 9u);
}

TEST(GgdFitTest, RecoversGaussianShape) {
  util::Rng rng(3);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.NextGaussian(0, 2.0);
  const GgdParams params = FitGgd(samples);
  EXPECT_NEAR(params.alpha, 2.0, 0.25);
  EXPECT_NEAR(params.sigma, 2.0, 0.1);
}

TEST(GgdFitTest, RecoversLaplacianShape) {
  // Laplace(b): difference of two exponentials.
  util::Rng rng(4);
  std::vector<double> samples(20000);
  for (double& s : samples) {
    const double u1 = -std::log(1.0 - rng.NextDouble());
    const double u2 = -std::log(1.0 - rng.NextDouble());
    s = u1 - u2;
  }
  const GgdParams params = FitGgd(samples);
  EXPECT_NEAR(params.alpha, 1.0, 0.2);
}

TEST(GgdFitTest, DegenerateInputs) {
  EXPECT_NEAR(FitGgd({}).alpha, 2.0, 1e-9);
  EXPECT_NEAR(FitGgd({0.0, 0.0, 0.0}).alpha, 2.0, 1e-9);
}

TEST(AggdFitTest, SymmetricDataGivesEqualScales) {
  util::Rng rng(5);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.NextGaussian(0, 1.0);
  const AggdParams params = FitAggd(samples);
  EXPECT_NEAR(params.sigma_left, params.sigma_right, 0.05);
  EXPECT_NEAR(params.mean, 0.0, 0.05);
}

TEST(AggdFitTest, SkewedDataGivesAsymmetricScales) {
  util::Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double g = rng.NextGaussian(0, 1.0);
    samples.push_back(g < 0 ? g * 0.3 : g * 2.0);  // wider right tail
  }
  const AggdParams params = FitAggd(samples);
  EXPECT_GT(params.sigma_right, params.sigma_left * 2.0);
  EXPECT_GT(params.mean, 0.0);
}

TEST(NiqeTest, RequiresTrainingCorpus) {
  EXPECT_FALSE(Niqe::Train({}).ok());
}

TEST(NiqeTest, PatchFeatureDimensionIs18) {
  std::vector<double> patch(256, 0.1);
  patch[3] = -0.5;
  EXPECT_EQ(Niqe::PatchFeatures(patch, 16, 16).size(), 18u);
}

TEST(NiqeTest, DistortedImagesScoreWorse) {
  auto niqe = Niqe::Train(MakeCorpus(12, 100));
  ASSERT_TRUE(niqe.ok());
  double clean_total = 0.0;
  double noisy_total = 0.0;
  for (uint64_t seed = 200; seed < 206; ++seed) {
    clean_total += niqe->Score(MakeFace(seed));
    image::Image corrupted = MakeFace(seed);
    util::Rng rng(seed);
    image::AddGaussianNoise(&corrupted, 45.0, &rng);
    noisy_total += niqe->Score(corrupted);
  }
  EXPECT_GT(noisy_total, clean_total);
}

TEST(NiqeTest, BlurredImagesScoreWorse) {
  // Gaussian blur wipes out the high-frequency MSCN structure that the
  // natural-scene model is fit to; a known-degraded image must score
  // farther from the pristine model than its clean original.
  auto niqe = Niqe::Train(MakeCorpus(12, 100));
  ASSERT_TRUE(niqe.ok());
  double clean_total = 0.0;
  double blurred_total = 0.0;
  for (uint64_t seed = 250; seed < 256; ++seed) {
    const image::Image face = MakeFace(seed);
    clean_total += niqe->Score(face);
    blurred_total += niqe->Score(image::GaussianBlur(face, 2.5));
  }
  EXPECT_GT(blurred_total, clean_total);
}

TEST(NiqeTest, BandedImagesScoreWorse) {
  auto niqe = Niqe::Train(MakeCorpus(12, 100));
  ASSERT_TRUE(niqe.ok());
  double clean_total = 0.0;
  double banded_total = 0.0;
  for (uint64_t seed = 260; seed < 266; ++seed) {
    clean_total += niqe->Score(MakeFace(seed));
    image::Image banded = MakeFace(seed);
    image::AddBanding(&banded, 4, 60.0);
    banded_total += niqe->Score(banded);
  }
  EXPECT_GT(banded_total, clean_total);
}

TEST(BrisqueTest, FeatureDimensionIs36) {
  EXPECT_EQ(BrisqueFeatures(MakeFace(7)).size(), 36u);
}

TEST(BrisqueTest, DistortedImagesScoreWorse) {
  auto brisque = Brisque::Train(MakeCorpus(12, 300));
  ASSERT_TRUE(brisque.ok());
  double clean_total = 0.0;
  double noisy_total = 0.0;
  for (uint64_t seed = 400; seed < 406; ++seed) {
    clean_total += brisque->Score(MakeFace(seed));
    image::Image corrupted = MakeFace(seed);
    image::AddBanding(&corrupted, 4, 60.0);
    util::Rng rng(seed);
    image::AddGaussianNoise(&corrupted, 40.0, &rng);
    noisy_total += brisque->Score(corrupted);
  }
  EXPECT_GT(noisy_total, clean_total);
}

TEST(BrisqueTest, BlurredImagesScoreWorse) {
  auto brisque = Brisque::Train(MakeCorpus(12, 300));
  ASSERT_TRUE(brisque.ok());
  double clean_total = 0.0;
  double blurred_total = 0.0;
  for (uint64_t seed = 450; seed < 456; ++seed) {
    const image::Image face = MakeFace(seed);
    clean_total += brisque->Score(face);
    blurred_total += brisque->Score(image::GaussianBlur(face, 2.5));
  }
  EXPECT_GT(blurred_total, clean_total);
}

TEST(BrisqueTest, ScoreIsMonotoneInNoiseLevel) {
  // A usable no-reference metric must order degradation levels, not just
  // separate clean from corrupted: heavier noise ⇒ worse (higher) score.
  auto brisque = Brisque::Train(MakeCorpus(12, 300));
  ASSERT_TRUE(brisque.ok());
  double previous_total = 0.0;
  bool first = true;
  for (double stddev : {0.0, 15.0, 45.0}) {
    double total = 0.0;
    for (uint64_t seed = 470; seed < 476; ++seed) {
      image::Image face = MakeFace(seed);
      if (stddev > 0.0) {
        util::Rng rng(seed);
        image::AddGaussianNoise(&face, stddev, &rng);
      }
      total += brisque->Score(face);
    }
    if (!first) {
      EXPECT_GT(total, previous_total) << "stddev " << stddev;
    }
    previous_total = total;
    first = false;
  }
}

TEST(BrisqueTest, NaturalImagesScoreNearZero) {
  auto brisque = Brisque::Train(MakeCorpus(16, 500));
  ASSERT_TRUE(brisque.ok());
  // In-distribution z-score distance should be modest.
  EXPECT_LT(brisque->Score(MakeFace(520)), 3.0);
}

TEST(NimaTest, TrainsAndScoresInRange) {
  util::Rng rng(9);
  auto nima = Nima::Train(MakeCorpus(24, 600), &rng);
  ASSERT_TRUE(nima.ok());
  const double score = nima->Score(MakeFace(700));
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 10.0);
}

TEST(NimaTest, AestheticProxyPrefersContrastAndExposure) {
  // A mid-gray flat image has exposure but no contrast/sharpness; a
  // black image has neither.
  const image::Image gray(32, 32, 1, 128);
  const image::Image black(32, 32, 1, 0);
  EXPECT_GT(Nima::AestheticProxy(gray), Nima::AestheticProxy(black));
}

TEST(NimaTest, RejectsTinyCorpus) {
  util::Rng rng(9);
  EXPECT_FALSE(Nima::Train(MakeCorpus(2, 0), &rng).ok());
}

// Property: all three tools are deterministic given the same input.
TEST(IqaDeterminismTest, ScoresAreStable) {
  const auto corpus = MakeCorpus(12, 800);
  auto niqe = Niqe::Train(corpus);
  auto brisque = Brisque::Train(corpus);
  util::Rng rng(2);
  auto nima = Nima::Train(corpus, &rng);
  ASSERT_TRUE(niqe.ok() && brisque.ok() && nima.ok());
  const image::Image face = MakeFace(900);
  EXPECT_DOUBLE_EQ(niqe->Score(face), niqe->Score(face));
  EXPECT_DOUBLE_EQ(brisque->Score(face), brisque->Score(face));
  EXPECT_DOUBLE_EQ(nima->Score(face), nima->Score(face));
}

}  // namespace
}  // namespace chameleon::iqa
