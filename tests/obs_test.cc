// Tests for the observability layer (src/obs): registry semantics,
// span nesting on the virtual clock, the JSONL run journal, and the
// pipeline-level determinism contract — an instrumented repair run
// produces byte-identical journals/traces and identical stable metrics
// at every thread count, and never changes which tuples are accepted.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/export.h"
#include "src/obs/observability.h"
#include "src/obs/quantile_digest.h"

namespace chameleon::obs {
namespace {

// ---------------------------------------------------------------------------
// VirtualClock
// ---------------------------------------------------------------------------

TEST(VirtualClockTest, TicksAreMonotonicFromOne) {
  VirtualClock clock;
  EXPECT_EQ(clock.ticks(), 0u);
  EXPECT_EQ(clock.Tick(), 1u);
  EXPECT_EQ(clock.Tick(), 2u);
  EXPECT_EQ(clock.ticks(), 2u);
}

TEST(VirtualClockTest, MillisecondAxisAccumulates) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.NowMs(), 0.0);
  clock.AdvanceMs(12.5);
  clock.AdvanceMs(7.5);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 20.0);
}

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram
// ---------------------------------------------------------------------------

TEST(CounterTest, IsMonotonic) {
  Counter counter;
  counter.Increment();
  counter.Increment(5);
  counter.Increment(-3);  // ignored: counters only go up
  counter.Increment(0);
  EXPECT_EQ(counter.value(), 6);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(3.5);
  gauge.Add(1.5);
  gauge.Add(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 5.0});
  // One observation per interesting position: below, exactly on each
  // bound (inclusive), between bounds, and past the last bound.
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.count(), 6);
  EXPECT_DOUBLE_EQ(histogram.sum(), 17.0);
  const std::vector<int64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // bounds + overflow
  EXPECT_EQ(buckets[0], 2);      // 0.5, 1.0  (v <= 1)
  EXPECT_EQ(buckets[1], 2);      // 1.5, 2.0  (1 < v <= 2)
  EXPECT_EQ(buckets[2], 1);      // 5.0       (2 < v <= 5)
  EXPECT_EQ(buckets[3], 1);      // 7.0       (v > 5)
}

TEST(HistogramTest, ConcurrentObservationsLoseNothing) {
  Histogram histogram({10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) histogram.Observe(1.0);
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  // Sums of 1.0 stay exact in a double well past 80k observations, so
  // the CAS-accumulated sum must equal the count exactly.
  EXPECT_DOUBLE_EQ(histogram.sum(), kThreads * kPerThread);
  EXPECT_EQ(histogram.BucketCounts()[0], kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, RegistrationIsIdempotentWithStablePointers) {
  Registry registry;
  obs::Counter* counter = registry.Counter("fm.queries");
  counter->Increment(3);
  EXPECT_EQ(registry.Counter("fm.queries"), counter);
  EXPECT_EQ(registry.Counter("fm.queries")->value(), 3);
  obs::Histogram* histogram = registry.Histogram("h", {1.0, 2.0});
  // A later registration with different bounds returns the original.
  EXPECT_EQ(registry.Histogram("h", {9.0}), histogram);
  EXPECT_EQ(histogram->bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry registry;
  registry.Gauge("zeta")->Set(1.0);
  registry.Counter("alpha")->Increment();
  registry.Histogram("mid", {1.0})->Observe(0.5);
  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[0].type, "counter");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[1].type, "histogram");
  EXPECT_EQ(samples[2].name, "zeta");
  EXPECT_EQ(samples[2].type, "gauge");
}

TEST(RegistryTest, ToJsonEmitsOneObjectPerLine) {
  Registry registry;
  registry.Counter("fm.queries")->Increment(47);
  registry.Histogram("lat", {1.0, 2.0})->Observe(1.5);
  const std::string json = registry.ToJson();
  EXPECT_EQ(json,
            "{\"name\":\"fm.queries\",\"type\":\"counter\",\"value\":47}\n"
            "{\"name\":\"lat\",\"type\":\"histogram\",\"value\":1,"
            "\"sum\":1.5,\"bounds\":[1,2],\"buckets\":[0,1,0],"
            "\"p50\":1.5,\"p90\":1.5,\"p99\":1.5}\n");
}

TEST(RegistryTest, ToTableRendersEveryMetric) {
  Registry registry;
  registry.Counter("fm.queries")->Increment(47);
  registry.Gauge("run.estimated_p")->Set(0.82);
  const std::string table = registry.ToTable().ToString();
  EXPECT_NE(table.find("fm.queries"), std::string::npos);
  EXPECT_NE(table.find("47"), std::string::npos);
  EXPECT_NE(table.find("run.estimated_p"), std::string::npos);
  EXPECT_NE(table.find("0.82"), std::string::npos);
}

TEST(RegistryTest, WriteExportsJsonlToDisk) {
  Registry registry;
  registry.Counter("fm.queries")->Increment(2);
  const std::string path = ::testing::TempDir() + "obs_registry_test.jsonl";
  ASSERT_TRUE(registry.Write(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), registry.ToJson());
  std::remove(path.c_str());
}

TEST(RegistryTest, WriteToUnwritablePathFails) {
  Registry registry;
  EXPECT_FALSE(registry.Write("/nonexistent-dir/metrics.jsonl").ok());
}

TEST(StableMetricTest, ExemptsScheduleDependentNames) {
  EXPECT_TRUE(IsStableMetric("fm.queries"));
  EXPECT_TRUE(IsStableMetric("rejection.accepted"));
  EXPECT_TRUE(IsStableMetric("mup.found"));
  EXPECT_TRUE(IsStableMetric("mup.incremental.patched"));
  EXPECT_TRUE(IsStableMetric("mup.incremental.retired"));
  EXPECT_FALSE(IsStableMetric("mup.count_queries"));
  EXPECT_FALSE(IsStableMetric("mup.incremental.insert_ns"));
  EXPECT_FALSE(IsStableMetric("threadpool.tasks_submitted"));
  EXPECT_FALSE(IsStableMetric("threadpool.max_queue_depth"));
}

TEST(FormatMetricValueTest, RoundTrips) {
  for (double v : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-17, 123456789.125}) {
    EXPECT_EQ(std::strtod(FormatMetricValue(v).c_str(), nullptr), v);
  }
  EXPECT_EQ(FormatMetricValue(47.0), "47");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
}

// ---------------------------------------------------------------------------
// Tracer / Span
// ---------------------------------------------------------------------------

TEST(TracerTest, NestingFollowsInnermostOpenSpan) {
  VirtualClock clock;
  Tracer tracer(&clock);
  {
    Span run = tracer.StartSpan("repair.run");
    {
      Span find = tracer.StartSpan("mup.find");
    }
    {
      Span entry = tracer.StartSpan("plan.entry");
      Span batch = tracer.StartSpan("rejection.batch");
    }
  }
  EXPECT_EQ(tracer.num_open(), 0u);
  const std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);

  EXPECT_EQ(spans[0].name, "repair.run");
  EXPECT_EQ(spans[0].parent_id, 0);
  EXPECT_EQ(spans[0].depth, 0);

  EXPECT_EQ(spans[1].name, "mup.find");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1);

  EXPECT_EQ(spans[2].name, "plan.entry");
  EXPECT_EQ(spans[2].parent_id, spans[0].id);

  EXPECT_EQ(spans[3].name, "rejection.batch");
  EXPECT_EQ(spans[3].parent_id, spans[2].id);
  EXPECT_EQ(spans[3].depth, 2);

  // Tick stamps reflect the serial open/close order: a child opens after
  // its parent and (RAII) closes before it.
  for (const SpanRecord& span : spans) {
    EXPECT_GT(span.end_tick, span.start_tick);
  }
  EXPECT_GT(spans[3].start_tick, spans[2].start_tick);
  EXPECT_LT(spans[3].end_tick, spans[2].end_tick);
  EXPECT_EQ(spans[0].end_tick, clock.ticks());
}

TEST(TracerTest, EndIsIdempotentAndMoveSafe) {
  VirtualClock clock;
  Tracer tracer(&clock);
  Span span = tracer.StartSpan("a");
  span.End();
  const uint64_t end_tick = tracer.Spans()[0].end_tick;
  span.End();  // no-op
  EXPECT_EQ(tracer.Spans()[0].end_tick, end_tick);

  Span outer = tracer.StartSpan("b");
  Span moved = std::move(outer);
  outer.End();  // moved-from: no-op
  EXPECT_EQ(tracer.num_open(), 1u);
  moved.End();
  EXPECT_EQ(tracer.num_open(), 0u);
}

TEST(TracerTest, IdenticalEventSequencesProduceIdenticalJsonl) {
  auto run = [] {
    VirtualClock clock;
    Tracer tracer(&clock);
    Span run_span = tracer.StartSpan("repair.run");
    for (int i = 0; i < 3; ++i) {
      Span batch = tracer.StartSpan("rejection.batch");
      clock.AdvanceMs(10.0);
    }
    run_span.End();
    return tracer.ToJsonl();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

TEST(JournalTest, GoldenJsonl) {
  VirtualClock clock;
  Journal journal(&clock);
  journal.Record(JournalEvent("run.start").Set("tau", 30).Set("seed", 99));
  journal.Record(JournalEvent("mup.found")
                     .Set("pattern", "X3")
                     .Set("count", 19)
                     .Set("gap", 11));
  journal.Record(JournalEvent("tuple.rejected")
                     .Set("target", "0,3")
                     .Set("arm", 1)
                     .Set("reason", "distribution"));
  journal.Record(JournalEvent("run.end")
                     .Set("queries", 47)
                     .Set("accepted", 31)
                     .Set("fully_resolved", true)
                     .Set("cost", 0.75));
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.ToJsonl(),
            "{\"type\":\"run.start\",\"tick\":1,\"tau\":30,\"seed\":99}\n"
            "{\"type\":\"mup.found\",\"tick\":2,\"pattern\":\"X3\","
            "\"count\":19,\"gap\":11}\n"
            "{\"type\":\"tuple.rejected\",\"tick\":3,\"target\":\"0,3\","
            "\"arm\":1,\"reason\":\"distribution\"}\n"
            "{\"type\":\"run.end\",\"tick\":4,\"queries\":47,"
            "\"accepted\":31,\"fully_resolved\":true,\"cost\":0.75}\n");
}

TEST(JournalTest, SharesTickAxisWithTracer) {
  VirtualClock clock;
  Tracer tracer(&clock);
  Journal journal(&clock);
  Span span = tracer.StartSpan("repair.run");  // tick 1
  journal.Record(JournalEvent("run.start"));   // tick 2
  span.End();                                  // tick 3
  EXPECT_EQ(journal.Lines()[0], "{\"type\":\"run.start\",\"tick\":2}");
  EXPECT_EQ(tracer.Spans()[0].start_tick, 1u);
  EXPECT_EQ(tracer.Spans()[0].end_tick, 3u);
}

TEST(JournalTest, EscapesJsonStrings) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

// ---------------------------------------------------------------------------
// QuantileDigest
// ---------------------------------------------------------------------------

TEST(QuantileDigestTest, EmptyDigestReportsZero) {
  QuantileDigest digest;
  EXPECT_EQ(digest.count(), 0);
  EXPECT_DOUBLE_EQ(digest.Quantile(0.5), 0.0);
}

TEST(QuantileDigestTest, ExactWhileUnderCentroidBudget) {
  // 50 values < the 64-centroid budget: quantiles are exact linear
  // interpolation over the sorted values.
  QuantileDigest digest;
  for (int i = 0; i < 50; ++i) digest.Add(((i * 37) % 50) + 1.0);  // 1..50
  EXPECT_EQ(digest.count(), 50);
  EXPECT_DOUBLE_EQ(digest.min(), 1.0);
  EXPECT_DOUBLE_EQ(digest.max(), 50.0);
  EXPECT_DOUBLE_EQ(digest.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(digest.Quantile(0.5), 25.5);
  EXPECT_DOUBLE_EQ(digest.Quantile(1.0), 50.0);
}

TEST(QuantileDigestTest, CompressionKeepsAnchorsAndMonotonicity) {
  QuantileDigest digest;
  for (int i = 0; i < 10000; ++i) {
    digest.Add(static_cast<double>((i * 7919) % 10000));  // permutation
  }
  EXPECT_EQ(digest.count(), 10000);
  EXPECT_LE(digest.num_centroids(), QuantileDigest::kDefaultMaxCentroids);
  EXPECT_DOUBLE_EQ(digest.min(), 0.0);
  EXPECT_DOUBLE_EQ(digest.max(), 9999.0);
  EXPECT_DOUBLE_EQ(digest.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(digest.Quantile(1.0), 9999.0);
  // Uniform data: each decile lands within 2% of the ideal, and the
  // quantile function is monotone in q.
  double previous = digest.Quantile(0.05);
  for (int decile = 1; decile <= 9; ++decile) {
    const double q = decile / 10.0;
    const double value = digest.Quantile(q);
    EXPECT_NEAR(value, q * 9999.0, 200.0) << "q=" << q;
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(QuantileDigestTest, IdenticalStreamsProduceIdenticalQuantiles) {
  auto build = [] {
    QuantileDigest digest;
    for (int i = 0; i < 5000; ++i) {
      digest.Add(static_cast<double>((i * 271) % 997));
    }
    return digest;
  };
  const QuantileDigest a = build();
  const QuantileDigest b = build();
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileDigestTest, MergeCoversBothStreams) {
  QuantileDigest evens;
  QuantileDigest odds;
  for (int i = 0; i < 5000; ++i) {
    evens.Add(static_cast<double>(2 * i));        // 0..9998
    odds.Add(static_cast<double>(2 * i + 1));     // 1..9999
  }
  evens.Merge(odds);
  EXPECT_EQ(evens.count(), 10000);
  EXPECT_DOUBLE_EQ(evens.min(), 0.0);
  EXPECT_DOUBLE_EQ(evens.max(), 9999.0);
  EXPECT_NEAR(evens.Quantile(0.5), 4999.5, 300.0);
  EXPECT_NEAR(evens.Quantile(0.9), 8999.0, 300.0);
}

TEST(QuantileDigestTest, MergingEmptyIntoEmptyStaysEmpty) {
  QuantileDigest a;
  const QuantileDigest b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.num_centroids(), 0u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 0.0);
}

TEST(QuantileDigestTest, MergingEmptyIntoPopulatedIsANoOp) {
  // A zero-observation digest carries no data — merging it in must not
  // disturb the min/max anchors, the count, or any centroid weight.
  QuantileDigest populated;
  for (int i = 1; i <= 200; ++i) populated.Add(static_cast<double>(i));
  const size_t centroids_before = populated.num_centroids();
  const std::vector<double> quantiles_before = {
      populated.Quantile(0.0), populated.Quantile(0.25),
      populated.Quantile(0.5), populated.Quantile(0.9),
      populated.Quantile(1.0)};

  const QuantileDigest empty;
  populated.Merge(empty);

  EXPECT_EQ(populated.count(), 200);
  EXPECT_DOUBLE_EQ(populated.min(), 1.0);
  EXPECT_DOUBLE_EQ(populated.max(), 200.0);
  EXPECT_EQ(populated.num_centroids(), centroids_before);
  const std::vector<double> quantiles_after = {
      populated.Quantile(0.0), populated.Quantile(0.25),
      populated.Quantile(0.5), populated.Quantile(0.9),
      populated.Quantile(1.0)};
  EXPECT_EQ(quantiles_after, quantiles_before);
}

TEST(QuantileDigestTest, MergingPopulatedIntoEmptyAdoptsIt) {
  QuantileDigest empty;
  QuantileDigest populated;
  for (int i = 1; i <= 200; ++i) populated.Add(static_cast<double>(i));
  empty.Merge(populated);
  EXPECT_EQ(empty.count(), 200);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 200.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), populated.Quantile(0.5));
}

TEST(QuantileDigestTest, SelfMergeDoublesWithoutCorruption) {
  // d.Merge(d) used to insert the digest's own centroid vector into
  // itself — iterator invalidation once the vector reallocates. It must
  // behave like merging an identical snapshot: count doubles, anchors
  // and quantiles stay put.
  QuantileDigest digest;
  for (int i = 1; i <= 1000; ++i) {
    digest.Add(static_cast<double>((i * 37) % 1000));
  }
  const double p50_before = digest.Quantile(0.5);
  digest.Merge(digest);
  EXPECT_EQ(digest.count(), 2000);
  EXPECT_DOUBLE_EQ(digest.min(), 0.0);
  EXPECT_DOUBLE_EQ(digest.max(), 999.0);
  EXPECT_LE(digest.num_centroids(), QuantileDigest::kDefaultMaxCentroids);
  EXPECT_NEAR(digest.Quantile(0.5), p50_before, 50.0);
}

TEST(HistogramTest, QuantilesComeFromTheAttachedDigest) {
  Histogram histogram({10.0});
  for (int i = 1; i <= 50; ++i) histogram.Observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 25.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 50.0);
  // Digest() hands out a mergeable copy sharing the same observations.
  QuantileDigest copy = histogram.Digest();
  EXPECT_EQ(copy.count(), 50);
  copy.Add(1000.0);
  EXPECT_EQ(histogram.Digest().count(), 50);  // the copy is detached
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportTest, OpenMetricsGolden) {
  Registry registry;
  registry.Counter("fm.queries")->Increment(47);
  registry.Gauge("run.estimated_p")->Set(0.82);
  registry.Histogram("lat", {1.0, 2.0})->Observe(1.5);
  EXPECT_EQ(ExportOpenMetrics(registry),
            "# TYPE fm_queries counter\n"
            "fm_queries_total 47\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 0\n"
            "lat_bucket{le=\"2\"} 1\n"
            "lat_bucket{le=\"+Inf\"} 1\n"
            "lat_sum 1.5\n"
            "lat_count 1\n"
            "# TYPE lat_latency summary\n"
            "lat_latency{quantile=\"0.5\"} 1.5\n"
            "lat_latency{quantile=\"0.9\"} 1.5\n"
            "lat_latency{quantile=\"0.99\"} 1.5\n"
            "# TYPE run_estimated_p gauge\n"
            "run_estimated_p 0.82\n"
            "# EOF\n");
}

TEST(ExportTest, TraceEventsGolden) {
  VirtualClock clock;
  Tracer tracer(&clock);
  Span run_span = tracer.StartSpan("repair.run");  // tick 1, left open
  {
    Span batch = tracer.StartSpan("rejection.batch");  // tick 2
    clock.AdvanceMs(10.0);
  }  // ends at tick 3
  EXPECT_EQ(
      ExportTraceEvents(tracer),
      "{\"displayTimeUnit\":\"ms\",\"otherData\":"
      "{\"clock\":\"virtual ticks (1 tick = 1us)\"},\"traceEvents\":[\n"
      "{\"name\":\"repair.run\",\"cat\":\"chameleon\",\"ph\":\"B\","
      "\"pid\":1,\"tid\":1,\"ts\":1,\"args\":{\"id\":1,\"parent\":0,"
      "\"depth\":0,\"start_ms\":0,\"end_ms\":0}},\n"
      "{\"name\":\"rejection.batch\",\"cat\":\"chameleon\",\"ph\":\"X\","
      "\"pid\":1,\"tid\":1,\"ts\":2,\"dur\":1,\"args\":{\"id\":2,"
      "\"parent\":1,\"depth\":1,\"start_ms\":0,\"end_ms\":10}}\n"
      "]}\n");
}

TEST(ExportTest, WritersPropagateIoFailures) {
  Registry registry;
  registry.Counter("fm.queries")->Increment();
  VirtualClock clock;
  Tracer tracer(&clock);
  EXPECT_FALSE(WriteOpenMetrics(registry, "/nonexistent-dir/m.om").ok());
  EXPECT_FALSE(WriteTraceEvents(tracer, "/nonexistent-dir/t.json").ok());
  const std::string path = ::testing::TempDir() + "obs_export_test.om";
  ASSERT_TRUE(WriteOpenMetrics(registry, path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), ExportOpenMetrics(registry));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Streaming sinks
// ---------------------------------------------------------------------------

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(JournalTest, StreamToAppendsAndFlushesPerLine) {
  VirtualClock clock;
  Journal journal(&clock);
  journal.Record(JournalEvent("run.start").Set("tau", 30));
  const std::string path = ::testing::TempDir() + "obs_stream_journal.jsonl";
  // StreamTo catches up lines recorded before the stream was attached.
  ASSERT_TRUE(journal.StreamTo(path).ok());
  EXPECT_TRUE(journal.streaming());
  EXPECT_EQ(ReadAll(path), journal.ToJsonl());
  // Each subsequent Record lands on disk immediately (no Close needed),
  // which is what makes journals from killed runs analyzable.
  journal.Record(JournalEvent("fm.query").Set("target", "0,3"));
  EXPECT_EQ(ReadAll(path), journal.ToJsonl());
  ASSERT_TRUE(journal.CloseStream().ok());
  EXPECT_FALSE(journal.streaming());
  EXPECT_EQ(ReadAll(path), journal.ToJsonl());
  std::remove(path.c_str());
}

TEST(JournalTest, StreamToWhileStreamingFails) {
  VirtualClock clock;
  Journal journal(&clock);
  const std::string path = ::testing::TempDir() + "obs_stream_twice.jsonl";
  ASSERT_TRUE(journal.StreamTo(path).ok());
  EXPECT_FALSE(journal.StreamTo(path).ok());
  ASSERT_TRUE(journal.CloseStream().ok());
  // After a clean close the journal can stream again.
  ASSERT_TRUE(journal.StreamTo(path).ok());
  ASSERT_TRUE(journal.CloseStream().ok());
  std::remove(path.c_str());
  EXPECT_FALSE(journal.StreamTo("/nonexistent-dir/journal.jsonl").ok());
}

TEST(TracerTest, StreamWritesSpansInCompletionOrder) {
  VirtualClock clock;
  Tracer tracer(&clock);
  const std::string path = ::testing::TempDir() + "obs_stream_trace.jsonl";
  ASSERT_TRUE(tracer.StreamTo(path).ok());
  Span outer = tracer.StartSpan("repair.run");
  {
    Span inner = tracer.StartSpan("rejection.batch");
    clock.AdvanceMs(5.0);
  }  // inner ends first: it streams before the still-open outer span
  const std::string after_inner = ReadAll(path);
  EXPECT_NE(after_inner.find("rejection.batch"), std::string::npos);
  EXPECT_EQ(after_inner.find("repair.run"), std::string::npos);
  outer.End();
  ASSERT_TRUE(tracer.CloseStream().ok());
  const std::string streamed = ReadAll(path);
  EXPECT_EQ(streamed, SpanToJson(tracer.Spans()[1]) + "\n" +
                          SpanToJson(tracer.Spans()[0]) + "\n");
  std::remove(path.c_str());
}

TEST(JournalTest, WriteExportsJsonlToDisk) {
  VirtualClock clock;
  Journal journal(&clock);
  journal.Record(JournalEvent("run.start").Set("tau", 30));
  const std::string path = ::testing::TempDir() + "obs_journal_test.jsonl";
  ASSERT_TRUE(journal.Write(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), journal.ToJsonl());
  std::remove(path.c_str());
  EXPECT_FALSE(journal.Write("/nonexistent-dir/journal.jsonl").ok());
}

}  // namespace
}  // namespace chameleon::obs

// ---------------------------------------------------------------------------
// Pipeline determinism: the instrumented repair run
// ---------------------------------------------------------------------------

namespace chameleon::core {
namespace {

struct ObservedRun {
  RepairReport report;
  std::string journal;
  std::string trace;
  std::vector<obs::MetricSample> metrics;
  int64_t model_queries = 0;
};

/// One seeded FERET repair with an observability sink attached (or not).
ObservedRun RunObserved(int num_threads, bool observe) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus = *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel model(corpus.dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(),
                                     fm::SimulatedFoundationModel::Options());

  obs::Observability observability;
  ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.num_threads = num_threads;
  options.rejection_batch = 4;
  if (observe) options.observability = &observability;

  Chameleon system(&model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  EXPECT_TRUE(report.ok());

  ObservedRun run;
  run.report = *report;
  run.journal = observability.journal.ToJsonl();
  run.trace = observability.tracer.ToJsonl();
  run.metrics = observability.registry.Snapshot();
  run.model_queries = model.num_queries();
  return run;
}

/// The stable subset of a snapshot, flattened for exact comparison.
std::map<std::string, std::string> StableMetrics(
    const std::vector<obs::MetricSample>& samples) {
  std::map<std::string, std::string> out;
  for (const obs::MetricSample& sample : samples) {
    if (!obs::IsStableMetric(sample.name)) continue;
    std::string value = sample.type;
    value += ':';
    value += obs::FormatMetricValue(sample.value);
    if (sample.type == "histogram") {
      value += ":sum=";
      value += obs::FormatMetricValue(sample.sum);
      for (int64_t bucket : sample.buckets) {
        value += ',';
        value += std::to_string(bucket);
      }
    }
    out[sample.name] = value;
  }
  return out;
}

TEST(ObsPipelineTest, InstrumentedRunIsByteIdenticalAcrossThreadCounts) {
  const ObservedRun serial = RunObserved(/*num_threads=*/1, /*observe=*/true);
  ASSERT_GT(serial.report.accepted, 0);
  ASSERT_FALSE(serial.journal.empty());
  ASSERT_FALSE(serial.trace.empty());

  for (int threads : {2, 8}) {
    const ObservedRun parallel = RunObserved(threads, /*observe=*/true);
    EXPECT_EQ(parallel.journal, serial.journal) << threads << " threads";
    EXPECT_EQ(parallel.trace, serial.trace) << threads << " threads";
    EXPECT_EQ(StableMetrics(parallel.metrics), StableMetrics(serial.metrics))
        << threads << " threads";
  }
}

TEST(ObsPipelineTest, JournalHasWellFormedEventStructure) {
  const ObservedRun run = RunObserved(/*num_threads=*/2, /*observe=*/true);
  std::vector<std::string> lines;
  std::stringstream stream(run.journal);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 4u);

  auto type_of = [](const std::string& line) {
    const std::string prefix = "{\"type\":\"";
    EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
    return line.substr(prefix.size(),
                       line.find('"', prefix.size()) - prefix.size());
  };
  EXPECT_EQ(type_of(lines.front()), "run.start");
  EXPECT_EQ(type_of(lines.back()), "run.end");

  const std::vector<std::string> known = {
      "run.start", "mup.found", "plan.entry",     "fm.query",
      "fm.retry",  "fm.parked", "fm.breaker",     "fm.batch",
      "run.end",   "tuple.accepted",              "tuple.rejected"};
  std::map<std::string, int> seen;
  for (const std::string& line : lines) {
    const std::string type = type_of(line);
    EXPECT_NE(std::find(known.begin(), known.end(), type), known.end())
        << "unknown journal event type: " << type;
    ++seen[type];
  }
  EXPECT_EQ(seen["run.start"], 1);
  EXPECT_EQ(seen["run.end"], 1);
  EXPECT_GT(seen["mup.found"], 0);
  EXPECT_GT(seen["plan.entry"], 0);
  // Every issued query journals one fm.query (parked ones included);
  // every evaluated candidate journals exactly one verdict.
  EXPECT_EQ(seen["fm.query"], run.report.queries + seen["fm.parked"]);
  EXPECT_EQ(seen["tuple.accepted"] + seen["tuple.rejected"],
            run.report.queries);
  EXPECT_EQ(seen["tuple.accepted"], run.report.accepted);
}

TEST(ObsPipelineTest, ObservabilityDoesNotPerturbAcceptedTuples) {
  const ObservedRun on = RunObserved(/*num_threads=*/2, /*observe=*/true);
  const ObservedRun off = RunObserved(/*num_threads=*/2, /*observe=*/false);
  EXPECT_EQ(on.report.queries, off.report.queries);
  EXPECT_EQ(on.report.accepted, off.report.accepted);
  EXPECT_EQ(on.report.distribution_passes, off.report.distribution_passes);
  EXPECT_EQ(on.report.quality_passes, off.report.quality_passes);
  EXPECT_EQ(on.report.fully_resolved, off.report.fully_resolved);
  EXPECT_EQ(on.model_queries, off.model_queries);
  ASSERT_EQ(on.report.records.size(), off.report.records.size());
  for (size_t i = 0; i < on.report.records.size(); ++i) {
    EXPECT_EQ(on.report.records[i].target_values,
              off.report.records[i].target_values);
    EXPECT_EQ(on.report.records[i].embedding, off.report.records[i].embedding);
    EXPECT_EQ(on.report.records[i].arm, off.report.records[i].arm);
    EXPECT_EQ(on.report.records[i].accepted, off.report.records[i].accepted);
  }
  // The off run recorded literally nothing.
  EXPECT_TRUE(off.journal.empty());
  EXPECT_TRUE(off.trace.empty());
  EXPECT_TRUE(off.metrics.empty());
}

}  // namespace
}  // namespace chameleon::core
