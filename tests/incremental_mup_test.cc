// Differential oracle for coverage::IncrementalMupIndex (DESIGN.md §14):
// a seeded random stream interleaves inserts and MUP queries, and after
// every query step the maintained frontier must equal order-normalized
// MupFinder::FindMups AND MupFinder::FindMupsNaive on the materialized
// dataset — exactly, including counts, gaps, and output order. Failures
// dump a minimal reproducer (seed + step index + config). The lattice
// invariants themselves (antichain, covered ancestors, MUP-ancestor
// completeness) are property-tested against all three finders, so the
// oracle also catches bugs in the old paths.

#include <algorithm>
#include <deque>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/coverage/incremental_mup.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/data/dataset.h"
#include "src/obs/observability.h"
#include "src/util/rng.h"

namespace chameleon::coverage {
namespace {

data::AttributeSchema MixedSchema(const std::vector<int>& cardinalities) {
  data::AttributeSchema schema;
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    // Built with += rather than operator+ to dodge GCC 12's -Wrestrict
    // false positive on char*/std::string concatenation (GCC PR105651).
    std::string name = "x";
    name += std::to_string(i);
    std::vector<std::string> values;
    for (int v = 0; v < cardinalities[i]; ++v) {
      std::string value = "v";
      value += std::to_string(v);
      values.push_back(std::move(value));
    }
    EXPECT_TRUE(
        schema.AddAttribute({std::move(name), std::move(values), false}).ok());
  }
  return schema;
}

/// Skewed draw: value 0 dominates, so rare combinations (and therefore
/// long-lived MUPs) exist at every stream length.
std::vector<int> RandomTuple(const data::AttributeSchema& schema,
                             util::Rng* rng) {
  std::vector<int> values(schema.num_attributes());
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const int cardinality = schema.attribute(i).cardinality();
    values[i] = rng->NextBernoulli(0.55)
                    ? 0
                    : static_cast<int>(rng->NextBounded(cardinality));
  }
  return values;
}

std::string FormatMups(const std::vector<Mup>& mups) {
  std::ostringstream out;
  for (const Mup& mup : mups) {
    out << mup.pattern.ToString() << "(count=" << mup.count
        << ",gap=" << mup.gap << ") ";
  }
  return out.str();
}

/// Exact equality, order included: both sides are order-normalized
/// (level, then lexicographic pattern) by contract.
testing::AssertionResult SameMups(const std::vector<Mup>& actual,
                                  const std::vector<Mup>& expected) {
  if (actual.size() != expected.size()) {
    return testing::AssertionFailure()
           << "MUP set size mismatch: got " << actual.size() << " ["
           << FormatMups(actual) << "] want " << expected.size() << " ["
           << FormatMups(expected) << "]";
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    if (actual[i].pattern != expected[i].pattern ||
        actual[i].count != expected[i].count ||
        actual[i].gap != expected[i].gap) {
      return testing::AssertionFailure()
             << "MUP #" << i << " mismatch: got "
             << actual[i].pattern.ToString() << "(count=" << actual[i].count
             << ",gap=" << actual[i].gap << ") want "
             << expected[i].pattern.ToString()
             << "(count=" << expected[i].count << ",gap=" << expected[i].gap
             << ")\n  full got:  " << FormatMups(actual)
             << "\n  full want: " << FormatMups(expected);
    }
  }
  return testing::AssertionSuccess();
}

struct OracleConfig {
  uint64_t seed = 1;
  int64_t tau = 3;
  int num_threads = 1;
  std::vector<int> cardinalities = {2, 3, 2};
  int steps = 10000;
};

std::string Reproducer(const OracleConfig& config, int step) {
  std::ostringstream out;
  out << "minimal reproducer: RunStreamOracle(seed=" << config.seed
      << ", tau=" << config.tau << ", num_threads=" << config.num_threads
      << ", cards={";
  for (size_t i = 0; i < config.cardinalities.size(); ++i) {
    if (i > 0) out << ",";
    out << config.cardinalities[i];
  }
  out << "}, steps=" << step + 1 << ") — failure at step " << step;
  return out.str();
}

/// The oracle driver: 10k interleaved insert/query steps. Insert steps
/// stream one tuple (occasionally a batch) into the index, the dataset,
/// and a lockstep reference counter; query steps run the full
/// differential against order-normalized FindMups. The first 64 steps
/// always run it (maximum frontier churn near the empty dataset), as
/// does the final step. FindMupsNaive enumerates the whole lattice with
/// no pruning, so the three-way form runs on every fourth query step —
/// frequent enough to catch a shared FindMups/index bug, cheap enough
/// to keep the suite sanitizer-friendly.
void RunStreamOracle(const OracleConfig& config) {
  const data::AttributeSchema schema = MixedSchema(config.cardinalities);
  IncrementalMupOptions index_options;
  index_options.tau = config.tau;
  index_options.num_threads = config.num_threads;
  IncrementalMupIndex index(schema, index_options);

  data::Dataset dataset(schema);
  PatternCounter reference(schema);
  MupFinderOptions find_options;
  find_options.tau = config.tau;
  find_options.num_threads = config.num_threads;

  util::Rng rng(config.seed);
  int full_checks = 0;
  for (int step = 0; step < config.steps; ++step) {
    const bool query_step = step >= 64 && rng.NextBernoulli(0.05);
    const bool full_check =
        step < 64 || query_step || step + 1 == config.steps;

    if (!query_step) {
      const int batch_size =
          rng.NextBernoulli(0.1) ? 1 + static_cast<int>(rng.NextBounded(4))
                                 : 1;
      std::vector<std::vector<int>> batch;
      for (int b = 0; b < batch_size; ++b) {
        batch.push_back(RandomTuple(schema, &rng));
      }
      if (batch_size == 1 && rng.NextBernoulli(0.5)) {
        ASSERT_TRUE(index.Insert(batch[0]).ok()) << Reproducer(config, step);
      } else {
        ASSERT_TRUE(index.InsertBatch(batch).ok())
            << Reproducer(config, step);
      }
      for (const std::vector<int>& values : batch) {
        data::Tuple tuple;
        tuple.values = values;
        ASSERT_TRUE(dataset.Add(std::move(tuple)).ok());
        ASSERT_TRUE(reference.AddTuple(values).ok());
      }
      ASSERT_EQ(index.num_tuples(),
                static_cast<int64_t>(dataset.size()))
          << Reproducer(config, step);
    }

    if (full_check) {
      MupFinder finder(schema, reference);
      const std::vector<Mup> expected = finder.FindMups(find_options);
      const std::vector<Mup> actual = index.Mups();
      ASSERT_TRUE(SameMups(actual, expected))
          << "incremental vs FindMups — " << Reproducer(config, step);
      if (full_checks % 4 == 0 || step + 1 == config.steps) {
        const std::vector<Mup> naive = finder.FindMupsNaive(find_options);
        ASSERT_TRUE(SameMups(expected, naive))
            << "FindMups vs FindMupsNaive — " << Reproducer(config, step);
      }
      ++full_checks;
    } else if (!query_step) {
      // Cheap insert-step invariant: stored counts are exact.
      for (const Mup& mup : index.Mups()) {
        ASSERT_EQ(mup.count, reference.Count(mup.pattern))
            << "stale stored count for " << mup.pattern.ToString() << " — "
            << Reproducer(config, step);
      }
    }
  }
}

// --- the oracle matrix: 5 seeds × {tau 1,3,10} × {1,2,8 threads} ----------

TEST(IncrementalMupOracleTest, Seed101Tau1Serial) {
  OracleConfig config;
  config.seed = 101;
  config.tau = 1;
  config.num_threads = 1;
  RunStreamOracle(config);
}

TEST(IncrementalMupOracleTest, Seed202Tau3TwoThreads) {
  OracleConfig config;
  config.seed = 202;
  config.tau = 3;
  config.num_threads = 2;
  RunStreamOracle(config);
}

TEST(IncrementalMupOracleTest, Seed303Tau10EightThreadsWideSchema) {
  OracleConfig config;
  config.seed = 303;
  config.tau = 10;
  config.num_threads = 8;
  config.cardinalities = {2, 2, 2, 3};
  RunStreamOracle(config);
}

TEST(IncrementalMupOracleTest, Seed404Tau10SerialSkewedSchema) {
  OracleConfig config;
  config.seed = 404;
  config.tau = 10;
  config.num_threads = 1;
  config.cardinalities = {4, 2};
  RunStreamOracle(config);
}

TEST(IncrementalMupOracleTest, Seed505Tau3EightThreads) {
  OracleConfig config;
  config.seed = 505;
  config.tau = 3;
  config.num_threads = 8;
  RunStreamOracle(config);
}

// --- degenerate schemas ----------------------------------------------------

TEST(IncrementalMupOracleTest, SingleAttributeSchema) {
  OracleConfig config;
  config.seed = 606;
  config.tau = 3;
  config.cardinalities = {3};
  config.steps = 500;
  RunStreamOracle(config);
}

TEST(IncrementalMupIndexTest, EmptyDatasetRootIsTheSingleMup) {
  const data::AttributeSchema schema = MixedSchema({2, 3});
  IncrementalMupOptions options;
  options.tau = 5;
  const IncrementalMupIndex index(schema, options);

  const PatternCounter counter(schema);
  MupFinder finder(schema, counter);
  MupFinderOptions find_options;
  find_options.tau = 5;
  EXPECT_TRUE(SameMups(index.Mups(), finder.FindMups(find_options)));
  EXPECT_TRUE(SameMups(index.Mups(), finder.FindMupsNaive(find_options)));
  ASSERT_EQ(index.Mups().size(), 1u);
  EXPECT_EQ(index.Mups()[0].pattern, data::Pattern(2));
  EXPECT_EQ(index.Mups()[0].count, 0);
  EXPECT_EQ(index.Mups()[0].gap, 5);
}

TEST(IncrementalMupIndexTest, FullyCoveredStreamEmptiesTheFrontier) {
  const data::AttributeSchema schema = MixedSchema({2, 2});
  IncrementalMupOptions options;
  options.tau = 1;
  IncrementalMupIndex index(schema, options);
  PatternCounter reference(schema);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      ASSERT_TRUE(index.Insert({a, b}).ok());
      ASSERT_TRUE(reference.AddTuple({a, b}).ok());
    }
  }
  EXPECT_TRUE(index.Mups().empty());
  MupFinder finder(schema, reference);
  MupFinderOptions find_options;
  find_options.tau = 1;
  EXPECT_TRUE(finder.FindMups(find_options).empty());
  EXPECT_TRUE(finder.FindMupsNaive(find_options).empty());
  // Nothing can un-cover: further inserts keep it empty.
  ASSERT_TRUE(index.Insert({0, 0}).ok());
  EXPECT_TRUE(index.Mups().empty());
}

// --- lattice invariant properties, against all three finders ---------------

std::vector<data::Pattern> FullLattice(const data::AttributeSchema& schema) {
  std::vector<data::Pattern> all;
  std::unordered_set<data::Pattern, data::PatternHash> visited;
  std::deque<data::Pattern> frontier;
  const data::Pattern root(schema.num_attributes());
  frontier.push_back(root);
  visited.insert(root);
  while (!frontier.empty()) {
    data::Pattern pattern = frontier.front();
    frontier.pop_front();
    for (auto& child : pattern.Children(schema)) {
      if (visited.insert(child).second) frontier.push_back(std::move(child));
    }
    all.push_back(std::move(pattern));
  }
  return all;
}

/// All strict generalizations of `pattern` (transitive parents).
std::vector<data::Pattern> Ancestors(const data::Pattern& pattern) {
  std::vector<data::Pattern> all;
  std::unordered_set<data::Pattern, data::PatternHash> visited;
  std::deque<data::Pattern> frontier;
  frontier.push_back(pattern);
  while (!frontier.empty()) {
    const data::Pattern current = frontier.front();
    frontier.pop_front();
    for (auto& parent : current.Parents()) {
      if (visited.insert(parent).second) {
        all.push_back(parent);
        frontier.push_back(parent);
      }
    }
  }
  return all;
}

void CheckLatticeInvariants(const data::AttributeSchema& schema,
                            const PatternCounter& counter,
                            const std::vector<Mup>& mups, int64_t tau,
                            const char* finder_name) {
  // 1. Every returned MUP is genuinely uncovered with exact counts.
  for (const Mup& mup : mups) {
    EXPECT_EQ(mup.count, counter.Count(mup.pattern)) << finder_name;
    EXPECT_LT(mup.count, tau) << finder_name;
    EXPECT_EQ(mup.gap, tau - mup.count) << finder_name;
  }
  // 2. No returned MUP has an uncovered ancestor (maximality).
  for (const Mup& mup : mups) {
    for (const data::Pattern& ancestor : Ancestors(mup.pattern)) {
      EXPECT_GE(counter.Count(ancestor), tau)
          << finder_name << ": MUP " << mup.pattern.ToString()
          << " has uncovered ancestor " << ancestor.ToString();
    }
  }
  // 3. Antichain: no MUP contains another.
  for (size_t i = 0; i < mups.size(); ++i) {
    for (size_t j = 0; j < mups.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(mups[i].pattern.Contains(mups[j].pattern))
          << finder_name << ": " << mups[i].pattern.ToString()
          << " contains " << mups[j].pattern.ToString();
    }
  }
  // 4. Completeness: every uncovered pattern has a MUP ancestor-or-self.
  for (const data::Pattern& pattern : FullLattice(schema)) {
    if (counter.Count(pattern) >= tau) continue;
    bool dominated = false;
    for (const Mup& mup : mups) {
      if (mup.pattern.Contains(pattern)) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated)
        << finder_name << ": uncovered " << pattern.ToString()
        << " has no MUP ancestor";
  }
}

TEST(MupLatticeInvariantsTest, HoldForAllThreeFinders) {
  const data::AttributeSchema schema = MixedSchema({2, 3, 2});
  for (const uint64_t seed : {7u, 21u}) {
    for (const int64_t tau : {1, 4, 25}) {
      data::Dataset dataset(schema);
      util::Rng rng(seed);
      for (int t = 0; t < 300; ++t) {
        data::Tuple tuple;
        tuple.values = RandomTuple(schema, &rng);
        ASSERT_TRUE(dataset.Add(std::move(tuple)).ok());
      }
      const PatternCounter counter = *PatternCounter::FromDataset(dataset);
      MupFinder finder(schema, counter);
      MupFinderOptions find_options;
      find_options.tau = tau;
      CheckLatticeInvariants(schema, counter, finder.FindMups(find_options),
                             tau, "FindMups");
      CheckLatticeInvariants(schema, counter,
                             finder.FindMupsNaive(find_options), tau,
                             "FindMupsNaive");
      IncrementalMupOptions index_options;
      index_options.tau = tau;
      const auto index =
          IncrementalMupIndex::FromDataset(dataset, index_options);
      ASSERT_TRUE(index.ok());
      CheckLatticeInvariants(schema, counter, index->Mups(), tau,
                             "IncrementalMupIndex");
    }
  }
}

// --- API contracts ---------------------------------------------------------

TEST(IncrementalMupIndexTest, BatchedInsertEqualsSequentialInserts) {
  const data::AttributeSchema schema = MixedSchema({2, 3, 2});
  IncrementalMupOptions options;
  options.tau = 4;
  IncrementalMupIndex batched(schema, options);
  IncrementalMupIndex sequential(schema, options);
  util::Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::vector<int>> batch;
    const int batch_size = 1 + static_cast<int>(rng.NextBounded(6));
    for (int b = 0; b < batch_size; ++b) {
      batch.push_back(RandomTuple(schema, &rng));
    }
    ASSERT_TRUE(batched.InsertBatch(batch).ok());
    for (const std::vector<int>& values : batch) {
      ASSERT_TRUE(sequential.Insert(values).ok());
    }
    ASSERT_TRUE(SameMups(batched.Mups(), sequential.Mups()))
        << "round " << round;
  }
  EXPECT_EQ(batched.num_tuples(), sequential.num_tuples());
}

TEST(IncrementalMupIndexTest, InvalidTuplesAreRejectedAtomically) {
  const data::AttributeSchema schema = MixedSchema({2, 3});
  IncrementalMupOptions options;
  options.tau = 2;
  IncrementalMupIndex index(schema, options);
  ASSERT_TRUE(index.Insert({1, 2}).ok());
  const std::vector<Mup> before = index.Mups();

  EXPECT_EQ(index.Insert({1}).code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Insert({1, 3}).code(), util::StatusCode::kInvalidArgument);
  // A batch with one bad tuple must change nothing — not even the good
  // tuples before it.
  EXPECT_EQ(index.InsertBatch({{0, 0}, {0, 99}}).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(index.num_tuples(), 1);
  EXPECT_TRUE(SameMups(index.Mups(), before));
}

TEST(IncrementalMupIndexTest, MupsAreBitIdenticalAtEveryThreadCount) {
  const data::AttributeSchema schema = MixedSchema({2, 3, 2});
  std::vector<IncrementalMupIndex> indexes;
  for (const int threads : {1, 2, 8}) {
    IncrementalMupOptions options;
    options.tau = 5;
    options.num_threads = threads;
    indexes.emplace_back(schema, options);
  }
  util::Rng rng(1234);
  for (int step = 0; step < 400; ++step) {
    const std::vector<int> values = RandomTuple(schema, &rng);
    for (IncrementalMupIndex& index : indexes) {
      ASSERT_TRUE(index.Insert(values).ok());
    }
    if (step % 50 == 0 || step == 399) {
      ASSERT_TRUE(SameMups(indexes[1].Mups(), indexes[0].Mups()))
          << "threads=2 diverged at step " << step;
      ASSERT_TRUE(SameMups(indexes[2].Mups(), indexes[0].Mups()))
          << "threads=8 diverged at step " << step;
    }
  }
  // The patch/retire/discover accounting is part of the determinism
  // contract too (the counters feed stable obs metrics).
  EXPECT_EQ(indexes[0].patched(), indexes[1].patched());
  EXPECT_EQ(indexes[0].retired(), indexes[1].retired());
  EXPECT_EQ(indexes[0].discovered(), indexes[1].discovered());
  EXPECT_EQ(indexes[0].patched(), indexes[2].patched());
  EXPECT_EQ(indexes[0].retired(), indexes[2].retired());
  EXPECT_EQ(indexes[0].discovered(), indexes[2].discovered());
}

TEST(IncrementalMupIndexTest, CopiesAreIndependentWarmClones) {
  const data::AttributeSchema schema = MixedSchema({2, 3});
  IncrementalMupOptions options;
  options.tau = 3;
  IncrementalMupIndex base(schema, options);
  ASSERT_TRUE(base.Insert({0, 0}).ok());
  ASSERT_TRUE(base.Insert({1, 1}).ok());

  IncrementalMupIndex clone = base;  // the daemon's warm-cache clone path
  ASSERT_TRUE(clone.Insert({0, 1}).ok());
  ASSERT_TRUE(clone.Insert({0, 1}).ok());
  ASSERT_TRUE(base.Insert({1, 2}).ok());

  // Each copy must match a fresh finder over its own materialized stream
  // (deep counter copy, no shared postings, live schema).
  const auto check = [&schema](const IncrementalMupIndex& index,
                               const std::vector<std::vector<int>>& stream) {
    PatternCounter counter(schema);
    for (const auto& values : stream) {
      ASSERT_TRUE(counter.AddTuple(values).ok());
    }
    MupFinder finder(schema, counter);
    MupFinderOptions find_options;
    find_options.tau = 3;
    EXPECT_TRUE(SameMups(index.Mups(), finder.FindMups(find_options)));
  };
  check(base, {{0, 0}, {1, 1}, {1, 2}});
  check(clone, {{0, 0}, {1, 1}, {0, 1}, {0, 1}});
}

TEST(IncrementalMupIndexTest, MaxLevelMatchesBoundedFinder) {
  const data::AttributeSchema schema = MixedSchema({2, 3, 2});
  IncrementalMupOptions index_options;
  index_options.tau = 6;
  index_options.max_level = 2;
  IncrementalMupIndex index(schema, index_options);
  PatternCounter reference(schema);
  util::Rng rng(55);
  for (int step = 0; step < 300; ++step) {
    const std::vector<int> values = RandomTuple(schema, &rng);
    ASSERT_TRUE(index.Insert(values).ok());
    ASSERT_TRUE(reference.AddTuple(values).ok());
    if (step % 25 == 0 || step == 299) {
      MupFinder finder(schema, reference);
      MupFinderOptions find_options;
      find_options.tau = 6;
      find_options.max_level = 2;
      ASSERT_TRUE(SameMups(index.Mups(), finder.FindMups(find_options)))
          << "step " << step;
    }
  }
}

TEST(IncrementalMupIndexTest, ObsCountersAndInsertHistogramAreRecorded) {
  obs::Observability observability;
  const data::AttributeSchema schema = MixedSchema({2, 2});
  IncrementalMupOptions options;
  options.tau = 1;
  options.observability = &observability;
  IncrementalMupIndex index(schema, options);
  // tau=1 and the empty index: the root is the single MUP; the first
  // insert patches it past tau, retires it, and discovers the uncovered
  // children the expansion exposes.
  ASSERT_TRUE(index.Insert({0, 0}).ok());
  EXPECT_GT(index.patched(), 0);
  EXPECT_GT(index.retired(), 0);
  EXPECT_GT(index.discovered(), 0);

  bool saw_patched = false;
  bool saw_retired = false;
  bool saw_insert_ns = false;
  for (const obs::MetricSample& sample : observability.registry.Snapshot()) {
    if (sample.name == "mup.incremental.patched") {
      saw_patched = true;
      EXPECT_EQ(sample.value, static_cast<double>(index.patched()));
    } else if (sample.name == "mup.incremental.retired") {
      saw_retired = true;
      EXPECT_EQ(sample.value, static_cast<double>(index.retired()));
    } else if (sample.name == "mup.incremental.insert_ns") {
      saw_insert_ns = true;
    }
  }
  EXPECT_TRUE(saw_patched);
  EXPECT_TRUE(saw_retired);
  EXPECT_TRUE(saw_insert_ns);

  // The wall-time histogram is exempt from the determinism contract; the
  // patch accounting is not.
  EXPECT_TRUE(obs::IsStableMetric("mup.incremental.patched"));
  EXPECT_TRUE(obs::IsStableMetric("mup.incremental.retired"));
  EXPECT_TRUE(obs::IsStableMetric("mup.incremental.discovered"));
  EXPECT_FALSE(obs::IsStableMetric("mup.incremental.insert_ns"));
}

}  // namespace
}  // namespace chameleon::coverage
