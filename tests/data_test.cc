#include <unordered_set>

#include "gtest/gtest.h"
#include "src/data/dataset.h"
#include "src/data/pattern.h"
#include "src/data/schema.h"

namespace chameleon::data {
namespace {

AttributeSchema MakeSchema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute({"gender", {"M", "F"}, false}).ok());
  EXPECT_TRUE(
      schema.AddAttribute({"race", {"A", "B", "C"}, false}).ok());
  EXPECT_TRUE(
      schema.AddAttribute({"age", {"0", "1", "2", "3"}, true}).ok());
  return schema;
}

TEST(SchemaTest, RejectsDegenerateDomains) {
  AttributeSchema schema;
  EXPECT_FALSE(schema.AddAttribute({"x", {"only"}, false}).ok());
  EXPECT_FALSE(schema.AddAttribute({"x", {}, false}).ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute({"x", {"0", "1"}, false}).ok());
  EXPECT_FALSE(schema.AddAttribute({"x", {"a", "b"}, false}).ok());
}

TEST(SchemaTest, FindAttribute) {
  const AttributeSchema schema = MakeSchema();
  EXPECT_EQ(schema.FindAttribute("race"), 1);
  EXPECT_EQ(schema.FindAttribute("nope"), -1);
}

TEST(SchemaTest, NumCombinationsIsDomainProduct) {
  EXPECT_EQ(MakeSchema().NumCombinations(), 2 * 3 * 4);
}

TEST(SchemaTest, CombinationIndexRoundTrips) {
  const AttributeSchema schema = MakeSchema();
  std::unordered_set<int64_t> seen;
  for (int g = 0; g < 2; ++g) {
    for (int r = 0; r < 3; ++r) {
      for (int a = 0; a < 4; ++a) {
        const std::vector<int> values = {g, r, a};
        const int64_t index = schema.CombinationIndex(values);
        EXPECT_GE(index, 0);
        EXPECT_LT(index, schema.NumCombinations());
        EXPECT_TRUE(seen.insert(index).second) << "index collision";
        EXPECT_EQ(schema.CombinationFromIndex(index), values);
      }
    }
  }
  EXPECT_EQ(seen.size(), 24u);
}

TEST(SchemaTest, IsValidCombination) {
  const AttributeSchema schema = MakeSchema();
  EXPECT_TRUE(schema.IsValidCombination({0, 2, 3}));
  EXPECT_FALSE(schema.IsValidCombination({0, 3, 3}));  // race out of range
  EXPECT_FALSE(schema.IsValidCombination({0, 2}));     // wrong arity
  EXPECT_FALSE(schema.IsValidCombination({-1, 0, 0}));
}

TEST(SchemaTest, CombinationToString) {
  const AttributeSchema schema = MakeSchema();
  EXPECT_EQ(schema.CombinationToString({1, 0, 2}),
            "gender=F, race=A, age=2");
}

TEST(PatternTest, LevelCountsSpecifiedCells) {
  EXPECT_EQ(Pattern(3).Level(), 0);
  EXPECT_EQ(Pattern({0, Pattern::kUnspecified, 2}).Level(), 2);
  EXPECT_EQ(Pattern({0, 1, 2}).Level(), 3);
}

TEST(PatternTest, MatchesChecksOnlySpecifiedCells) {
  const Pattern p({Pattern::kUnspecified, 1, Pattern::kUnspecified});
  EXPECT_TRUE(p.Matches({0, 1, 3}));
  EXPECT_TRUE(p.Matches({1, 1, 0}));
  EXPECT_FALSE(p.Matches({0, 2, 3}));
}

TEST(PatternTest, RootMatchesEverything) {
  const Pattern root(3);
  EXPECT_TRUE(root.Matches({0, 0, 0}));
  EXPECT_TRUE(root.Matches({1, 2, 3}));
}

TEST(PatternTest, ContainsIsSubgroupContainment) {
  const Pattern general({Pattern::kUnspecified, 1, Pattern::kUnspecified});
  const Pattern specific({0, 1, 2});
  EXPECT_TRUE(general.Contains(specific));
  EXPECT_FALSE(specific.Contains(general));
  EXPECT_TRUE(general.Contains(general));
  const Pattern other({0, 2, 2});
  EXPECT_FALSE(general.Contains(other));
}

TEST(PatternTest, ParentsRelaxOneCell) {
  const Pattern p({0, 1, Pattern::kUnspecified});
  const auto parents = p.Parents();
  ASSERT_EQ(parents.size(), 2u);
  for (const auto& parent : parents) {
    EXPECT_EQ(parent.Level(), 1);
    EXPECT_TRUE(parent.Contains(p));
  }
}

TEST(PatternTest, ChildrenBindEachUnspecifiedCell) {
  const AttributeSchema schema = MakeSchema();
  const Pattern p({0, Pattern::kUnspecified, Pattern::kUnspecified});
  const auto children = p.Children(schema);
  EXPECT_EQ(children.size(), 3u + 4u);  // race values + age values
  for (const auto& child : children) {
    EXPECT_EQ(child.Level(), 2);
    EXPECT_TRUE(p.Contains(child));
  }
}

TEST(PatternTest, ToStringUsesXAndBrackets) {
  EXPECT_EQ(Pattern({Pattern::kUnspecified, 0, 1}).ToString(), "X01");
  EXPECT_EQ(Pattern({12, Pattern::kUnspecified}).ToString(), "[12]X");
}

TEST(PatternTest, ToStringWithSchemaNamesValues) {
  const AttributeSchema schema = MakeSchema();
  const Pattern p({Pattern::kUnspecified, 1, Pattern::kUnspecified});
  EXPECT_EQ(p.ToString(schema), "race=B");
  EXPECT_EQ(Pattern(3).ToString(schema), "<all>");
}

TEST(PatternTest, HashDistinguishesUnspecifiedFromZero) {
  PatternHash hash;
  const Pattern a({0, 0});
  const Pattern b({0, Pattern::kUnspecified});
  EXPECT_NE(a, b);
  // Not a strict requirement, but collisions here would be suspicious.
  EXPECT_NE(hash(a), hash(b));
}

TEST(DatasetTest, AddValidatesSchema) {
  Dataset dataset(MakeSchema());
  Tuple good;
  good.values = {0, 1, 2};
  EXPECT_TRUE(dataset.Add(good).ok());
  Tuple bad;
  bad.values = {0, 9, 2};
  EXPECT_FALSE(dataset.Add(bad).ok());
  EXPECT_EQ(dataset.size(), 1u);
}

TEST(DatasetTest, CountMatchingAndIndices) {
  Dataset dataset(MakeSchema());
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i <= r; ++i) {
      Tuple t;
      t.values = {0, r, 0};
      ASSERT_TRUE(dataset.Add(t).ok());
    }
  }
  const Pattern race_b({Pattern::kUnspecified, 1, Pattern::kUnspecified});
  EXPECT_EQ(dataset.CountMatching(race_b), 2);
  EXPECT_EQ(dataset.IndicesMatching(race_b).size(), 2u);
  EXPECT_EQ(dataset.CountMatching(Pattern(3)),
            static_cast<int64_t>(dataset.size()));
}

TEST(DatasetTest, CombinationHistogram) {
  Dataset dataset(MakeSchema());
  Tuple t;
  t.values = {1, 2, 3};
  ASSERT_TRUE(dataset.Add(t).ok());
  ASSERT_TRUE(dataset.Add(t).ok());
  t.values = {0, 0, 0};
  ASSERT_TRUE(dataset.Add(t).ok());
  const auto histogram = dataset.CombinationHistogram();
  EXPECT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram.at(dataset.schema().CombinationIndex({1, 2, 3})), 2);
}

TEST(DatasetTest, NumSyntheticCountsFlagged) {
  Dataset dataset(MakeSchema());
  Tuple t;
  t.values = {0, 0, 0};
  ASSERT_TRUE(dataset.Add(t).ok());
  t.synthetic = true;
  ASSERT_TRUE(dataset.Add(t).ok());
  EXPECT_EQ(dataset.NumSynthetic(), 1);
}

TEST(DatasetTest, EmbeddingMeanSkipsMissing) {
  Dataset dataset(MakeSchema());
  Tuple t;
  t.values = {0, 0, 0};
  t.embedding = {1.0, 3.0};
  ASSERT_TRUE(dataset.Add(t).ok());
  t.embedding = {3.0, 5.0};
  ASSERT_TRUE(dataset.Add(t).ok());
  t.embedding.clear();
  ASSERT_TRUE(dataset.Add(t).ok());
  const auto mean = dataset.EmbeddingMean();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

}  // namespace
}  // namespace chameleon::data
