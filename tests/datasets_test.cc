#include "gtest/gtest.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/datasets/feret.h"
#include "src/datasets/utkface.h"
#include "src/embedding/simulated_embedder.h"

namespace chameleon::datasets {
namespace {

TEST(FeretTest, SchemaShape) {
  const auto schema = FeretSchema();
  EXPECT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(schema.attribute(kFeretGender).cardinality(), 2);
  EXPECT_EQ(schema.attribute(kFeretEthnicity).cardinality(), 5);
  EXPECT_FALSE(schema.attribute(kFeretEthnicity).ordinal);
  EXPECT_EQ(schema.NumCombinations(), 10);
}

TEST(FeretTest, TrainCountsMatchTable2) {
  const auto counts = FeretTrainCounts();
  int64_t total = 0;
  int64_t white = 0;
  int64_t middle_eastern_female = 0;
  for (const auto& [values, count] : counts) {
    total += count;
    if (values[kFeretEthnicity] == kFeretWhite) white += count;
    if (values[kFeretEthnicity] == kFeretMiddleEastern &&
        values[kFeretGender] == 1) {
      middle_eastern_female += count;
    }
  }
  EXPECT_EQ(total, 756);
  EXPECT_EQ(white, 560);
  EXPECT_EQ(middle_eastern_female, 1);
}

TEST(FeretTest, CorpusMatchesCountsAnnotationOnly) {
  const embedding::SimulatedEmbedder embedder;
  FeretOptions options;
  options.render.render_images = false;
  auto corpus = MakeFeret(&embedder, options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->dataset.size(), 756u);
  EXPECT_TRUE(corpus->images.empty());
  EXPECT_EQ(corpus->dataset.CountMatching(
                data::Pattern({data::Pattern::kUnspecified, kFeretBlack})),
            40);
}

TEST(FeretTest, RenderedCorpusHasPayloadsAndEmbeddings) {
  const embedding::SimulatedEmbedder embedder;
  FeretOptions options;
  auto corpus = MakeFeret(&embedder, options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->images.size(), 756u);
  EXPECT_EQ(corpus->realism.size(), 756u);
  for (const auto& t : corpus->dataset.tuples()) {
    EXPECT_EQ(t.embedding.size(), static_cast<size_t>(embedder.dim()));
    EXPECT_GE(t.payload_id, 0);
    EXPECT_FALSE(t.synthetic);
  }
  // Real-photo realism sits near the calibration target.
  double mean = 0.0;
  for (double r : corpus->realism) mean += r;
  mean /= corpus->realism.size();
  EXPECT_NEAR(mean, 0.92, 0.02);
}

TEST(FeretTest, UncoveredGroupsAtPaperThreshold) {
  const embedding::SimulatedEmbedder embedder;
  FeretOptions options;
  options.render.render_images = false;
  auto corpus = MakeFeret(&embedder, options);
  ASSERT_TRUE(corpus.ok());
  const auto counter = *coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(corpus->dataset.schema(), counter);
  coverage::MupFinderOptions mup_options;
  mup_options.tau = 100;
  const auto mups = finder.FindMups(mup_options);
  // The paper: Black, Hispanic and Middle Eastern are the uncovered
  // level-1 groups at tau = 100. (Deeper level-2 MUPs under covered
  // parents may exist too; the repair targets the minimum level.)
  const auto level1 = coverage::MupFinder::MinLevel(mups);
  ASSERT_EQ(level1.size(), 3u);
  for (const auto& m : level1) {
    EXPECT_EQ(m.Level(), 1);
    EXPECT_TRUE(m.pattern.IsSpecified(kFeretEthnicity));
    const int e = m.pattern.cell(kFeretEthnicity);
    EXPECT_TRUE(e == kFeretBlack || e == kFeretHispanic ||
                e == kFeretMiddleEastern);
  }
}

TEST(FeretTest, TestSetValidatesArguments) {
  const embedding::SimulatedEmbedder embedder;
  FeretOptions options;
  options.render.render_images = false;
  EXPECT_FALSE(MakeFeretTestSet(&embedder, options, {1, 2}).ok());
  auto test = MakeFeretTestSet(&embedder, options, {10, 10, 10, 10, 10});
  ASSERT_TRUE(test.ok());
  EXPECT_EQ(test->dataset.size(), 50u);
}

TEST(UtkFaceTest, SchemaShape) {
  const auto schema = UtkFaceSchema();
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_TRUE(schema.attribute(kUtkAgeGroup).ordinal);
  EXPECT_EQ(schema.NumCombinations(), 2 * 5 * 9);
}

TEST(UtkFaceTest, CorpusSizeAndMarginals) {
  const embedding::SimulatedEmbedder embedder;
  UtkFaceOptions options;
  options.render.render_images = false;
  options.num_tuples = 20000;
  auto corpus = MakeUtkFace(&embedder, options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->dataset.size(), 20000u);
  // White is the plurality race; the 20-29 bucket is the modal age.
  const auto white = corpus->dataset.CountMatching(data::Pattern(
      {data::Pattern::kUnspecified, 0, data::Pattern::kUnspecified}));
  EXPECT_GT(white, 7000);
  const auto modal_age = corpus->dataset.CountMatching(data::Pattern(
      {data::Pattern::kUnspecified, data::Pattern::kUnspecified, 3}));
  EXPECT_GT(modal_age, 4500);
}

TEST(UtkFaceTest, Figure6ThresholdRegimes) {
  const embedding::SimulatedEmbedder embedder;
  UtkFaceOptions options;
  options.render.render_images = false;
  auto corpus = MakeUtkFace(&embedder, options);
  ASSERT_TRUE(corpus.ok());
  const auto counter = *coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(corpus->dataset.schema(), counter);

  // tau = 200/350: no level-1 MUPs; tau = 1000/2000: level-1 MUPs exist.
  for (int64_t tau : {200, 350}) {
    coverage::MupFinderOptions mup_options;
    mup_options.tau = tau;
    const auto mups = finder.FindMups(mup_options);
    ASSERT_FALSE(mups.empty()) << tau;
    EXPECT_GE(coverage::MupFinder::MinLevel(mups)[0].Level(), 2) << tau;
  }
  for (int64_t tau : {1000, 2000}) {
    coverage::MupFinderOptions mup_options;
    mup_options.tau = tau;
    const auto mups = finder.FindMups(mup_options);
    ASSERT_FALSE(mups.empty()) << tau;
    EXPECT_EQ(coverage::MupFinder::MinLevel(mups)[0].Level(), 1) << tau;
  }
}

TEST(UtkFaceTest, ChallengeRarePatternsAreSixteenLevel3) {
  const auto rare = ChallengeRarePatterns();
  EXPECT_EQ(rare.size(), 16u);
  for (const auto& p : rare) {
    EXPECT_EQ(p.Level(), 3);
  }
  // Two per age bucket 1..8, differing in gender and race.
  for (int age = 1; age <= 8; ++age) {
    int found = 0;
    for (const auto& p : rare) {
      if (p.cell(kUtkAgeGroup) == age) ++found;
    }
    EXPECT_EQ(found, 2) << "age bucket " << age;
  }
}

TEST(UtkFaceTest, ChallengeSubsetYieldsExactlyTheDesignedMups) {
  const embedding::SimulatedEmbedder embedder;
  ChallengeOptions options;
  options.render.render_images = false;
  auto corpus = MakeUtkFaceChallengeSubset(&embedder, options);
  ASSERT_TRUE(corpus.ok());
  const auto counter = *coverage::PatternCounter::FromDataset(corpus->dataset);
  coverage::MupFinder finder(corpus->dataset.schema(), counter);
  coverage::MupFinderOptions mup_options;
  mup_options.tau = 10;
  const auto mups = finder.FindMups(mup_options);
  ASSERT_EQ(mups.size(), 16u);
  const auto rare = ChallengeRarePatterns();
  for (const auto& m : mups) {
    EXPECT_EQ(m.Level(), 3);
    EXPECT_EQ(m.count, options.rare_count);
    bool designed = false;
    for (const auto& p : rare) designed |= p == m.pattern;
    EXPECT_TRUE(designed) << m.pattern.ToString();
  }
}

}  // namespace
}  // namespace chameleon::datasets
