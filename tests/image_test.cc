#include <cstdio>
#include <filesystem>

#include "gtest/gtest.h"
#include "src/image/draw.h"
#include "src/image/face_renderer.h"
#include "src/image/filter.h"
#include "src/image/foreground.h"
#include "src/image/image.h"
#include "src/image/mask_generator.h"
#include "src/image/pnm_io.h"
#include "src/util/rng.h"

namespace chameleon::image {
namespace {

Image MakeTestFace(int size = 64, uint64_t seed = 3) {
  util::Rng rng(seed);
  const FaceStyle style = MakeFaceStyle(1, 5, false, 0.4, &rng);
  SceneStyle scene;
  RenderOptions options;
  options.size = size;
  return RenderFace(style, scene, options, &rng);
}

TEST(ImageTest, ConstructionAndAccess) {
  Image img(4, 3, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.at(2, 1, 2), 7);
  EXPECT_TRUE(img.InBounds(3, 2));
  EXPECT_FALSE(img.InBounds(4, 0));
  EXPECT_FALSE(img.InBounds(0, -1));
  EXPECT_TRUE(Image().empty());
}

TEST(ImageTest, SetPixelClipsOutOfBounds) {
  Image img(2, 2, 3);
  img.SetPixel(5, 5, 255, 0, 0);  // silently ignored
  img.SetPixel(1, 1, 10, 20, 30);
  EXPECT_EQ(img.at(1, 1, 0), 10);
  EXPECT_EQ(img.at(1, 1, 2), 30);
}

TEST(ImageTest, GrayscaleUsesLuminance) {
  Image img(1, 1, 3);
  img.SetPixel(0, 0, 255, 0, 0);
  const Image gray = img.ToGrayscale();
  EXPECT_EQ(gray.channels(), 1);
  EXPECT_NEAR(gray.at(0, 0, 0), 76, 1);  // 0.299 * 255
}

TEST(ImageTest, ResizedPreservesContentRegions) {
  Image img(8, 8, 1, 0);
  FillRect(&img, 0, 0, 4, 8, Color{255, 255, 255});
  const Image half = img.Resized(4, 4);
  EXPECT_EQ(half.width(), 4);
  EXPECT_EQ(half.at(0, 0, 0), 255);
  EXPECT_EQ(half.at(3, 0, 0), 0);
}

TEST(ImageTest, NonZeroFraction) {
  Image mask(4, 4, 1, 0);
  mask.at(0, 0, 0) = 255;
  mask.at(1, 1, 0) = 255;
  EXPECT_DOUBLE_EQ(mask.NonZeroFraction(), 2.0 / 16.0);
}

TEST(ImageTest, CompositeWithMask) {
  Image bg(2, 2, 3, 0);
  Image fg(2, 2, 3, 200);
  Image mask(2, 2, 1, 0);
  mask.at(1, 0, 0) = 255;
  const Image out = CompositeWithMask(bg, fg, mask);
  EXPECT_EQ(out.at(1, 0, 0), 200);
  EXPECT_EQ(out.at(0, 0, 0), 0);
}

TEST(DrawTest, FillRectClipsToBounds) {
  Image img(4, 4, 1, 0);
  FillRect(&img, -2, -2, 2, 2, Color{9, 9, 9});
  EXPECT_EQ(img.at(0, 0, 0), 9);
  EXPECT_EQ(img.at(1, 1, 0), 9);
  EXPECT_EQ(img.at(2, 2, 0), 0);
}

TEST(DrawTest, FillCircleCoversCenterNotCorner) {
  Image img(9, 9, 1, 0);
  FillCircle(&img, 4, 4, 3, Color{255, 255, 255});
  EXPECT_EQ(img.at(4, 4, 0), 255);
  EXPECT_EQ(img.at(0, 0, 0), 0);
  EXPECT_EQ(img.at(4, 1, 0), 255);  // on the radius
}

TEST(DrawTest, GradientIsMonotone) {
  Image img(2, 16, 1);
  FillVerticalGradient(&img, Color{0, 0, 0}, Color{255, 255, 255});
  for (int y = 1; y < 16; ++y) {
    EXPECT_GE(img.at(0, y, 0), img.at(0, y - 1, 0));
  }
}

TEST(DrawTest, LineTouchesEndpoints) {
  Image img(8, 8, 1, 0);
  DrawLine(&img, 0, 0, 7, 7, Color{255, 255, 255});
  EXPECT_EQ(img.at(0, 0, 0), 255);
  EXPECT_EQ(img.at(7, 7, 0), 255);
  EXPECT_EQ(img.at(3, 3, 0), 255);
}

TEST(FilterTest, GaussianBlurPreservesFlatRegions) {
  Image img(16, 16, 1, 100);
  const Image blurred = GaussianBlur(img, 1.5);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_NEAR(blurred.at(x, y, 0), 100, 1);
    }
  }
}

TEST(FilterTest, GaussianBlurSmoothsEdges) {
  Image img(16, 16, 1, 0);
  FillRect(&img, 8, 0, 16, 16, Color{255, 255, 255});
  const Image blurred = GaussianBlur(img, 2.0);
  const int edge = blurred.at(8, 8, 0);
  EXPECT_GT(edge, 30);
  EXPECT_LT(edge, 225);
}

TEST(FilterTest, NoiseChangesPixels) {
  Image img(16, 16, 1, 128);
  util::Rng rng(5);
  AddGaussianNoise(&img, 20.0, &rng);
  int changed = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) changed += img.at(x, y, 0) != 128;
  }
  EXPECT_GT(changed, 200);
}

TEST(FilterTest, DilateDiscGrowsMask) {
  Image mask(11, 11, 1, 0);
  mask.at(5, 5, 0) = 255;
  const Image dilated = DilateDisc(mask, 3);
  EXPECT_EQ(dilated.at(5, 5, 0), 255);
  EXPECT_EQ(dilated.at(5, 2, 0), 255);
  EXPECT_EQ(dilated.at(5, 1, 0), 0);
  EXPECT_GT(dilated.NonZeroFraction(), mask.NonZeroFraction());
}

TEST(PnmIoTest, RoundTripsRgbAndGray) {
  const std::string dir = ::testing::TempDir();
  const Image face = MakeTestFace(32);
  const std::string rgb_path = dir + "/face.ppm";
  ASSERT_TRUE(WritePnm(face, rgb_path).ok());
  auto rgb_read = ReadPnm(rgb_path);
  ASSERT_TRUE(rgb_read.ok());
  EXPECT_EQ(*rgb_read, face);

  const Image gray = face.ToGrayscale();
  const std::string gray_path = dir + "/face.pgm";
  ASSERT_TRUE(WritePnm(gray, gray_path).ok());
  auto gray_read = ReadPnm(gray_path);
  ASSERT_TRUE(gray_read.ok());
  EXPECT_EQ(*gray_read, gray);
}

TEST(PnmIoTest, ErrorsOnBadInputs) {
  EXPECT_FALSE(WritePnm(Image(), "/tmp/empty.ppm").ok());
  EXPECT_FALSE(ReadPnm("/nonexistent/path.ppm").ok());
  EXPECT_FALSE(WritePnm(MakeTestFace(8), "/nonexistent/dir/x.ppm").ok());
}

TEST(FaceRendererTest, ProducesPlausiblePortrait) {
  const Image face = MakeTestFace(64);
  EXPECT_EQ(face.width(), 64);
  EXPECT_EQ(face.channels(), 3);
  // The center (face) should differ from the top corner (background).
  double center = face.Luminance(32, 34);
  double corner = face.Luminance(1, 1);
  EXPECT_GT(std::abs(center - corner), 10.0);
}

TEST(FaceRendererTest, SkinGroupsDifferInTone) {
  util::Rng rng(5);
  const FaceStyle light = MakeFaceStyle(0, 5, false, 0.3, &rng);
  const FaceStyle dark = MakeFaceStyle(4, 5, false, 0.3, &rng);
  const double light_lum =
      0.299 * light.skin.r + 0.587 * light.skin.g + 0.114 * light.skin.b;
  const double dark_lum =
      0.299 * dark.skin.r + 0.587 * dark.skin.g + 0.114 * dark.skin.b;
  EXPECT_GT(light_lum, dark_lum);
}

TEST(FaceRendererTest, FeminineStyleHasMoreHairNoBeard) {
  util::Rng rng(6);
  const FaceStyle feminine = MakeFaceStyle(0, 5, true, 0.3, &rng);
  const FaceStyle masculine = MakeFaceStyle(0, 5, false, 0.3, &rng);
  EXPECT_GT(feminine.hair_volume, masculine.hair_volume);
  EXPECT_EQ(feminine.beard, 0.0);
}

TEST(FaceRendererTest, ArtifactsReduceSimilarityToCleanRender) {
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const FaceStyle style = MakeFaceStyle(2, 5, false, 0.5, &rng_a);
  (void)MakeFaceStyle(2, 5, false, 0.5, &rng_b);  // keep streams aligned
  SceneStyle scene;
  RenderOptions clean;
  clean.size = 64;
  RenderOptions noisy = clean;
  noisy.artifact_level = 0.8;
  const Image a = RenderFace(style, scene, clean, &rng_a);
  const Image b = RenderFace(style, scene, noisy, &rng_b);
  EXPECT_GT(MeanAbsoluteDifference(a, b), 4.0);
}

TEST(FaceRendererTest, JitterSceneShiftsColors) {
  util::Rng rng(10);
  SceneStyle base;
  const SceneStyle jittered = JitterScene(base, 25.0, &rng);
  const int diff = std::abs(jittered.background_top.r -
                            base.background_top.r) +
                   std::abs(jittered.background_top.g -
                            base.background_top.g) +
                   std::abs(jittered.background_top.b -
                            base.background_top.b);
  EXPECT_GT(diff, 0);
  // Zero jitter is identity.
  const SceneStyle same = JitterScene(base, 0.0, &rng);
  EXPECT_EQ(same.background_top.r, base.background_top.r);
}

TEST(ForegroundTest, ExtractsCentralSubject) {
  const Image face = MakeTestFace(64);
  const Image mask = ExtractForeground(face);
  EXPECT_EQ(mask.channels(), 1);
  // Subject present but not the whole frame.
  const double fraction = mask.NonZeroFraction();
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.95);
  // The face center is foreground; the top corners are background.
  EXPECT_NE(mask.at(32, 34, 0), 0);
  EXPECT_EQ(mask.at(1, 1, 0), 0);
  EXPECT_EQ(mask.at(62, 1, 0), 0);
}

TEST(ForegroundTest, BoundingBox) {
  Image mask(8, 8, 1, 0);
  int x0;
  int y0;
  int x1;
  int y1;
  EXPECT_FALSE(MaskBoundingBox(mask, &x0, &y0, &x1, &y1));
  mask.at(2, 3, 0) = 255;
  mask.at(5, 6, 0) = 255;
  ASSERT_TRUE(MaskBoundingBox(mask, &x0, &y0, &x1, &y1));
  EXPECT_EQ(x0, 2);
  EXPECT_EQ(y0, 3);
  EXPECT_EQ(x1, 5);
  EXPECT_EQ(y1, 6);
}

TEST(MaskGeneratorTest, LevelsAreOrderedBySize) {
  const Image face = MakeTestFace(64);
  const Image accurate = GenerateMask(face, MaskLevel::kAccurate);
  const Image moderate = GenerateMask(face, MaskLevel::kModerate);
  const Image imprecise = GenerateMask(face, MaskLevel::kImprecise);
  // Moderate dilates the accurate outline; the bounding box covers the
  // accurate mask.
  EXPECT_GT(moderate.NonZeroFraction(), accurate.NonZeroFraction());
  EXPECT_GE(imprecise.NonZeroFraction(), accurate.NonZeroFraction());
  // Accurate mask pixels are inside both of the relaxed masks.
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (accurate.at(x, y, 0) != 0) {
        EXPECT_NE(moderate.at(x, y, 0), 0);
        EXPECT_NE(imprecise.at(x, y, 0), 0);
      }
    }
  }
}

TEST(MaskGeneratorTest, ImpreciseIsARectangle) {
  const Image face = MakeTestFace(64);
  const Image box = GenerateMask(face, MaskLevel::kImprecise);
  int x0;
  int y0;
  int x1;
  int y1;
  ASSERT_TRUE(MaskBoundingBox(box, &x0, &y0, &x1, &y1));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      EXPECT_NE(box.at(x, y, 0), 0);
    }
  }
}

TEST(MaskGeneratorTest, NamesAreStable) {
  EXPECT_STREQ(MaskLevelName(MaskLevel::kAccurate), "Accurate");
  EXPECT_STREQ(MaskLevelName(MaskLevel::kModerate), "Moderate");
  EXPECT_STREQ(MaskLevelName(MaskLevel::kImprecise), "Imprecise");
}

}  // namespace
}  // namespace chameleon::image
