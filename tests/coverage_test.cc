#include <algorithm>

#include "gtest/gtest.h"
#include "src/coverage/mup_finder.h"
#include "src/coverage/pattern_counter.h"
#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace chameleon::coverage {
namespace {

data::AttributeSchema BinarySchema(int d) {
  data::AttributeSchema schema;
  for (int i = 0; i < d; ++i) {
    // Built with += rather than operator+ to dodge GCC 12's -Wrestrict
    // false positive on char*/std::string concatenation (GCC PR105651).
    std::string name = "x";
    name += std::to_string(i);
    EXPECT_TRUE(
        schema.AddAttribute({std::move(name), {"0", "1"}, false}).ok());
  }
  return schema;
}

data::Dataset RandomDataset(const data::AttributeSchema& schema, int n,
                            uint64_t seed) {
  data::Dataset dataset(schema);
  util::Rng rng(seed);
  for (int t = 0; t < n; ++t) {
    data::Tuple tuple;
    tuple.values.resize(schema.num_attributes());
    for (int i = 0; i < schema.num_attributes(); ++i) {
      tuple.values[i] = rng.NextBernoulli(0.2 + 0.15 * i);
    }
    EXPECT_TRUE(dataset.Add(std::move(tuple)).ok());
  }
  return dataset;
}

TEST(PatternCounterTest, OutOfSchemaTupleIsAStatusNotACrash) {
  // Dataset::Add validates on ingest, but tuples are mutable in place
  // (corpus post-processing edits them), so FromDataset can legitimately
  // meet values outside the schema. That used to abort the process; it
  // must surface as a Status instead.
  const auto schema = BinarySchema(2);
  data::Dataset dataset(schema);
  data::Tuple tuple;
  tuple.values = {0, 1};
  ASSERT_TRUE(dataset.Add(std::move(tuple)).ok());
  dataset.mutable_tuple(0).values[1] = 999;  // corrupt after ingest

  const auto counter = PatternCounter::FromDataset(dataset);
  ASSERT_FALSE(counter.ok());
  EXPECT_EQ(counter.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(PatternCounterTest, MatchesLinearScan) {
  const auto schema = BinarySchema(4);
  const auto dataset = RandomDataset(schema, 500, 3);
  const auto counter = *PatternCounter::FromDataset(dataset);
  EXPECT_EQ(counter.num_tuples(), 500);

  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    data::Pattern pattern(4);
    for (int i = 0; i < 4; ++i) {
      const int choice = static_cast<int>(rng.NextBounded(3));
      if (choice < 2) pattern = pattern.WithCell(i, choice);
    }
    EXPECT_EQ(counter.Count(pattern), dataset.CountMatching(pattern))
        << pattern.ToString();
  }
}

TEST(PatternCounterTest, MatchingReturnsSortedIds) {
  const auto schema = BinarySchema(3);
  const auto dataset = RandomDataset(schema, 100, 9);
  const auto counter = *PatternCounter::FromDataset(dataset);
  const data::Pattern pattern({1, data::Pattern::kUnspecified,
                               data::Pattern::kUnspecified});
  const auto ids = counter.Matching(pattern);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(static_cast<int64_t>(ids.size()), counter.Count(pattern));
  for (int64_t id : ids) {
    EXPECT_TRUE(pattern.Matches(dataset.tuple(id).values));
  }
}

TEST(PatternCounterTest, IncrementalAddKeepsCountsInSync) {
  const auto schema = BinarySchema(2);
  PatternCounter counter(schema);
  EXPECT_EQ(counter.Count(data::Pattern(2)), 0);
  EXPECT_TRUE(counter.AddTuple({0, 1}).ok());
  EXPECT_TRUE(counter.AddTuple({0, 1}).ok());
  EXPECT_TRUE(counter.AddTuple({1, 0}).ok());
  EXPECT_EQ(counter.Count(data::Pattern({0, 1})), 2);
  EXPECT_EQ(counter.Count(data::Pattern({0, data::Pattern::kUnspecified})),
            2);
  EXPECT_EQ(counter.Count(data::Pattern(2)), 3);
}

TEST(MupFinderTest, EmptyWhenFullyCovered) {
  const auto schema = BinarySchema(2);
  data::Dataset dataset(schema);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int i = 0; i < 5; ++i) {
        data::Tuple t;
        t.values = {a, b};
        ASSERT_TRUE(dataset.Add(t).ok());
      }
    }
  }
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 5;
  EXPECT_TRUE(finder.FindMups(options).empty());
}

TEST(MupFinderTest, RootIsMupWhenDatasetTooSmall) {
  const auto schema = BinarySchema(2);
  data::Dataset dataset(schema);
  data::Tuple t;
  t.values = {0, 0};
  ASSERT_TRUE(dataset.Add(t).ok());
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 10;
  const auto mups = finder.FindMups(options);
  ASSERT_EQ(mups.size(), 1u);
  EXPECT_EQ(mups[0].Level(), 0);
  EXPECT_EQ(mups[0].gap, 9);
}

TEST(MupFinderTest, FindsDesignedMup) {
  // x0=1 & x1=1 is rare; every other combination is plentiful.
  const auto schema = BinarySchema(2);
  data::Dataset dataset(schema);
  auto add = [&](int a, int b, int times) {
    for (int i = 0; i < times; ++i) {
      data::Tuple t;
      t.values = {a, b};
      ASSERT_TRUE(dataset.Add(t).ok());
    }
  };
  add(0, 0, 20);
  add(0, 1, 20);
  add(1, 0, 20);
  add(1, 1, 2);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 10;
  const auto mups = finder.FindMups(options);
  ASSERT_EQ(mups.size(), 1u);
  EXPECT_EQ(mups[0].pattern, data::Pattern({1, 1}));
  EXPECT_EQ(mups[0].count, 2);
  EXPECT_EQ(mups[0].gap, 8);
}

TEST(MupFinderTest, MupPropertiesHold) {
  // Every reported MUP must be uncovered with all parents covered.
  const auto schema = BinarySchema(5);
  const auto dataset = RandomDataset(schema, 2000, 21);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 60;
  const auto mups = finder.FindMups(options);
  EXPECT_FALSE(mups.empty());
  for (const auto& m : mups) {
    EXPECT_LT(m.count, options.tau);
    EXPECT_EQ(m.gap, options.tau - m.count);
    for (const auto& parent : m.pattern.Parents()) {
      EXPECT_GE(counter.Count(parent), options.tau)
          << "uncovered parent of " << m.pattern.ToString();
    }
  }
}

TEST(MupFinderTest, MaxLevelRestrictsOutput) {
  const auto schema = BinarySchema(5);
  const auto dataset = RandomDataset(schema, 2000, 21);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 60;
  options.max_level = 2;
  for (const auto& m : finder.FindMups(options)) {
    EXPECT_LE(m.Level(), 2);
  }
}

TEST(MupFinderTest, MinLevelFilter) {
  std::vector<Mup> mups;
  mups.push_back({data::Pattern({0, data::Pattern::kUnspecified}), 1, 2});
  mups.push_back({data::Pattern({0, 1}), 1, 2});
  const auto filtered = MupFinder::MinLevel(mups);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].Level(), 1);
  EXPECT_TRUE(MupFinder::MinLevel({}).empty());
}

// Property check: lattice BFS agrees with the naive oracle across random
// data sets and thresholds.
class MupAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MupAgreementTest, LatticeMatchesNaive) {
  const uint64_t seed = GetParam();
  const int d = 3 + static_cast<int>(seed % 3);
  const auto schema = BinarySchema(d);
  const auto dataset = RandomDataset(schema, 800, seed);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 20 + static_cast<int64_t>(seed % 5) * 40;

  const auto fast = finder.FindMups(options);
  const auto naive = finder.FindMupsNaive(options);
  ASSERT_EQ(fast.size(), naive.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].pattern, naive[i].pattern);
    EXPECT_EQ(fast[i].count, naive[i].count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MupAgreementTest,
                         ::testing::Range(1, 13));


TEST(PatternCounterTest, AddTupleRejectsOutOfDomainValues) {
  // Regression: these writes used to be unchecked out-of-bounds indexing
  // into the posting lists.
  const auto schema = BinarySchema(2);
  PatternCounter counter(schema);
  EXPECT_FALSE(counter.AddTuple({0, 2}).ok());   // value beyond cardinality
  EXPECT_FALSE(counter.AddTuple({-1, 0}).ok());  // negative value
  EXPECT_FALSE(counter.AddTuple({0}).ok());      // too few values
  EXPECT_FALSE(counter.AddTuple({0, 1, 1}).ok());  // too many values
  EXPECT_FALSE(counter.AddTuple({}).ok());
  // Nothing was indexed by the rejected tuples.
  EXPECT_EQ(counter.num_tuples(), 0);
  EXPECT_EQ(counter.Count(data::Pattern(2)), 0);
  // A valid tuple still goes through afterwards.
  EXPECT_TRUE(counter.AddTuple({0, 1}).ok());
  EXPECT_EQ(counter.num_tuples(), 1);
  EXPECT_EQ(counter.Count(data::Pattern({0, 1})), 1);
}

// The parallel frontier traversal must report exactly the serial MUPs —
// same patterns, counts, gaps, and order — across random datasets.
class MupParallelAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MupParallelAgreementTest, ParallelMatchesSerial) {
  const uint64_t seed = GetParam();
  const int d = 3 + static_cast<int>(seed % 3);
  const auto schema = BinarySchema(d);
  const auto dataset = RandomDataset(schema, 800, seed);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 20 + static_cast<int64_t>(seed % 5) * 40;

  options.num_threads = 1;
  const auto serial = finder.FindMups(options);
  for (int threads : {2, 4}) {
    options.num_threads = threads;
    const auto parallel = finder.FindMups(options);
    EXPECT_GT(finder.last_count_queries(), 0);
    ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].pattern, parallel[i].pattern);
      EXPECT_EQ(serial[i].count, parallel[i].count);
      EXPECT_EQ(serial[i].gap, parallel[i].gap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MupParallelAgreementTest,
                         ::testing::Range(1, 9));

TEST(MupFinderTest, ParallelRespectsMaxLevel) {
  const auto schema = BinarySchema(5);
  const auto dataset = RandomDataset(schema, 2000, 21);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 60;
  options.max_level = 2;
  options.num_threads = 4;
  for (const auto& m : finder.FindMups(options)) {
    EXPECT_LE(m.Level(), 2);
  }
}

TEST(MupFinderTest, LatticeIssuesFewerCountsThanFullMaterialization) {
  // The efficiency claim behind the BFS: covered-node expansion prunes
  // whole sublattices the naive algorithm would count.
  const auto schema = BinarySchema(7);
  const auto dataset = RandomDataset(schema, 4000, 5);
  const auto counter = *PatternCounter::FromDataset(dataset);
  MupFinder finder(schema, counter);
  MupFinderOptions options;
  options.tau = 2000;  // high threshold -> shallow uncovered frontier
  (void)finder.FindMups(options);
  const int64_t lattice_queries = finder.last_count_queries();
  // Full lattice size for 7 binary attributes: 3^7 = 2187 patterns.
  EXPECT_LT(lattice_queries, 2187);
  EXPECT_GT(lattice_queries, 0);
}

}  // namespace
}  // namespace chameleon::coverage
