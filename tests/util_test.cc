// GCC 12 at -O2 loses track of the active std::variant alternative inside
// Result<T> and warns that the inactive Status' string "may be used
// uninitialized" when the destructor is inlined (GCC PR105593 family).
// False positive; must precede the libstdc++ includes so the pragma state
// is in effect where the diagnostic is attributed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"
#include "src/util/table_printer.h"

namespace chameleon::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto fails = []() { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    CHAMELEON_RETURN_NOT_OK(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(1.5));
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(RngTest, WeightedAllZeroReturnsSize) {
  Rng rng(1);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.NextWeighted({}), 0u);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(9);
  const auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ForkedGeneratorsDecorrelated) {
  Rng parent(77);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.NextU64() == child.NextU64();
  EXPECT_LT(same, 2);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  watch.Restart();
  EXPECT_LE(watch.ElapsedMillis(), 1000.0);
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"bb", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| bb    | 22    |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n");
}

TEST(FmtTest, FormatsNumbers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Fmt(static_cast<int64_t>(-5)), "-5");
  EXPECT_EQ(Fmt(static_cast<size_t>(9)), "9");
}

}  // namespace
}  // namespace chameleon::util
