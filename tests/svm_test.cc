#include <cmath>

#include "gtest/gtest.h"
#include "src/svm/kernel.h"
#include "src/svm/one_class_svm.h"
#include "src/util/rng.h"

namespace chameleon::svm {
namespace {

std::vector<std::vector<double>> GaussianCloud(int n, int dim, double mean,
                                               double stddev, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points) {
    for (double& v : p) v = rng.NextGaussian(mean, stddev);
  }
  return points;
}

TEST(KernelTest, LinearIsDotProduct) {
  const Kernel k = Kernel::Linear();
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 2}, {3, 4}), 11.0);
}

TEST(KernelTest, RbfIsOneAtZeroDistance) {
  const Kernel k = Kernel::Rbf(0.5);
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 2}, {1, 2}), 1.0);
  EXPECT_NEAR(k.Evaluate({0, 0}, {1, 0}), std::exp(-0.5), 1e-12);
}

TEST(KernelTest, RbfDefaultsGammaToInverseDim) {
  const Kernel k = Kernel::Rbf();  // gamma <= 0 -> 1/dim
  EXPECT_NEAR(k.Evaluate({0, 0}, {1, 1}), std::exp(-1.0), 1e-12);
}

TEST(KernelTest, PolynomialAndSigmoid) {
  const Kernel poly = Kernel::Polynomial(2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(poly.Evaluate({1, 1}, {1, 1}), 9.0);  // (2+1)^2
  const Kernel sig = Kernel::Sigmoid(1.0, 0.0);
  EXPECT_NEAR(sig.Evaluate({1, 0}, {1, 0}), std::tanh(1.0), 1e-12);
}

TEST(KernelTest, ToStringNamesType) {
  EXPECT_NE(Kernel::Rbf(0.1).ToString().find("rbf"), std::string::npos);
  EXPECT_NE(Kernel::Linear().ToString().find("linear"), std::string::npos);
}

TEST(OneClassSvmTest, RejectsInvalidInputs) {
  OneClassSvmOptions options;
  EXPECT_FALSE(OneClassSvm::Train({}, options).ok());
  EXPECT_FALSE(OneClassSvm::Train({{1.0}}, options).ok());
  options.nu = 0.0;
  EXPECT_FALSE(
      OneClassSvm::Train(GaussianCloud(10, 2, 0, 1, 1), options).ok());
  options.nu = 0.3;
  // Mismatched dimensions.
  EXPECT_FALSE(OneClassSvm::Train({{1.0, 2.0}, {1.0}}, options).ok());
}

TEST(OneClassSvmTest, NuBoundsTrainingOutlierFraction) {
  // The fraction of training points with f(x) < 0 should be ~nu.
  for (double nu : {0.1, 0.3, 0.5}) {
    const auto points = GaussianCloud(400, 4, 0.0, 1.0, 77);
    OneClassSvmOptions options;
    options.nu = nu;
    options.kernel = Kernel::Rbf();
    auto model = OneClassSvm::Train(points, options);
    ASSERT_TRUE(model.ok());
    int rejected = 0;
    for (const auto& p : points) rejected += !model->Accepts(p);
    EXPECT_NEAR(static_cast<double>(rejected) / points.size(), nu, 0.08)
        << "nu=" << nu;
  }
}

TEST(OneClassSvmTest, RejectsFarOutliers) {
  const auto points = GaussianCloud(300, 3, 0.0, 1.0, 5);
  OneClassSvmOptions options;
  options.nu = 0.2;
  // A small gamma keeps the acceptance region filled in low dimensions
  // (large gamma produces the classic OCSVM shell artifact).
  options.kernel = Kernel::Rbf(0.05);
  auto model = OneClassSvm::Train(points, options);
  ASSERT_TRUE(model.ok());
  // Points ten sigmas away must be rejected.
  EXPECT_FALSE(model->Accepts({10.0, 10.0, 10.0}));
  EXPECT_FALSE(model->Accepts({-10.0, 0.0, 0.0}));
  // The centroid must be accepted.
  EXPECT_TRUE(model->Accepts({0.0, 0.0, 0.0}));
}

TEST(OneClassSvmTest, LinearKernelAlsoSeparates) {
  const auto points = GaussianCloud(300, 3, 5.0, 1.0, 6);
  OneClassSvmOptions options;
  options.nu = 0.3;
  options.kernel = Kernel::Linear();
  auto model = OneClassSvm::Train(points, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Accepts({5.0, 5.0, 5.0}));
  EXPECT_FALSE(model->Accepts({-20.0, -20.0, -20.0}));
}

TEST(OneClassSvmTest, StandardizationHandlesScaleMismatch) {
  // One dimension is 1000x larger; without standardization the small
  // dimension would be invisible to the RBF kernel.
  util::Rng rng(9);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.NextGaussian(0, 1000.0), rng.NextGaussian(0, 1.0)});
  }
  OneClassSvmOptions options;
  options.nu = 0.2;
  options.standardize = true;
  options.kernel = Kernel::Rbf(0.05);
  auto model = OneClassSvm::Train(points, options);
  ASSERT_TRUE(model.ok());
  // 8 sigma outlier in the SMALL dimension must be caught.
  EXPECT_FALSE(model->Accepts({0.0, 8.0}));
  EXPECT_TRUE(model->Accepts({0.0, 0.0}));
}

TEST(OneClassSvmTest, StatsAreConsistent) {
  const auto points = GaussianCloud(200, 4, 0.0, 1.0, 13);
  OneClassSvmOptions options;
  options.nu = 0.3;
  auto model = OneClassSvm::Train(points, options);
  ASSERT_TRUE(model.ok());
  const auto& stats = model->stats();
  EXPECT_GT(stats.iterations, 0);
  EXPECT_EQ(stats.num_support_vectors, model->num_support_vectors());
  // nu lower-bounds the SV fraction.
  EXPECT_GE(stats.num_support_vectors,
            static_cast<int>(0.3 * points.size()) - 2);
  EXPECT_LE(stats.num_margin_support_vectors, stats.num_support_vectors);
}

// Property sweep: across kernels, decision values must be higher at the
// data centroid than far outside.
class KernelSweepTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelSweepTest, CentroidScoresAboveOutlier) {
  Kernel kernel;
  kernel.type = GetParam();
  kernel.gamma = 0.5;
  kernel.coef0 = 1.0;
  kernel.degree = 2;
  const auto points = GaussianCloud(150, 3, 1.0, 0.7, 31);
  OneClassSvmOptions options;
  options.nu = 0.25;
  options.kernel = kernel;
  auto model = OneClassSvm::Train(points, options);
  ASSERT_TRUE(model.ok());
  // The outlier lies opposite the data mean: every kernel family agrees
  // on that direction (a linear one-class boundary is a halfspace, so
  // same-side outliers are out of scope for it).
  EXPECT_GT(model->DecisionValue({1.0, 1.0, 1.0}),
            model->DecisionValue({-30.0, -30.0, -30.0}));
}

// kPolynomial is excluded: an even-degree polynomial kernel scores
// large-magnitude points highly regardless of direction, so the
// centroid-vs-outlier ordering does not hold for it by construction.
INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweepTest,
                         ::testing::Values(KernelType::kLinear,
                                           KernelType::kRbf,
                                           KernelType::kSigmoid));

TEST(OneClassSvmTest, ParallelTrainingIsBitIdenticalToSerial) {
  // Every Gram entry is computed independently, so the trained model
  // must match the serial one exactly — not approximately.
  const auto points = GaussianCloud(256, 8, 0.0, 1.0, 17);
  const auto queries = GaussianCloud(64, 8, 0.0, 2.0, 18);
  OneClassSvmOptions options;
  options.nu = 0.3;
  options.num_threads = 1;
  auto serial = OneClassSvm::Train(points, options);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 4}) {
    options.num_threads = threads;
    auto parallel = OneClassSvm::Train(points, options);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    EXPECT_EQ(serial->rho(), parallel->rho());
    EXPECT_EQ(serial->num_support_vectors(), parallel->num_support_vectors());
    EXPECT_EQ(serial->stats().iterations, parallel->stats().iterations);
    for (const auto& q : queries) {
      EXPECT_EQ(serial->DecisionValue(q), parallel->DecisionValue(q));
    }
  }
}

TEST(OneClassSvmTest, BatchScoringMatchesPointwise) {
  const auto points = GaussianCloud(200, 6, 0.0, 1.0, 21);
  const auto queries = GaussianCloud(150, 6, 0.0, 2.0, 22);
  OneClassSvmOptions options;
  options.nu = 0.3;
  auto model = OneClassSvm::Train(points, options);
  ASSERT_TRUE(model.ok());
  for (int threads : {1, 4}) {
    const auto batch = model->DecisionValues(queries, threads);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch[i], model->DecisionValue(queries[i]))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(OneClassSvmTest, DecisionThresholdGatesAcceptance) {
  const auto points = GaussianCloud(200, 4, 0.0, 1.0, 23);
  OneClassSvmOptions options;
  options.nu = 0.3;
  options.decision_threshold = 1.0;  // stricter than any decision value
  auto strict = OneClassSvm::Train(points, options);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->decision_threshold(), 1.0);
  options.decision_threshold = 0.0;
  auto classic = OneClassSvm::Train(points, options);
  ASSERT_TRUE(classic.ok());

  // Scores are threshold-independent; only the acceptance rule moves.
  int classic_accepts = 0;
  for (const auto& p : points) {
    EXPECT_EQ(strict->DecisionValue(p), classic->DecisionValue(p));
    EXPECT_EQ(strict->Accepts(p),
              strict->Accepts(strict->DecisionValue(p)));
    classic_accepts += classic->Accepts(p);
    EXPECT_FALSE(strict->Accepts(p));
  }
  EXPECT_GT(classic_accepts, 0);
}

}  // namespace
}  // namespace chameleon::svm
