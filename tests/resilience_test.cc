// Fault-tolerance suite: the flaky fault-injection decorator, the
// resilient retry/backoff/circuit-breaker decorator, and graceful
// degradation of the full repair pipeline under injected faults.

#include <cmath>
#include <deque>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/deadline.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/flaky_foundation_model.h"
#include "src/fm/foundation_model.h"
#include "src/fm/resilient_foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::fm {
namespace {

// ---------------------------------------------------------------------------
// Scripted fake backend
// ---------------------------------------------------------------------------

/// Plays back a script of failures; once the script is drained every call
/// succeeds. Consumes one rng draw per call *before* consulting the
/// script, so tests can verify the resilient wrapper's checkpoint/restore
/// of the pipeline stream.
class ScriptedModel : public FoundationModel {
 public:
  explicit ScriptedModel(std::deque<util::Status> script)
      : script_(std::move(script)) {}

  [[nodiscard]] util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* rng) override {
    RecordQuery();
    const double draw = rng->NextDouble();
    if (!script_.empty()) {
      util::Status next = script_.front();
      script_.pop_front();
      if (!next.ok()) return next;
    }
    GenerationResult result;
    result.image = image::Image(2, 2, 3, 128);
    result.values = request.target_values;
    result.latent_realism = draw;
    return result;
  }

  double query_cost() const override { return 1.0; }

 private:
  std::deque<util::Status> script_;
};

GenerationRequest SimpleRequest() {
  GenerationRequest request;
  request.target_values = {0, 1};
  request.prompt = "test";
  return request;
}

// ---------------------------------------------------------------------------
// ResilientFoundationModel: retry, classification, deadline
// ---------------------------------------------------------------------------

TEST(ResilientModelTest, RetriesMaskTransientFaults) {
  ScriptedModel backend({util::Status::Unavailable("blip"),
                         util::Status::ResourceExhausted("rate limited")});
  ResilienceOptions options;
  options.max_attempts = 4;
  ResilientFoundationModel model(&backend, options);
  util::Rng rng(7);
  auto result = model.Generate(SimpleRequest(), &rng);
  ASSERT_TRUE(result.ok());

  const FaultTelemetry& t = *model.fault_telemetry();
  EXPECT_EQ(t.attempts, 3);
  EXPECT_EQ(t.retries, 2);
  EXPECT_EQ(t.faults_masked, 1);
  EXPECT_EQ(t.failed_queries, 0);
  EXPECT_GT(t.backoff_ms, 0.0);
  EXPECT_EQ(model.num_queries(), 1);   // logical queries
  EXPECT_EQ(backend.num_queries(), 3); // physical attempts
  EXPECT_EQ(model.breaker_state(), BreakerState::kClosed);
}

TEST(ResilientModelTest, RestoresPipelineRngAcrossRetries) {
  // The masked query must consume exactly the draws a first-try success
  // would have: the scripted backend burns one draw before failing, and
  // the retry replays it.
  ScriptedModel backend({util::Status::Unavailable("blip")});
  ResilientFoundationModel model(&backend, {});
  util::Rng rng(123);
  auto result = model.Generate(SimpleRequest(), &rng);
  ASSERT_TRUE(result.ok());

  util::Rng replay(123);
  EXPECT_EQ(result->latent_realism, replay.NextDouble());
  // The outer stream continues exactly one draw in.
  EXPECT_EQ(rng.NextU64(), replay.NextU64());
}

TEST(ResilientModelTest, TerminalErrorsAreNotRetried) {
  ScriptedModel backend({util::Status::InvalidArgument("bad request")});
  ResilienceOptions options;
  options.max_attempts = 8;
  ResilientFoundationModel model(&backend, options);
  util::Rng rng(7);
  auto result = model.Generate(SimpleRequest(), &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(model.fault_telemetry()->attempts, 1);
  EXPECT_EQ(model.fault_telemetry()->retries, 0);
  EXPECT_EQ(model.fault_telemetry()->failed_queries, 1);
  EXPECT_EQ(model.breaker_state(), BreakerState::kClosed);
}

TEST(ResilientModelTest, BackoffExponentIsCappedAtHugeAttemptBudgets) {
  // Regression: the backoff exponent is capped before exponentiation, so
  // a multi-thousand attempt budget saturates at backoff_max_ms instead
  // of overflowing the power-of-two fast path (a shift by >= 64 is UB)
  // or blowing std::pow out to infinity before the max applies.
  ScriptedModel backend({});
  FlakyOptions flaky_options;
  flaky_options.fail_from_query = 0;  // the backend is dead from call one
  FlakyFoundationModel flaky(&backend, flaky_options);

  ResilienceOptions options;
  options.max_attempts = 5000;
  options.breaker_failure_threshold = 1 << 30;  // retry the full budget
  ResilientFoundationModel model(&flaky, options);

  util::Rng rng(7);
  auto result = model.Generate(SimpleRequest(), &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);

  const FaultTelemetry& t = *model.fault_telemetry();
  EXPECT_EQ(t.attempts, 5000);
  EXPECT_EQ(t.retries, 4999);
  EXPECT_GT(t.backoff_ms, 0.0);
  ASSERT_TRUE(std::isfinite(t.backoff_ms));
  // Every retry's delay saturates at backoff_max_ms, scaled by at most
  // the full upward jitter.
  EXPECT_LE(t.backoff_ms, 4999.0 * options.backoff_max_ms *
                              (1.0 + options.jitter_fraction));
}

TEST(ResilientModelTest, ExhaustedBudgetSurfacesLastFailure) {
  ScriptedModel backend({util::Status::Unavailable("1"),
                         util::Status::Unavailable("2"),
                         util::Status::DeadlineExceeded("slow")});
  ResilienceOptions options;
  options.max_attempts = 3;
  options.breaker_failure_threshold = 100;
  ResilientFoundationModel model(&backend, options);
  util::Rng rng(7);
  auto result = model.Generate(SimpleRequest(), &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(model.fault_telemetry()->attempts, 3);
  EXPECT_EQ(model.fault_telemetry()->failed_queries, 1);
}

TEST(ResilientModelTest, MalformedResultsAreRetryableFaults) {
  class MalformedOnceModel : public FoundationModel {
   public:
    [[nodiscard]] util::Result<GenerationResult> Generate(
        const GenerationRequest& request, util::Rng* rng) override {
      RecordQuery();
      const double draw = rng->NextDouble();
      GenerationResult result;
      result.image = image::Image(2, 2, 3, 10);
      result.values = request.target_values;
      result.latent_realism = draw;
      if (num_queries() == 1) result.values.pop_back();  // wrong arity once
      return result;
    }
    double query_cost() const override { return 1.0; }
  };
  MalformedOnceModel backend;
  ResilientFoundationModel model(&backend, {});
  util::Rng rng(9);
  auto result = model.Generate(SimpleRequest(), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values.size(), 2u);
  EXPECT_EQ(model.fault_telemetry()->malformed_results, 1);
  EXPECT_EQ(model.fault_telemetry()->faults_masked, 1);
}

TEST(ResilientModelTest, RunDeadlineFailsFastUntilNextRun) {
  ScriptedModel backend({});
  ResilienceOptions options;
  options.attempt_cost_ms = 10.0;
  options.run_deadline_ms = 25.0;
  ResilientFoundationModel model(&backend, options);
  util::Rng rng(7);
  EXPECT_TRUE(model.Generate(SimpleRequest(), &rng).ok());  // clock 10
  EXPECT_TRUE(model.Generate(SimpleRequest(), &rng).ok());  // clock 20
  EXPECT_TRUE(model.Generate(SimpleRequest(), &rng).ok());  // clock 30
  auto over = model.Generate(SimpleRequest(), &rng);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), util::StatusCode::kDeadlineExceeded);

  model.OnRunStart();  // fresh run, fresh deadline
  EXPECT_EQ(model.run_clock_ms(), 0.0);
  EXPECT_TRUE(model.Generate(SimpleRequest(), &rng).ok());
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, ClosedOpenHalfOpenClosedCycle) {
  // Script: three failures trip the breaker, the first probe fails and
  // re-opens it, the second probe succeeds and closes it.
  ScriptedModel backend({util::Status::Unavailable("1"),
                         util::Status::Unavailable("2"),
                         util::Status::Unavailable("3"),
                         util::Status::Unavailable("probe 1 fails")});
  ResilienceOptions options;
  options.max_attempts = 1;  // one attempt per query: queries == attempts
  options.breaker_failure_threshold = 3;
  options.breaker_probe_interval = 2;
  ResilientFoundationModel model(&backend, options);
  util::Rng rng(7);
  const GenerationRequest request = SimpleRequest();

  EXPECT_EQ(model.breaker_state(), BreakerState::kClosed);
  for (int q = 0; q < 3; ++q) {
    EXPECT_FALSE(model.Generate(request, &rng).ok());
  }
  EXPECT_EQ(model.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(model.fault_telemetry()->breaker_opens, 1);

  // Two fail-fast rejections that never reach the backend.
  const int64_t backend_calls = backend.num_queries();
  for (int q = 0; q < 2; ++q) {
    auto rejected = model.Generate(request, &rng);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  }
  EXPECT_EQ(backend.num_queries(), backend_calls);
  EXPECT_EQ(model.fault_telemetry()->fail_fast_rejections, 2);

  // Probe #1: admitted, fails, re-opens the breaker.
  EXPECT_FALSE(model.Generate(request, &rng).ok());
  EXPECT_EQ(model.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(model.fault_telemetry()->breaker_reopens, 1);
  EXPECT_EQ(backend.num_queries(), backend_calls + 1);

  // Another probe interval of rejections, then probe #2 succeeds.
  for (int q = 0; q < 2; ++q) {
    EXPECT_FALSE(model.Generate(request, &rng).ok());
  }
  EXPECT_TRUE(model.Generate(request, &rng).ok());
  EXPECT_EQ(model.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(model.fault_telemetry()->breaker_closes, 1);

  // Closed again: traffic flows normally.
  EXPECT_TRUE(model.Generate(request, &rng).ok());
  EXPECT_EQ(model.fault_telemetry()->fail_fast_rejections, 4);
}

TEST(CircuitBreakerTest, BreakerStateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

// ---------------------------------------------------------------------------
// FlakyFoundationModel
// ---------------------------------------------------------------------------

TEST(FlakyModelTest, FaultScheduleIsDeterministicPerSeed) {
  auto run_schedule = [](uint64_t seed) {
    ScriptedModel backend({});
    FlakyOptions options;
    options.seed = seed;
    options.transient_rate = 0.3;
    options.rate_limit_rate = 0.1;
    options.deadline_rate = 0.1;
    FlakyFoundationModel flaky(&backend, options);
    std::vector<util::StatusCode> codes;
    util::Rng rng(1);
    for (int i = 0; i < 200; ++i) {
      codes.push_back(flaky.Generate(SimpleRequest(), &rng).status().code());
    }
    return codes;
  };
  EXPECT_EQ(run_schedule(42), run_schedule(42));
  EXPECT_NE(run_schedule(42), run_schedule(43));
}

TEST(FlakyModelTest, ScriptedCrashAndOutageWindows) {
  ScriptedModel backend({});
  FlakyOptions options;
  options.outage_start = 2;
  options.outage_length = 2;
  options.fail_from_query = 6;
  FlakyFoundationModel flaky(&backend, options);
  util::Rng rng(1);
  std::vector<bool> ok;
  for (int i = 0; i < 8; ++i) {
    ok.push_back(flaky.Generate(SimpleRequest(), &rng).ok());
  }
  EXPECT_EQ(ok, (std::vector<bool>{true, true, false, false, true, true,
                                   false, false}));
  EXPECT_EQ(flaky.counters().scripted, 4);
}

TEST(FlakyModelTest, MalformedInjectionMangledArityOrImage) {
  ScriptedModel backend({});
  FlakyOptions options;
  options.malformed_rate = 1.0;
  FlakyFoundationModel flaky(&backend, options);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto result = flaky.Generate(SimpleRequest(), &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->values.size() != 2 || result->image.empty());
  }
  EXPECT_EQ(flaky.counters().malformed, 20);
}

// ---------------------------------------------------------------------------
// Masking equivalence against the real simulator
// ---------------------------------------------------------------------------

TEST(ResilienceMaskingTest, FaultyStackReproducesFaultFreeGenerations) {
  const auto schema = datasets::FeretSchema();
  const SimulatedFoundationModel::Options sim_options;

  // Fault-free reference sequence.
  SimulatedFoundationModel reference(schema, datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(), sim_options);
  std::vector<GenerationResult> expected;
  {
    util::Rng rng(42);
    for (int i = 0; i < 12; ++i) {
      GenerationRequest request;
      request.target_values = {i % 2, i % 5};
      expected.push_back(*reference.Generate(request, &rng));
    }
  }

  // Same requests through flaky + resilient with a hostile schedule.
  SimulatedFoundationModel fresh(schema, datasets::FeretFaceStyleFn(),
                                 datasets::FeretScene(), sim_options);
  FlakyOptions flaky_options;
  flaky_options.seed = 777;
  flaky_options.transient_rate = 0.3;
  flaky_options.rate_limit_rate = 0.1;
  flaky_options.deadline_rate = 0.1;
  flaky_options.malformed_rate = 0.2;
  FlakyFoundationModel flaky(&fresh, flaky_options);
  ResilienceOptions resilience;
  resilience.max_attempts = 64;
  resilience.breaker_failure_threshold = 1 << 30;
  ResilientFoundationModel resilient(&flaky, resilience);
  {
    util::Rng rng(42);
    for (int i = 0; i < 12; ++i) {
      GenerationRequest request;
      request.target_values = {i % 2, i % 5};
      auto result = resilient.Generate(request, &rng);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->image, expected[i].image) << "generation " << i;
      EXPECT_EQ(result->values, expected[i].values);
      EXPECT_EQ(result->latent_realism, expected[i].latent_realism);
    }
  }
  // The schedule must actually have injected something for this test to
  // mean anything.
  const FlakyCounters& injected = flaky.counters();
  EXPECT_GT(injected.transient + injected.rate_limited + injected.deadline +
                injected.malformed,
            0);
  EXPECT_GT(resilient.fault_telemetry()->faults_masked, 0);
  EXPECT_EQ(resilient.fault_telemetry()->failed_queries, 0);
}

// ---------------------------------------------------------------------------
// Atomic query counter (TSan coverage)
// ---------------------------------------------------------------------------

TEST(FoundationModelTest, QueryCounterIsThreadSafe) {
  // Decorators may issue Generate from worker threads; RecordQuery must
  // not race. Run under tools/ci.sh tsan for the full proof.
  class CountingModel : public FoundationModel {
   public:
    [[nodiscard]] util::Result<GenerationResult> Generate(
        const GenerationRequest& request, util::Rng* /*rng*/) override {
      RecordQuery();
      GenerationResult result;
      result.image = image::Image(1, 1, 3, 0);
      result.values = request.target_values;
      return result;
    }
    double query_cost() const override { return 0.5; }
  };
  CountingModel model;
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 2000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&model, w] {
      util::Rng rng(100 + static_cast<uint64_t>(w));
      const GenerationRequest request = SimpleRequest();
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto result = model.Generate(request, &rng);
        ASSERT_TRUE(result.ok());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(model.num_queries(), kThreads * kQueriesPerThread);
  EXPECT_DOUBLE_EQ(model.total_cost(), kThreads * kQueriesPerThread * 0.5);
}

}  // namespace
}  // namespace chameleon::fm

// ---------------------------------------------------------------------------
// Pipeline-level degradation and determinism under faults
// ---------------------------------------------------------------------------

namespace chameleon::core {
namespace {

struct PipelineRun {
  RepairReport report;
  int64_t synthetic = 0;
};

/// One full repair over a fresh FERET corpus. `flaky` (optional) and
/// `resilience` configure the fault stack; passing nullptr for `flaky`
/// runs the bare simulator (the fault-free reference).
PipelineRun RunRepair(const fm::FlakyOptions* flaky,
                      const fm::ResilienceOptions* resilience,
                      int num_threads, fm::Deadline* deadline = nullptr) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus =
      *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel sim(corpus.dataset.schema(),
                                   datasets::FeretFaceStyleFn(),
                                   datasets::FeretScene(),
                                   fm::SimulatedFoundationModel::Options());
  std::unique_ptr<fm::FlakyFoundationModel> flaky_model;
  std::unique_ptr<fm::ResilientFoundationModel> resilient_model;
  fm::FoundationModel* model = &sim;
  if (flaky != nullptr) {
    flaky_model = std::make_unique<fm::FlakyFoundationModel>(&sim, *flaky);
    model = flaky_model.get();
  }
  if (resilience != nullptr) {
    resilient_model =
        std::make_unique<fm::ResilientFoundationModel>(model, *resilience);
    model = resilient_model.get();
  }

  ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.num_threads = num_threads;
  options.rejection_batch = 4;
  options.deadline = deadline;
  Chameleon system(model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  EXPECT_TRUE(report.ok());
  return {*report, corpus.dataset.NumSynthetic()};
}

void ExpectSameAcceptedTuples(const RepairReport& a, const RepairReport& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.distribution_passes, b.distribution_passes);
  EXPECT_EQ(a.quality_passes, b.quality_passes);
  EXPECT_EQ(a.fully_resolved, b.fully_resolved);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].target_values, b.records[i].target_values);
    EXPECT_EQ(a.records[i].embedding, b.records[i].embedding);
    EXPECT_EQ(a.records[i].decision_value, b.records[i].decision_value);
    EXPECT_EQ(a.records[i].quality_p_value, b.records[i].quality_p_value);
    EXPECT_EQ(a.records[i].arm, b.records[i].arm);
    EXPECT_EQ(a.records[i].accepted, b.records[i].accepted);
  }
}

TEST(PipelineFaultDeterminismTest, MaskedFaultsPreserveAcceptedTuples) {
  // Acceptance criterion: at a 30% injected transient-fault rate with a
  // sufficient retry budget, the run accepts the same tuples in the same
  // order as the fault-free run with the same seed, at 1 and 4 threads.
  const PipelineRun fault_free = RunRepair(nullptr, nullptr, /*threads=*/1);
  ASSERT_GT(fault_free.report.accepted, 0);

  fm::FlakyOptions flaky;
  flaky.seed = 555;
  flaky.transient_rate = 0.3;
  fm::ResilienceOptions resilience;
  resilience.max_attempts = 64;
  resilience.breaker_failure_threshold = 1 << 30;

  for (int threads : {1, 4}) {
    const PipelineRun faulty = RunRepair(&flaky, &resilience, threads);
    ExpectSameAcceptedTuples(fault_free.report, faulty.report);
    EXPECT_EQ(fault_free.synthetic, faulty.synthetic);
    // Faults really were injected and really were masked.
    EXPECT_GT(faulty.report.faults.transport.faults_masked, 0);
    EXPECT_GT(faulty.report.faults.transport.retries, 0);
    EXPECT_EQ(faulty.report.faults.transport.failed_queries, 0);
    EXPECT_EQ(faulty.report.faults.parked_entries(), 0);
  }
}

TEST(PipelineFaultIsolationTest, ConcurrentRequestStacksShareNoState) {
  // The serving layer runs many requests on one process, each with its
  // own ResilientFoundationModel and fm::Deadline. Regression test for
  // per-request isolation: a 100%-fault request running concurrently
  // must not perturb a clean request's results, retries, or virtual
  // clock — both must match their serial references bit for bit.
  const PipelineRun clean_ref = RunRepair(nullptr, nullptr, /*threads=*/1);
  fm::FlakyOptions dead;
  dead.fail_from_query = 0;
  fm::ResilienceOptions dead_resilience;
  fm::Deadline dead_deadline_ref(200.0);
  const PipelineRun dead_ref =
      RunRepair(&dead, &dead_resilience, /*threads=*/1, &dead_deadline_ref);

  PipelineRun clean_run;
  PipelineRun dead_run;
  fm::Deadline dead_deadline(200.0);
  std::thread dead_thread([&] {
    dead_run = RunRepair(&dead, &dead_resilience, /*threads=*/1,
                         &dead_deadline);
  });
  clean_run = RunRepair(nullptr, nullptr, /*threads=*/1);
  dead_thread.join();

  // The clean request is untouched by its dying neighbor.
  ExpectSameAcceptedTuples(clean_ref.report, clean_run.report);
  EXPECT_EQ(clean_run.report.faults.transport.retries, 0)
      << "faults leaked across request stacks";
  EXPECT_FALSE(clean_run.report.deadline_expired);

  // The dying request behaved exactly as it does alone: same parking,
  // same breaker behavior, same virtual-clock consumption.
  EXPECT_EQ(dead_run.report.accepted, 0);
  EXPECT_EQ(dead_run.report.faults.parked_entries(),
            dead_ref.report.faults.parked_entries());
  EXPECT_EQ(dead_run.report.faults.transport.breaker_opens,
            dead_ref.report.faults.transport.breaker_opens);
  EXPECT_EQ(dead_run.report.faults.transport.attempts,
            dead_ref.report.faults.transport.attempts);
  EXPECT_DOUBLE_EQ(dead_deadline.ElapsedMs(), dead_deadline_ref.ElapsedMs());
}

TEST(PipelineDegradationTest, DeadBackendParksEverythingAndTerminates) {
  fm::FlakyOptions flaky;
  flaky.fail_from_query = 0;  // dead from the very first query
  fm::ResilienceOptions resilience;  // defaults: breaker trips quickly
  const PipelineRun run = RunRepair(&flaky, &resilience, /*threads=*/1);

  EXPECT_FALSE(run.report.fully_resolved);
  EXPECT_EQ(run.report.accepted, 0);
  EXPECT_EQ(run.synthetic, 0);
  EXPECT_EQ(run.report.queries, 0);
  EXPECT_FALSE(run.report.plan.empty());
  // Every plan entry was parked, not fatal.
  EXPECT_EQ(run.report.faults.parked_entries(),
            static_cast<int64_t>(run.report.plan.size()));
  // Non-empty fault telemetry: the resilience layer fought before giving
  // up, and the breaker cut over to fail-fast.
  const fm::FaultTelemetry& t = run.report.faults.transport;
  EXPECT_GT(t.attempts, 0);
  EXPECT_GT(t.retries, 0);
  EXPECT_GT(t.failed_queries, 0);
  EXPECT_EQ(t.breaker_opens, 1);
  EXPECT_GT(t.backoff_ms, 0.0);
}

TEST(PipelineDegradationTest, BriefOutageParksOnlyTheEntryItHit) {
  fm::FlakyOptions flaky;
  flaky.outage_start = 0;
  flaky.outage_length = 1;  // exactly the first backend call fails
  fm::ResilienceOptions resilience;
  resilience.max_attempts = 1;  // no retry budget: the failure surfaces
  resilience.breaker_failure_threshold = 1000;
  const PipelineRun run = RunRepair(&flaky, &resilience, /*threads=*/1);

  EXPECT_FALSE(run.report.fully_resolved);
  EXPECT_GT(run.report.accepted, 0);  // the rest of the plan still filled
  EXPECT_EQ(run.report.faults.parked_entries(), 1);
  EXPECT_EQ(run.report.faults.transport_failures, 1);
  ASSERT_FALSE(run.report.plan.empty());
  EXPECT_EQ(run.report.faults.parked_targets[0], run.report.plan[0].values);
}

TEST(PipelineDegradationTest, LegacyFatalModeStillAvailable) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus =
      *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel sim(corpus.dataset.schema(),
                                   datasets::FeretFaceStyleFn(),
                                   datasets::FeretScene(),
                                   fm::SimulatedFoundationModel::Options());
  fm::FlakyOptions flaky;
  flaky.fail_from_query = 0;
  fm::FlakyFoundationModel dead(&sim, flaky);

  ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.park_failing_entries = false;
  Chameleon system(&dead, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace chameleon::core
