// Unit tests for the daemon-global telemetry aggregator (DESIGN.md §15):
// sample-merge semantics (counter sum, gauge last-write-wins, histogram
// bucket/digest merge), merge determinism across merge order, window
// roll-off on the virtual-ms axis, and the OpenMetrics golden for a
// multi-request aggregate.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/aggregate.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"

namespace chameleon::obs {
namespace {

MetricSample CounterSample(const std::string& name, double value) {
  MetricSample sample;
  sample.name = name;
  sample.type = "counter";
  sample.value = value;
  return sample;
}

MetricSample GaugeSample(const std::string& name, double value) {
  MetricSample sample;
  sample.name = name;
  sample.type = "gauge";
  sample.value = value;
  return sample;
}

MetricSample HistogramSample(const std::string& name,
                             const std::vector<double>& observations) {
  Registry registry;
  Histogram* histogram = registry.Histogram(name, {1.0, 10.0, 100.0});
  for (const double value : observations) histogram->Observe(value);
  for (MetricSample& sample : registry.Snapshot()) {
    if (sample.name == name) return sample;
  }
  return MetricSample();
}

// ---------------------------------------------------------------------------
// MergeSample / MergeAll units
// ---------------------------------------------------------------------------

TEST(MergeSampleTest, IntoEmptyCopiesSample) {
  MergedMetrics merged;
  MergeSample(&merged, CounterSample("c", 3));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.at("c").type, "counter");
  EXPECT_EQ(merged.at("c").value, 3.0);
}

TEST(MergeSampleTest, CountersAddGaugesLastWriteWins) {
  MergedMetrics merged;
  MergeSample(&merged, CounterSample("c", 3));
  MergeSample(&merged, CounterSample("c", 4));
  MergeSample(&merged, GaugeSample("g", 1.5));
  MergeSample(&merged, GaugeSample("g", 2.5));
  EXPECT_EQ(merged.at("c").value, 7.0);
  EXPECT_EQ(merged.at("g").value, 2.5);
}

TEST(MergeSampleTest, TypeMismatchDropsSample) {
  MergedMetrics merged;
  MergeSample(&merged, CounterSample("m", 3));
  MergeSample(&merged, GaugeSample("m", 99));
  EXPECT_EQ(merged.at("m").type, "counter");
  EXPECT_EQ(merged.at("m").value, 3.0);
}

TEST(MergeSampleTest, HistogramsAddCountsSumsAndAlignedBuckets) {
  MergedMetrics merged;
  MergeSample(&merged, HistogramSample("h", {0.5, 5.0, 50.0}));
  MergeSample(&merged, HistogramSample("h", {0.5, 500.0}));
  const MergedMetric& h = merged.at("h");
  EXPECT_EQ(h.value, 5.0);
  EXPECT_DOUBLE_EQ(h.sum, 556.0);
  // Buckets: le=1 -> 2, le=10 -> 1, le=100 -> 1, overflow -> 1.
  ASSERT_EQ(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 2);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 1);
  EXPECT_EQ(h.buckets[3], 1);
  EXPECT_EQ(h.digest.count(), 5);
}

TEST(MergeAllTest, SelfAndDisjointAndOverlappingKeys) {
  MergedMetrics a;
  MergeSample(&a, CounterSample("shared", 1));
  MergeSample(&a, CounterSample("only_a", 10));
  MergedMetrics b;
  MergeSample(&b, CounterSample("shared", 2));
  MergeSample(&b, CounterSample("only_b", 20));

  MergedMetrics out;
  MergeAll(&out, a);
  MergeAll(&out, b);
  EXPECT_EQ(out.at("shared").value, 3.0);
  EXPECT_EQ(out.at("only_a").value, 10.0);
  EXPECT_EQ(out.at("only_b").value, 20.0);

  // Self-merge doubles counters (the caller's responsibility to avoid,
  // but the semantics must be well-defined).
  MergeAll(&out, out);
  EXPECT_EQ(out.at("shared").value, 6.0);

  // Empty operand is the identity.
  MergedMetrics before = out;
  MergeAll(&out, MergedMetrics());
  EXPECT_EQ(out.at("shared").value, before.at("shared").value);
  EXPECT_EQ(out.size(), before.size());
}

TEST(MergeAllTest, CounterAndBucketMergeIsOrderIndependent) {
  MergedMetrics a;
  MergeSample(&a, CounterSample("c", 5));
  MergeSample(&a, HistogramSample("h", {0.5, 5.0}));
  MergedMetrics b;
  MergeSample(&b, CounterSample("c", 7));
  MergeSample(&b, HistogramSample("h", {50.0}));

  MergedMetrics ab;
  MergeAll(&ab, a);
  MergeAll(&ab, b);
  MergedMetrics ba;
  MergeAll(&ba, b);
  MergeAll(&ba, a);

  EXPECT_EQ(ab.at("c").value, ba.at("c").value);
  EXPECT_EQ(ab.at("h").value, ba.at("h").value);
  EXPECT_DOUBLE_EQ(ab.at("h").sum, ba.at("h").sum);
  EXPECT_EQ(ab.at("h").buckets, ba.at("h").buckets);
}

// ---------------------------------------------------------------------------
// Aggregator: absorb, windows, SLO counters
// ---------------------------------------------------------------------------

TEST(AggregatorTest, AbsorbFoldsRegistriesIntoTotal) {
  Aggregator aggregator;
  Registry r1;
  r1.Counter("fm.queries")->Increment(100);
  Registry r2;
  r2.Counter("fm.queries")->Increment(50);
  aggregator.Absorb(r1, 1000.0);
  aggregator.Absorb(r2, 2000.0);
  EXPECT_EQ(aggregator.absorbed(), 2);

  bool found = false;
  for (const MetricSample& sample : aggregator.Scrape(2000.0)) {
    if (sample.name == "fm.queries") {
      EXPECT_EQ(sample.value, 150.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AggregatorTest, WindowsRollOffOnVirtualClock) {
  Aggregator aggregator;
  Registry registry;
  registry.Counter("fm.queries")->Increment(10);
  aggregator.Absorb(registry, 0.0);

  // Inside both windows right after the absorb.
  double w1m = -1.0, w5m = -1.0, total = -1.0;
  auto read = [&](double now_ms) {
    w1m = w5m = total = -1.0;
    for (const MetricSample& sample : aggregator.Scrape(now_ms)) {
      if (sample.name == "fm.queries") total = sample.value;
      if (sample.name == "window1m.fm.queries") w1m = sample.value;
      if (sample.name == "window5m.fm.queries") w5m = sample.value;
    }
  };
  read(1000.0);
  EXPECT_EQ(total, 10.0);
  EXPECT_EQ(w1m, 10.0);
  EXPECT_EQ(w5m, 10.0);

  // Past the 1m window the short view drops the series (no samples),
  // the 5m view and the total keep it.
  read(120000.0);
  EXPECT_EQ(total, 10.0);
  EXPECT_EQ(w1m, -1.0);
  EXPECT_EQ(w5m, 10.0);

  // Past the 5m window only the total remains.
  read(600000.0);
  EXPECT_EQ(total, 10.0);
  EXPECT_EQ(w1m, -1.0);
  EXPECT_EQ(w5m, -1.0);
}

TEST(AggregatorTest, AddCounterRecordsSloEventsWithoutRequests) {
  Aggregator aggregator;
  aggregator.AddCounter("daemon.slo.admission_reject", 1, 100.0);
  aggregator.AddCounter("daemon.slo.admission_reject", 1, 200.0);
  aggregator.AddCounter("daemon.slo.parked_rounds", 3, 200.0);
  aggregator.AddCounter("daemon.slo.noop", 0, 200.0);  // <= 0 ignored
  EXPECT_EQ(aggregator.absorbed(), 0);  // SLO events are not requests

  double rejects = -1.0, parked = -1.0, noop = -1.0;
  for (const MetricSample& sample : aggregator.Scrape(200.0)) {
    if (sample.name == "daemon.slo.admission_reject") rejects = sample.value;
    if (sample.name == "daemon.slo.parked_rounds") parked = sample.value;
    if (sample.name == "daemon.slo.noop") noop = sample.value;
  }
  EXPECT_EQ(rejects, 2.0);
  EXPECT_EQ(parked, 3.0);
  EXPECT_EQ(noop, -1.0);
}

TEST(AggregatorTest, ScrapeIsSortedByName) {
  Aggregator aggregator;
  Registry registry;
  registry.Counter("zeta")->Increment(1);
  registry.Counter("alpha")->Increment(1);
  aggregator.Absorb(registry, 0.0);
  const std::vector<MetricSample> samples = aggregator.Scrape(0.0);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
}

// ---------------------------------------------------------------------------
// Golden: a multi-request aggregate rendered through ExportOpenMetrics.
// Counters, histogram counts/sums/buckets, and gauges are stable under
// this fixed absorb order; digests would be too, but the golden pins the
// whole document anyway since the inputs are fixed.
// ---------------------------------------------------------------------------

TEST(AggregatorTest, MultiRequestOpenMetricsGolden) {
  Aggregator aggregator;
  for (int request = 0; request < 2; ++request) {
    Registry registry;
    registry.Counter("fm.queries")->Increment(100 + request);
    registry.Gauge("run.estimated_p")->Set(0.25 * (request + 1));
    Histogram* h = registry.Histogram("fm.batch.size", {1.0, 4.0});
    h->Observe(1.0);
    h->Observe(3.0);
    aggregator.Absorb(registry, 1000.0 * request);
  }
  const std::string rendered =
      ExportOpenMetrics(aggregator.Scrape(1000.0));
  const std::string expected =
      "# TYPE fm_batch_size histogram\n"
      "fm_batch_size_bucket{le=\"1\"} 2\n"
      "fm_batch_size_bucket{le=\"4\"} 4\n"
      "fm_batch_size_bucket{le=\"+Inf\"} 4\n"
      "fm_batch_size_sum 8\n"
      "fm_batch_size_count 4\n"
      "# TYPE fm_batch_size_latency summary\n"
      "fm_batch_size_latency{quantile=\"0.5\"} 2\n"
      "fm_batch_size_latency{quantile=\"0.9\"} 3\n"
      "fm_batch_size_latency{quantile=\"0.99\"} 3\n"
      "# TYPE fm_queries counter\n"
      "fm_queries_total 201\n"
      "# TYPE run_estimated_p gauge\n"
      "run_estimated_p 0.5\n"
      "# TYPE window1m_fm_batch_size histogram\n"
      "window1m_fm_batch_size_bucket{le=\"1\"} 2\n"
      "window1m_fm_batch_size_bucket{le=\"4\"} 4\n"
      "window1m_fm_batch_size_bucket{le=\"+Inf\"} 4\n"
      "window1m_fm_batch_size_sum 8\n"
      "window1m_fm_batch_size_count 4\n"
      "# TYPE window1m_fm_batch_size_latency summary\n"
      "window1m_fm_batch_size_latency{quantile=\"0.5\"} 2\n"
      "window1m_fm_batch_size_latency{quantile=\"0.9\"} 3\n"
      "window1m_fm_batch_size_latency{quantile=\"0.99\"} 3\n"
      "# TYPE window1m_fm_queries counter\n"
      "window1m_fm_queries_total 201\n"
      "# TYPE window1m_run_estimated_p gauge\n"
      "window1m_run_estimated_p 0.5\n"
      "# TYPE window5m_fm_batch_size histogram\n"
      "window5m_fm_batch_size_bucket{le=\"1\"} 2\n"
      "window5m_fm_batch_size_bucket{le=\"4\"} 4\n"
      "window5m_fm_batch_size_bucket{le=\"+Inf\"} 4\n"
      "window5m_fm_batch_size_sum 8\n"
      "window5m_fm_batch_size_count 4\n"
      "# TYPE window5m_fm_batch_size_latency summary\n"
      "window5m_fm_batch_size_latency{quantile=\"0.5\"} 2\n"
      "window5m_fm_batch_size_latency{quantile=\"0.9\"} 3\n"
      "window5m_fm_batch_size_latency{quantile=\"0.99\"} 3\n"
      "# TYPE window5m_fm_queries counter\n"
      "window5m_fm_queries_total 201\n"
      "# TYPE window5m_run_estimated_p gauge\n"
      "window5m_run_estimated_p 0.5\n"
      "# EOF\n";
  EXPECT_EQ(rendered, expected);
}

TEST(AggregatorTest, MergeDeterminismAcrossAbsorbOrder) {
  // Counters, histogram counts/sums/buckets must not depend on the
  // order registries are absorbed (gauges and digest quantiles may —
  // DESIGN.md §15 stable-metric rules).
  auto build = [](bool reversed) {
    Aggregator aggregator;
    Registry r1;
    r1.Counter("c")->Increment(5);
    r1.Histogram("h", {1.0, 10.0})->Observe(0.5);
    Registry r2;
    r2.Counter("c")->Increment(9);
    r2.Histogram("h", {1.0, 10.0})->Observe(5.0);
    if (reversed) {
      aggregator.Absorb(r2, 0.0);
      aggregator.Absorb(r1, 0.0);
    } else {
      aggregator.Absorb(r1, 0.0);
      aggregator.Absorb(r2, 0.0);
    }
    return aggregator.Scrape(0.0);
  };
  const std::vector<MetricSample> forward = build(false);
  const std::vector<MetricSample> reverse = build(true);
  ASSERT_EQ(forward.size(), reverse.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].name, reverse[i].name);
    EXPECT_EQ(forward[i].type, reverse[i].type);
    if (forward[i].type == "histogram") {
      EXPECT_EQ(forward[i].value, reverse[i].value) << forward[i].name;
      EXPECT_DOUBLE_EQ(forward[i].sum, reverse[i].sum) << forward[i].name;
      EXPECT_EQ(forward[i].buckets, reverse[i].buckets) << forward[i].name;
    } else {
      EXPECT_EQ(forward[i].value, reverse[i].value) << forward[i].name;
    }
  }
}

}  // namespace
}  // namespace chameleon::obs
