#include <cmath>

#include "gtest/gtest.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector_ops.h"
#include "src/util/rng.h"

namespace chameleon::linalg {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
}

TEST(VectorOpsTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-2, 0}), -1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);  // degenerate input
}

TEST(VectorOpsTest, ArithmeticHelpers) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Sub({3, 4}, {1, 2}), (std::vector<double>{2, 2}));
  EXPECT_EQ(Scale({1, -2}, 3.0), (std::vector<double>{3, -6}));
  std::vector<double> a = {1, 1};
  AddScaled(&a, 2.0, {1, 3});
  EXPECT_EQ(a, (std::vector<double>{3, 7}));
  EXPECT_EQ(Lerp({0, 0}, {10, 20}, 0.5), (std::vector<double>{5, 10}));
}

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix eye = Matrix::Identity(3);
  Matrix m(3, 3);
  int fill = 1;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = fill++;
  }
  EXPECT_EQ(eye.Multiply(m), m);
  EXPECT_EQ(m.Multiply(eye), m);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  EXPECT_EQ(m.Multiply(std::vector<double>{1, 1, 1}),
            (std::vector<double>{6, 15}));
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix m(2, 3);
  m.at(0, 2) = 7;
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 0), 7);
}

TEST(MatrixTest, AddOuter) {
  Matrix m(2, 2);
  m.AddOuter(2.0, {1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 6);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 8);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 12);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 16);
}

TEST(MatrixTest, InverseRecoversIdentity) {
  util::Rng rng(4);
  const size_t n = 6;
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m.at(r, c) = rng.NextGaussian();
    m.at(r, r) += 4.0;  // diagonally dominant -> invertible
  }
  auto inv = m.Inverse();
  ASSERT_TRUE(inv.ok());
  const Matrix product = m.Multiply(*inv);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(product.at(r, c), r == c ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(MatrixTest, InverseFailsOnSingular) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 4;
  EXPECT_FALSE(m.Inverse().ok());
  EXPECT_FALSE(Matrix(2, 3).Inverse().ok());
}

TEST(MatrixTest, CholeskySolveMatchesDirect) {
  // SPD system: A = B B^T + I.
  util::Rng rng(8);
  const size_t n = 5;
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) b.at(r, c) = rng.NextGaussian();
  }
  Matrix a = b.Multiply(b.Transposed());
  for (size_t i = 0; i < n; ++i) a.at(i, i) += 1.0;
  const std::vector<double> x_true = {1, -2, 3, 0.5, -0.25};
  const std::vector<double> rhs = a.Multiply(x_true);
  auto x = a.CholeskySolve(rhs);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
}

TEST(MatrixTest, CholeskyRejectsIndefinite) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(1, 1) = -1;
  EXPECT_FALSE(m.CholeskyFactor().ok());
  EXPECT_FALSE(m.CholeskySolve({1, 1}).ok());
}

TEST(MatrixTest, LogDetSpd) {
  Matrix m(2, 2);
  m.at(0, 0) = 4;
  m.at(1, 1) = 9;
  auto logdet = m.LogDetSpd();
  ASSERT_TRUE(logdet.ok());
  EXPECT_NEAR(*logdet, std::log(36.0), 1e-10);
}

TEST(ShermanMorrisonTest, MatchesDirectInverse) {
  util::Rng rng(12);
  const size_t n = 5;
  Matrix a = Matrix::Identity(n);
  Matrix ainv = Matrix::Identity(n);
  for (int update = 0; update < 20; ++update) {
    std::vector<double> u(n);
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      u[i] = rng.NextGaussian(0, 0.5);
      v[i] = rng.NextGaussian(0, 0.5);
    }
    a.AddOuter(1.0, u, v);
    ASSERT_TRUE(ShermanMorrisonUpdate(&ainv, u, v).ok());
  }
  auto direct = a.Inverse();
  ASSERT_TRUE(direct.ok());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(ainv.at(r, c), direct->at(r, c), 1e-8);
    }
  }
}

TEST(ShermanMorrisonTest, RejectsSingularUpdate) {
  // A = I (1x1); u v^T = -1 makes A + uv^T singular.
  Matrix ainv = Matrix::Identity(1);
  EXPECT_FALSE(ShermanMorrisonUpdate(&ainv, {1.0}, {-1.0}).ok());
}

}  // namespace
}  // namespace chameleon::linalg
