// Tests for the obsctl analysis passes (tools/obsctl): the minimal JSON
// parser, journal/trace/metrics aggregation, the rendered report and its
// registry-contract cross-checks, the artifact differ, and the bench
// JSON schema validator. The end-to-end test pins the acceptance
// criterion that `obsctl report` over a real instrumented repair run is
// byte-identical at every thread count.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/observability.h"
#include "tools/obsctl/analysis.h"
#include "tools/obsctl/json.h"

namespace chameleon::obsctl {
namespace {

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(JsonParserTest, ParsesScalarsAndStructure) {
  auto value = ParseJson(
      R"({"a": 1.5, "b": "x", "c": true, "d": null, "e": [1, -2, 3e2]})");
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->is_object());
  EXPECT_DOUBLE_EQ(value->NumberOr("a", 0.0), 1.5);
  EXPECT_EQ(value->StringOr("b", ""), "x");
  EXPECT_TRUE(value->BoolOr("c", false));
  ASSERT_NE(value->Find("d"), nullptr);
  EXPECT_EQ(value->Find("d")->kind, JsonValue::Kind::kNull);
  const JsonValue* array = value->Find("e");
  ASSERT_TRUE(array != nullptr && array->is_array());
  ASSERT_EQ(array->items.size(), 3u);
  EXPECT_DOUBLE_EQ(array->items[1].number_value, -2.0);
  EXPECT_DOUBLE_EQ(array->items[2].number_value, 300.0);
}

TEST(JsonParserTest, KeepsObjectFieldsInDocumentOrder) {
  auto value = ParseJson(R"({"zeta": 1, "alpha": 2, "mid": 3})");
  ASSERT_TRUE(value.ok());
  ASSERT_EQ(value->fields.size(), 3u);
  EXPECT_EQ(value->fields[0].first, "zeta");
  EXPECT_EQ(value->fields[1].first, "alpha");
  EXPECT_EQ(value->fields[2].first, "mid");
}

TEST(JsonParserTest, DecodesEscapes) {
  auto value = ParseJson(R"({"s": "a\"b\\c\nd	e"})");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->StringOr("s", ""), "a\"b\\c\nd\te");
}

TEST(JsonParserTest, RejectsTruncationAndTrailingContent) {
  EXPECT_FALSE(ParseJson(R"({"type":"run.e)").ok());
  EXPECT_FALSE(ParseJson(R"({"a":1)").ok());
  EXPECT_FALSE(ParseJson(R"({"a":1} trailing)").ok());
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_TRUE(ParseJson("{\"a\":1}  \n").ok());
}

// ---------------------------------------------------------------------------
// JSONL parsing with killed-run tolerance
// ---------------------------------------------------------------------------

TEST(ParseJsonlTest, ToleratesTruncatedFinalLineOnly) {
  auto clean = ParseJsonl("{\"a\":1}\n{\"b\":2}\n");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->lines.size(), 2u);
  EXPECT_FALSE(clean->truncated_tail);

  // A ragged final line — the signature of a killed streaming run — is
  // dropped, and the intact prefix is kept.
  auto truncated = ParseJsonl("{\"a\":1}\n{\"b\":2}\n{\"type\":\"run.e");
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->lines.size(), 2u);
  EXPECT_TRUE(truncated->truncated_tail);

  // Corruption anywhere earlier is a hard error naming the line.
  auto corrupt = ParseJsonl("{\"a\":1}\nnot json\n{\"b\":2}\n");
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("line 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Journal analysis
// ---------------------------------------------------------------------------

constexpr char kJournal[] =
    "{\"type\":\"run.start\",\"tick\":1,\"tau\":40,\"seed\":11}\n"
    "{\"type\":\"plan.entry\",\"tick\":2,\"target\":\"0,3\",\"count\":2}\n"
    "{\"type\":\"fm.query\",\"tick\":3,\"target\":\"0,3\",\"arm\":0,"
    "\"guided\":true}\n"
    "{\"type\":\"fm.retry\",\"tick\":4,\"attempt\":1,\"backoff_ms\":8}\n"
    "{\"type\":\"tuple.accepted\",\"tick\":5,\"target\":\"0,3\",\"arm\":0}\n"
    "{\"type\":\"fm.query\",\"tick\":6,\"target\":\"0,3\",\"arm\":1,"
    "\"guided\":true}\n"
    "{\"type\":\"tuple.rejected\",\"tick\":7,\"target\":\"0,3\",\"arm\":1,"
    "\"reason\":\"quality\"}\n"
    "{\"type\":\"fm.query\",\"tick\":8,\"target\":\"0,3\",\"arm\":1,"
    "\"guided\":true}\n"
    "{\"type\":\"fm.parked\",\"tick\":9,\"target\":\"0,3\","
    "\"code\":\"unavailable\"}\n"
    "{\"type\":\"run.end\",\"tick\":10,\"queries\":2,\"accepted\":1,"
    "\"parked\":1,\"fully_resolved\":false}\n";

TEST(AnalyzeJournalTest, AggregatesPerTargetAndPerArm) {
  auto stats = AnalyzeJournal(kJournal);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_events, 10);
  EXPECT_TRUE(stats->has_run_start);
  EXPECT_EQ(stats->tau, 40);
  EXPECT_EQ(stats->seed, 11);
  EXPECT_TRUE(stats->has_run_end);
  EXPECT_EQ(stats->end_queries, 2);
  EXPECT_FALSE(stats->fully_resolved);

  ASSERT_EQ(stats->targets.size(), 1u);
  const TargetStats& target = stats->targets[0].second;
  EXPECT_EQ(stats->targets[0].first, "0,3");
  EXPECT_EQ(target.planned, 2);
  EXPECT_EQ(target.queries, 3);
  EXPECT_EQ(target.accepted, 1);
  EXPECT_EQ(target.rejected_quality, 1);
  EXPECT_EQ(target.rejected(), 1);
  // The fm.retry event carries no target; it belongs to the most recent
  // fm.query's target.
  EXPECT_EQ(target.retries, 1);
  EXPECT_EQ(target.parked, 1);

  ASSERT_EQ(stats->arms.size(), 2u);
  EXPECT_EQ(stats->arms.at(0).pulls, 1);
  EXPECT_EQ(stats->arms.at(0).accepted, 1);
  EXPECT_EQ(stats->arms.at(1).pulls, 2);
  EXPECT_EQ(stats->arms.at(1).rejected, 1);

  // accepted(1) + rejected(1) == queries(3) - parked(1).
  EXPECT_TRUE(stats->ContractHolds());
}

TEST(AnalyzeJournalTest, DetectsContractViolations) {
  // A query with no verdict and no park: the registry contract breaks.
  auto stats = AnalyzeJournal(
      "{\"type\":\"fm.query\",\"tick\":1,\"target\":\"0,3\",\"arm\":0}\n");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->ContractHolds());
}

// ---------------------------------------------------------------------------
// Trace analysis
// ---------------------------------------------------------------------------

TEST(AnalyzeTraceTest, RollsUpByNameAndCountsOpenSpans) {
  const std::string trace =
      "{\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"repair.run\","
      "\"start_tick\":1,\"end_tick\":0}\n"
      "{\"id\":2,\"parent\":1,\"depth\":1,\"name\":\"plan.entry\","
      "\"start_tick\":2,\"end_tick\":10}\n"
      "{\"id\":3,\"parent\":1,\"depth\":1,\"name\":\"plan.entry\","
      "\"start_tick\":11,\"end_tick\":15}\n";
  bool truncated = true;
  auto rollups = AnalyzeTrace(trace, &truncated);
  ASSERT_TRUE(rollups.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(rollups->size(), 2u);
  EXPECT_EQ((*rollups)[0].name, "repair.run");
  EXPECT_EQ((*rollups)[0].open, 1);
  EXPECT_EQ((*rollups)[0].count, 0);
  EXPECT_EQ((*rollups)[1].name, "plan.entry");
  EXPECT_EQ((*rollups)[1].count, 2);
  EXPECT_EQ((*rollups)[1].total_ticks, 12);
  EXPECT_DOUBLE_EQ((*rollups)[1].ticks.Quantile(1.0), 8.0);
}

// ---------------------------------------------------------------------------
// Metrics analysis
// ---------------------------------------------------------------------------

TEST(AnalyzeMetricsTest, MapsNameToTypedValue) {
  auto metrics = AnalyzeMetrics(
      "{\"name\":\"fm.queries\",\"type\":\"counter\",\"value\":112}\n"
      "{\"name\":\"run.estimated_p\",\"type\":\"gauge\",\"value\":0.84}\n");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->at("fm.queries").type, "counter");
  EXPECT_DOUBLE_EQ(metrics->at("fm.queries").value, 112.0);
  EXPECT_DOUBLE_EQ(metrics->at("run.estimated_p").value, 0.84);
}

// ---------------------------------------------------------------------------
// Report golden
// ---------------------------------------------------------------------------

TEST(ReportTest, GoldenReport) {
  ReportInput input;
  input.journal_text = kJournal;
  auto report = BuildReport(input);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->contract_ok);
  EXPECT_EQ(
      report->rendered,
      "== obsctl report ==\n"
      "journal events: 10\n"
      "run: tau=40 seed=11\n"
      "totals: queries=3 evaluated=2 accepted=1 rejected=1 parked=1 "
      "retries=1\n"
      "run.end: queries=2 accepted=1 parked_entries=1 fully_resolved=no\n"
      "\n"
      "contract checks:\n"
      "  accepted+rejected == queries-parked: OK (2 vs 2)\n"
      "  run.end.queries == queries-parked: OK (2 vs 2)\n"
      "  run.end.accepted == accepted: OK (1 vs 1)\n"
      "\n"
      "== per-MUP repair cost ==\n"
      "+--------+---------+---------+----------+----------+----------+"
      "----------+---------+--------+\n"
      "| target | planned | queries | accepted | rej.dist | rej.qual | "
      "rej.both | retries | parked |\n"
      "+--------+---------+---------+----------+----------+----------+"
      "----------+---------+--------+\n"
      "| 0,3    | 2       | 3       | 1        | 0        | 1        | "
      "0        | 1       | 1      |\n"
      "| TOTAL  | 2       | 3       | 1        | 0        | 1        | "
      "0        | 1       | 1      |\n"
      "+--------+---------+---------+----------+----------+----------+"
      "----------+---------+--------+\n"
      "\n"
      "== per-arm pulls/rewards ==\n"
      "+-----+-------+----------+----------+-------------+\n"
      "| arm | pulls | accepted | rejected | accept_rate |\n"
      "+-----+-------+----------+----------+-------------+\n"
      "| 0   | 1     | 1        | 0        | 100.0%      |\n"
      "| 1   | 2     | 0        | 1        | 0.0%        |\n"
      "+-----+-------+----------+----------+-------------+\n");
}

TEST(ReportTest, ContractViolationSetsFlagAndExitPath) {
  ReportInput input;
  input.journal_text =
      "{\"type\":\"fm.query\",\"tick\":1,\"target\":\"0,3\",\"arm\":0}\n";
  auto report = BuildReport(input);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->contract_ok);
  EXPECT_NE(report->rendered.find("VIOLATED"), std::string::npos);
}

TEST(ReportTest, MetricsCrossCheckCatchesRegistryDrift) {
  ReportInput input;
  input.journal_text = kJournal;
  // The journal saw 3 fm.query events; a counter claiming 4 is drift.
  input.metrics_text =
      "{\"name\":\"fm.queries\",\"type\":\"counter\",\"value\":4}\n"
      "{\"name\":\"rejection.accepted\",\"type\":\"counter\",\"value\":1}\n"
      "{\"name\":\"rejection.rejected\",\"type\":\"counter\",\"value\":1}\n";
  auto report = BuildReport(input);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->contract_ok);
  EXPECT_NE(report->rendered.find(
                "metrics fm.queries == journal fm.query: VIOLATED"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Artifact detection + diff
// ---------------------------------------------------------------------------

std::string BenchDoc(const std::string& cases) {
  return "{\"schema_version\": 1, \"name\": \"bench_x\", \"git_sha\": "
         "\"abc1234\", \"build_type\": \"release\", \"smoke\": true, "
         "\"config\": {}, \"cases\": [" +
         cases + "]}";
}

std::string BenchCaseJson(const std::string& name, double ns) {
  const std::string value = std::to_string(ns);
  return "{\"name\": \"" + name + "\", \"ns_per_op\": " + value +
         ", \"iterations\": 10, \"p50_ns\": " + value +
         ", \"p90_ns\": " + value + ", \"p99_ns\": " + value + "}";
}

TEST(DetectArtifactKindTest, SniffsAllThreeKinds) {
  auto bench = DetectArtifactKind(BenchDoc(BenchCaseJson("c", 10.0)));
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ(*bench, ArtifactKind::kBenchJson);

  auto journal = DetectArtifactKind(kJournal);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(*journal, ArtifactKind::kJournalJsonl);

  auto metrics = DetectArtifactKind(
      "{\"name\":\"fm.queries\",\"type\":\"counter\",\"value\":112}\n");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(*metrics, ArtifactKind::kMetricsJsonl);

  EXPECT_FALSE(DetectArtifactKind("").ok());
  EXPECT_FALSE(DetectArtifactKind("not json\n").ok());
}

TEST(DiffTest, BenchRegressionsAreGatedByThreshold) {
  const std::string base = BenchDoc(BenchCaseJson("BM_Fast", 100.0) + ", " +
                                    BenchCaseJson("BM_Slow", 100.0));
  const std::string regressed = BenchDoc(
      BenchCaseJson("BM_Fast", 110.0) + ", " + BenchCaseJson("BM_Slow", 150.0));
  auto diff = DiffArtifacts(base, regressed, 0.25);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->compared, 2);
  EXPECT_EQ(diff->flagged, 1);    // +10% is under the 25% gate
  EXPECT_EQ(diff->regressions, 1);
  EXPECT_NE(diff->rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(diff->rendered.find("+50.0%"), std::string::npos);
}

TEST(DiffTest, ImprovementsAreFlaggedButNotRegressions) {
  const std::string base = BenchDoc(BenchCaseJson("BM_X", 100.0));
  const std::string improved = BenchDoc(BenchCaseJson("BM_X", 50.0));
  auto diff = DiffArtifacts(base, improved, 0.25);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->flagged, 1);
  EXPECT_EQ(diff->regressions, 0);
  EXPECT_NE(diff->rendered.find("improved"), std::string::npos);
}

TEST(DiffTest, MetricsCountDeltasAreSymmetricRegressions) {
  const std::string base =
      "{\"name\":\"fm.queries\",\"type\":\"counter\",\"value\":100}\n";
  const std::string drifted =
      "{\"name\":\"fm.queries\",\"type\":\"counter\",\"value\":10}\n";
  auto identical = DiffArtifacts(base, base, 0.25);
  ASSERT_TRUE(identical.ok());
  EXPECT_EQ(identical->regressions, 0);
  // Identical runs were expected: a shrinking count regresses too.
  auto diff = DiffArtifacts(base, drifted, 0.25);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->regressions, 1);
}

TEST(DiffTest, KindMismatchFails) {
  auto diff = DiffArtifacts(BenchDoc(BenchCaseJson("c", 1.0)), kJournal, 0.25);
  EXPECT_FALSE(diff.ok());
}

// ---------------------------------------------------------------------------
// Bench JSON schema validation
// ---------------------------------------------------------------------------

TEST(ValidateBenchJsonTest, AcceptsWellFormedReport) {
  EXPECT_TRUE(ValidateBenchJson(BenchDoc(BenchCaseJson("c", 10.0))).ok());
}

TEST(ValidateBenchJsonTest, RejectsMalformedReports) {
  EXPECT_FALSE(ValidateBenchJson("not json").ok());
  EXPECT_FALSE(ValidateBenchJson("{\"schema_version\": 99}").ok());
  // Missing git_sha.
  EXPECT_FALSE(
      ValidateBenchJson(
          "{\"schema_version\": 1, \"name\": \"x\", \"build_type\": "
          "\"release\", \"cases\": [" +
          BenchCaseJson("c", 1.0) + "]}")
          .ok());
  // Empty cases.
  EXPECT_FALSE(ValidateBenchJson(BenchDoc("")).ok());
  // Unordered percentiles.
  EXPECT_FALSE(
      ValidateBenchJson(BenchDoc(
          "{\"name\": \"c\", \"ns_per_op\": 1, \"iterations\": 1, "
          "\"p50_ns\": 5, \"p90_ns\": 2, \"p99_ns\": 9}"))
          .ok());
  // Zero iterations.
  EXPECT_FALSE(
      ValidateBenchJson(BenchDoc(
          "{\"name\": \"c\", \"ns_per_op\": 1, \"iterations\": 0, "
          "\"p50_ns\": 1, \"p90_ns\": 1, \"p99_ns\": 1}"))
          .ok());
}

// ---------------------------------------------------------------------------
// End-to-end: report determinism over a real instrumented repair
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::string journal;
  std::string trace;
  std::string metrics;
  int64_t queries = 0;
  int64_t accepted = 0;
};

RunArtifacts RunInstrumentedRepair(int num_threads) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus =
      *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel model(corpus.dataset.schema(),
                                     datasets::FeretFaceStyleFn(),
                                     datasets::FeretScene(),
                                     fm::SimulatedFoundationModel::Options());
  obs::Observability observability;
  core::ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.num_threads = num_threads;
  options.rejection_batch = 4;
  options.observability = &observability;
  core::Chameleon system(&model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  EXPECT_TRUE(report.ok());

  RunArtifacts artifacts;
  artifacts.journal = observability.journal.ToJsonl();
  artifacts.trace = observability.tracer.ToJsonl();
  artifacts.metrics = observability.registry.ToJson();
  artifacts.queries = report->queries;
  artifacts.accepted = report->accepted;
  return artifacts;
}

TEST(ObsctlPipelineTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const RunArtifacts serial = RunInstrumentedRepair(1);
  ReportInput input;
  input.journal_text = serial.journal;
  input.trace_text = serial.trace;
  input.metrics_text = serial.metrics;
  auto serial_report = BuildReport(input);
  ASSERT_TRUE(serial_report.ok());
  EXPECT_TRUE(serial_report->contract_ok);

  // The report's totals match the pipeline's own RepairReport exactly:
  // evaluated queries and accepted tuples agree with the run.
  auto stats = AnalyzeJournal(serial.journal);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->TotalQueries() - stats->TotalParked(), serial.queries);
  EXPECT_EQ(stats->TotalAccepted(), serial.accepted);

  for (int threads : {2, 8}) {
    const RunArtifacts parallel = RunInstrumentedRepair(threads);
    ReportInput parallel_input;
    parallel_input.journal_text = parallel.journal;
    parallel_input.trace_text = parallel.trace;
    parallel_input.metrics_text = parallel.metrics;
    auto parallel_report = BuildReport(parallel_input);
    ASSERT_TRUE(parallel_report.ok());
    EXPECT_TRUE(parallel_report->contract_ok) << threads << " threads";
    EXPECT_EQ(parallel_report->rendered, serial_report->rendered)
        << threads << " threads";
  }
}

TEST(ObsctlPipelineTest, TruncatedJournalStillAnalyzes) {
  const RunArtifacts run = RunInstrumentedRepair(1);
  // Chop the journal mid-final-line, as a kill -9 during a streamed
  // write would.
  const std::string truncated =
      run.journal.substr(0, run.journal.size() - 25);
  ReportInput input;
  input.journal_text = truncated;
  auto report = BuildReport(input);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->rendered.find("truncated tail"), std::string::npos);
  EXPECT_NE(report->rendered.find("run.end: missing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interleaved multi-request traces (the combined daemon trace case)
// ---------------------------------------------------------------------------

TEST(AnalyzeTraceTest, InterleavedRequestsKeyedByRidAndId) {
  // Two concurrent requests both number their spans from 1. Keyed by id
  // alone, request B's span 1 would collide with request A's and the
  // depth-1 child would attach to the wrong parent.
  const std::string trace =
      "{\"rid\":\"a\",\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"repair.run\","
      "\"start_tick\":1,\"end_tick\":20}\n"
      "{\"rid\":\"b\",\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"repair.run\","
      "\"start_tick\":1,\"end_tick\":30}\n"
      "{\"rid\":\"a\",\"id\":2,\"parent\":1,\"depth\":1,\"name\":\"plan.entry\","
      "\"start_tick\":2,\"end_tick\":10}\n"
      "{\"rid\":\"b\",\"id\":2,\"parent\":1,\"depth\":1,\"name\":\"plan.entry\","
      "\"start_tick\":3,\"end_tick\":13}\n";
  bool truncated = true;
  auto rollups = AnalyzeTrace(trace, &truncated);
  ASSERT_TRUE(rollups.ok()) << rollups.status().ToString();
  EXPECT_FALSE(truncated);
  ASSERT_EQ(rollups->size(), 2u);
  // Four distinct spans, not two: (a,1), (b,1), (a,2), (b,2).
  EXPECT_EQ((*rollups)[0].name, "repair.run");
  EXPECT_EQ((*rollups)[0].count, 2);
  EXPECT_EQ((*rollups)[0].depth, 0);
  EXPECT_EQ((*rollups)[0].total_ticks, 19 + 29);
  EXPECT_EQ((*rollups)[1].name, "plan.entry");
  EXPECT_EQ((*rollups)[1].count, 2);
  EXPECT_EQ((*rollups)[1].depth, 1);
  EXPECT_EQ((*rollups)[1].total_ticks, 8 + 10);
}

TEST(AnalyzeTraceTest, DuplicateRecordsPreferCompletedSpan) {
  // A streamed trace can carry a catch-up record (open) and the final
  // record (ended) for the same span; they must collapse to one span.
  const std::string trace =
      "{\"rid\":\"a\",\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"repair.run\","
      "\"start_tick\":1,\"end_tick\":0}\n"
      "{\"rid\":\"a\",\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"repair.run\","
      "\"start_tick\":1,\"end_tick\":9}\n";
  bool truncated = false;
  auto rollups = AnalyzeTrace(trace, &truncated);
  ASSERT_TRUE(rollups.ok());
  ASSERT_EQ(rollups->size(), 1u);
  EXPECT_EQ((*rollups)[0].count, 1);
  EXPECT_EQ((*rollups)[0].open, 0);
  EXPECT_EQ((*rollups)[0].total_ticks, 8);
}

TEST(AnalyzeTraceTest, BrokenParentChainFallsBackToRecordedDepth) {
  // Parent 7 never appears (streamed partial file): the recorded depth
  // is trusted instead of walking the chain.
  const std::string trace =
      "{\"id\":9,\"parent\":7,\"depth\":3,\"name\":\"orphan\","
      "\"start_tick\":5,\"end_tick\":6}\n";
  bool truncated = false;
  auto rollups = AnalyzeTrace(trace, &truncated);
  ASSERT_TRUE(rollups.ok());
  ASSERT_EQ(rollups->size(), 1u);
  EXPECT_EQ((*rollups)[0].depth, 3);
}

// ---------------------------------------------------------------------------
// OpenMetrics validation
// ---------------------------------------------------------------------------

TEST(ValidateOpenMetricsTest, AcceptsWellFormedExposition) {
  const std::string text =
      "# TYPE fm_queries counter\n"
      "fm_queries_total 320\n"
      "# TYPE run_estimated_p gauge\n"
      "run_estimated_p 0.834\n"
      "# TYPE fm_batch_size histogram\n"
      "fm_batch_size_bucket{le=\"1\"} 82\n"
      "fm_batch_size_bucket{le=\"+Inf\"} 144\n"
      "fm_batch_size_sum 320\n"
      "fm_batch_size_count 144\n"
      "# TYPE fm_batch_size_latency summary\n"
      "fm_batch_size_latency{quantile=\"0.5\"} 1\n"
      "# EOF\n";
  const util::Status status = ValidateOpenMetrics(text);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ValidateOpenMetricsTest, RejectsStructuralViolations) {
  // Missing # EOF terminator.
  EXPECT_FALSE(
      ValidateOpenMetrics("# TYPE c counter\nc_total 1\n").ok());
  // Sample without a TYPE declaration.
  EXPECT_FALSE(ValidateOpenMetrics("undeclared_total 1\n# EOF\n").ok());
  // Counter sample without the _total suffix.
  EXPECT_FALSE(
      ValidateOpenMetrics("# TYPE c counter\nc 1\n# EOF\n").ok());
  // Non-cumulative buckets.
  EXPECT_FALSE(ValidateOpenMetrics("# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"+Inf\"} 3\n"
                                   "h_sum 1\nh_count 5\n# EOF\n")
                   .ok());
  // Bucket after le="+Inf".
  EXPECT_FALSE(ValidateOpenMetrics("# TYPE h histogram\n"
                                   "h_bucket{le=\"+Inf\"} 3\n"
                                   "h_bucket{le=\"9\"} 3\n"
                                   "h_sum 1\nh_count 3\n# EOF\n")
                   .ok());
  // Non-numeric sample value.
  EXPECT_FALSE(
      ValidateOpenMetrics("# TYPE c counter\nc_total x\n# EOF\n").ok());
  // Unknown metric kind.
  EXPECT_FALSE(ValidateOpenMetrics("# TYPE c untyped\n# EOF\n").ok());
  // Duplicate declaration.
  EXPECT_FALSE(ValidateOpenMetrics("# TYPE c counter\n# TYPE c gauge\n"
                                   "c_total 1\n# EOF\n")
                   .ok());
}

// ---------------------------------------------------------------------------
// Daemon journal aggregation and tail rendering
// ---------------------------------------------------------------------------

namespace {

/// A minimal two-request daemon journal with interleaved wrapper events.
/// The inner lines are a self-consistent micro journal per request so
/// the per-request contract check has something real to verify.
std::string TwoRequestDaemonJournal() {
  return
      R"({"type":"daemon.start","tick":1,"max_queue":32})" "\n"
      R"({"type":"req.accepted","tick":2,"id":"a","client":"x","dataset":"micro","tau":4,"seed":11,"deadline_ms":0})" "\n"
      R"({"type":"req.accepted","tick":3,"id":"b","client":"y","dataset":"micro","tau":4,"seed":11,"deadline_ms":0})" "\n"
      R"({"type":"req.event","tick":4,"rid":"a","line":"{\"type\":\"run.start\",\"tick\":1,\"rid\":\"a\",\"tau\":4,\"seed\":11}"})" "\n"
      R"({"type":"req.event","tick":5,"rid":"b","line":"{\"type\":\"run.start\",\"tick\":1,\"rid\":\"b\",\"tau\":4,\"seed\":11}"})" "\n"
      R"({"type":"req.span","tick":6,"rid":"a","line":"{\"rid\":\"a\",\"id\":1,\"parent\":0,\"depth\":0,\"name\":\"repair.run\",\"start_tick\":1,\"end_tick\":9,\"start_ms\":0,\"end_ms\":1}"})" "\n"
      R"({"type":"req.event","tick":7,"rid":"a","line":"{\"type\":\"run.end\",\"tick\":9,\"rid\":\"a\",\"queries\":0,\"accepted\":0,\"parked\":0,\"fully_resolved\":true}"})" "\n"
      R"({"type":"req.event","tick":8,"rid":"b","line":"{\"type\":\"run.end\",\"tick\":9,\"rid\":\"b\",\"queries\":0,\"accepted\":0,\"parked\":0,\"fully_resolved\":true}"})" "\n"
      R"({"type":"req.end","tick":9,"id":"a","status":"ok","accepted":0,"queries":0,"parked":0,"digest":"d1"})" "\n"
      R"({"type":"req.end","tick":10,"id":"b","status":"ok","accepted":0,"queries":0,"parked":0,"digest":"d2"})" "\n"
      R"({"type":"daemon.exit","tick":11,"forced":false,"drained":0})" "\n";
}

}  // namespace

TEST(AggregateDaemonJournalTest, SplitsInterleavedRequests) {
  auto aggregate = AggregateDaemonJournal(TwoRequestDaemonJournal());
  ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
  EXPECT_TRUE(aggregate->has_daemon_start);
  EXPECT_TRUE(aggregate->has_daemon_exit);
  EXPECT_FALSE(aggregate->truncated_tail);
  EXPECT_EQ(aggregate->total_lines, 11);
  EXPECT_EQ(aggregate->wrapper_events, 5);
  ASSERT_EQ(aggregate->requests.size(), 2u);

  const RequestRollup& a = aggregate->requests[0];
  EXPECT_EQ(a.id, "a");
  EXPECT_EQ(a.client, "x");
  EXPECT_EQ(a.status, "ok");
  EXPECT_EQ(a.digest, "d1");
  ASSERT_EQ(a.journal_lines.size(), 2u);
  // The unwrapped line is the original bytes, escapes undone.
  EXPECT_EQ(a.journal_lines[0],
            R"({"type":"run.start","tick":1,"rid":"a","tau":4,"seed":11})");
  ASSERT_EQ(a.span_lines.size(), 1u);
  EXPECT_TRUE(a.contract_ok);

  const RequestRollup& b = aggregate->requests[1];
  EXPECT_EQ(b.id, "b");
  EXPECT_EQ(b.client, "y");
  EXPECT_EQ(b.span_lines.size(), 0u);
  EXPECT_TRUE(b.contract_ok);
  EXPECT_TRUE(aggregate->AllContractsHold());

  const std::string rendered = RenderDaemonAggregate(*aggregate);
  EXPECT_NE(rendered.find("| a"), std::string::npos);
  EXPECT_NE(rendered.find("| b"), std::string::npos);
  EXPECT_NE(rendered.find("OK"), std::string::npos);
}

TEST(AggregateDaemonJournalTest, ContractViolationInOneRequestFlagged) {
  // Request "bad" journals an fm.query with no verdict and no park —
  // the registry contract cannot hold for its slice.
  const std::string journal =
      R"({"type":"req.accepted","tick":1,"id":"bad","client":"x","dataset":"micro","tau":4,"seed":11,"deadline_ms":0})" "\n"
      R"({"type":"req.event","tick":2,"rid":"bad","line":"{\"type\":\"fm.query\",\"tick\":1,\"rid\":\"bad\",\"target\":\"0,3\",\"arm\":0}"})" "\n";
  auto aggregate = AggregateDaemonJournal(journal);
  ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
  ASSERT_EQ(aggregate->requests.size(), 1u);
  EXPECT_FALSE(aggregate->requests[0].contract_ok);
  EXPECT_FALSE(aggregate->AllContractsHold());
  EXPECT_NE(RenderDaemonAggregate(*aggregate).find("VIOLATED"),
            std::string::npos);
}

TEST(AggregateDaemonJournalTest, ToleratesTruncatedTail) {
  std::string journal = TwoRequestDaemonJournal();
  journal.resize(journal.size() - 20);  // tear the final line
  auto aggregate = AggregateDaemonJournal(journal);
  ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
  EXPECT_TRUE(aggregate->truncated_tail);
  EXPECT_EQ(aggregate->requests.size(), 2u);
}

TEST(RenderTailLineTest, UnwrapsWrapperEventsAndPassesOthersThrough) {
  EXPECT_EQ(
      RenderTailLine(
          R"({"type":"req.event","tick":4,"rid":"a","line":"{\"type\":\"run.start\",\"tick\":1}"})"),
      R"([a] {"type":"run.start","tick":1})");
  EXPECT_EQ(
      RenderTailLine(
          R"({"type":"req.span","tick":5,"rid":"b","line":"{\"rid\":\"b\",\"id\":1}"})"),
      R"([b] {"rid":"b","id":1})");
  const std::string passthrough =
      R"({"type":"req.start","tick":3,"id":"a"})";
  EXPECT_EQ(RenderTailLine(passthrough), passthrough);
  // Unparseable lines must pass through verbatim, never be hidden.
  EXPECT_EQ(RenderTailLine("not json at all"), "not json at all");
}

}  // namespace
}  // namespace chameleon::obsctl
