#include <cmath>

#include "gtest/gtest.h"
#include "src/nn/metrics.h"
#include "src/nn/mlp.h"
#include "src/nn/trainer.h"
#include "src/util/rng.h"

namespace chameleon::nn {
namespace {

TEST(MlpTest, ShapesAndForward) {
  util::Rng rng(1);
  Mlp model({3, 5, 2}, &rng);
  EXPECT_EQ(model.input_size(), 3);
  EXPECT_EQ(model.output_size(), 2);
  EXPECT_EQ(model.num_layers(), 2);
  const auto out = model.Forward({0.1, -0.2, 0.3});
  EXPECT_EQ(out.size(), 2u);
}

TEST(MlpTest, ForwardWithActivationsTracksLayers) {
  util::Rng rng(2);
  Mlp model({2, 4, 3}, &rng);
  std::vector<std::vector<double>> activations;
  model.ForwardWithActivations({1.0, -1.0}, &activations);
  ASSERT_EQ(activations.size(), 3u);
  EXPECT_EQ(activations[0].size(), 2u);
  EXPECT_EQ(activations[1].size(), 4u);
  EXPECT_EQ(activations[2].size(), 3u);
  // Hidden activations are ReLU outputs: non-negative.
  for (double v : activations[1]) EXPECT_GE(v, 0.0);
  // Final activations equal Forward().
  EXPECT_EQ(activations[2], model.Forward({1.0, -1.0}));
}

TEST(SoftmaxTest, NormalizesAndOrders) {
  const auto probs = Softmax({1.0, 2.0, 3.0});
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const auto probs = Softmax({1000.0, 1000.0});
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_FALSE(std::isnan(probs[1]));
}

TEST(TrainerTest, LearnsLinearlySeparableClasses) {
  util::Rng rng(3);
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextGaussian();
    const double y = rng.NextGaussian();
    inputs.push_back({x, y});
    labels.push_back(x + y > 0 ? 1 : 0);
  }
  Mlp model({2, 8, 2}, &rng);
  TrainOptions options;
  options.epochs = 60;
  auto report = TrainClassifier(&model, inputs, labels, options, &rng);
  ASSERT_TRUE(report.ok());
  int correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    correct += model.Predict(inputs[i]) == labels[i];
  }
  EXPECT_GT(correct, 190);
  // Loss should have decreased.
  EXPECT_LT(report->final_loss, report->epoch_losses.front());
}

TEST(TrainerTest, LearnsXorWithHiddenLayer) {
  util::Rng rng(5);
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextDouble() * 2 - 1;
    const double y = rng.NextDouble() * 2 - 1;
    inputs.push_back({x, y});
    labels.push_back((x > 0) != (y > 0) ? 1 : 0);
  }
  Mlp model({2, 16, 2}, &rng);
  TrainOptions options;
  options.epochs = 200;
  options.learning_rate = 0.05;
  auto report = TrainClassifier(&model, inputs, labels, options, &rng);
  ASSERT_TRUE(report.ok());
  int correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    correct += model.Predict(inputs[i]) == labels[i];
  }
  EXPECT_GT(correct, 360);
}

TEST(TrainerTest, RegressorFitsLinearTarget) {
  util::Rng rng(7);
  std::vector<std::vector<double>> inputs;
  std::vector<double> targets;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.NextDouble() * 2 - 1;
    inputs.push_back({x});
    targets.push_back(3.0 * x + 1.0);
  }
  Mlp model({1, 8, 1}, &rng);
  TrainOptions options;
  options.epochs = 150;
  options.learning_rate = 0.02;
  auto report = TrainRegressor(&model, inputs, targets, options, &rng);
  ASSERT_TRUE(report.ok());
  double total_error = 0.0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    total_error += std::fabs(model.Forward(inputs[i])[0] - targets[i]);
  }
  EXPECT_LT(total_error / inputs.size(), 0.25);
}

TEST(TrainerTest, ValidatesInputs) {
  util::Rng rng(9);
  Mlp model({2, 2}, &rng);
  TrainOptions options;
  EXPECT_FALSE(TrainClassifier(&model, {{1, 2}}, {0, 1}, options, &rng).ok());
  EXPECT_FALSE(TrainClassifier(&model, {{1, 2}}, {5}, options, &rng).ok());
  EXPECT_FALSE(TrainClassifier(&model, {{1}}, {0}, options, &rng).ok());
  EXPECT_FALSE(TrainClassifier(&model, {}, {}, options, &rng).ok());
  EXPECT_FALSE(TrainRegressor(&model, {{1, 2}}, {0.5}, options, &rng).ok());
}

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<int> gold = {0, 1, 2, 1};
  ClassificationReport report(gold, gold, 3);
  EXPECT_DOUBLE_EQ(report.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(report.MacroF1(), 1.0);
  EXPECT_DOUBLE_EQ(report.WeightedF1(), 1.0);
}

TEST(MetricsTest, KnownConfusion) {
  // gold:      0 0 0 0 1 1
  // predicted: 0 0 1 1 1 0
  const std::vector<int> gold = {0, 0, 0, 0, 1, 1};
  const std::vector<int> predicted = {0, 0, 1, 1, 1, 0};
  ClassificationReport report(gold, predicted, 2);
  const auto& class0 = report.class_metrics(0);
  EXPECT_DOUBLE_EQ(class0.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(class0.Recall(), 0.5);
  const auto& class1 = report.class_metrics(1);
  EXPECT_DOUBLE_EQ(class1.Precision(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(class1.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(report.Accuracy(), 0.5);
  EXPECT_EQ(class0.support, 4);
  EXPECT_EQ(class1.support, 2);
  // Weighted recall equals accuracy for complete predictions.
  EXPECT_NEAR(report.WeightedRecall(), report.Accuracy(), 1e-12);
}

TEST(MetricsTest, ZeroSupportClassesExcludedFromMacro) {
  const std::vector<int> gold = {0, 0};
  const std::vector<int> predicted = {0, 0};
  ClassificationReport report(gold, predicted, 3);
  EXPECT_DOUBLE_EQ(report.MacroF1(), 1.0);  // classes 1,2 ignored
}

TEST(MetricsTest, F1IsZeroWhenNoPredictions) {
  const std::vector<int> gold = {1, 1};
  const std::vector<int> predicted = {0, 0};
  ClassificationReport report(gold, predicted, 2);
  EXPECT_DOUBLE_EQ(report.class_metrics(1).F1(), 0.0);
  EXPECT_DOUBLE_EQ(report.class_metrics(1).Precision(), 0.0);
}

TEST(MetricsTest, FiveGroupHandComputedReport) {
  // A Table-3-shaped scenario: five intersectional groups with shrinking
  // support, the smallest of which the classifier misses entirely — the
  // exact situation Chameleon's augmentation targets. Every per-group
  // number below is hand-computed from the confusion matrix.
  //
  //            predicted
  //  gold      0  1  2  3  4   support
  //    0       5  1  0  0  0      6
  //    1       0  4  1  0  0      5
  //    2       1  0  3  0  0      4
  //    3       0  0  0  2  1      3
  //    4       2  0  0  0  0      2   <- minority group, fully missed
  std::vector<int> gold, predicted;
  auto add = [&](int g, int p, int n) {
    for (int i = 0; i < n; ++i) {
      gold.push_back(g);
      predicted.push_back(p);
    }
  };
  add(0, 0, 5); add(0, 1, 1);
  add(1, 1, 4); add(1, 2, 1);
  add(2, 0, 1); add(2, 2, 3);
  add(3, 3, 2); add(3, 4, 1);
  add(4, 0, 2);
  ClassificationReport report(gold, predicted, 5);

  const double precision[] = {5.0 / 8.0, 4.0 / 5.0, 3.0 / 4.0, 1.0, 0.0};
  const double recall[] = {5.0 / 6.0, 4.0 / 5.0, 3.0 / 4.0, 2.0 / 3.0, 0.0};
  const double f1[] = {5.0 / 7.0, 4.0 / 5.0, 3.0 / 4.0, 4.0 / 5.0, 0.0};
  const int64_t support[] = {6, 5, 4, 3, 2};
  for (int c = 0; c < 5; ++c) {
    const ClassMetrics& group = report.class_metrics(c);
    EXPECT_EQ(group.support, support[c]) << "group " << c;
    EXPECT_DOUBLE_EQ(group.Precision(), precision[c]) << "group " << c;
    EXPECT_DOUBLE_EQ(group.Recall(), recall[c]) << "group " << c;
    EXPECT_DOUBLE_EQ(group.F1(), f1[c]) << "group " << c;
  }

  EXPECT_DOUBLE_EQ(report.Accuracy(), 14.0 / 20.0);
  EXPECT_DOUBLE_EQ(report.MacroPrecision(),
                   (5.0 / 8.0 + 4.0 / 5.0 + 3.0 / 4.0 + 1.0 + 0.0) / 5.0);
  EXPECT_DOUBLE_EQ(
      report.MacroRecall(),
      (5.0 / 6.0 + 4.0 / 5.0 + 3.0 / 4.0 + 2.0 / 3.0 + 0.0) / 5.0);
  EXPECT_DOUBLE_EQ(report.MacroF1(),
                   (5.0 / 7.0 + 4.0 / 5.0 + 3.0 / 4.0 + 4.0 / 5.0 + 0.0) / 5.0);
  EXPECT_DOUBLE_EQ(report.WeightedF1(),
                   (6 * (5.0 / 7.0) + 5 * (4.0 / 5.0) + 4 * (3.0 / 4.0) +
                    3 * (4.0 / 5.0) + 2 * 0.0) /
                       20.0);
  // Weighted recall equals accuracy when every example gets a prediction.
  EXPECT_DOUBLE_EQ(report.WeightedRecall(), report.Accuracy());

  // p-Disparity per group against the overall accuracy (the paper's
  // Figure-4 view): majority groups sit at zero, the missed minority at 1.
  const double overall = report.Accuracy();
  EXPECT_DOUBLE_EQ(Disparity(report.class_metrics(0).Recall(), overall), 0.0);
  EXPECT_DOUBLE_EQ(Disparity(report.class_metrics(4).Recall(), overall), 1.0);
  EXPECT_NEAR(Disparity(report.class_metrics(3).Recall(), overall),
              1.0 - (2.0 / 3.0) / 0.7, 1e-12);
}

TEST(DisparityTest, MatchesPaperFormula) {
  // p-Disparity(g) = max(0, 1 - rho_g / rho_all).
  EXPECT_NEAR(Disparity(0.16, 0.78), 1.0 - 0.16 / 0.78, 1e-12);
  EXPECT_DOUBLE_EQ(Disparity(0.9, 0.8), 0.0);  // group beats overall
  EXPECT_DOUBLE_EQ(Disparity(0.0, 0.8), 1.0);
  EXPECT_DOUBLE_EQ(Disparity(0.5, 0.0), 0.0);  // degenerate overall
}

}  // namespace
}  // namespace chameleon::nn
