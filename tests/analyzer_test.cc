// Fixture tests for the chameleon-lint rule engine. Each rule gets a
// positive case, a NOLINT-suppressed case, and a clean case; violations
// live inside raw strings so the linter's own pass over this file (the
// chameleon_lint_test ctest) sees nothing.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyzer/rules.h"
#include "tools/analyzer/token.h"

namespace chameleon_lint {
namespace {

std::vector<Finding> LintSource(const std::string& path, const std::string& source,
                         LintOptions options = {}) {
  const LexResult lex = Lex(source);
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  return LintFile(path, source, lex, registry, options);
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int count = 0;
  for (const Finding& f : findings) count += f.rule == rule;
  return count;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, SkipsCommentsStringsAndCharLiterals) {
  const LexResult lex = Lex(R"fixture(
// rand() in a comment
/* srand(1) in a block comment */
const char* s = "rand()";
char c = 'r';
int separated = 1'000'000;
)fixture");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "srand");
  }
  // The digit-separated number is one token.
  bool found = false;
  for (const Token& t : lex.tokens) found |= t.text == "1'000'000";
  EXPECT_TRUE(found);
}

TEST(LexerTest, RawStringsAreOpaque) {
  const LexResult lex = Lex("auto s = R\"(std::random_device rd;)\";");
  for (const Token& t : lex.tokens) EXPECT_NE(t.text, "random_device");
}

TEST(LexerTest, FoldsPreprocessorContinuations) {
  const LexResult lex = Lex("#define MACRO(x) \\\n  do_thing(x)\nint y;");
  ASSERT_EQ(lex.directives.size(), 1u);
  EXPECT_EQ(lex.directives[0].line, 1);
  // The macro body never reaches the token stream.
  for (const Token& t : lex.tokens) EXPECT_NE(t.text, "do_thing");
}

TEST(LexerTest, NolintParsing) {
  const LexResult lex = Lex(
      "int a;  // NOLINT\n"
      "int b;  // NOLINT(chameleon-determinism, chameleon-status-discipline)\n"
      "// NOLINTNEXTLINE(chameleon-determinism)\n"
      "int c;\n");
  EXPECT_TRUE(IsSuppressed(lex, 1, "chameleon-anything"));
  EXPECT_TRUE(IsSuppressed(lex, 2, "chameleon-determinism"));
  EXPECT_TRUE(IsSuppressed(lex, 2, "chameleon-status-discipline"));
  EXPECT_FALSE(IsSuppressed(lex, 2, "chameleon-header-hygiene"));
  EXPECT_TRUE(IsSuppressed(lex, 4, "chameleon-determinism"));
  EXPECT_FALSE(IsSuppressed(lex, 3, "chameleon-determinism"));
}

// ---------------------------------------------------------------------------
// Function registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, SplitsStatusFromOtherReturns) {
  const LexResult lex = Lex(R"(
namespace demo {
util::Status SaveThing(int x);
util::Result<int> LoadThing();
void Render(int x);
class Widget {
 public:
  [[nodiscard]] static util::Result<Widget> Train(int n);
  util::Status Flush() { return util::Status(); }
  int size() const;
};
}
)");
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  EXPECT_TRUE(registry.IsUnambiguousStatus("SaveThing"));
  EXPECT_TRUE(registry.IsUnambiguousStatus("LoadThing"));
  EXPECT_TRUE(registry.IsUnambiguousStatus("Train"));
  EXPECT_TRUE(registry.IsUnambiguousStatus("Flush"));
  EXPECT_FALSE(registry.IsUnambiguousStatus("Render"));
  EXPECT_FALSE(registry.IsUnambiguousStatus("size"));
}

TEST(RegistryTest, CollidingNamesBecomeAmbiguous) {
  const LexResult lex = Lex(R"(
util::Status Add(int x);
void Add(double y);
)");
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  EXPECT_FALSE(registry.IsUnambiguousStatus("Add"));
  EXPECT_EQ(registry.status_returning.count("Add"), 1u);
  EXPECT_EQ(registry.other_returning.count("Add"), 1u);
}

TEST(RegistryTest, LocalVariablesAreNotFunctions) {
  const LexResult lex = Lex(R"(
util::Status Go();
void Caller() {
  util::Status s(util::StatusCode::kInternal, "boom");
}
)");
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  EXPECT_EQ(registry.status_returning.count("s"), 0u);
}

// ---------------------------------------------------------------------------
// chameleon-status-discipline
// ---------------------------------------------------------------------------

constexpr char kStatusPrelude[] = R"(
util::Status DoThing(int x);
util::Result<int> Fetch();
struct Sink { util::Status Write(int v); };
)";

TEST(StatusDisciplineTest, FlagsDiscardedCalls) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
void Caller(Sink* sink) {
  DoThing(1);
  sink->Write(2);
  Fetch();
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 3);
}

TEST(StatusDisciplineTest, CheckedAndConsumedCallsAreClean) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
util::Status Caller(Sink* sink) {
  util::Status s = DoThing(1);
  if (!DoThing(2).ok()) return s;
  (void)DoThing(3);
  CHAMELEON_RETURN_NOT_OK(sink->Write(4));
  auto result = Fetch();
  return DoThing(5);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, NolintSuppresses) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
void Caller() {
  DoThing(1);  // NOLINT(chameleon-status-discipline)
  // NOLINTNEXTLINE(chameleon-status-discipline)
  DoThing(2);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, AmbiguousNamesAreSkipped) {
  const auto findings = LintSource("src/a.cc", R"(
util::Status Add(int x);
struct Accum { void Add(double y); };
void Caller(Accum* a) {
  Add(1);
  a->Add(2.0);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, FlagsSingleStatementControlBodies) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
void Caller(bool flip) {
  if (flip) DoThing(1);
  else DoThing(2);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 2);
}

TEST(StatusDisciplineTest, SeededResilienceApisAreFlaggedWithoutDeclarations) {
  // The resilience surface (ResilientFoundationModel::Generate and
  // friends) is seeded into the registry, so a discarded call is flagged
  // even when the declaring header is outside the linted set.
  const std::string source = R"(
void Caller(fm::ResilientFoundationModel* model, util::Rng* rng,
            const fm::GenerationRequest& request) {
  model->Generate(request, rng);
  fm::LoadCorpus("/tmp/corpus");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 2);

  // Without the seed, the same source is silent — the declarations are
  // not in view.
  EXPECT_EQ(CountRule(LintSource("src/a.cc", source), "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededNamesStillGoAmbiguousOnCollision) {
  const std::string source = R"(
struct Legacy { void Generate(int x); };
void Caller(Legacy* legacy) {
  legacy->Generate(1);
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededBatchingApisAreFlagged) {
  // The batched-transport surface: BatchCoalescer::Enqueue/Flush return
  // Status (a dropped Flush status silently loses a whole batch's
  // failures) and GenerateBatch's return vector is must-use (dropping it
  // loses every slot's answer at once).
  const std::string source = R"(
void Dispatch(fm::BatchCoalescer* coalescer, fm::FoundationModel* model,
              std::span<const fm::BatchItem> items) {
  coalescer->Flush();
  model->GenerateBatch(items);
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 2);
  EXPECT_TRUE(registry.IsMustUse("GenerateBatch"));
}

TEST(StatusDisciplineTest, ConsumedBatchingCallsAreClean) {
  const std::string source = R"(
util::Status Dispatch(fm::BatchCoalescer* coalescer,
                      fm::FoundationModel* model,
                      std::span<const fm::BatchItem> items) {
  auto results = model->GenerateBatch(items);
  CHAMELEON_RETURN_NOT_OK(coalescer->Enqueue(&request, &rng, &slot));
  return coalescer->Flush();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededObsMustUseApisAreFlagged) {
  // The observability layer's handle-returning surface (Tracer::StartSpan,
  // Registry::Counter/Gauge/Histogram) is seeded as must-use: discarding
  // the handle is a bug even though the return type is not Status/Result
  // (a discarded Span ends immediately, a discarded instrument pointer
  // records nothing). The journal/registry/tracer `Write` export rides
  // the regular Status seed.
  const std::string source = R"(
void Instrument(obs::Observability* observability) {
  observability->tracer.StartSpan("rejection.batch");
  observability->registry.Counter("fm.queries");
  observability->journal.Write("/tmp/journal.jsonl");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 3);
  EXPECT_TRUE(registry.IsMustUse("StartSpan"));
  EXPECT_TRUE(registry.IsMustUse("Gauge"));
  EXPECT_TRUE(registry.IsMustUse("Histogram"));
  EXPECT_FALSE(registry.IsMustUse("Increment"));
}

TEST(StatusDisciplineTest, BoundObsHandlesAreClean) {
  // The idiomatic uses — binding the Span, chaining the instrument into
  // its recording call, checking the export Status — produce no findings.
  const std::string source = R"(
util::Status Instrument(obs::Observability* observability) {
  obs::Span span = observability->tracer.StartSpan("mup.find");
  observability->registry.Counter("fm.queries")->Increment();
  return observability->journal.Write("/tmp/journal.jsonl");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededExporterAndStreamingApisAreFlagged) {
  // PR 5 surface: the OpenMetrics/trace-event exporters (must-use — the
  // returned string is the result), the bench JSON reporter's WriteJson,
  // and the journal/tracer streaming sinks (Status-returning).
  const std::string source = R"(
void Export(obs::Observability* observability,
            bench::BenchJsonReport* report) {
  obs::ExportOpenMetrics(observability->registry);
  obs::ExportTraceEvents(observability->tracer);
  obs::WriteOpenMetrics(observability->registry, "/tmp/metrics.om");
  report->WriteJson("/tmp/BENCH_x.json");
  observability->journal.StreamTo("/tmp/journal.jsonl");
  observability->journal.CloseStream();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 6);
  EXPECT_TRUE(registry.IsMustUse("ExportOpenMetrics"));
  EXPECT_TRUE(registry.IsMustUse("ExportTraceEvents"));
}

TEST(StatusDisciplineTest, ConsumedExporterAndStreamingCallsAreClean) {
  const std::string source = R"(
util::Status Export(obs::Observability* observability) {
  const std::string text = obs::ExportOpenMetrics(observability->registry);
  CHAMELEON_RETURN_NOT_OK(observability->journal.StreamTo("/tmp/j.jsonl"));
  return observability->journal.CloseStream();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, NolintSuppressesMustUseFindings) {
  const std::string source =
      "void Instrument(obs::Tracer* tracer) {\n"
      "  tracer->StartSpan(\"x\");  // NOLINT(chameleon-status-discipline)\n"
      "}\n";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, DisableFlagTurnsRuleOff) {
  LintOptions options;
  options.disabled.insert("status-discipline");
  const auto findings = LintSource("src/a.cc",
                            std::string(kStatusPrelude) + R"(
void Caller() { DoThing(1); }
)",
                            options);
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

// ---------------------------------------------------------------------------
// chameleon-determinism
// ---------------------------------------------------------------------------

TEST(DeterminismTest, FlagsHiddenEntropySources) {
  const auto findings = LintSource("src/a.cc", R"(
void Seeds() {
  int r = rand();
  srand(42);
  std::random_device rd;
  std::mt19937 gen(time(nullptr));
  auto t = std::chrono::steady_clock::now();
}
)");
  EXPECT_EQ(CountRule(findings, "determinism"), 5);
}

TEST(DeterminismTest, AllowlistedPathsAreExempt) {
  const std::string source = R"(
void Tick() { auto t = std::chrono::steady_clock::now(); }
)";
  EXPECT_EQ(CountRule(LintSource("src/util/stopwatch.cc", source), "determinism"), 0);
  EXPECT_EQ(CountRule(LintSource("bench/bench_micro_x.cc", source), "determinism"),
            0);
  EXPECT_EQ(CountRule(LintSource("src/core/chameleon.cc", source), "determinism"), 1);
}

TEST(DeterminismTest, MemberFunctionsNamedLikeBannedOnesAreClean) {
  const auto findings = LintSource("src/a.cc", R"(
void Caller(Clock* clock, Rng* gen) {
  auto t = clock->now();
  int r = gen->rand();
  auto d = obj.time(0);
}
)");
  EXPECT_EQ(CountRule(findings, "determinism"), 0);
}

TEST(DeterminismTest, NolintSuppresses) {
  const auto findings = LintSource("src/a.cc", R"(
void Seeds() {
  srand(42);  // NOLINT(chameleon-determinism)
}
)");
  EXPECT_EQ(CountRule(findings, "determinism"), 0);
}

// ---------------------------------------------------------------------------
// chameleon-concurrency-hygiene
// ---------------------------------------------------------------------------

TEST(ConcurrencyHygieneTest, FlagsMutableFunctionLocalStatics) {
  const auto findings = LintSource("src/a.cc", R"(
int Counter() {
  static int calls = 0;
  return ++calls;
}
)");
  EXPECT_EQ(CountRule(findings, "concurrency-hygiene"), 1);
}

TEST(ConcurrencyHygieneTest, ConstStaticsAndTestFilesAreClean) {
  const std::string source = R"(
double Lookup(int i) {
  static const double kTable[] = {1.0, 2.0};
  static constexpr int kSize = 2;
  return kTable[i % kSize];
}
)";
  EXPECT_EQ(CountRule(LintSource("src/a.cc", source), "concurrency-hygiene"), 0);
  const std::string mutable_static = R"(
int Counter() {
  static int calls = 0;
  return ++calls;
}
)";
  EXPECT_EQ(CountRule(LintSource("tests/a_test.cc", mutable_static),
                      "concurrency-hygiene"),
            0);
}

TEST(ConcurrencyHygieneTest, MutableMembersNeedSynchronizationWhenDocumented) {
  const std::string unsynchronized = R"(
/// This cache is thread-safe.
class Cache {
 private:
  mutable int hits_ = 0;
};
)";
  EXPECT_EQ(CountRule(LintSource("src/cache.h", unsynchronized),
                      "concurrency-hygiene"),
            1);
  const std::string synchronized = R"(
/// This cache is thread-safe.
class Cache {
 private:
  mutable std::atomic<int> hits_{0};
  mutable std::mutex mu_;
};
)";
  EXPECT_EQ(
      CountRule(LintSource("src/cache.h", synchronized), "concurrency-hygiene"), 0);
  const std::string undocumented = R"(
class Cache {
 private:
  mutable int hits_ = 0;
};
)";
  EXPECT_EQ(
      CountRule(LintSource("src/cache.h", undocumented), "concurrency-hygiene"), 0);
}

// ---------------------------------------------------------------------------
// chameleon-header-hygiene
// ---------------------------------------------------------------------------

TEST(HeaderHygieneTest, ExpectedGuardFollowsPathConvention) {
  EXPECT_EQ(ExpectedGuard("src/util/status.h"), "CHAMELEON_UTIL_STATUS_H_");
  EXPECT_EQ(ExpectedGuard("tools/analyzer/token.h"),
            "CHAMELEON_TOOLS_ANALYZER_TOKEN_H_");
  EXPECT_EQ(ExpectedGuard("src/data/schema.h"), "CHAMELEON_DATA_SCHEMA_H_");
}

TEST(HeaderHygieneTest, FlagsWrongOrMissingGuard) {
  EXPECT_EQ(CountRule(LintSource("src/a/b.h",
                          "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n"),
                      "header-hygiene"),
            1);
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", "#pragma once\nint x;\n"),
                      "header-hygiene"),
            1);
  EXPECT_EQ(CountRule(LintSource("src/a/b.h",
                          "#ifndef CHAMELEON_A_B_H_\n"
                          "#define CHAMELEON_A_B_H_\n"
                          "#endif  // CHAMELEON_A_B_H_\n"),
                      "header-hygiene"),
            0);
}

TEST(HeaderHygieneTest, FlagsUsingNamespaceAtNamespaceScope) {
  const std::string bad =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "namespace a {\nusing namespace std;\n}\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", bad), "header-hygiene"), 1);
  // Inside a function body it is local and tolerated.
  const std::string scoped =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "inline void f() {\nusing namespace std;\n}\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", scoped), "header-hygiene"), 0);
  // .cc files may use it at file scope (project style tolerates that).
  EXPECT_EQ(CountRule(LintSource("src/a/b.cc", "using namespace std;\n"),
                      "header-hygiene"),
            0);
}

TEST(HeaderHygieneTest, SelfContainednessRequiresDirectIncludes) {
  const std::string missing =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "inline std::string Name() { return {}; }\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", missing), "header-hygiene"), 1);
  const std::string direct =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "#include <string>\n"
      "inline std::string Name() { return {}; }\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", direct), "header-hygiene"), 0);
}

// ---------------------------------------------------------------------------
// Output format
// ---------------------------------------------------------------------------

TEST(OutputTest, FormatIsMachineFriendly) {
  const Finding finding{"src/a.cc", 12, 5, "determinism", "call to rand()"};
  EXPECT_EQ(FormatFinding(finding),
            "src/a.cc:12:5: [chameleon-determinism] call to rand()");
}

TEST(OutputTest, RuleListIsStable) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_STREQ(rules[0].name, "status-discipline");
  EXPECT_STREQ(rules[1].name, "determinism");
  EXPECT_STREQ(rules[2].name, "concurrency-hygiene");
  EXPECT_STREQ(rules[3].name, "header-hygiene");
}

}  // namespace
}  // namespace chameleon_lint
