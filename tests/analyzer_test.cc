// Fixture tests for the chameleon-lint rule engine. Each rule gets a
// positive case, a NOLINT-suppressed case, and a clean case; violations
// live inside raw strings so the linter's own pass over this file (the
// chameleon_lint_test ctest) sees nothing.

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyzer/engine.h"
#include "tools/analyzer/rules.h"
#include "tools/analyzer/sarif.h"
#include "tools/analyzer/token.h"

namespace chameleon_lint {
namespace {

std::vector<Finding> LintSource(const std::string& path, const std::string& source,
                         LintOptions options = {}) {
  const LexResult lex = Lex(source);
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  return LintFile(path, source, lex, registry, options);
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int count = 0;
  for (const Finding& f : findings) count += f.rule == rule;
  return count;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, SkipsCommentsStringsAndCharLiterals) {
  const LexResult lex = Lex(R"fixture(
// rand() in a comment
/* srand(1) in a block comment */
const char* s = "rand()";
char c = 'r';
int separated = 1'000'000;
)fixture");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "srand");
  }
  // The digit-separated number is one token.
  bool found = false;
  for (const Token& t : lex.tokens) found |= t.text == "1'000'000";
  EXPECT_TRUE(found);
}

TEST(LexerTest, RawStringsAreOpaque) {
  const LexResult lex = Lex("auto s = R\"(std::random_device rd;)\";");
  for (const Token& t : lex.tokens) EXPECT_NE(t.text, "random_device");
}

TEST(LexerTest, FoldsPreprocessorContinuations) {
  const LexResult lex = Lex("#define MACRO(x) \\\n  do_thing(x)\nint y;");
  ASSERT_EQ(lex.directives.size(), 1u);
  EXPECT_EQ(lex.directives[0].line, 1);
  // The macro body never reaches the token stream.
  for (const Token& t : lex.tokens) EXPECT_NE(t.text, "do_thing");
}

TEST(LexerTest, NolintParsing) {
  const LexResult lex = Lex(
      "int a;  // NOLINT\n"
      "int b;  // NOLINT(chameleon-determinism, chameleon-status-discipline)\n"
      "// NOLINTNEXTLINE(chameleon-determinism)\n"
      "int c;\n");
  EXPECT_TRUE(IsSuppressed(lex, 1, "chameleon-anything"));
  EXPECT_TRUE(IsSuppressed(lex, 2, "chameleon-determinism"));
  EXPECT_TRUE(IsSuppressed(lex, 2, "chameleon-status-discipline"));
  EXPECT_FALSE(IsSuppressed(lex, 2, "chameleon-header-hygiene"));
  EXPECT_TRUE(IsSuppressed(lex, 4, "chameleon-determinism"));
  EXPECT_FALSE(IsSuppressed(lex, 3, "chameleon-determinism"));
}

// ---------------------------------------------------------------------------
// Function registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, SplitsStatusFromOtherReturns) {
  const LexResult lex = Lex(R"(
namespace demo {
util::Status SaveThing(int x);
util::Result<int> LoadThing();
void Render(int x);
class Widget {
 public:
  [[nodiscard]] static util::Result<Widget> Train(int n);
  util::Status Flush() { return util::Status(); }
  int size() const;
};
}
)");
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  EXPECT_TRUE(registry.IsUnambiguousStatus("SaveThing"));
  EXPECT_TRUE(registry.IsUnambiguousStatus("LoadThing"));
  EXPECT_TRUE(registry.IsUnambiguousStatus("Train"));
  EXPECT_TRUE(registry.IsUnambiguousStatus("Flush"));
  EXPECT_FALSE(registry.IsUnambiguousStatus("Render"));
  EXPECT_FALSE(registry.IsUnambiguousStatus("size"));
}

TEST(RegistryTest, CollidingNamesBecomeAmbiguous) {
  const LexResult lex = Lex(R"(
util::Status Add(int x);
void Add(double y);
)");
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  EXPECT_FALSE(registry.IsUnambiguousStatus("Add"));
  EXPECT_EQ(registry.status_returning.count("Add"), 1u);
  EXPECT_EQ(registry.other_returning.count("Add"), 1u);
}

TEST(RegistryTest, LocalVariablesAreNotFunctions) {
  const LexResult lex = Lex(R"(
util::Status Go();
void Caller() {
  util::Status s(util::StatusCode::kInternal, "boom");
}
)");
  FunctionRegistry registry;
  CollectFunctions(lex, &registry);
  EXPECT_EQ(registry.status_returning.count("s"), 0u);
}

// ---------------------------------------------------------------------------
// chameleon-status-discipline
// ---------------------------------------------------------------------------

constexpr char kStatusPrelude[] = R"(
util::Status DoThing(int x);
util::Result<int> Fetch();
struct Sink { util::Status Write(int v); };
)";

TEST(StatusDisciplineTest, FlagsDiscardedCalls) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
void Caller(Sink* sink) {
  DoThing(1);
  sink->Write(2);
  Fetch();
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 3);
}

TEST(StatusDisciplineTest, CheckedAndConsumedCallsAreClean) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
util::Status Caller(Sink* sink) {
  util::Status s = DoThing(1);
  if (!DoThing(2).ok()) return s;
  (void)DoThing(3);
  CHAMELEON_RETURN_NOT_OK(sink->Write(4));
  auto result = Fetch();
  return DoThing(5);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, NolintSuppresses) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
void Caller() {
  DoThing(1);  // NOLINT(chameleon-status-discipline)
  // NOLINTNEXTLINE(chameleon-status-discipline)
  DoThing(2);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, AmbiguousNamesAreSkipped) {
  const auto findings = LintSource("src/a.cc", R"(
util::Status Add(int x);
struct Accum { void Add(double y); };
void Caller(Accum* a) {
  Add(1);
  a->Add(2.0);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, FlagsSingleStatementControlBodies) {
  const auto findings = LintSource("src/a.cc", std::string(kStatusPrelude) + R"(
void Caller(bool flip) {
  if (flip) DoThing(1);
  else DoThing(2);
}
)");
  EXPECT_EQ(CountRule(findings, "status-discipline"), 2);
}

TEST(StatusDisciplineTest, SeededResilienceApisAreFlaggedWithoutDeclarations) {
  // The resilience surface (ResilientFoundationModel::Generate and
  // friends) is seeded into the registry, so a discarded call is flagged
  // even when the declaring header is outside the linted set.
  const std::string source = R"(
void Caller(fm::ResilientFoundationModel* model, util::Rng* rng,
            const fm::GenerationRequest& request) {
  model->Generate(request, rng);
  fm::LoadCorpus("/tmp/corpus");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 2);

  // Without the seed, the same source is silent — the declarations are
  // not in view.
  EXPECT_EQ(CountRule(LintSource("src/a.cc", source), "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededNamesStillGoAmbiguousOnCollision) {
  const std::string source = R"(
struct Legacy { void Generate(int x); };
void Caller(Legacy* legacy) {
  legacy->Generate(1);
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededBatchingApisAreFlagged) {
  // The batched-transport surface: BatchCoalescer::Enqueue/Flush return
  // Status (a dropped Flush status silently loses a whole batch's
  // failures) and GenerateBatch's return vector is must-use (dropping it
  // loses every slot's answer at once).
  const std::string source = R"(
void Dispatch(fm::BatchCoalescer* coalescer, fm::FoundationModel* model,
              std::span<const fm::BatchItem> items) {
  coalescer->Flush();
  model->GenerateBatch(items);
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 2);
  EXPECT_TRUE(registry.IsMustUse("GenerateBatch"));
}

TEST(StatusDisciplineTest, ConsumedBatchingCallsAreClean) {
  const std::string source = R"(
util::Status Dispatch(fm::BatchCoalescer* coalescer,
                      fm::FoundationModel* model,
                      std::span<const fm::BatchItem> items) {
  auto results = model->GenerateBatch(items);
  CHAMELEON_RETURN_NOT_OK(coalescer->Enqueue(&request, &rng, &slot));
  return coalescer->Flush();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededIncrementalCoverageApisAreFlagged) {
  // The streaming-coverage surface: IncrementalMupIndex::Insert and
  // InsertBatch return Status (a dropped status means the frontier and
  // the corpus silently disagree from then on) and Mups() is must-use —
  // the maintained frontier is the only product of the index.
  const std::string source = R"(
void Stream(coverage::IncrementalMupIndex* index,
            const std::vector<int>& values,
            const std::vector<std::vector<int>>& batch) {
  index->Insert(values);
  index->InsertBatch(batch);
  index->Mups();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 3);
  EXPECT_TRUE(registry.IsMustUse("Mups"));
}

TEST(StatusDisciplineTest, ConsumedIncrementalCoverageCallsAreClean) {
  const std::string source = R"(
util::Status Stream(coverage::IncrementalMupIndex* index,
                    const std::vector<int>& values,
                    const std::vector<std::vector<int>>& batch) {
  CHAMELEON_RETURN_NOT_OK(index->Insert(values));
  const std::vector<coverage::Mup> mups = index->Mups();
  return index->InsertBatch(batch);
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededObsMustUseApisAreFlagged) {
  // The observability layer's handle-returning surface (Tracer::StartSpan,
  // Registry::Counter/Gauge/Histogram) is seeded as must-use: discarding
  // the handle is a bug even though the return type is not Status/Result
  // (a discarded Span ends immediately, a discarded instrument pointer
  // records nothing). The journal/registry/tracer `Write` export rides
  // the regular Status seed.
  const std::string source = R"(
void Instrument(obs::Observability* observability) {
  observability->tracer.StartSpan("rejection.batch");
  observability->registry.Counter("fm.queries");
  observability->journal.Write("/tmp/journal.jsonl");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 3);
  EXPECT_TRUE(registry.IsMustUse("StartSpan"));
  EXPECT_TRUE(registry.IsMustUse("Gauge"));
  EXPECT_TRUE(registry.IsMustUse("Histogram"));
  EXPECT_FALSE(registry.IsMustUse("Increment"));
}

TEST(StatusDisciplineTest, BoundObsHandlesAreClean) {
  // The idiomatic uses — binding the Span, chaining the instrument into
  // its recording call, checking the export Status — produce no findings.
  const std::string source = R"(
util::Status Instrument(obs::Observability* observability) {
  obs::Span span = observability->tracer.StartSpan("mup.find");
  observability->registry.Counter("fm.queries")->Increment();
  return observability->journal.Write("/tmp/journal.jsonl");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededExporterAndStreamingApisAreFlagged) {
  // PR 5 surface: the OpenMetrics/trace-event exporters (must-use — the
  // returned string is the result), the bench JSON reporter's WriteJson,
  // and the journal/tracer streaming sinks (Status-returning).
  const std::string source = R"(
void Export(obs::Observability* observability,
            bench::BenchJsonReport* report) {
  obs::ExportOpenMetrics(observability->registry);
  obs::ExportTraceEvents(observability->tracer);
  obs::WriteOpenMetrics(observability->registry, "/tmp/metrics.om");
  report->WriteJson("/tmp/BENCH_x.json");
  observability->journal.StreamTo("/tmp/journal.jsonl");
  observability->journal.CloseStream();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 6);
  EXPECT_TRUE(registry.IsMustUse("ExportOpenMetrics"));
  EXPECT_TRUE(registry.IsMustUse("ExportTraceEvents"));
}

TEST(StatusDisciplineTest, ConsumedExporterAndStreamingCallsAreClean) {
  const std::string source = R"(
util::Status Export(obs::Observability* observability) {
  const std::string text = obs::ExportOpenMetrics(observability->registry);
  CHAMELEON_RETURN_NOT_OK(observability->journal.StreamTo("/tmp/j.jsonl"));
  return observability->journal.CloseStream();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededServingApisAreFlagged) {
  // PR 8 surface: the chameleond serving layer. Serve/Submit/Cancel/
  // Drain/Resume and the frame codec's WriteFrame all return Status; a
  // dropped Drain status hides a forced (cancelled-straggler) exit, a
  // dropped WriteFrame status tears the stream silently.
  const std::string source = R"(
void Operate(daemon::Daemon* server, daemon::Transport* transport,
             const daemon::RepairRequestSpec& spec) {
  server->Resume();
  server->Serve();
  server->Cancel(spec.id);
  daemon::WriteFrame(transport, "{}");
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 4);
}

TEST(StatusDisciplineTest, ConsumedServingCallsAreClean) {
  const std::string source = R"(
util::Status Operate(daemon::Daemon* server, daemon::Transport* transport) {
  CHAMELEON_RETURN_NOT_OK(server->Resume());
  CHAMELEON_RETURN_NOT_OK(daemon::WriteFrame(transport, "{}"));
  return server->Serve();
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, SeededSubmitGoesAmbiguousAgainstThreadPool) {
  // "Submit" is seeded for Daemon's admission control, but the live tree
  // also declares util::ThreadPool::Submit returning a discardable
  // future. A TU that sees the pool declaration drops the name to
  // ambiguous, so fire-and-forget pool submissions stay clean.
  const std::string source = R"(
struct ThreadPool { std::future<void> Submit(std::function<void()> fn); };
void Dispatch(ThreadPool* pool) {
  pool->Submit([] {});
}
)";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, NolintSuppressesMustUseFindings) {
  const std::string source =
      "void Instrument(obs::Tracer* tracer) {\n"
      "  tracer->StartSpan(\"x\");  // NOLINT(chameleon-status-discipline)\n"
      "}\n";
  FunctionRegistry registry;
  SeedProjectStatusApis(&registry);
  const LexResult lex = Lex(source);
  CollectFunctions(lex, &registry);
  const auto findings = LintFile("src/a.cc", source, lex, registry, {});
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

TEST(StatusDisciplineTest, DisableFlagTurnsRuleOff) {
  LintOptions options;
  options.disabled.insert("status-discipline");
  const auto findings = LintSource("src/a.cc",
                            std::string(kStatusPrelude) + R"(
void Caller() { DoThing(1); }
)",
                            options);
  EXPECT_EQ(CountRule(findings, "status-discipline"), 0);
}

// ---------------------------------------------------------------------------
// chameleon-determinism
// ---------------------------------------------------------------------------

TEST(DeterminismTest, FlagsHiddenEntropySources) {
  const auto findings = LintSource("src/a.cc", R"(
void Seeds() {
  int r = rand();
  srand(42);
  std::random_device rd;
  std::mt19937 gen(time(nullptr));
  auto t = std::chrono::steady_clock::now();
}
)");
  EXPECT_EQ(CountRule(findings, "determinism"), 5);
}

TEST(DeterminismTest, AllowlistedPathsAreExempt) {
  const std::string source = R"(
void Tick() { auto t = std::chrono::steady_clock::now(); }
)";
  EXPECT_EQ(CountRule(LintSource("src/util/stopwatch.cc", source), "determinism"), 0);
  EXPECT_EQ(CountRule(LintSource("bench/bench_micro_x.cc", source), "determinism"),
            0);
  EXPECT_EQ(CountRule(LintSource("src/core/chameleon.cc", source), "determinism"), 1);
}

TEST(DeterminismTest, MemberFunctionsNamedLikeBannedOnesAreClean) {
  const auto findings = LintSource("src/a.cc", R"(
void Caller(Clock* clock, Rng* gen) {
  auto t = clock->now();
  int r = gen->rand();
  auto d = obj.time(0);
}
)");
  EXPECT_EQ(CountRule(findings, "determinism"), 0);
}

TEST(DeterminismTest, NolintSuppresses) {
  const auto findings = LintSource("src/a.cc", R"(
void Seeds() {
  srand(42);  // NOLINT(chameleon-determinism)
}
)");
  EXPECT_EQ(CountRule(findings, "determinism"), 0);
}

// ---------------------------------------------------------------------------
// chameleon-concurrency-hygiene
// ---------------------------------------------------------------------------

TEST(ConcurrencyHygieneTest, FlagsMutableFunctionLocalStatics) {
  const auto findings = LintSource("src/a.cc", R"(
int Counter() {
  static int calls = 0;
  return ++calls;
}
)");
  EXPECT_EQ(CountRule(findings, "concurrency-hygiene"), 1);
}

TEST(ConcurrencyHygieneTest, ConstStaticsAndTestFilesAreClean) {
  const std::string source = R"(
double Lookup(int i) {
  static const double kTable[] = {1.0, 2.0};
  static constexpr int kSize = 2;
  return kTable[i % kSize];
}
)";
  EXPECT_EQ(CountRule(LintSource("src/a.cc", source), "concurrency-hygiene"), 0);
  const std::string mutable_static = R"(
int Counter() {
  static int calls = 0;
  return ++calls;
}
)";
  EXPECT_EQ(CountRule(LintSource("tests/a_test.cc", mutable_static),
                      "concurrency-hygiene"),
            0);
}

TEST(ConcurrencyHygieneTest, MutableMembersNeedSynchronizationWhenDocumented) {
  const std::string unsynchronized = R"(
/// This cache is thread-safe.
class Cache {
 private:
  mutable int hits_ = 0;
};
)";
  EXPECT_EQ(CountRule(LintSource("src/cache.h", unsynchronized),
                      "concurrency-hygiene"),
            1);
  const std::string synchronized = R"(
/// This cache is thread-safe.
class Cache {
 private:
  mutable std::atomic<int> hits_{0};
  mutable std::mutex mu_;
};
)";
  EXPECT_EQ(
      CountRule(LintSource("src/cache.h", synchronized), "concurrency-hygiene"), 0);
  const std::string undocumented = R"(
class Cache {
 private:
  mutable int hits_ = 0;
};
)";
  EXPECT_EQ(
      CountRule(LintSource("src/cache.h", undocumented), "concurrency-hygiene"), 0);
}

// ---------------------------------------------------------------------------
// chameleon-header-hygiene
// ---------------------------------------------------------------------------

TEST(HeaderHygieneTest, ExpectedGuardFollowsPathConvention) {
  EXPECT_EQ(ExpectedGuard("src/util/status.h"), "CHAMELEON_UTIL_STATUS_H_");
  EXPECT_EQ(ExpectedGuard("tools/analyzer/token.h"),
            "CHAMELEON_TOOLS_ANALYZER_TOKEN_H_");
  EXPECT_EQ(ExpectedGuard("src/data/schema.h"), "CHAMELEON_DATA_SCHEMA_H_");
}

TEST(HeaderHygieneTest, FlagsWrongOrMissingGuard) {
  EXPECT_EQ(CountRule(LintSource("src/a/b.h",
                          "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n"),
                      "header-hygiene"),
            1);
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", "#pragma once\nint x;\n"),
                      "header-hygiene"),
            1);
  EXPECT_EQ(CountRule(LintSource("src/a/b.h",
                          "#ifndef CHAMELEON_A_B_H_\n"
                          "#define CHAMELEON_A_B_H_\n"
                          "#endif  // CHAMELEON_A_B_H_\n"),
                      "header-hygiene"),
            0);
}

TEST(HeaderHygieneTest, FlagsUsingNamespaceAtNamespaceScope) {
  const std::string bad =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "namespace a {\nusing namespace std;\n}\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", bad), "header-hygiene"), 1);
  // Inside a function body it is local and tolerated.
  const std::string scoped =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "inline void f() {\nusing namespace std;\n}\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", scoped), "header-hygiene"), 0);
  // .cc files may use it at file scope (project style tolerates that).
  EXPECT_EQ(CountRule(LintSource("src/a/b.cc", "using namespace std;\n"),
                      "header-hygiene"),
            0);
}

TEST(HeaderHygieneTest, SelfContainednessRequiresDirectIncludes) {
  const std::string missing =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "inline std::string Name() { return {}; }\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", missing), "header-hygiene"), 1);
  const std::string direct =
      "#ifndef CHAMELEON_A_B_H_\n#define CHAMELEON_A_B_H_\n"
      "#include <string>\n"
      "inline std::string Name() { return {}; }\n#endif\n";
  EXPECT_EQ(CountRule(LintSource("src/a/b.h", direct), "header-hygiene"), 0);
}

// ---------------------------------------------------------------------------
// Output format
// ---------------------------------------------------------------------------

TEST(OutputTest, FormatIsMachineFriendly) {
  const Finding finding{"src/a.cc", 12, 5, "determinism", "call to rand()"};
  EXPECT_EQ(FormatFinding(finding),
            "src/a.cc:12:5: [chameleon-determinism] call to rand()");
}

TEST(OutputTest, RuleListIsStable) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 7u);
  EXPECT_STREQ(rules[0].name, "status-discipline");
  EXPECT_STREQ(rules[1].name, "determinism");
  EXPECT_STREQ(rules[2].name, "concurrency-hygiene");
  EXPECT_STREQ(rules[3].name, "header-hygiene");
  EXPECT_STREQ(rules[4].name, "lock-discipline");
  EXPECT_STREQ(rules[5].name, "lock-order");
  EXPECT_STREQ(rules[6].name, "determinism-taint");
}

// ---------------------------------------------------------------------------
// Lexer: raw-string prefixes and comment-relative NOLINT placement
// ---------------------------------------------------------------------------

TEST(LexerTest, AllRawStringPrefixesAreOpaque) {
  // Every encoding prefix C++ allows in front of R"(...)" must leave the
  // raw string's contents un-tokenized — including UR, which the lexer
  // historically missed.
  const LexResult lex = Lex(
      "auto a = R\"(rand())\";\n"
      "auto b = u8R\"(rand())\";\n"
      "auto c = uR\"(rand())\";\n"
      "auto d = UR\"(rand())\";\n"
      "auto e = LR\"(rand())\";\n");
  for (const Token& t : lex.tokens) EXPECT_NE(t.text, "rand");
}

TEST(LexerTest, RawStringDelimiterIsRespected) {
  // A ")" inside the raw string must not close it when a custom
  // delimiter is in play.
  const LexResult lex = Lex("auto s = R\"x(rand() )\" still raw )x\"; int z;\n");
  for (const Token& t : lex.tokens) EXPECT_NE(t.text, "rand");
  bool found_z = false;
  for (const Token& t : lex.tokens) found_z |= t.text == "z";
  EXPECT_TRUE(found_z);
}

TEST(LexerTest, DigitSeparatorsStayOneToken) {
  const LexResult lex = Lex("long n = 1'000'000; int m = 0x1F'FF;\n");
  bool big = false, hex = false;
  for (const Token& t : lex.tokens) {
    big |= t.text == "1'000'000";
    hex |= t.text == "0x1F'FF";
  }
  EXPECT_TRUE(big);
  EXPECT_TRUE(hex);
}

TEST(LexerTest, NolintInsideMultiLineBlockCommentTargetsItsOwnLine) {
  // The NOLINT is written on the second line of the block comment; it
  // must suppress that line, not the line the comment started on.
  const LexResult lex = Lex(
      "int a;\n"
      "/* explanation\n"
      "   NOLINT(chameleon-determinism) */ int b;\n");
  EXPECT_FALSE(IsSuppressed(lex, 2, "chameleon-determinism"));
  EXPECT_TRUE(IsSuppressed(lex, 3, "chameleon-determinism"));
}

// ---------------------------------------------------------------------------
// Cross-TU engine fixtures. Violations live inside raw strings; paths
// are synthetic. Analyze() drives the same three-pass engine the CLI
// uses, so these double as determinism fixtures (jobs=1 vs jobs=4).
// ---------------------------------------------------------------------------

EngineResult Analyze(std::vector<SourceFile> files, int jobs = 1,
                     EngineOptions options = {}) {
  options.jobs = jobs;
  return AnalyzeSources(std::move(files), options);
}

// A header declaring a guarded member. The annotation lives here; the
// method bodies live in a separate "TU" to exercise the cross-TU merge.
constexpr char kCounterHeader[] = R"fixture(
#ifndef CHAMELEON_W_COUNTER_H_
#define CHAMELEON_W_COUNTER_H_
#include <mutex>
#include "src/util/thread_annotations.h"
class Counter {
 public:
  void Add(long delta);
  long Read() const;
 private:
  mutable std::mutex mutex_;
  std::mutex other_mutex_;
  long value_ CHAMELEON_GUARDED_BY(mutex_) = 0;
};
#endif  // CHAMELEON_W_COUNTER_H_
)fixture";

TEST(LockDisciplineTest, AccessUnderTheNamedMutexIsClean) {
  const EngineResult result = Analyze(
      {{"src/w/counter.h", kCounterHeader},
       {"src/w/counter.cc", R"fixture(
#include "src/w/counter.h"
void Counter::Add(long delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ += delta;
}
)fixture"}});
  EXPECT_EQ(CountRule(result.findings, "lock-discipline"), 0);
}

TEST(LockDisciplineTest, AccessWithoutTheLockIsFlagged) {
  const EngineResult result = Analyze(
      {{"src/w/counter.h", kCounterHeader},
       {"src/w/counter.cc", R"fixture(
#include "src/w/counter.h"
void Counter::Add(long delta) {
  value_ += delta;
}
)fixture"}});
  ASSERT_EQ(CountRule(result.findings, "lock-discipline"), 1);
  EXPECT_NE(result.findings[0].message.find("'value_'"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("CHAMELEON_GUARDED_BY(mutex_)"),
            std::string::npos);
}

TEST(LockDisciplineTest, HoldingTheWrongMutexIsFlagged) {
  const EngineResult result = Analyze(
      {{"src/w/counter.h", kCounterHeader},
       {"src/w/counter.cc", R"fixture(
#include "src/w/counter.h"
void Counter::Add(long delta) {
  std::lock_guard<std::mutex> lock(other_mutex_);
  value_ += delta;
}
)fixture"}});
  ASSERT_EQ(CountRule(result.findings, "lock-discipline"), 1);
  // The message names what *was* held so the fix is obvious.
  EXPECT_NE(result.findings[0].message.find("other_mutex_"),
            std::string::npos);
}

TEST(LockDisciplineTest, ConstMemberReadsAreExempt) {
  const EngineResult result = Analyze(
      {{"src/w/counter.h", kCounterHeader},
       {"src/w/counter.cc", R"fixture(
#include "src/w/counter.h"
long Counter::Read() const {
  return value_;
}
)fixture"}});
  EXPECT_EQ(CountRule(result.findings, "lock-discipline"), 0);
}

TEST(LockOrderTest, InvertedAcquisitionOrderAcrossTUsIsACycle) {
  // TU one takes a then b; TU two takes b then a. Neither file alone has
  // a cycle — only the tree-wide graph does.
  const EngineResult result = Analyze(
      {{"src/w/one.cc", R"fixture(
#include <mutex>
extern std::mutex mu_a;
extern std::mutex mu_b;
void TakeAThenB() {
  std::lock_guard<std::mutex> la(mu_a);
  std::lock_guard<std::mutex> lb(mu_b);
}
)fixture"},
       {"src/w/two.cc", R"fixture(
#include <mutex>
extern std::mutex mu_a;
extern std::mutex mu_b;
void TakeBThenA() {
  std::lock_guard<std::mutex> lb(mu_b);
  std::lock_guard<std::mutex> la(mu_a);
}
)fixture"}});
  EXPECT_GE(CountRule(result.findings, "lock-order"), 1);
  // Dropping either file breaks the cycle.
  const EngineResult one_only = Analyze({{"src/w/one.cc", R"fixture(
#include <mutex>
extern std::mutex mu_a;
extern std::mutex mu_b;
void TakeAThenB() {
  std::lock_guard<std::mutex> la(mu_a);
  std::lock_guard<std::mutex> lb(mu_b);
}
)fixture"}});
  EXPECT_EQ(CountRule(one_only.findings, "lock-order"), 0);
}

TEST(LockOrderTest, CycleThroughACallIsDetected) {
  // f holds mu_a and calls g, which acquires mu_b; h nests them the
  // other way. The a->b edge only exists interprocedurally.
  const EngineResult result = Analyze(
      {{"src/w/calls.cc", R"fixture(
#include <mutex>
extern std::mutex mu_a;
extern std::mutex mu_b;
void AcquireB() { std::lock_guard<std::mutex> l(mu_b); }
void HoldAThenCall() {
  std::lock_guard<std::mutex> l(mu_a);
  AcquireB();
}
void NestBOverA() {
  std::lock_guard<std::mutex> lb(mu_b);
  std::lock_guard<std::mutex> la(mu_a);
}
)fixture"}});
  EXPECT_GE(CountRule(result.findings, "lock-order"), 1);
}

TEST(DeterminismTaintTest, OneHopCallerOfAnEntropyLeafIsFlagged) {
  const EngineResult result = Analyze(
      {{"src/w/seed.cc", R"fixture(
int Entropy() { return rand(); }
int UsesEntropy() { return Entropy(); }
)fixture"}});
  // The leaf is the determinism rule's finding; the caller is taint's.
  EXPECT_EQ(CountRule(result.findings, "determinism"), 1);
  ASSERT_EQ(CountRule(result.findings, "determinism-taint"), 1);
  const Finding* taint = nullptr;
  for (const Finding& f : result.findings)
    if (f.rule == "determinism-taint") taint = &f;
  ASSERT_NE(taint, nullptr);
  EXPECT_NE(taint->message.find("UsesEntropy"), std::string::npos);
  EXPECT_NE(taint->message.find("rand()"), std::string::npos);
}

TEST(DeterminismTaintTest, TaintPropagatesTwoHops) {
  const EngineResult result = Analyze(
      {{"src/w/a.cc", "int Entropy() { return rand(); }\n"},
       {"src/w/b.cc", "int Entropy();\nint Middle() { return Entropy(); }\n"},
       {"src/w/c.cc", "int Middle();\nint Outer() { return Middle(); }\n"}});
  EXPECT_EQ(CountRule(result.findings, "determinism-taint"), 2);
}

TEST(DeterminismTaintTest, SanctionedLeavesDoNotTaintCallers) {
  // util/stopwatch is allowlisted: its wall-clock reads are the point,
  // and callers of it stay deterministic-by-contract.
  const EngineResult result = Analyze(
      {{"src/util/stopwatch.cc",
        "double NowSeconds() { return clock(); }\n"},
       {"src/w/user.cc",
        "double NowSeconds();\ndouble Elapsed() { return NowSeconds(); }\n"}});
  EXPECT_EQ(CountRule(result.findings, "determinism-taint"), 0);
}

TEST(DeterminismTaintTest, NolintOnTheLeafClearsTransitiveTaint) {
  const EngineResult result = Analyze(
      {{"src/w/seed.cc", R"fixture(
int Entropy() {
  return rand();  // NOLINT(chameleon-determinism) vetted: test-only shim
}
int UsesEntropy() { return Entropy(); }
)fixture"}});
  EXPECT_EQ(CountRule(result.findings, "determinism"), 0);
  EXPECT_EQ(CountRule(result.findings, "determinism-taint"), 0);
}

// ---------------------------------------------------------------------------
// Engine determinism, baselines, SARIF, --fix
// ---------------------------------------------------------------------------

std::vector<SourceFile> MixedFixtureTree() {
  return {
      {"src/w/counter.h", kCounterHeader},
      {"src/w/counter.cc", R"fixture(
#include "src/w/counter.h"
void Counter::Add(long delta) { value_ += delta; }
)fixture"},
      {"src/w/seed.cc", R"fixture(
int Entropy() { return rand(); }
int UsesEntropy() { return Entropy(); }
)fixture"},
      {"src/w/order.cc", R"fixture(
#include <mutex>
extern std::mutex mu_a;
extern std::mutex mu_b;
void TakeAThenB() {
  std::lock_guard<std::mutex> la(mu_a);
  std::lock_guard<std::mutex> lb(mu_b);
}
void TakeBThenA() {
  std::lock_guard<std::mutex> lb(mu_b);
  std::lock_guard<std::mutex> la(mu_a);
}
)fixture"},
  };
}

TEST(EngineTest, OutputIsByteIdenticalAcrossJobCounts) {
  const EngineResult serial = Analyze(MixedFixtureTree(), 1);
  const EngineResult parallel = Analyze(MixedFixtureTree(), 4);
  ASSERT_EQ(serial.findings.size(), parallel.findings.size());
  for (size_t i = 0; i < serial.findings.size(); ++i) {
    EXPECT_EQ(FormatFinding(serial.findings[i]),
              FormatFinding(parallel.findings[i]));
  }
  EXPECT_EQ(ToSarif(serial.findings), ToSarif(parallel.findings));
}

TEST(EngineTest, InputOrderDoesNotMatter) {
  std::vector<SourceFile> forward = MixedFixtureTree();
  std::vector<SourceFile> reversed(forward.rbegin(), forward.rend());
  const EngineResult a = Analyze(std::move(forward), 2);
  const EngineResult b = Analyze(std::move(reversed), 2);
  EXPECT_EQ(ToSarif(a.findings), ToSarif(b.findings));
}

TEST(EngineTest, BaselineRoundTripSuppressesEverything) {
  const EngineResult unfiltered = Analyze(MixedFixtureTree());
  ASSERT_FALSE(unfiltered.findings.empty());
  const std::string text = FormatBaseline(unfiltered.findings);
  EngineOptions options;
  options.baseline = ParseBaseline(text);
  const EngineResult filtered = Analyze(MixedFixtureTree(), 1, options);
  EXPECT_TRUE(filtered.findings.empty());
  EXPECT_EQ(filtered.baseline_suppressed, unfiltered.findings.size());
}

TEST(EngineTest, BaselineKeysIgnoreLineNumbers) {
  const Finding moved{"src/a.cc", 99, 1, "determinism", "call to rand()"};
  const Finding original{"src/a.cc", 12, 5, "determinism", "call to rand()"};
  EXPECT_EQ(BaselineKey(moved), BaselineKey(original));
}

TEST(SarifTest, GoldenSingleFinding) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 12, 5, "determinism", "call to \"rand()\""}};
  const std::string sarif = ToSarif(findings);
  // Structural spot checks plus full determinism: two calls are
  // byte-identical, the schema/version header is exact, and the escaped
  // message survives.
  EXPECT_EQ(sarif, ToSarif(findings));
  EXPECT_NE(
      sarif.find("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
      std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"chameleon-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"chameleon-determinism\""),
            std::string::npos);
  EXPECT_NE(sarif.find("call to \\\"rand()\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12, \"startColumn\": 5"),
            std::string::npos);
  // Every rule in Rules() appears in the driver rules table.
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(sarif.find("\"id\": \"chameleon-" + std::string(rule.name) +
                         "\""),
              std::string::npos);
  }
}

TEST(FixTest, WrongGuardIsRewrittenAndFixIsIdempotent) {
  const std::string path = "src/w/fixme.h";
  const std::string before =
      "#ifndef WRONG_NAME_H\n"
      "#define WRONG_NAME_H\n"
      "struct Fixme {};\n"
      "#endif\n";
  const EngineResult first = Analyze({{path, before}});
  ASSERT_EQ(CountRule(first.findings, "header-hygiene"), 1);
  size_t applied = 0;
  const std::string once = ApplyFixes(path, before, first.findings, &applied);
  EXPECT_EQ(applied, 1u);
  EXPECT_NE(once.find("#ifndef CHAMELEON_W_FIXME_H_"), std::string::npos);
  EXPECT_NE(once.find("#define CHAMELEON_W_FIXME_H_"), std::string::npos);
  EXPECT_NE(once.find("#endif  // CHAMELEON_W_FIXME_H_"), std::string::npos);
  // Re-analysis of the fixed text is clean, and a second --fix pass is a
  // no-op: fixed twice == fixed once, byte for byte.
  const EngineResult second = Analyze({{path, once}});
  EXPECT_EQ(CountRule(second.findings, "header-hygiene"), 0);
  size_t applied_again = 0;
  const std::string twice =
      ApplyFixes(path, once, second.findings, &applied_again);
  EXPECT_EQ(applied_again, 0u);
  EXPECT_EQ(twice, once);
}

TEST(FixTest, DiscardedMustUseGetsANolintTodoAndStaysFixed) {
  const std::string path = "src/w/spans.cc";
  const std::string before = R"fixture(
namespace obs { struct Tracer { int StartSpan(const char*); }; }
void Run(obs::Tracer* tracer) {
  tracer->StartSpan("phase");
}
)fixture";
  const EngineResult first = Analyze({{path, before}});
  ASSERT_EQ(CountRule(first.findings, "status-discipline"), 1);
  size_t applied = 0;
  const std::string once = ApplyFixes(path, before, first.findings, &applied);
  EXPECT_EQ(applied, 1u);
  EXPECT_NE(once.find("NOLINTNEXTLINE(chameleon-status-discipline)"),
            std::string::npos);
  EXPECT_NE(once.find("TODO"), std::string::npos);
  const EngineResult second = Analyze({{path, once}});
  EXPECT_EQ(CountRule(second.findings, "status-discipline"), 0);
  size_t applied_again = 0;
  const std::string twice =
      ApplyFixes(path, once, second.findings, &applied_again);
  EXPECT_EQ(applied_again, 0u);
  EXPECT_EQ(twice, once);
}

}  // namespace
}  // namespace chameleon_lint
