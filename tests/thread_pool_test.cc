#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace chameleon::util {
namespace {

TEST(ThreadPoolTest, ClampsWorkerCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0),
            ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-1), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t total = 1001;
  std::vector<std::atomic<int>> touched(total);
  for (auto& t : touched) t.store(0);
  pool.ParallelFor(total, 7, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < total; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeCases) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 8, [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A single chunk runs inline on the calling thread.
  pool.ParallelFor(3, 100, [&](int64_t begin, int64_t end, int64_t chunk) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 3);
    EXPECT_EQ(chunk, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  // Non-positive grain is clamped to 1.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(5, 0, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t i = begin; i < end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3 + 4);
}

TEST(ThreadPoolTest, ChunkDecompositionIndependentOfWorkerCount) {
  // The determinism contract: chunk boundaries depend only on
  // (total, grain), so per-chunk outputs are identical at every
  // num_threads.
  const int64_t total = 237;
  const int64_t grain = 10;
  auto chunks_of = [&](int workers) {
    ThreadPool pool(workers);
    std::vector<std::pair<int64_t, int64_t>> bounds((total + grain - 1) /
                                                    grain);
    pool.ParallelFor(total, grain,
                     [&](int64_t begin, int64_t end, int64_t chunk) {
                       bounds[chunk] = {begin, end};
                     });
    return bounds;
  };
  const auto serial = chunks_of(1);
  EXPECT_EQ(serial, chunks_of(2));
  EXPECT_EQ(serial, chunks_of(4));
  EXPECT_EQ(serial, chunks_of(8));
}

TEST(ThreadPoolTest, SeededStreamsIdenticalAcrossWorkerCounts) {
  // ParallelForSeeded draws chunk seeds serially in chunk order, so the
  // per-index values must be bit-identical at every worker count.
  const int64_t total = 512;
  const int64_t grain = 16;
  auto draws_of = [&](int workers) {
    ThreadPool pool(workers);
    std::vector<uint64_t> values(total, 0);
    pool.ParallelForSeeded(
        1234, total, grain,
        [&](int64_t begin, int64_t end, int64_t, Rng* rng) {
          for (int64_t i = begin; i < end; ++i) values[i] = rng->NextU64();
        });
    return values;
  };
  const auto serial = draws_of(1);
  EXPECT_EQ(serial, draws_of(2));
  EXPECT_EQ(serial, draws_of(4));
  EXPECT_EQ(serial, draws_of(7));
}

TEST(ThreadPoolTest, SeededChunksGetDistinctStreams) {
  ThreadPool pool(4);
  const int64_t total = 64;
  const int64_t grain = 8;
  std::vector<uint64_t> first_draw(total / grain, 0);
  pool.ParallelForSeeded(99, total, grain,
                         [&](int64_t, int64_t, int64_t chunk, Rng* rng) {
                           first_draw[chunk] = rng->NextU64();
                         });
  for (size_t a = 0; a < first_draw.size(); ++a) {
    for (size_t b = a + 1; b < first_draw.size(); ++b) {
      EXPECT_NE(first_draw[a], first_draw[b]);
    }
  }
}

TEST(ThreadPoolTest, ParallelForMatchesSerialReduction) {
  const int64_t total = 100000;
  std::vector<double> input(total);
  Rng rng(5);
  for (auto& v : input) v = rng.NextDouble();

  double serial_sum = 0.0;
  for (double v : input) serial_sum += v;

  // Chunked reduction merged in chunk order is deterministic; with
  // fixed chunking it is also identical at every worker count.
  ThreadPool pool(4);
  const int64_t grain = 4096;
  std::vector<double> partial((total + grain - 1) / grain, 0.0);
  pool.ParallelFor(total, grain,
                   [&](int64_t begin, int64_t end, int64_t chunk) {
                     double s = 0.0;
                     for (int64_t i = begin; i < end; ++i) s += input[i];
                     partial[chunk] = s;
                   });
  double chunked_sum = 0.0;
  for (double v : partial) chunked_sum += v;
  EXPECT_NEAR(chunked_sum, serial_sum, 1e-9);
}

TEST(ThreadPoolTest, ConcurrentSubmittersDoNotRace) {
  // TSan target: several threads submitting work into one pool while it
  // drains must be clean.
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures[4];
  std::mutex futures_mutex;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.Submit(
            [&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures[t].push_back(std::move(f));
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(sum.load(), 200);
}

}  // namespace
}  // namespace chameleon::util
