// Chaos harness for chameleond: frame protocol corruption, admission
// control, per-request deadlines/cancellation, fault-masked bit
// identity, transport fault injection, graceful drain, and journal
// resume. The invariants under test: the daemon never crashes, never
// leaks a request slot (stats().active == 0 after Serve), and requests
// whose faults were fully masked are bit-identical to clean runs.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/flaky_foundation_model.h"
#include "src/fm/resilient_foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/observability.h"
#include "src/obs/trace.h"
#include "src/util/status.h"
#include "tools/chameleond/daemon.h"
#include "tools/obsctl/analysis.h"
#include "tools/chameleond/frame.h"
#include "tools/chameleond/protocol.h"
#include "tools/chameleond/transport.h"
#include "tools/obsctl/json.h"

namespace chameleon::daemon {
namespace {

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

void SendPayload(Transport* transport, const std::string& payload) {
  util::Status sent = WriteFrame(transport, payload);
  ASSERT_TRUE(sent.ok()) << sent.ToString();
}

/// Reads frames until one matches `type` (and `id`, when non-empty).
/// Unrelated frames in between (acks racing reports) are skipped.
obsctl::JsonValue AwaitFrame(Transport* transport, const std::string& type,
                             const std::string& id = "") {
  while (true) {
    FrameReadResult result = ReadFrame(transport);
    if (result.kind != FrameReadResult::Kind::kFrame) {
      ADD_FAILURE() << "stream ended while waiting for a '" << type
                    << "' frame (kind " << static_cast<int>(result.kind)
                    << "): " << result.status.ToString();
      return obsctl::JsonValue();
    }
    auto json = obsctl::ParseJson(result.payload);
    if (!json.ok()) {
      ADD_FAILURE() << "unparseable frame: " << result.payload;
      return obsctl::JsonValue();
    }
    if (json->StringOr("type", "") != type) continue;
    if (!id.empty() && json->StringOr("id", "") != id) continue;
    return *json;
  }
}

/// Collects `count` report frames in arrival order (completions of
/// concurrent requests are not ordered), keyed by request id.
std::map<std::string, obsctl::JsonValue> CollectReports(Transport* transport,
                                                        size_t count) {
  std::map<std::string, obsctl::JsonValue> reports;
  while (reports.size() < count) {
    FrameReadResult result = ReadFrame(transport);
    if (result.kind != FrameReadResult::Kind::kFrame) {
      ADD_FAILURE() << "stream ended after " << reports.size() << " of "
                    << count << " reports: " << result.status.ToString();
      return reports;
    }
    auto json = obsctl::ParseJson(result.payload);
    if (!json.ok() || json->StringOr("type", "") != "report") continue;
    reports[json->StringOr("id", "")] = *json;
  }
  return reports;
}

/// A daemon serving one PipePair connection on a background thread.
class RunningDaemon {
 public:
  explicit RunningDaemon(const DaemonOptions& options = DaemonOptions(),
                         Transport* server_override = nullptr)
      : daemon_(server_override != nullptr ? server_override : pipe_.server(),
                options) {}

  void Start(bool resume = false) {
    if (resume) {
      util::Status resumed = daemon_.Resume();
      ASSERT_TRUE(resumed.ok()) << resumed.ToString();
    }
    thread_ = std::thread([this] { serve_status_ = daemon_.Serve(); });
  }

  /// Closes the client's write side (server sees EOF) and joins Serve.
  void Finish() {
    if (!thread_.joinable()) return;
    pipe_.client()->Close();
    thread_.join();
  }

  ~RunningDaemon() { Finish(); }

  Transport* client() { return pipe_.client(); }
  Transport* raw_server() { return pipe_.server(); }
  Daemon& daemon() { return daemon_; }
  const util::Status& serve_status() const { return serve_status_; }

 private:
  PipePair pipe_;
  Daemon daemon_;
  std::thread thread_;
  util::Status serve_status_ = util::Status::Ok();
};

/// Frame-layer fault injector for the chaos tests: dribbles reads into
/// tiny chunks and injects spurious "interrupted" results, the two
/// transport-level failure modes a daemon over a real pipe sees short
/// of disconnection.
class FlakyTransport : public Transport {
 public:
  struct Options {
    size_t max_read_chunk = 0;          ///< 0 = unlimited
    int unavailable_every = 0;          ///< every Nth read is interrupted
  };

  FlakyTransport(Transport* wrapped, const Options& options)
      : wrapped_(wrapped), options_(options) {}

  [[nodiscard]] util::Result<size_t> Read(char* out, size_t max) override {
    const int64_t n = ++reads_;
    if (options_.unavailable_every > 0 &&
        n % options_.unavailable_every == 0) {
      return util::Status::Unavailable("injected spurious interrupt");
    }
    size_t limit = max;
    if (options_.max_read_chunk > 0 && options_.max_read_chunk < limit) {
      limit = options_.max_read_chunk;
    }
    return wrapped_->Read(out, limit);
  }

  [[nodiscard]] util::Status Write(const char* data, size_t size) override {
    return wrapped_->Write(data, size);
  }

  void WakeReader() override { wrapped_->WakeReader(); }
  void Close() override { wrapped_->Close(); }

 private:
  Transport* wrapped_;
  Options options_;
  std::atomic<int64_t> reads_{0};
};

/// Runs the identical micro repair directly against core::Chameleon —
/// the reference digest every daemon-served clean run must match.
std::string DirectMicroDigest(const RepairRequestSpec& spec) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  auto corpus = MakeMicroCorpus(&embedder);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  fm::SimulatedFoundationModel sim(
      corpus->dataset.schema(), datasets::FeretFaceStyleFn(),
      datasets::FeretScene(), fm::SimulatedFoundationModel::Options());
  fm::ResilientFoundationModel resilient(&sim, spec.resilience);
  core::ChameleonOptions options;
  options.tau = spec.tau;
  options.seed = spec.seed;
  options.max_queries = spec.max_queries;
  options.rejection_batch = spec.rejection_batch;
  options.num_threads = spec.num_threads;
  core::Chameleon system(&resilient, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&*corpus);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? ReportDigest(*report) : "";
}

RepairRequestSpec MicroSpec(const std::string& id) {
  RepairRequestSpec spec;
  spec.id = id;
  return spec;
}

/// Fault mix the resilience layer can always mask: transients only, an
/// effectively infinite retry budget, and a breaker that never opens.
RepairRequestSpec MaskedFaultSpec(const std::string& id) {
  RepairRequestSpec spec = MicroSpec(id);
  spec.has_faults = true;
  spec.faults.transient_rate = 0.3;
  spec.resilience.max_attempts = 64;
  spec.resilience.breaker_failure_threshold = 1 << 30;
  return spec;
}

// ---------------------------------------------------------------------------
// Protocol basics
// ---------------------------------------------------------------------------

TEST(DaemonTest, PingPongAndCleanShutdownOnEof) {
  RunningDaemon server;
  server.Start();
  SendPayload(server.client(), RenderPing());
  AwaitFrame(server.client(), "pong");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  const DaemonStats stats = server.daemon().stats();
  EXPECT_EQ(stats.frames, 1);
  EXPECT_EQ(stats.active, 0);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(DaemonTest, SingleRepairMatchesDirectRun) {
  const RepairRequestSpec spec = MicroSpec("r1");
  const std::string expected = DirectMicroDigest(spec);
  ASSERT_FALSE(expected.empty());

  RunningDaemon server;
  server.Start();
  SendPayload(server.client(), RenderRepairRequest(spec));
  AwaitFrame(server.client(), "ack", "r1");
  obsctl::JsonValue report = AwaitFrame(server.client(), "report", "r1");
  EXPECT_EQ(report.StringOr("records_digest", ""), expected);
  EXPECT_EQ(report.StringOr("status", ""), "ok");
  EXPECT_GT(report.IntOr("accepted", 0), 0);
  server.Finish();
  EXPECT_EQ(server.daemon().stats().active, 0);
}

TEST(DaemonTest, FaultMaskedRepairBitIdenticalToCleanRun) {
  const std::string clean = DirectMicroDigest(MicroSpec("direct"));
  ASSERT_FALSE(clean.empty());

  RunningDaemon server;
  server.Start();
  SendPayload(server.client(), RenderRepairRequest(MaskedFaultSpec("r1")));
  obsctl::JsonValue report = AwaitFrame(server.client(), "report", "r1");
  // Masked faults must be invisible in the result: identical digest,
  // while faults_masked proves the faults actually fired.
  EXPECT_EQ(report.StringOr("records_digest", ""), clean);
  EXPECT_EQ(report.StringOr("status", ""), "ok");
  EXPECT_GT(report.IntOr("faults_masked", 0), 0);
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
}

// ---------------------------------------------------------------------------
// Protocol corruption: each kind yields a structured error frame, never
// a crash, and (where the stream survives) a healthy next request.
// ---------------------------------------------------------------------------

TEST(DaemonTest, TruncatedLengthPrefixReportsErrorAndDrains) {
  RunningDaemon server;
  server.Start();
  // Two bytes of a length prefix, then disconnect: a torn write.
  util::Status sent = server.client()->Write("\x05\x00", 2);
  ASSERT_TRUE(sent.ok()) << sent.ToString();
  server.client()->Close();
  obsctl::JsonValue error = AwaitFrame(server.client(), "error");
  EXPECT_EQ(error.StringOr("code", ""), "InvalidArgument");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().protocol_errors, 1);
  EXPECT_EQ(server.daemon().stats().active, 0);
}

TEST(DaemonTest, OversizedFrameRejectedAndNextRequestHealthy) {
  RunningDaemon server;
  server.Start();
  // A 2 MiB declared frame: over the 1 MiB payload bound but under the
  // discard bound, so the daemon must swallow the body and recover.
  const uint32_t declared = 2u << 20;
  std::string wire;
  wire.push_back(static_cast<char>(declared & 0xFF));
  wire.push_back(static_cast<char>((declared >> 8) & 0xFF));
  wire.push_back(static_cast<char>((declared >> 16) & 0xFF));
  wire.push_back(static_cast<char>((declared >> 24) & 0xFF));
  wire.append(declared, 'x');
  util::Status sent = server.client()->Write(wire.data(), wire.size());
  ASSERT_TRUE(sent.ok()) << sent.ToString();
  obsctl::JsonValue error = AwaitFrame(server.client(), "error");
  EXPECT_EQ(error.StringOr("code", ""), "InvalidArgument");

  SendPayload(server.client(), RenderPing());
  AwaitFrame(server.client(), "pong");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().protocol_errors, 1);
}

TEST(DaemonTest, InvalidUtf8AndInvalidJsonRejectedAndRecovered) {
  RunningDaemon server;
  server.Start();
  SendPayload(server.client(), "\xff\xfe{\"type\":\"ping\"}");
  obsctl::JsonValue utf8_error = AwaitFrame(server.client(), "error");
  EXPECT_EQ(utf8_error.StringOr("code", ""), "InvalidArgument");

  SendPayload(server.client(), "{\"type\":\"ping\"");  // unterminated
  obsctl::JsonValue json_error = AwaitFrame(server.client(), "error");
  EXPECT_EQ(json_error.StringOr("code", ""), "InvalidArgument");

  SendPayload(server.client(), RenderPing());
  AwaitFrame(server.client(), "pong");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().protocol_errors, 2);
}

TEST(DaemonTest, DuplicateRequestIdRejected) {
  RunningDaemon server;
  server.Start();
  SendPayload(server.client(), RenderRepairRequest(MicroSpec("dup")));
  AwaitFrame(server.client(), "ack", "dup");
  AwaitFrame(server.client(), "report", "dup");
  // The id stays burned even after the request finished.
  SendPayload(server.client(), RenderRepairRequest(MicroSpec("dup")));
  obsctl::JsonValue error = AwaitFrame(server.client(), "error", "dup");
  EXPECT_EQ(error.StringOr("code", ""), "InvalidArgument");
  server.Finish();
  EXPECT_EQ(server.daemon().stats().rejected_duplicate, 1);
  EXPECT_EQ(server.daemon().stats().completed, 1);
}

// ---------------------------------------------------------------------------
// Admission control and backpressure
// ---------------------------------------------------------------------------

TEST(DaemonTest, OverloadRejectedWithResourceExhausted) {
  DaemonOptions options;
  options.max_queue = 2;
  options.max_inflight_per_client = 1;
  options.num_threads = 1;
  RunningDaemon server(options);
  server.Start();

  // A long-running request (tau 40 needs ~1600 attempts) occupies the
  // single worker while the rejections below are exercised.
  RepairRequestSpec r1 = MicroSpec("r1");
  r1.client = "a";
  r1.tau = 40;
  SendPayload(server.client(), RenderRepairRequest(r1));
  AwaitFrame(server.client(), "ack", "r1");

  RepairRequestSpec r2 = MicroSpec("r2");
  r2.client = "a";
  SendPayload(server.client(), RenderRepairRequest(r2));
  obsctl::JsonValue per_client = AwaitFrame(server.client(), "error", "r2");
  EXPECT_EQ(per_client.StringOr("code", ""), "ResourceExhausted");

  RepairRequestSpec r3 = MicroSpec("r3");
  r3.client = "b";
  SendPayload(server.client(), RenderRepairRequest(r3));
  AwaitFrame(server.client(), "ack", "r3");

  RepairRequestSpec r4 = MicroSpec("r4");
  r4.client = "c";
  SendPayload(server.client(), RenderRepairRequest(r4));
  obsctl::JsonValue overload = AwaitFrame(server.client(), "error", "r4");
  EXPECT_EQ(overload.StringOr("code", ""), "ResourceExhausted");

  AwaitFrame(server.client(), "report", "r1");
  AwaitFrame(server.client(), "report", "r3");
  server.Finish();
  const DaemonStats stats = server.daemon().stats();
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.rejected_overload, 2);
  EXPECT_EQ(stats.active, 0);  // rejected requests must not leak slots
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation
// ---------------------------------------------------------------------------

TEST(DaemonTest, CancelReturnsPartialReport) {
  RunningDaemon server;
  server.Start();
  RepairRequestSpec spec = MicroSpec("slow");
  spec.tau = 40;
  SendPayload(server.client(), RenderRepairRequest(spec));
  AwaitFrame(server.client(), "ack", "slow");
  SendPayload(server.client(), RenderCancelRequest("slow"));
  obsctl::JsonValue report = AwaitFrame(server.client(), "report", "slow");
  EXPECT_EQ(report.StringOr("status", ""), "cancelled");
  EXPECT_GE(report.IntOr("parked_entries", 0), 1);
  server.Finish();
  const DaemonStats stats = server.daemon().stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.active, 0);
}

TEST(DaemonTest, CancelUnknownIdIsNotFound) {
  RunningDaemon server;
  server.Start();
  SendPayload(server.client(), RenderCancelRequest("ghost"));
  obsctl::JsonValue error = AwaitFrame(server.client(), "error", "ghost");
  EXPECT_EQ(error.StringOr("code", ""), "NotFound");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
}

TEST(DaemonTest, DeadlineExpiresIntoPartialReport) {
  RunningDaemon server;
  server.Start();
  RepairRequestSpec spec = MicroSpec("dl");
  spec.tau = 40;
  spec.deadline_ms = 50.0;  // ~5 queries at the default 10 ms per attempt
  SendPayload(server.client(), RenderRepairRequest(spec));
  obsctl::JsonValue report = AwaitFrame(server.client(), "report", "dl");
  EXPECT_EQ(report.StringOr("status", ""), "deadline");
  EXPECT_GE(report.IntOr("parked_entries", 0), 1);
  EXPECT_GE(report.NumberOr("virtual_ms", 0.0), 50.0);
  server.Finish();
  EXPECT_EQ(server.daemon().stats().active, 0);
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST(DaemonTest, ShutdownFrameDrainsInFlightRequests) {
  DaemonOptions options;
  // Far beyond the request's worst-case runtime even under sanitizers:
  // this test pins the voluntary-finish path, so the drain must never
  // hit its deadline and cancel (the test below covers that path).
  options.drain_wait_ms = 300000.0;
  RunningDaemon server(options);
  server.Start();
  RepairRequestSpec spec = MicroSpec("inflight");
  spec.tau = 40;
  SendPayload(server.client(), RenderRepairRequest(spec));
  AwaitFrame(server.client(), "ack", "inflight");
  SendPayload(server.client(), RenderShutdown());
  AwaitFrame(server.client(), "ack", "shutdown");
  // The drain must still deliver the in-flight request's report.
  obsctl::JsonValue report = AwaitFrame(server.client(), "report", "inflight");
  EXPECT_EQ(report.StringOr("status", ""), "ok");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().active, 0);
}

TEST(DaemonTest, RequestShutdownCancelsStragglersPastDrainDeadline) {
  DaemonOptions options;
  options.drain_wait_ms = 20.0;  // force the cancel path
  RunningDaemon server(options);
  server.Start();
  RepairRequestSpec spec = MicroSpec("straggler");
  spec.tau = 40;
  SendPayload(server.client(), RenderRepairRequest(spec));
  AwaitFrame(server.client(), "ack", "straggler");
  server.daemon().RequestShutdown();  // the SIGTERM path, sans signal
  obsctl::JsonValue report = AwaitFrame(server.client(), "report",
                                        "straggler");
  EXPECT_EQ(report.StringOr("status", ""), "cancelled");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().active, 0);
}

TEST(DaemonTest, MidRequestDisconnectStillFinishesAndJournals) {
  const std::string journal_path =
      testing::TempDir() + "/daemon_disconnect.jsonl";
  DaemonOptions options;
  options.journal_path = journal_path;
  RunningDaemon server(options);
  server.Start();
  SendPayload(server.client(), RenderRepairRequest(MicroSpec("orphan")));
  AwaitFrame(server.client(), "ack", "orphan");
  // Client vanishes mid-request; the daemon must finish the repair,
  // journal req.end, and drain without crashing.
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  const DaemonStats stats = server.daemon().stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.active, 0);

  std::ifstream in(journal_path);
  ASSERT_TRUE(in.is_open());
  bool saw_end = false;
  std::string line;
  while (std::getline(in, line)) {
    auto event = obsctl::ParseJson(line);
    if (event.ok() && event->StringOr("type", "") == "req.end" &&
        event->StringOr("id", "") == "orphan") {
      saw_end = true;
      EXPECT_EQ(event->StringOr("status", ""), "ok");
    }
  }
  EXPECT_TRUE(saw_end);
}

// ---------------------------------------------------------------------------
// Transport chaos
// ---------------------------------------------------------------------------

TEST(DaemonTest, FlakyTransportChaosEightConcurrent) {
  const std::string clean = DirectMicroDigest(MicroSpec("direct"));
  ASSERT_FALSE(clean.empty());

  PipePair pipe;
  FlakyTransport::Options chaos;
  chaos.max_read_chunk = 1;      // dribble every frame byte by byte
  chaos.unavailable_every = 7;   // plus periodic spurious interrupts
  FlakyTransport flaky(pipe.server(), chaos);
  DaemonOptions options;
  options.num_threads = 4;
  Daemon daemon(&flaky, options);
  util::Status serve_status = util::Status::Ok();
  std::thread thread([&] { serve_status = daemon.Serve(); });

  for (int i = 0; i < 8; ++i) {
    RepairRequestSpec spec = MaskedFaultSpec("r" + std::to_string(i));
    spec.client = "c" + std::to_string(i);
    SendPayload(pipe.client(), RenderRepairRequest(spec));
  }
  std::map<std::string, obsctl::JsonValue> reports =
      CollectReports(pipe.client(), 8);
  ASSERT_EQ(reports.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const std::string id = "r" + std::to_string(i);
    ASSERT_TRUE(reports.count(id)) << "no report for " << id;
    // Full isolation: every request masks its own faults and lands on
    // the clean digest, regardless of scheduling and transport chaos.
    EXPECT_EQ(reports[id].StringOr("records_digest", ""), clean) << id;
    EXPECT_EQ(reports[id].StringOr("status", ""), "ok") << id;
  }
  pipe.client()->Close();
  thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.active, 0);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(DaemonTest, ConcurrentIsolationOneClientAtFullFaultRate) {
  const std::string clean = DirectMicroDigest(MicroSpec("direct"));
  ASSERT_FALSE(clean.empty());

  DaemonOptions options;
  options.num_threads = 2;
  RunningDaemon server(options);
  server.Start();

  // "bad" fails every backend call and exhausts its tiny retry budget;
  // "good" runs concurrently and must be bit-identical to a clean run.
  RepairRequestSpec bad = MicroSpec("bad");
  bad.client = "chaos";
  bad.has_faults = true;
  bad.faults.transient_rate = 1.0;
  bad.resilience.max_attempts = 2;
  SendPayload(server.client(), RenderRepairRequest(bad));
  RepairRequestSpec good = MicroSpec("good");
  good.client = "steady";
  SendPayload(server.client(), RenderRepairRequest(good));

  std::map<std::string, obsctl::JsonValue> reports =
      CollectReports(server.client(), 2);
  ASSERT_TRUE(reports.count("bad") && reports.count("good"));
  EXPECT_EQ(reports["bad"].StringOr("status", ""), "parked");
  EXPECT_EQ(reports["bad"].IntOr("accepted", -1), 0);
  EXPECT_EQ(reports["good"].StringOr("status", ""), "ok");
  EXPECT_EQ(reports["good"].StringOr("records_digest", ""), clean);
  server.Finish();
  EXPECT_EQ(server.daemon().stats().active, 0);
}

// ---------------------------------------------------------------------------
// Crash tolerance: journal resume
// ---------------------------------------------------------------------------

TEST(DaemonTest, ResumeReparksInterruptedRequests) {
  const std::string journal_path = testing::TempDir() + "/daemon_crash.jsonl";
  {
    // A journal as left by a daemon killed mid-request: "done" finished,
    // "lost" was accepted but never ended, and the final line is ragged.
    std::ofstream out(journal_path, std::ios::trunc);
    out << R"({"type":"daemon.start","tick":1,"max_queue":32})" << "\n";
    out << R"({"type":"req.accepted","tick":2,"id":"done","client":"a",)"
        << R"("dataset":"micro","tau":6,"seed":11,"deadline_ms":0})" << "\n";
    out << R"({"type":"req.accepted","tick":3,"id":"lost","client":"a",)"
        << R"("dataset":"micro","tau":6,"seed":11,"deadline_ms":0})" << "\n";
    out << R"({"type":"req.end","tick":4,"id":"done","status":"ok"})" << "\n";
    out << R"({"type":"req.start","tick":5,"id":"lost"})" << "\n";
    out << R"({"type":"req.acce)";  // torn write from the crash
  }

  DaemonOptions options;
  options.journal_path = journal_path;
  RunningDaemon server(options);
  server.Start(/*resume=*/true);

  obsctl::JsonValue resumed = AwaitFrame(server.client(), "resumed");
  EXPECT_EQ(resumed.StringOr("id", ""), "lost");
  EXPECT_EQ(resumed.StringOr("state", ""), "re-parked");

  // Both recovered ids are burned against reuse.
  SendPayload(server.client(), RenderRepairRequest(MicroSpec("lost")));
  EXPECT_EQ(AwaitFrame(server.client(), "error", "lost")
                .StringOr("code", ""),
            "InvalidArgument");
  SendPayload(server.client(), RenderRepairRequest(MicroSpec("done")));
  EXPECT_EQ(AwaitFrame(server.client(), "error", "done")
                .StringOr("code", ""),
            "InvalidArgument");

  // Fresh traffic is healthy after a resume.
  SendPayload(server.client(), RenderRepairRequest(MicroSpec("fresh")));
  AwaitFrame(server.client(), "report", "fresh");
  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().resumed, 1);

  // The journal was compacted: the new stream records the recovery.
  std::ifstream in(journal_path);
  ASSERT_TRUE(in.is_open());
  bool saw_resumed = false;
  std::string line;
  while (std::getline(in, line)) {
    auto event = obsctl::ParseJson(line);
    if (event.ok() && event->StringOr("type", "") == "req.resumed" &&
        event->StringOr("id", "") == "lost") {
      saw_resumed = true;
    }
  }
  EXPECT_TRUE(saw_resumed);
}

// ---------------------------------------------------------------------------
// Streaming coverage: warm incremental MUP indexes (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST(DaemonTest, WarmIncrementalIndexBitIdenticalToDirectRun) {
  // Two sequential incremental repairs of the same (dataset, tau): the
  // first builds the warm index (miss), the second clones it (hit), and
  // both digests must equal the direct non-incremental run — the warm
  // path is pure amortization, never a result change.
  const std::string clean = DirectMicroDigest(MicroSpec("direct"));
  ASSERT_FALSE(clean.empty());

  RunningDaemon server;
  server.Start();
  RepairRequestSpec first = MicroSpec("w1");
  first.incremental = true;
  SendPayload(server.client(), RenderRepairRequest(first));
  obsctl::JsonValue report1 = AwaitFrame(server.client(), "report", "w1");
  EXPECT_EQ(report1.StringOr("records_digest", ""), clean);
  EXPECT_EQ(report1.StringOr("status", ""), "ok");

  RepairRequestSpec second = MicroSpec("w2");
  second.incremental = true;
  SendPayload(server.client(), RenderRepairRequest(second));
  obsctl::JsonValue report2 = AwaitFrame(server.client(), "report", "w2");
  EXPECT_EQ(report2.StringOr("records_digest", ""), clean);

  server.Finish();
  const DaemonStats stats = server.daemon().stats();
  EXPECT_EQ(stats.index_warm_misses, 1);
  EXPECT_EQ(stats.index_warm_hits, 1);
  EXPECT_EQ(stats.active, 0);
}

TEST(DaemonTest, ResumedDaemonRebuildsIncrementalIndexFromScratch) {
  // A daemon killed mid-request while serving incremental repairs: the
  // warm-index cache is process memory only, so after --resume the next
  // incremental request must rebuild from the base corpus (a miss, never
  // a stale frontier) and still match the direct run bit-for-bit.
  const std::string journal_path =
      testing::TempDir() + "/daemon_incr_crash.jsonl";
  {
    std::ofstream out(journal_path, std::ios::trunc);
    out << R"({"type":"daemon.start","tick":1,"max_queue":32})" << "\n";
    out << R"({"type":"req.accepted","tick":2,"id":"gone","client":"a",)"
        << R"("dataset":"micro","tau":6,"seed":11,"deadline_ms":0,)"
        << R"("incremental":true})" << "\n";
    out << R"({"type":"req.start","tick":3,"id":"gone"})" << "\n";
  }

  DaemonOptions options;
  options.journal_path = journal_path;
  RunningDaemon server(options);
  server.Start(/*resume=*/true);
  obsctl::JsonValue resumed = AwaitFrame(server.client(), "resumed");
  EXPECT_EQ(resumed.StringOr("id", ""), "gone");

  RepairRequestSpec fresh = MicroSpec("fresh");
  fresh.incremental = true;
  SendPayload(server.client(), RenderRepairRequest(fresh));
  obsctl::JsonValue report = AwaitFrame(server.client(), "report", "fresh");
  EXPECT_EQ(report.StringOr("records_digest", ""),
            DirectMicroDigest(MicroSpec("direct")));
  EXPECT_EQ(report.StringOr("status", ""), "ok");

  server.Finish();
  const DaemonStats stats = server.daemon().stats();
  EXPECT_EQ(stats.resumed, 1);
  EXPECT_EQ(stats.index_warm_hits, 0);
  EXPECT_EQ(stats.index_warm_misses, 1);
}

// ---------------------------------------------------------------------------
// Request-scoped telemetry and live stats/statusz (DESIGN.md §15)
// ---------------------------------------------------------------------------

struct StandaloneArtifacts {
  std::vector<std::string> journal_lines;
  std::vector<std::string> span_lines;
  std::string digest;
};

/// Runs the identical micro repair directly against core::Chameleon with
/// an Observability tagged `spec.id` — the reference artifacts every
/// telemetry-enabled daemon run must reproduce byte-for-byte. The span
/// sink collects spans in end order, exactly like the daemon's tee.
StandaloneArtifacts StandaloneMicroTelemetry(const RepairRequestSpec& spec) {
  StandaloneArtifacts out;
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  auto corpus = MakeMicroCorpus(&embedder);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  if (!corpus.ok()) return out;
  fm::SimulatedFoundationModel sim(
      corpus->dataset.schema(), datasets::FeretFaceStyleFn(),
      datasets::FeretScene(), fm::SimulatedFoundationModel::Options());
  fm::ResilientFoundationModel resilient(&sim, spec.resilience);
  obs::Observability observability;
  observability.set_request_id(spec.id);
  observability.tracer.SetSpanSink(
      [&out, &spec](const obs::SpanRecord& span) {
        out.span_lines.push_back(obs::SpanToJson(span, spec.id));
      });
  core::ChameleonOptions options;
  options.tau = spec.tau;
  options.seed = spec.seed;
  options.max_queries = spec.max_queries;
  options.rejection_batch = spec.rejection_batch;
  options.num_threads = spec.num_threads;
  options.observability = &observability;
  core::Chameleon system(&resilient, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&*corpus);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  out.journal_lines = observability.journal.Lines();
  if (report.ok()) out.digest = ReportDigest(*report);
  return out;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(DaemonTest, TelemetryJournalByteIdenticalToStandalone) {
  for (const int threads : {1, 2, 8}) {
    RepairRequestSpec spec = MicroSpec("tele" + std::to_string(threads));
    spec.num_threads = threads;
    const StandaloneArtifacts expected = StandaloneMicroTelemetry(spec);
    ASSERT_FALSE(expected.journal_lines.empty());
    ASSERT_FALSE(expected.span_lines.empty());

    const std::string journal_path =
        testing::TempDir() + "/daemon_tele_" + std::to_string(threads) +
        ".jsonl";
    std::remove(journal_path.c_str());
    DaemonOptions options;
    options.journal_path = journal_path;
    options.telemetry = true;
    RunningDaemon server(options);
    server.Start();
    SendPayload(server.client(), RenderRepairRequest(spec));
    obsctl::JsonValue report = AwaitFrame(server.client(), "report", spec.id);
    EXPECT_EQ(report.StringOr("status", ""), "ok");
    EXPECT_EQ(report.StringOr("records_digest", ""), expected.digest);
    server.Finish();

    auto aggregate = obsctl::AggregateDaemonJournal(ReadWholeFile(journal_path));
    ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
    ASSERT_EQ(aggregate->requests.size(), 1u);
    const obsctl::RequestRollup& rollup = aggregate->requests[0];
    EXPECT_EQ(rollup.id, spec.id);
    EXPECT_TRUE(rollup.contract_ok);
    // The request-scoped telemetry contract: the daemon-extracted
    // artifacts are byte-identical to the standalone run's, at every
    // repair thread count.
    EXPECT_EQ(rollup.journal_lines, expected.journal_lines)
        << "threads=" << threads;
    EXPECT_EQ(rollup.span_lines, expected.span_lines)
        << "threads=" << threads;
  }
}

TEST(DaemonTest, ConcurrentTelemetryDemuxesPerRequest) {
  // Two concurrent telemetry-tagged requests interleave wrapper events
  // in one daemon journal; each extracted slice must still match its
  // own standalone run byte-for-byte.
  RepairRequestSpec spec_a = MicroSpec("mux-a");
  RepairRequestSpec spec_b = MicroSpec("mux-b");
  spec_b.seed = 17;
  const StandaloneArtifacts expected_a = StandaloneMicroTelemetry(spec_a);
  const StandaloneArtifacts expected_b = StandaloneMicroTelemetry(spec_b);

  const std::string journal_path = testing::TempDir() + "/daemon_mux.jsonl";
  std::remove(journal_path.c_str());
  DaemonOptions options;
  options.journal_path = journal_path;
  options.telemetry = true;
  options.num_threads = 2;
  RunningDaemon server(options);
  server.Start();
  spec_a.client = "a";
  spec_b.client = "b";
  SendPayload(server.client(), RenderRepairRequest(spec_a));
  SendPayload(server.client(), RenderRepairRequest(spec_b));
  CollectReports(server.client(), 2);
  server.Finish();

  auto aggregate = obsctl::AggregateDaemonJournal(ReadWholeFile(journal_path));
  ASSERT_TRUE(aggregate.ok()) << aggregate.status().ToString();
  ASSERT_EQ(aggregate->requests.size(), 2u);
  EXPECT_TRUE(aggregate->AllContractsHold());
  for (const obsctl::RequestRollup& rollup : aggregate->requests) {
    const StandaloneArtifacts& expected =
        rollup.id == "mux-a" ? expected_a : expected_b;
    EXPECT_EQ(rollup.journal_lines, expected.journal_lines) << rollup.id;
    EXPECT_EQ(rollup.span_lines, expected.span_lines) << rollup.id;
  }
}

TEST(DaemonTest, StatsAndStatuszServedUnderChaos) {
  PipePair pipe;
  FlakyTransport::Options chaos;
  chaos.max_read_chunk = 3;
  chaos.unavailable_every = 9;
  FlakyTransport flaky(pipe.server(), chaos);
  DaemonOptions options;
  options.num_threads = 4;
  options.telemetry = true;
  Daemon daemon(&flaky, options);
  util::Status serve_status = util::Status::Ok();
  std::thread thread([&] { serve_status = daemon.Serve(); });

  for (int i = 0; i < 4; ++i) {
    RepairRequestSpec spec = MaskedFaultSpec("s" + std::to_string(i));
    spec.client = "c" + std::to_string(i);
    SendPayload(pipe.client(), RenderRepairRequest(spec));
  }
  // statusz answers live while repairs are still in flight.
  SendPayload(pipe.client(), RenderStatuszRequest());
  obsctl::JsonValue live = AwaitFrame(pipe.client(), "statusz");
  EXPECT_EQ(live.IntOr("accepted_total", -1), 4);
  EXPECT_TRUE(live.BoolOr("telemetry", false));
  EXPECT_FALSE(live.BoolOr("draining", true));

  CollectReports(pipe.client(), 4);

  // After completion the aggregate holds all four requests and the
  // scrape is a valid OpenMetrics document with the expected series.
  SendPayload(pipe.client(), RenderStatsRequest());
  obsctl::JsonValue stats_frame = AwaitFrame(pipe.client(), "stats");
  EXPECT_EQ(stats_frame.StringOr("format", ""), "openmetrics");
  const std::string body = stats_frame.StringOr("body", "");
  const util::Status valid = obsctl::ValidateOpenMetrics(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(body.find("fm_queries_total"), std::string::npos);
  EXPECT_NE(body.find("window1m_fm_queries_total"), std::string::npos);
  EXPECT_NE(body.find("window5m_fm_queries_total"), std::string::npos);

  // The report frame is sent *before* the worker releases its slot, so
  // a statusz racing right behind the reports can still see the last
  // worker mid-teardown; poll until the counters settle.
  obsctl::JsonValue done;
  for (int attempt = 0; attempt < 100; ++attempt) {
    SendPayload(pipe.client(), RenderStatuszRequest());
    done = AwaitFrame(pipe.client(), "statusz");
    if (done.IntOr("completed_total", -1) == 4 &&
        done.IntOr("inflight", -1) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(done.IntOr("completed_total", -1), 4);
  EXPECT_EQ(done.IntOr("requests_absorbed", -1), 4);
  EXPECT_EQ(done.IntOr("inflight", -1), 0);

  pipe.client()->Close();
  thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status.ToString();
  EXPECT_EQ(daemon.stats().active, 0);
}

TEST(DaemonTest, AdmissionRejectsCountedInSloScrape) {
  DaemonOptions options;
  options.max_queue = 2;
  options.max_inflight_per_client = 1;
  options.num_threads = 1;
  RunningDaemon server(options);
  server.Start();

  RepairRequestSpec r1 = MicroSpec("r1");
  r1.client = "a";
  r1.tau = 40;
  SendPayload(server.client(), RenderRepairRequest(r1));
  AwaitFrame(server.client(), "ack", "r1");
  RepairRequestSpec r2 = MicroSpec("r2");
  r2.client = "a";  // per-client cap rejection
  SendPayload(server.client(), RenderRepairRequest(r2));
  AwaitFrame(server.client(), "error", "r2");

  SendPayload(server.client(), RenderStatsRequest());
  obsctl::JsonValue stats_frame = AwaitFrame(server.client(), "stats");
  const std::string body = stats_frame.StringOr("body", "");
  // SLO counters are recorded even with --telemetry off.
  EXPECT_NE(body.find("daemon_slo_admission_reject_total 1"),
            std::string::npos)
      << body;

  AwaitFrame(server.client(), "report", "r1");
  server.Finish();
  EXPECT_EQ(server.daemon().stats().rejected_overload, 1);
}

TEST(DaemonTest, StatsAndStatuszServedAfterCrashResume) {
  const std::string journal_path = testing::TempDir() + "/daemon_tele_crash.jsonl";
  {
    // A telemetry daemon killed mid-request: "lost" accepted but never
    // ended, a torn wrapper line at the tail.
    std::ofstream out(journal_path, std::ios::trunc);
    out << R"({"type":"daemon.start","tick":1,"max_queue":32})" << "\n";
    out << R"({"type":"req.accepted","tick":2,"id":"lost","client":"a",)"
        << R"("dataset":"micro","tau":6,"seed":11,"deadline_ms":0})" << "\n";
    out << R"({"type":"req.start","tick":3,"id":"lost"})" << "\n";
    out << R"({"type":"req.event","tick":4,"rid":"lost","line":"{\"ty)";
  }

  DaemonOptions options;
  options.journal_path = journal_path;
  options.telemetry = true;
  RunningDaemon server(options);
  server.Start(/*resume=*/true);
  EXPECT_EQ(AwaitFrame(server.client(), "resumed").StringOr("id", ""), "lost");

  // The resumed daemon's aggregate starts empty (telemetry is live
  // state, not journal state) and serves fresh traffic + scrapes.
  SendPayload(server.client(), RenderStatuszRequest());
  obsctl::JsonValue fresh = AwaitFrame(server.client(), "statusz");
  EXPECT_TRUE(fresh.BoolOr("telemetry", false));
  EXPECT_EQ(fresh.IntOr("requests_absorbed", -1), 0);

  SendPayload(server.client(), RenderRepairRequest(MicroSpec("after")));
  AwaitFrame(server.client(), "report", "after");

  SendPayload(server.client(), RenderStatsRequest());
  obsctl::JsonValue stats_frame = AwaitFrame(server.client(), "stats");
  EXPECT_EQ(stats_frame.StringOr("format", ""), "openmetrics");
  const std::string body = stats_frame.StringOr("body", "");
  const util::Status valid = obsctl::ValidateOpenMetrics(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(body.find("fm_queries_total"), std::string::npos);

  server.Finish();
  EXPECT_TRUE(server.serve_status().ok()) << server.serve_status().ToString();
  EXPECT_EQ(server.daemon().stats().resumed, 1);
}

}  // namespace
}  // namespace chameleon::daemon
