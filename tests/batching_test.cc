// Batched FM queries: the BatchCoalescer's flush triggers, the
// BackendPool's routing and slot-order contracts, and the pipeline-level
// determinism guarantee — accepted tuples are bit-identical across fm
// batch sizes and thread counts, with and without injected faults
// (DESIGN.md §11).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/chameleon.h"
#include "src/datasets/feret.h"
#include "src/embedding/simulated_embedder.h"
#include "src/fm/backend_pool.h"
#include "src/fm/batching.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/flaky_foundation_model.h"
#include "src/fm/foundation_model.h"
#include "src/fm/resilient_foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/obs/observability.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace chameleon::fm {
namespace {

// ---------------------------------------------------------------------------
// BatchCoalescer flush triggers
// ---------------------------------------------------------------------------

/// Deterministic backend that records the size of every batch it serves.
/// Each result echoes the request's values and stamps latent_realism from
/// the model's own call counter, so slot routing mistakes are visible.
class RecordingModel : public FoundationModel {
 public:
  [[nodiscard]] util::Result<GenerationResult> Generate(
      const GenerationRequest& request, util::Rng* /*rng*/) override {
    RecordQuery();
    GenerationResult result;
    result.image = image::Image(2, 2, 3, 7);
    result.values = request.target_values;
    result.latent_realism = static_cast<double>(calls_++);
    return result;
  }

  [[nodiscard]] std::vector<util::Result<GenerationResult>> GenerateBatch(
      std::span<const BatchItem> items) override {
    batch_sizes_.push_back(static_cast<int>(items.size()));
    return FoundationModel::GenerateBatch(items);
  }

  double query_cost() const override { return 1.0; }
  const std::vector<int>& batch_sizes() const { return batch_sizes_; }

 private:
  std::vector<int> batch_sizes_;
  int64_t calls_ = 0;
};

GenerationRequest RequestFor(int i) {
  GenerationRequest request;
  request.target_values = {i, i + 1};
  return request;
}

TEST(BatchCoalescerTest, SizeTriggerFlushesFullBatches) {
  RecordingModel model;
  BatchCoalescerOptions options;
  options.max_batch_size = 3;
  options.window_ms = 1e9;  // never trips
  BatchCoalescer coalescer(&model, options);

  std::vector<GenerationRequest> requests;
  std::vector<util::Rng> rngs;
  std::vector<BatchCoalescer::Slot> slots(7);
  for (int i = 0; i < 7; ++i) {
    requests.push_back(RequestFor(i));
    rngs.emplace_back(static_cast<uint64_t>(i));
  }
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(coalescer.Enqueue(&requests[i], &rngs[i], &slots[i]).ok());
  }
  // Two full batches of 3 flushed on size; the 7th request still pending.
  EXPECT_EQ(model.batch_sizes(), (std::vector<int>{3, 3}));
  EXPECT_EQ(coalescer.pending(), 1u);
  EXPECT_FALSE(slots[6].has_value());

  ASSERT_TRUE(coalescer.Flush().ok());
  EXPECT_EQ(model.batch_sizes(), (std::vector<int>{3, 3, 1}));
  EXPECT_EQ(coalescer.pending(), 0u);

  const BatchCoalescerStats& stats = coalescer.stats();
  EXPECT_EQ(stats.enqueued, 7);
  EXPECT_EQ(stats.flushes, 3);
  EXPECT_EQ(stats.flushed_requests, 7);
  EXPECT_EQ(stats.size_flushes, 2);
  EXPECT_EQ(stats.window_flushes, 0);
  EXPECT_EQ(stats.forced_flushes, 1);
  EXPECT_EQ(stats.max_batch, 3);

  // Every slot answered, in arrival order, with its own request's values.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(slots[i].has_value()) << "slot " << i;
    ASSERT_TRUE(slots[i]->ok());
    EXPECT_EQ((*slots[i])->values, requests[i].target_values);
    EXPECT_DOUBLE_EQ((*slots[i])->latent_realism, static_cast<double>(i));
  }
}

TEST(BatchCoalescerTest, WindowTriggerFlushesAgedBatch) {
  RecordingModel model;
  BatchCoalescerOptions options;
  options.max_batch_size = 100;
  options.window_ms = 2.5;
  options.arrival_interval_ms = 1.0;
  BatchCoalescer coalescer(&model, options);

  std::vector<GenerationRequest> requests;
  std::vector<util::Rng> rngs;
  std::vector<BatchCoalescer::Slot> slots(5);
  for (int i = 0; i < 5; ++i) {
    requests.push_back(RequestFor(i));
    rngs.emplace_back(static_cast<uint64_t>(i));
  }
  // Arrivals at t = 0,1,2,3,4 ms. The arrival at t=3 ages the window
  // opened at t=0 past 2.5 ms, so {0,1,2} flush before 3 is queued; the
  // same happens again when a later arrival would age the new window.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(coalescer.Enqueue(&requests[i], &rngs[i], &slots[i]).ok());
  }
  EXPECT_EQ(model.batch_sizes(), (std::vector<int>{3}));
  EXPECT_EQ(coalescer.stats().window_flushes, 1);
  EXPECT_EQ(coalescer.pending(), 2u);

  ASSERT_TRUE(coalescer.Flush().ok());
  EXPECT_EQ(model.batch_sizes(), (std::vector<int>{3, 2}));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(slots[i].has_value());
    ASSERT_TRUE(slots[i]->ok());
    EXPECT_EQ((*slots[i])->values, requests[i].target_values);
  }
}

TEST(BatchCoalescerTest, FlushOnEmptyIsANoOp) {
  RecordingModel model;
  BatchCoalescer coalescer(&model, {});
  ASSERT_TRUE(coalescer.Flush().ok());
  ASSERT_TRUE(coalescer.Flush().ok());
  EXPECT_EQ(coalescer.stats().flushes, 0);
  EXPECT_TRUE(model.batch_sizes().empty());
}

TEST(BatchCoalescerTest, EnqueueRejectsNullArguments) {
  RecordingModel model;
  BatchCoalescer coalescer(&model, {});
  GenerationRequest request = RequestFor(0);
  util::Rng rng(1);
  BatchCoalescer::Slot slot;
  EXPECT_EQ(coalescer.Enqueue(nullptr, &rng, &slot).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(coalescer.Enqueue(&request, nullptr, &slot).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(coalescer.Enqueue(&request, &rng, nullptr).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(coalescer.pending(), 0u);
}

TEST(BatchCoalescerTest, PerRequestFailuresLandInTheirOwnSlots) {
  // A failing request must not poison its batchmates: the default
  // GenerateBatch carries each per-request error in its own slot.
  FlakyOptions flaky_options;
  flaky_options.outage_start = 1;  // second call in the batch fails
  flaky_options.outage_length = 1;
  RecordingModel inner;
  FlakyFoundationModel model(&inner, flaky_options);

  BatchCoalescerOptions options;
  options.max_batch_size = 3;
  BatchCoalescer coalescer(&model, options);
  std::vector<GenerationRequest> requests;
  std::vector<util::Rng> rngs;
  std::vector<BatchCoalescer::Slot> slots(3);
  requests.reserve(3);  // enqueued pointers must survive the loop
  rngs.reserve(3);
  for (int i = 0; i < 3; ++i) {
    requests.push_back(RequestFor(i));
    rngs.emplace_back(static_cast<uint64_t>(i));
    ASSERT_TRUE(coalescer.Enqueue(&requests[i], &rngs[i], &slots[i]).ok());
  }
  ASSERT_TRUE(slots[0].has_value());
  ASSERT_TRUE(slots[1].has_value());
  ASSERT_TRUE(slots[2].has_value());
  EXPECT_TRUE(slots[0]->ok());
  EXPECT_EQ(slots[1]->status().code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(slots[2]->ok());
  EXPECT_EQ((*slots[2])->values, requests[2].target_values);
}

// ---------------------------------------------------------------------------
// Default GenerateBatch == loop over Generate
// ---------------------------------------------------------------------------

TEST(FoundationModelTest, DefaultGenerateBatchMatchesLoopOverGenerate) {
  const auto schema = datasets::FeretSchema();
  const SimulatedFoundationModel::Options sim_options;
  SimulatedFoundationModel loop_model(schema, datasets::FeretFaceStyleFn(),
                                      datasets::FeretScene(), sim_options);
  SimulatedFoundationModel batch_model(schema, datasets::FeretFaceStyleFn(),
                                       datasets::FeretScene(), sim_options);

  std::vector<GenerationRequest> requests;
  for (int i = 0; i < 6; ++i) {
    GenerationRequest request;
    request.target_values = {i % 2, i % 5};
    requests.push_back(request);
  }

  // Per-request RNG forks from a common parent, exactly as the pipeline
  // does before enqueueing.
  std::vector<GenerationResult> via_loop;
  {
    util::Rng parent(99);
    for (const GenerationRequest& request : requests) {
      util::Rng fork = parent.Fork();
      via_loop.push_back(*loop_model.Generate(request, &fork));
    }
  }
  util::Rng parent(99);
  std::vector<util::Rng> forks;
  forks.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) forks.push_back(parent.Fork());
  std::vector<BatchItem> items;
  for (size_t i = 0; i < requests.size(); ++i) {
    items.push_back(BatchItem{&requests[i], &forks[i]});
  }
  const auto via_batch = batch_model.GenerateBatch(items);

  ASSERT_EQ(via_batch.size(), via_loop.size());
  for (size_t i = 0; i < via_loop.size(); ++i) {
    ASSERT_TRUE(via_batch[i].ok());
    EXPECT_EQ(via_batch[i]->image, via_loop[i].image) << "item " << i;
    EXPECT_EQ(via_batch[i]->values, via_loop[i].values);
    EXPECT_EQ(via_batch[i]->latent_realism, via_loop[i].latent_realism);
  }
}

// ---------------------------------------------------------------------------
// BackendPool routing
// ---------------------------------------------------------------------------

SimulatedBackendPool MakeTestPool(BackendRouterKind router) {
  SimulatedPoolOptions options;
  options.num_backends = 3;
  SimulatedBackendPool pool = MakeSimulatedBackendPool(
      datasets::FeretSchema(), datasets::FeretFaceStyleFn(),
      datasets::FeretScene(), options);
  pool.pool->set_backend_router(router);
  return pool;
}

TEST(BackendPoolTest, GreedyRouterPicksCheapestCostPerAcceptedTuple) {
  SimulatedBackendPool pool = MakeTestPool(BackendRouterKind::kGreedyCost);
  // econ: 0.008 / 0.35 ≈ 0.023 beats standard (0.032) and premium (0.046).
  util::Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    auto result = pool.pool->Generate(RequestFor(i % 2), &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->backend, 0);
  }
  EXPECT_EQ(pool.pool->routed_queries(0), 4);
  EXPECT_EQ(pool.pool->routed_queries(1), 0);
  EXPECT_EQ(pool.pool->routed_queries(2), 0);
  EXPECT_EQ(pool.pool->num_queries(), 4);
}

TEST(BackendPoolTest, LinUcbRouterLearnsFromOutcomeFeedback) {
  SimulatedBackendPool pool = MakeTestPool(BackendRouterKind::kLinUcb);
  util::Rng rng(5);
  // Untrained, every arm scores the same and ties break to index 0.
  auto first = pool.pool->Generate(RequestFor(0), &rng);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->backend, 0);

  // Feedback: econ keeps rejecting, premium keeps accepting. The router
  // only ever learns through ReportOutcome (the pipeline's merge path).
  for (int i = 0; i < 3; ++i) {
    pool.pool->ReportOutcome(0, /*accepted=*/false);
    pool.pool->ReportOutcome(2, /*accepted=*/true);
  }
  auto trained = pool.pool->Generate(RequestFor(1), &rng);
  ASSERT_TRUE(trained.ok());
  EXPECT_EQ(trained->backend, 2);
  EXPECT_EQ(pool.pool->accepted_outcomes(2), 3);
  EXPECT_EQ(pool.pool->accepted_outcomes(0), 0);

  // OnRunStart forgets the training: runs are independent.
  pool.pool->OnRunStart();
  auto fresh = pool.pool->Generate(RequestFor(0), &rng);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->backend, 0);
}

TEST(BackendPoolTest, GenerateBatchPreservesSlotOrderAndStampsBackend) {
  SimulatedBackendPool pool = MakeTestPool(BackendRouterKind::kGreedyCost);
  std::vector<GenerationRequest> requests;
  std::vector<util::Rng> rngs;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(RequestFor(i % 2));
    rngs.emplace_back(static_cast<uint64_t>(200 + i));
  }
  std::vector<BatchItem> items;
  for (size_t i = 0; i < requests.size(); ++i) {
    items.push_back(BatchItem{&requests[i], &rngs[i]});
  }
  const double before_ms = pool.pool->virtual_ms();
  const auto results = pool.pool->GenerateBatch(items);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "item " << i;
    EXPECT_EQ(results[i]->values, requests[i].target_values);
    EXPECT_EQ(results[i]->backend, 0);
  }
  // One dispatch to the econ tier: base 30 ms + 5 queries * 3 ms.
  EXPECT_DOUBLE_EQ(pool.pool->virtual_ms() - before_ms, 30.0 + 5 * 3.0);
}

TEST(BackendPoolTest, BatchingSameRequestsIsBitIdenticalToSingles) {
  // The pool half of the determinism contract: grouping into a batch
  // changes neither routing nor results, given per-request RNG forks.
  std::vector<GenerationRequest> requests;
  for (int i = 0; i < 8; ++i) requests.push_back(RequestFor(i % 2));

  SimulatedBackendPool singles = MakeTestPool(BackendRouterKind::kGreedyCost);
  std::vector<GenerationResult> expected;
  {
    util::Rng parent(321);
    for (const GenerationRequest& request : requests) {
      util::Rng fork = parent.Fork();
      expected.push_back(*singles.pool->Generate(request, &fork));
    }
  }

  SimulatedBackendPool batched = MakeTestPool(BackendRouterKind::kGreedyCost);
  util::Rng parent(321);
  std::vector<util::Rng> forks;
  forks.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) forks.push_back(parent.Fork());
  std::vector<BatchItem> items;
  for (size_t i = 0; i < requests.size(); ++i) {
    items.push_back(BatchItem{&requests[i], &forks[i]});
  }
  const auto results = batched.pool->GenerateBatch(items);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i]->image, expected[i].image) << "item " << i;
    EXPECT_EQ(results[i]->values, expected[i].values);
    EXPECT_EQ(results[i]->latent_realism, expected[i].latent_realism);
  }
}

}  // namespace
}  // namespace chameleon::fm

// ---------------------------------------------------------------------------
// Pipeline-level bit-identity across batch sizes and thread counts
// ---------------------------------------------------------------------------

namespace chameleon::core {
namespace {

struct PipelineRun {
  RepairReport report;
  int64_t synthetic = 0;
};

/// One full repair over a fresh FERET corpus with the given fm transport
/// batch size (1 = legacy direct path, 0 = follow rejection_batch).
/// When `faults` is set, the model stack is resilient(flaky(simulator))
/// with a 30% transient rate and a retry budget that masks everything.
PipelineRun RunBatchedRepair(int fm_batch, int threads, bool faults) {
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus =
      *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel sim(corpus.dataset.schema(),
                                   datasets::FeretFaceStyleFn(),
                                   datasets::FeretScene(),
                                   fm::SimulatedFoundationModel::Options());
  std::unique_ptr<fm::FlakyFoundationModel> flaky_model;
  std::unique_ptr<fm::ResilientFoundationModel> resilient_model;
  fm::FoundationModel* model = &sim;
  if (faults) {
    fm::FlakyOptions flaky;
    flaky.seed = 555;
    flaky.transient_rate = 0.3;
    fm::ResilienceOptions resilience;
    resilience.max_attempts = 64;
    resilience.breaker_failure_threshold = 1 << 30;
    flaky_model = std::make_unique<fm::FlakyFoundationModel>(&sim, flaky);
    resilient_model = std::make_unique<fm::ResilientFoundationModel>(
        flaky_model.get(), resilience);
    model = resilient_model.get();
  }

  ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.num_threads = threads;
  options.rejection_batch = 32;
  options.fm_batch_size = fm_batch;
  Chameleon system(model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  EXPECT_TRUE(report.ok());
  return {*report, corpus.dataset.NumSynthetic()};
}

void ExpectSameAcceptedTuples(const RepairReport& a, const RepairReport& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.distribution_passes, b.distribution_passes);
  EXPECT_EQ(a.quality_passes, b.quality_passes);
  EXPECT_EQ(a.fully_resolved, b.fully_resolved);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].target_values, b.records[i].target_values);
    EXPECT_EQ(a.records[i].embedding, b.records[i].embedding);
    EXPECT_EQ(a.records[i].decision_value, b.records[i].decision_value);
    EXPECT_EQ(a.records[i].quality_p_value, b.records[i].quality_p_value);
    EXPECT_EQ(a.records[i].arm, b.records[i].arm);
    EXPECT_EQ(a.records[i].accepted, b.records[i].accepted);
  }
}

TEST(BatchingDeterminismTest, AcceptedTuplesBitIdenticalAcrossBatchSizes) {
  // Acceptance criterion: grouping queries into transport batches must
  // not change a single accepted tuple. Baseline is the legacy direct
  // path (fm_batch = 1) at one thread; every batched configuration —
  // including the follow-rejection_batch default (0) — must match it
  // bit for bit at every thread count.
  const PipelineRun baseline =
      RunBatchedRepair(/*fm_batch=*/1, /*threads=*/1, /*faults=*/false);
  ASSERT_GT(baseline.report.accepted, 0);

  for (int fm_batch : {0, 8, 32}) {
    for (int threads : {1, 2, 8}) {
      const PipelineRun run = RunBatchedRepair(fm_batch, threads, false);
      SCOPED_TRACE("fm_batch=" + std::to_string(fm_batch) +
                   " threads=" + std::to_string(threads));
      ExpectSameAcceptedTuples(baseline.report, run.report);
      EXPECT_EQ(baseline.synthetic, run.synthetic);
    }
  }
}

TEST(BatchingDeterminismTest, MaskedFaultsPreserveTuplesAtEveryBatchSize) {
  // The same matrix under a 30% injected transient-fault rate: the retry
  // layer masks every fault (checkpointing the per-request RNG), so the
  // batched runs still reproduce the fault-free baseline exactly.
  const PipelineRun baseline =
      RunBatchedRepair(/*fm_batch=*/1, /*threads=*/1, /*faults=*/false);
  ASSERT_GT(baseline.report.accepted, 0);

  for (int fm_batch : {1, 8, 32}) {
    for (int threads : {1, 2, 8}) {
      const PipelineRun run = RunBatchedRepair(fm_batch, threads, true);
      SCOPED_TRACE("fm_batch=" + std::to_string(fm_batch) +
                   " threads=" + std::to_string(threads));
      ExpectSameAcceptedTuples(baseline.report, run.report);
      EXPECT_EQ(baseline.synthetic, run.synthetic);
      EXPECT_GT(run.report.faults.transport.faults_masked, 0);
      EXPECT_EQ(run.report.faults.transport.failed_queries, 0);
      EXPECT_EQ(run.report.faults.parked_entries(), 0);
    }
  }
}

TEST(BatchingDeterminismTest, PoolPipelineIsDeterministicAcrossConfigs) {
  // End to end with the multi-backend pool and the learned router: the
  // router trains only on the serial merge path, so batching and thread
  // count still cannot perturb routing or results.
  auto run_with_pool = [](int fm_batch, int threads) {
    embedding::SimulatedEmbedder embedder;
    fm::EvaluatorPool evaluators(2024);
    fm::Corpus corpus =
        *datasets::MakeFeret(&embedder, datasets::FeretOptions());
    fm::SimulatedBackendPool pool = fm::MakeSimulatedBackendPool(
        corpus.dataset.schema(), datasets::FeretFaceStyleFn(),
        datasets::FeretScene(), fm::SimulatedPoolOptions());
    ChameleonOptions options;
    options.tau = 40;
    options.seed = 11;
    options.num_threads = threads;
    options.rejection_batch = 32;
    options.fm_batch_size = fm_batch;
    options.backend_router = fm::BackendRouterKind::kLinUcb;
    Chameleon system(pool.pool.get(), &embedder, &evaluators, options);
    auto report = system.RepairMinLevelMups(&corpus);
    EXPECT_TRUE(report.ok());
    PipelineRun run{*report, corpus.dataset.NumSynthetic()};
    EXPECT_EQ(pool.pool->backend_router(), fm::BackendRouterKind::kLinUcb);
    return run;
  };

  const PipelineRun baseline = run_with_pool(/*fm_batch=*/1, /*threads=*/1);
  ASSERT_GT(baseline.report.accepted, 0);
  for (int fm_batch : {8, 32}) {
    for (int threads : {1, 8}) {
      const PipelineRun run = run_with_pool(fm_batch, threads);
      SCOPED_TRACE("fm_batch=" + std::to_string(fm_batch) +
                   " threads=" + std::to_string(threads));
      ExpectSameAcceptedTuples(baseline.report, run.report);
      EXPECT_EQ(baseline.synthetic, run.synthetic);
    }
  }
}

TEST(BatchingDeterminismTest, BatchedModeParksPerFailureAndKeepsBatchmates) {
  // A scripted outage inside a batch (no retry layer) parks the entries
  // it hit — one fm.parked increment per failed result — while the OK
  // results from the same flush are still evaluated and merged.
  embedding::SimulatedEmbedder embedder;
  fm::EvaluatorPool evaluators(2024);
  fm::Corpus corpus =
      *datasets::MakeFeret(&embedder, datasets::FeretOptions());
  fm::SimulatedFoundationModel sim(corpus.dataset.schema(),
                                   datasets::FeretFaceStyleFn(),
                                   datasets::FeretScene(),
                                   fm::SimulatedFoundationModel::Options());
  fm::FlakyOptions flaky;
  flaky.outage_start = 2;
  flaky.outage_length = 3;
  fm::FlakyFoundationModel model(&sim, flaky);

  obs::Observability observability;
  ChameleonOptions options;
  options.tau = 40;
  options.seed = 11;
  options.rejection_batch = 8;
  options.fm_batch_size = 8;
  options.observability = &observability;
  Chameleon system(&model, &embedder, &evaluators, options);
  auto report = system.RepairMinLevelMups(&corpus);
  ASSERT_TRUE(report.ok());

  // The outage hit real queries and parked at least one entry...
  EXPECT_EQ(model.counters().scripted, 3);
  EXPECT_GE(report->faults.parked_entries(), 1);
  // ...with one parked count per failed result, not per entry.
  EXPECT_EQ(observability.registry.Counter("fm.parked")->value(), 3);
  // The healthy queries sharing those batches still produced tuples.
  EXPECT_GT(report->accepted, 0);
  // Pinned accounting identities from the obs layer still hold.
  EXPECT_EQ(report->queries,
            static_cast<int64_t>(model.num_queries()) - 3);
}

}  // namespace
}  // namespace chameleon::core
