// GCC 12 at -O2 flags std::vector<int> initializer-list assignment
// (`request.target_values = {0, 1}`) with a spurious "argument 1 null
// where non-null expected" from the inlined memmove (GCC PR106199
// family). False positive; must precede the libstdc++ includes so the
// pragma state is in effect where the diagnostic is attributed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wnonnull"
#endif

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/fm/corpus_io.h"
#include "src/datasets/feret.h"
#include "src/datasets/utkface.h"
#include "src/fm/evaluator_pool.h"
#include "src/fm/foundation_model.h"
#include "src/fm/simulated_foundation_model.h"
#include "src/image/mask_generator.h"
#include "src/stats/summary.h"
#include "src/util/rng.h"

namespace chameleon::fm {
namespace {

TEST(EvaluatorPoolTest, LabelProbabilityMonotoneInRealism) {
  const EvaluatorPool pool(1);
  for (int e = 0; e < pool.num_evaluators(); ++e) {
    EXPECT_LT(pool.LabelProbability(0.3, e), pool.LabelProbability(0.9, e));
    EXPECT_LT(pool.LabelProbability(0.9, e), pool.LabelProbability(1.2, e));
  }
}

TEST(EvaluatorPoolTest, EvaluateReturnsBinaryLabels) {
  const EvaluatorPool pool(1);
  util::Rng rng(2);
  const auto labels = pool.Evaluate(0.9, 20, &rng);
  EXPECT_EQ(labels.size(), 20u);
  for (int label : labels) EXPECT_TRUE(label == 0 || label == 1);
}

TEST(EvaluatorPoolTest, RealPhotoLabelRateNearPaperValue) {
  // The paper measures p ~ 0.86 for real UTKFace images; the simulator is
  // calibrated to land in that neighbourhood for realism ~ N(0.92, 0.04).
  const EvaluatorPool pool(3);
  util::Rng rng(4);
  std::vector<double> realism;
  for (int i = 0; i < 500; ++i) realism.push_back(rng.NextGaussian(0.92, 0.04));
  const double p = pool.EstimateRealLabelRate(realism, 20000, &rng);
  EXPECT_NEAR(p, 0.86, 0.04);
}

TEST(EvaluatorPoolTest, DegenerateEstimation) {
  const EvaluatorPool pool(3);
  util::Rng rng(4);
  EXPECT_EQ(pool.EstimateRealLabelRate({}, 100, &rng), 0.0);
  EXPECT_EQ(pool.EstimateRealLabelRate({0.9}, 0, &rng), 0.0);
}

TEST(BuildPromptTest, MentionsAttributeValues) {
  const auto schema = datasets::FeretSchema();
  const std::string prompt = BuildPrompt(schema, {1, datasets::kFeretBlack});
  EXPECT_NE(prompt.find("gender=Female"), std::string::npos);
  EXPECT_NE(prompt.find("ethnicity=Black"), std::string::npos);
}

class SimulatedFmTest : public ::testing::Test {
 protected:
  SimulatedFmTest()
      : schema_(datasets::FeretSchema()),
        model_(schema_, datasets::FeretFaceStyleFn(), datasets::FeretScene(),
               SimulatedFoundationModel::Options()) {}

  image::Image MakeGuide(const std::vector<int>& values, util::Rng* rng) {
    const image::FaceStyle style = datasets::FeretFaceStyleFn()(values, rng);
    image::RenderOptions render;
    render.size = 64;
    return image::RenderFace(style, datasets::FeretScene(), render, rng);
  }

  data::AttributeSchema schema_;
  SimulatedFoundationModel model_;
};

TEST_F(SimulatedFmTest, ValidatesRequests) {
  util::Rng rng(1);
  GenerationRequest bad_target;
  bad_target.target_values = {0, 99};
  EXPECT_FALSE(model_.Generate(bad_target, &rng).ok());

  // Guided request without mask/guide_values.
  const std::vector<int> guide_values = {0, 0};
  const image::Image guide = MakeGuide(guide_values, &rng);
  GenerationRequest incomplete;
  incomplete.target_values = {0, 1};
  incomplete.guide = &guide;
  EXPECT_FALSE(model_.Generate(incomplete, &rng).ok());
}

TEST_F(SimulatedFmTest, CountsQueriesAndCost) {
  util::Rng rng(2);
  GenerationRequest request;
  request.target_values = {0, 1};
  EXPECT_EQ(model_.num_queries(), 0);
  ASSERT_TRUE(model_.Generate(request, &rng).ok());
  ASSERT_TRUE(model_.Generate(request, &rng).ok());
  EXPECT_EQ(model_.num_queries(), 2);
  EXPECT_NEAR(model_.total_cost(), 2 * 0.016, 1e-12);
}

TEST_F(SimulatedFmTest, UnguidedGenerationProducesImage) {
  util::Rng rng(3);
  GenerationRequest request;
  request.target_values = {1, datasets::kFeretMiddleEastern};
  auto result = model_.Generate(request, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->image.width(), 64);
  EXPECT_EQ(result->values, request.target_values);
  EXPECT_GT(result->latent_realism, 0.7);
}

TEST_F(SimulatedFmTest, GuidedGenerationKeepsUnmaskedPixels) {
  util::Rng rng(4);
  const std::vector<int> guide_values = {0, datasets::kFeretWhite};
  const image::Image guide = MakeGuide(guide_values, &rng);
  const image::Image mask =
      image::GenerateMask(guide, image::MaskLevel::kAccurate);
  GenerationRequest request;
  request.target_values = {0, datasets::kFeretBlack};
  request.guide = &guide;
  request.guide_values = &guide_values;
  request.mask = &mask;
  auto result = model_.Generate(request, &rng);
  ASSERT_TRUE(result.ok());
  for (int y = 0; y < guide.height(); ++y) {
    for (int x = 0; x < guide.width(); ++x) {
      if (mask.at(x, y, 0) == 0) {
        for (int c = 0; c < 3; ++c) {
          ASSERT_EQ(result->image.at(x, y, c), guide.at(x, y, c))
              << "unmasked pixel changed at " << x << "," << y;
        }
      }
    }
  }
}

TEST_F(SimulatedFmTest, TighterMasksCostRealism) {
  util::Rng rng(5);
  stats::RunningStats accurate_realism;
  stats::RunningStats imprecise_realism;
  const std::vector<int> guide_values = {0, datasets::kFeretWhite};
  for (int i = 0; i < 60; ++i) {
    const image::Image guide = MakeGuide(guide_values, &rng);
    GenerationRequest request;
    request.target_values = {0, datasets::kFeretAsian};
    request.guide = &guide;
    request.guide_values = &guide_values;
    const image::Image tight =
        image::GenerateMask(guide, image::MaskLevel::kAccurate);
    request.mask = &tight;
    accurate_realism.Observe(model_.Generate(request, &rng)->latent_realism);
    const image::Image loose =
        image::GenerateMask(guide, image::MaskLevel::kImprecise);
    request.mask = &loose;
    imprecise_realism.Observe(model_.Generate(request, &rng)->latent_realism);
  }
  EXPECT_GT(imprecise_realism.mean(), accurate_realism.mean());
}

TEST_F(SimulatedFmTest, MoreEditsCostMoreRealism) {
  util::Rng rng(6);
  stats::RunningStats zero_edit;
  stats::RunningStats two_edit;
  const std::vector<int> same = {0, datasets::kFeretAsian};
  const std::vector<int> far = {1, datasets::kFeretWhite};
  for (int i = 0; i < 60; ++i) {
    const image::Image guide = MakeGuide(same, &rng);
    const image::Image mask =
        image::GenerateMask(guide, image::MaskLevel::kModerate);
    GenerationRequest request;
    request.target_values = same;
    request.guide = &guide;
    request.guide_values = &same;
    request.mask = &mask;
    zero_edit.Observe(model_.Generate(request, &rng)->latent_realism);

    GenerationRequest edited = request;
    edited.guide_values = &far;  // differs in both attributes
    two_edit.Observe(model_.Generate(edited, &rng)->latent_realism);
  }
  EXPECT_GT(zero_edit.mean(), two_edit.mean() + 0.02);
}

TEST_F(SimulatedFmTest, EditDifficultyIsDeterministicPerSeed) {
  const SimulatedFoundationModel other(schema_, datasets::FeretFaceStyleFn(),
                                       datasets::FeretScene(),
                                       SimulatedFoundationModel::Options());
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    EXPECT_DOUBLE_EQ(model_.EditDifficulty(a, {0, 1}),
                     other.EditDifficulty(a, {0, 1}));
    EXPECT_GT(model_.EditDifficulty(a, {0, 1}), 0.0);
  }
}

TEST(SimulatedFmOrdinalTest, OrdinalDistanceAmplifiesCost) {
  const auto schema = datasets::UtkFaceSchema();
  SimulatedFoundationModel model(schema, datasets::UtkFaceStyleFn(),
                                 datasets::UtkFaceScene(),
                                 SimulatedFoundationModel::Options());
  util::Rng rng(7);
  // Guide differs only on the ordinal age attribute: one step vs five.
  const std::vector<int> target = {0, 0, 4};
  const std::vector<int> near_guide = {0, 0, 5};
  const std::vector<int> far_guide = {0, 0, 0};
  stats::RunningStats near_realism;
  stats::RunningStats far_realism;
  for (int i = 0; i < 80; ++i) {
    util::Rng style_rng(100 + i);
    const image::FaceStyle style =
        datasets::UtkFaceStyleFn()(near_guide, &style_rng);
    image::RenderOptions render;
    render.size = 64;
    const image::Image guide =
        image::RenderFace(style, datasets::UtkFaceScene(), render, &style_rng);
    const image::Image mask =
        image::GenerateMask(guide, image::MaskLevel::kModerate);
    GenerationRequest request;
    request.target_values = target;
    request.guide = &guide;
    request.mask = &mask;
    request.guide_values = &near_guide;
    near_realism.Observe(model.Generate(request, &rng)->latent_realism);
    request.guide_values = &far_guide;
    far_realism.Observe(model.Generate(request, &rng)->latent_realism);
  }
  EXPECT_GT(near_realism.mean(), far_realism.mean());
}


TEST(CorpusIoTest, RoundTripsFullCorpus) {
  const auto schema = datasets::FeretSchema();
  Corpus corpus;
  corpus.dataset = data::Dataset(schema);
  util::Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    data::Tuple tuple;
    tuple.values = {i % 2, i % 5};
    tuple.embedding = {rng.NextDouble(), rng.NextDouble()};
    tuple.synthetic = i % 3 == 0;
    image::Image img(8, 8, 3, static_cast<uint8_t>(i * 9));
    ASSERT_TRUE(corpus.Add(std::move(tuple), std::move(img), 0.9).ok());
  }

  const std::string dir = ::testing::TempDir() + "/corpus_roundtrip";
  ASSERT_TRUE(SaveCorpus(corpus, dir).ok());
  auto loaded = LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok());

  ASSERT_EQ(loaded->dataset.size(), corpus.dataset.size());
  ASSERT_EQ(loaded->images.size(), corpus.images.size());
  for (size_t i = 0; i < corpus.dataset.size(); ++i) {
    const auto& original = corpus.dataset.tuple(i);
    const auto& restored = loaded->dataset.tuple(i);
    EXPECT_EQ(restored.values, original.values);
    EXPECT_EQ(restored.synthetic, original.synthetic);
    EXPECT_EQ(restored.payload_id, original.payload_id);
    ASSERT_EQ(restored.embedding.size(), original.embedding.size());
    for (size_t e = 0; e < original.embedding.size(); ++e) {
      EXPECT_NEAR(restored.embedding[e], original.embedding[e], 1e-6);
    }
    EXPECT_EQ(loaded->images[original.payload_id],
              corpus.images[original.payload_id]);
  }
  // Schema round-trips too.
  EXPECT_EQ(loaded->dataset.schema().num_attributes(),
            schema.num_attributes());
  EXPECT_EQ(loaded->dataset.schema().attribute(1).values,
            schema.attribute(1).values);
}

TEST(CorpusIoTest, AnnotationOnlyRoundTrip) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::UtkFaceSchema());
  data::Tuple tuple;
  tuple.values = {0, 1, 2};
  ASSERT_TRUE(corpus.AddAnnotationOnly(std::move(tuple)).ok());

  const std::string dir = ::testing::TempDir() + "/corpus_annotations";
  ASSERT_TRUE(SaveCorpus(corpus, dir, /*include_images=*/false).ok());
  auto loaded = LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->dataset.size(), 1u);
  EXPECT_TRUE(loaded->images.empty());
  EXPECT_EQ(loaded->dataset.tuple(0).values, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(loaded->dataset.tuple(0).payload_id, -1);
}

TEST(CorpusIoTest, LoadFailsOnMissingDirectory) {
  EXPECT_FALSE(LoadCorpus("/nonexistent/corpus/dir").ok());
}

// ---------------------------------------------------------------------------
// Corrupted-corpus fixtures: a malformed tuples.csv row or a short-read
// image payload must surface kIoError — never a silently-wrong corpus.
// ---------------------------------------------------------------------------

class CorpusCorruptionTest : public ::testing::Test {
 protected:
  /// Saves a small valid FERET-schema corpus (with images) into a fresh
  /// directory named after the running test, and returns the directory.
  std::string SaveValidCorpus() {
    Corpus corpus;
    corpus.dataset = data::Dataset(datasets::FeretSchema());
    util::Rng rng(5);
    for (int i = 0; i < 4; ++i) {
      data::Tuple tuple;
      tuple.values = {i % 2, i % 5};
      tuple.embedding = {rng.NextDouble(), rng.NextDouble()};
      image::Image img(4, 4, 3, static_cast<uint8_t>(40 * i));
      EXPECT_TRUE(corpus.Add(std::move(tuple), std::move(img), 0.9).ok());
    }
    const std::string dir =
        ::testing::TempDir() + "/corrupt_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    EXPECT_TRUE(SaveCorpus(corpus, dir).ok());
    return dir;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    EXPECT_TRUE(out.good()) << path;
    out << content;
  }

  static void ExpectLoadIoError(const std::string& dir) {
    const auto loaded = LoadCorpus(dir);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError)
        << loaded.status().ToString();
  }
};

TEST_F(CorpusCorruptionTest, NonNumericValueFieldIsRejected) {
  const std::string dir = SaveValidCorpus();
  std::string tuples = ReadFile(dir + "/tuples.csv");
  const auto comma = tuples.find(',');
  ASSERT_NE(comma, std::string::npos);
  tuples.replace(0, comma, "abc");  // payload_id is not a number any more
  WriteFile(dir + "/tuples.csv", tuples);
  ExpectLoadIoError(dir);
}

TEST_F(CorpusCorruptionTest, TruncatedTuplesRowIsRejected) {
  const std::string dir = SaveValidCorpus();
  WriteFile(dir + "/tuples.csv",
            ReadFile(dir + "/tuples.csv") + "3,0\n");  // too few fields
  ExpectLoadIoError(dir);
}

TEST_F(CorpusCorruptionTest, NonBinarySyntheticFlagIsRejected) {
  const std::string dir = SaveValidCorpus();
  std::string tuples = ReadFile(dir + "/tuples.csv");
  const auto first_row_end = tuples.find('\n');
  ASSERT_NE(first_row_end, std::string::npos);
  std::string first_row = tuples.substr(0, first_row_end);
  const auto flag_start = first_row.find(',') + 1;
  const auto flag_end = first_row.find(',', flag_start);
  first_row.replace(flag_start, flag_end - flag_start, "2");
  WriteFile(dir + "/tuples.csv",
            first_row + tuples.substr(first_row_end));
  ExpectLoadIoError(dir);
}

TEST_F(CorpusCorruptionTest, InconsistentEmbeddingArityIsRejected) {
  const std::string dir = SaveValidCorpus();
  std::string tuples = ReadFile(dir + "/tuples.csv");
  // Drop the last embedding entry of the final row: its arity no longer
  // matches the arity pinned by the first row.
  while (!tuples.empty() && tuples.back() == '\n') tuples.pop_back();
  const auto last_comma = tuples.rfind(',');
  ASSERT_NE(last_comma, std::string::npos);
  WriteFile(dir + "/tuples.csv", tuples.substr(0, last_comma) + "\n");
  ExpectLoadIoError(dir);
}

TEST_F(CorpusCorruptionTest, OutOfDomainValueIsRejected) {
  const std::string dir = SaveValidCorpus();
  std::string tuples = ReadFile(dir + "/tuples.csv");
  // Rewrite row 0's first attribute value (field 3) to an index outside
  // the schema domain. Strict parsing passes; Dataset::Add must not.
  std::vector<std::string> fields;
  const auto row_end = tuples.find('\n');
  std::stringstream row(tuples.substr(0, row_end));
  std::string field;
  while (std::getline(row, field, ',')) fields.push_back(field);
  ASSERT_GE(fields.size(), 4u);
  fields[2] = "999";
  std::string rebuilt;
  for (size_t i = 0; i < fields.size(); ++i) {
    rebuilt += (i ? "," : "") + fields[i];
  }
  WriteFile(dir + "/tuples.csv", rebuilt + tuples.substr(row_end));
  ExpectLoadIoError(dir);
}

TEST_F(CorpusCorruptionTest, TruncatedImagePayloadIsRejected) {
  const std::string dir = SaveValidCorpus();
  const std::string path = dir + "/images/000000.ppm";
  const std::string ppm = ReadFile(path);
  ASSERT_GT(ppm.size(), 16u);
  WriteFile(path, ppm.substr(0, ppm.size() / 2));  // short read mid-raster
  ExpectLoadIoError(dir);
}

TEST_F(CorpusCorruptionTest, GarbageRealismRowIsRejected) {
  const std::string dir = SaveValidCorpus();
  WriteFile(dir + "/realism.csv",
            ReadFile(dir + "/realism.csv") + "banana,0.9\n");
  ExpectLoadIoError(dir);
}

}  // namespace
}  // namespace chameleon::fm
