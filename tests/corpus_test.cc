// Tests for the fm::Corpus container (tuple/payload wiring and the
// helper views the pipeline depends on).

#include "gtest/gtest.h"
#include "src/datasets/feret.h"
#include "src/fm/corpus.h"

namespace chameleon::fm {
namespace {

data::Tuple MakeTuple(int gender, int ethnicity) {
  data::Tuple tuple;
  tuple.values = {gender, ethnicity};
  return tuple;
}

TEST(CorpusTest, AddWiresPayloadIds) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  ASSERT_TRUE(
      corpus.Add(MakeTuple(0, 0), image::Image(4, 4, 3), 0.9).ok());
  ASSERT_TRUE(
      corpus.Add(MakeTuple(1, 1), image::Image(4, 4, 3), 0.8).ok());
  EXPECT_EQ(corpus.dataset.tuple(0).payload_id, 0);
  EXPECT_EQ(corpus.dataset.tuple(1).payload_id, 1);
  EXPECT_EQ(corpus.images.size(), 2u);
  EXPECT_EQ(corpus.realism.size(), 2u);
  EXPECT_DOUBLE_EQ(corpus.realism[1], 0.8);
}

TEST(CorpusTest, AddRejectsInvalidTuples) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  EXPECT_FALSE(
      corpus.Add(MakeTuple(0, 99), image::Image(4, 4, 3), 0.9).ok());
  // The failed add must not leave an orphaned payload.
  EXPECT_TRUE(corpus.images.empty());
}

TEST(CorpusTest, AnnotationOnlyHasNoPayload) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  ASSERT_TRUE(corpus.AddAnnotationOnly(MakeTuple(0, 1)).ok());
  EXPECT_EQ(corpus.dataset.tuple(0).payload_id, -1);
  EXPECT_TRUE(corpus.images.empty());
}

TEST(CorpusTest, RealTupleRealismSkipsSynthetic) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  ASSERT_TRUE(
      corpus.Add(MakeTuple(0, 0), image::Image(4, 4, 3), 0.9).ok());
  data::Tuple synthetic = MakeTuple(0, 1);
  synthetic.synthetic = true;
  ASSERT_TRUE(
      corpus.Add(std::move(synthetic), image::Image(4, 4, 3), 0.5).ok());
  ASSERT_TRUE(corpus.AddAnnotationOnly(MakeTuple(1, 0)).ok());

  const auto realism = corpus.RealTupleRealism();
  ASSERT_EQ(realism.size(), 1u);
  EXPECT_DOUBLE_EQ(realism[0], 0.9);
}

TEST(CorpusTest, EmbeddingsViewSkipsMissing) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  data::Tuple with = MakeTuple(0, 0);
  with.embedding = {1.0, 2.0};
  ASSERT_TRUE(corpus.AddAnnotationOnly(std::move(with)).ok());
  ASSERT_TRUE(corpus.AddAnnotationOnly(MakeTuple(1, 1)).ok());
  const auto embeddings = corpus.Embeddings();
  ASSERT_EQ(embeddings.size(), 1u);
  EXPECT_EQ(embeddings[0], (std::vector<double>{1.0, 2.0}));
}

}  // namespace
}  // namespace chameleon::fm
