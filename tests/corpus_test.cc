// Tests for the fm::Corpus container (tuple/payload wiring and the
// helper views the pipeline depends on), plus LoadCorpus's tolerance of
// Windows-style line endings vs. genuinely corrupt files.

#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "src/datasets/feret.h"
#include "src/fm/corpus.h"
#include "src/fm/corpus_io.h"
#include "src/util/rng.h"

namespace chameleon::fm {
namespace {

data::Tuple MakeTuple(int gender, int ethnicity) {
  data::Tuple tuple;
  tuple.values = {gender, ethnicity};
  return tuple;
}

TEST(CorpusTest, AddWiresPayloadIds) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  ASSERT_TRUE(
      corpus.Add(MakeTuple(0, 0), image::Image(4, 4, 3), 0.9).ok());
  ASSERT_TRUE(
      corpus.Add(MakeTuple(1, 1), image::Image(4, 4, 3), 0.8).ok());
  EXPECT_EQ(corpus.dataset.tuple(0).payload_id, 0);
  EXPECT_EQ(corpus.dataset.tuple(1).payload_id, 1);
  EXPECT_EQ(corpus.images.size(), 2u);
  EXPECT_EQ(corpus.realism.size(), 2u);
  EXPECT_DOUBLE_EQ(corpus.realism[1], 0.8);
}

TEST(CorpusTest, AddRejectsInvalidTuples) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  EXPECT_FALSE(
      corpus.Add(MakeTuple(0, 99), image::Image(4, 4, 3), 0.9).ok());
  // The failed add must not leave an orphaned payload.
  EXPECT_TRUE(corpus.images.empty());
}

TEST(CorpusTest, AnnotationOnlyHasNoPayload) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  ASSERT_TRUE(corpus.AddAnnotationOnly(MakeTuple(0, 1)).ok());
  EXPECT_EQ(corpus.dataset.tuple(0).payload_id, -1);
  EXPECT_TRUE(corpus.images.empty());
}

TEST(CorpusTest, RealTupleRealismSkipsSynthetic) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  ASSERT_TRUE(
      corpus.Add(MakeTuple(0, 0), image::Image(4, 4, 3), 0.9).ok());
  data::Tuple synthetic = MakeTuple(0, 1);
  synthetic.synthetic = true;
  ASSERT_TRUE(
      corpus.Add(std::move(synthetic), image::Image(4, 4, 3), 0.5).ok());
  ASSERT_TRUE(corpus.AddAnnotationOnly(MakeTuple(1, 0)).ok());

  const auto realism = corpus.RealTupleRealism();
  ASSERT_EQ(realism.size(), 1u);
  EXPECT_DOUBLE_EQ(realism[0], 0.9);
}

TEST(CorpusTest, EmbeddingsViewSkipsMissing) {
  Corpus corpus;
  corpus.dataset = data::Dataset(datasets::FeretSchema());
  data::Tuple with = MakeTuple(0, 0);
  with.embedding = {1.0, 2.0};
  ASSERT_TRUE(corpus.AddAnnotationOnly(std::move(with)).ok());
  ASSERT_TRUE(corpus.AddAnnotationOnly(MakeTuple(1, 1)).ok());
  const auto embeddings = corpus.Embeddings();
  ASSERT_EQ(embeddings.size(), 1u);
  EXPECT_EQ(embeddings[0], (std::vector<double>{1.0, 2.0}));
}

// ---------------------------------------------------------------------------
// LoadCorpus line endings: a corpus that passed through Windows tooling
// (CRLF line endings, possibly no trailing newline) is merely reformatted,
// not corrupt — it must load byte-for-byte identically. Actual corruption
// must still surface kIoError.
// ---------------------------------------------------------------------------

class CorpusLineEndingTest : public ::testing::Test {
 protected:
  /// Saves a small valid FERET-schema corpus (with images) into a fresh
  /// directory named after the running test, and returns the directory.
  std::string SaveSmallCorpus() {
    Corpus corpus;
    corpus.dataset = data::Dataset(datasets::FeretSchema());
    util::Rng rng(11);
    for (int i = 0; i < 4; ++i) {
      data::Tuple tuple;
      tuple.values = {i % 2, i % 5};
      tuple.embedding = {rng.NextDouble(), rng.NextDouble()};
      image::Image img(4, 4, 3, static_cast<uint8_t>(30 * i));
      EXPECT_TRUE(corpus.Add(std::move(tuple), std::move(img), 0.9).ok());
    }
    const std::string dir =
        ::testing::TempDir() + "/lineend_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    EXPECT_TRUE(SaveCorpus(corpus, dir).ok());
    return dir;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    EXPECT_TRUE(out.good()) << path;
    out << content;
  }

  /// Rewrites one CSV with \r\n line endings (LF already in place → CRLF).
  static void ConvertToCrlf(const std::string& path) {
    const std::string text = ReadFile(path);
    std::string crlf;
    crlf.reserve(text.size() + text.size() / 8);
    for (const char c : text) {
      if (c == '\n') crlf += '\r';
      crlf += c;
    }
    WriteFile(path, crlf);
  }
};

TEST_F(CorpusLineEndingTest, CrlfCorpusLoadsIdentically) {
  const std::string dir = SaveSmallCorpus();
  const auto baseline = LoadCorpus(dir);
  ASSERT_TRUE(baseline.ok());

  for (const char* file : {"/schema.csv", "/tuples.csv", "/realism.csv"}) {
    ConvertToCrlf(dir + file);
  }
  const auto loaded = LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->dataset.size(), baseline->dataset.size());
  for (size_t i = 0; i < baseline->dataset.size(); ++i) {
    EXPECT_EQ(loaded->dataset.tuple(i).values,
              baseline->dataset.tuple(i).values);
    EXPECT_EQ(loaded->dataset.tuple(i).embedding,
              baseline->dataset.tuple(i).embedding);
  }
  EXPECT_EQ(loaded->realism, baseline->realism);
}

TEST_F(CorpusLineEndingTest, MissingTrailingNewlineLoads) {
  const std::string dir = SaveSmallCorpus();
  std::string tuples = ReadFile(dir + "/tuples.csv");
  ASSERT_FALSE(tuples.empty());
  ASSERT_EQ(tuples.back(), '\n');
  tuples.pop_back();
  WriteFile(dir + "/tuples.csv", tuples);

  const auto loaded = LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dataset.size(), 4u);
}

TEST_F(CorpusLineEndingTest, CrlfDoesNotMaskRealCorruption) {
  // The tolerance is for line endings only: a CRLF file with a mangled
  // numeric field is corrupt and must still be rejected loudly.
  const std::string dir = SaveSmallCorpus();
  ConvertToCrlf(dir + "/tuples.csv");
  std::string tuples = ReadFile(dir + "/tuples.csv");
  const auto comma = tuples.find(',');
  ASSERT_NE(comma, std::string::npos);
  tuples.replace(0, comma, "abc");  // payload_id is not a number any more
  WriteFile(dir + "/tuples.csv", tuples);

  const auto loaded = LoadCorpus(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIoError)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace chameleon::fm
