#include "gtest/gtest.h"
#include "src/embedding/simulated_embedder.h"
#include "src/image/face_renderer.h"
#include "src/linalg/vector_ops.h"
#include "src/util/rng.h"

namespace chameleon::embedding {
namespace {

image::Image MakeFace(uint64_t seed, const image::SceneStyle& scene) {
  util::Rng rng(seed);
  const image::FaceStyle style = image::MakeFaceStyle(1, 5, false, 0.4, &rng);
  image::RenderOptions options;
  options.size = 64;
  return image::RenderFace(style, scene, options, &rng);
}

TEST(SimulatedEmbedderTest, DimensionsMatchConfiguration) {
  const SimulatedEmbedder embedder(24, 7);
  EXPECT_EQ(embedder.dim(), 24);
  const image::SceneStyle scene;
  EXPECT_EQ(embedder.Embed(MakeFace(1, scene)).size(), 24u);
}

TEST(SimulatedEmbedderTest, DeterministicForSeedAndImage) {
  const SimulatedEmbedder a(32, 7);
  const SimulatedEmbedder b(32, 7);
  const image::SceneStyle scene;
  const image::Image face = MakeFace(2, scene);
  EXPECT_EQ(a.Embed(face), b.Embed(face));
}

TEST(SimulatedEmbedderTest, DifferentProjectionSeedsDiffer) {
  const SimulatedEmbedder a(32, 7);
  const SimulatedEmbedder b(32, 8);
  const image::SceneStyle scene;
  const image::Image face = MakeFace(2, scene);
  EXPECT_NE(a.Embed(face), b.Embed(face));
}

TEST(SimulatedEmbedderTest, RawFeatureDimension) {
  const image::SceneStyle scene;
  EXPECT_EQ(static_cast<int>(
                SimulatedEmbedder::RawFeatures(MakeFace(3, scene)).size()),
            SimulatedEmbedder::raw_dim());
}

TEST(SimulatedEmbedderTest, SimilarImagesAreCloserThanDifferentScenes) {
  // Two renders of the same subject/scene must embed closer together
  // than a render with a very different backdrop — the property the
  // data-distribution test relies on.
  const SimulatedEmbedder embedder;
  image::SceneStyle scene;
  image::SceneStyle other_scene;
  other_scene.background_top = {220, 60, 60};
  other_scene.background_bottom = {240, 90, 90};

  const auto a = embedder.Embed(MakeFace(10, scene));
  const auto b = embedder.Embed(MakeFace(11, scene));
  const auto c = embedder.Embed(MakeFace(10, other_scene));
  EXPECT_LT(linalg::SquaredDistance(a, b), linalg::SquaredDistance(a, c));
}

TEST(SimulatedEmbedderTest, CosineSimilarityTracksSceneSimilarity) {
  const SimulatedEmbedder embedder;
  image::SceneStyle scene;
  image::SceneStyle far_scene;
  far_scene.background_top = {10, 10, 10};
  far_scene.background_bottom = {30, 30, 30};
  const auto same_1 = embedder.Embed(MakeFace(20, scene));
  const auto same_2 = embedder.Embed(MakeFace(21, scene));
  const auto far = embedder.Embed(MakeFace(20, far_scene));
  EXPECT_GT(linalg::CosineSimilarity(same_1, same_2),
            linalg::CosineSimilarity(same_1, far));
}

}  // namespace
}  // namespace chameleon::embedding
